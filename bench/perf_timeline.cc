// Incremental sliding-window timeline vs per-window from-scratch
// recomputation, swept over the window overlap fraction. Emits the
// steady-state speedup per (scheme, overlap) as gauges
// `timeline/<scheme>/overlap<pct>_speedup` into BENCH_timeline.json —
// the numbers tools/bench_guard.py holds the incremental engine
// accountable for — and prints the sweep as a table.
//
// Two workloads, one per scheme family, each in the regime its dirty rule
// actually exploits:
//
//  * "shared" — focal hosts talk to a small shared service population with
//    an always-on baseline session per (host, service, slot), so every
//    edge exists in every window (in-degree *sets* are stable) and a
//    window's baseline weight is slot-count * rate regardless of which
//    slots it covers. Only hosts whose burst crosses the slots entering /
//    leaving the window have a changed row. This is the TT/UT regime: the
//    one-hop dirty rules keep quiet hosts clean even though the
//    destination population is dense and shared.
//
//  * "clustered" — each focal host owns a private destination cluster and
//    emits only while bursting. Supports of distinct hosts are disjoint,
//    so a quiet host's RWR support never touches a changed transition row
//    and the drift estimate is exactly zero — the reuse path of the RWR
//    fallback ladder. Shared destinations would put every changed row in
//    every support and force cold solves, which is precisely what the
//    drift bound is for; the cluster workload isolates the reuse win.
//
// Both modes compute identical work per window (the equivalence suite
// enforces bit-identity for TT/UT and the drift epsilon for RWR); window
// construction is untimed and shared. Timing starts after the first
// window so the numbers are steady-state per-window costs, not diluted by
// the unavoidable full sweep that primes the engine.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/incremental.h"
#include "core/scheme.h"
#include "eval/timeline.h"
#include "graph/windower.h"
#include "obs/metrics.h"

namespace commsig::bench {
namespace {

constexpr uint64_t kSlots = 64;
constexpr uint64_t kWindowLength = 16;
constexpr size_t kNumFocal = 256;

struct Workload {
  std::string name;
  std::vector<TraceEvent> events;
  size_t num_nodes = 0;
  std::vector<NodeId> focal;
};

/// Per-focal burst mask over the slot axis: rare bursts (geometric length)
/// so that between two overlapping windows most hosts' activity pattern is
/// unchanged — the sliding-window monitoring regime.
std::vector<std::vector<bool>> BurstMasks(double p_start, double p_end,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<std::vector<bool>> masks(kNumFocal,
                                       std::vector<bool>(kSlots, false));
  for (auto& mask : masks) {
    bool bursting = false;
    for (uint64_t s = 0; s < kSlots; ++s) {
      if (!bursting && uniform(rng) < p_start) bursting = true;
      mask[s] = bursting;
      if (bursting && uniform(rng) < p_end) bursting = false;
    }
  }
  return masks;
}

Workload MakeSharedServicesWorkload() {
  constexpr size_t kServices = 512;
  constexpr size_t kDestsPerFocal = 20;
  Workload w;
  w.name = "shared";
  w.num_nodes = kNumFocal + kServices;
  std::mt19937_64 rng(0x717e1);
  std::vector<std::vector<NodeId>> dsts(kNumFocal);
  for (size_t f = 0; f < kNumFocal; ++f) {
    std::vector<bool> taken(kServices, false);
    while (dsts[f].size() < kDestsPerFocal) {
      size_t d = rng() % kServices;
      if (taken[d]) continue;
      taken[d] = true;
      dsts[f].push_back(static_cast<NodeId>(kNumFocal + d));
    }
    w.focal.push_back(static_cast<NodeId>(f));
  }
  auto masks = BurstMasks(0.004, 1.0 / 3.0, 0xb0057);
  for (uint64_t s = 0; s < kSlots; ++s) {
    for (size_t f = 0; f < kNumFocal; ++f) {
      // Always-on baseline: the edge set (and thus every in-degree) is
      // window-invariant, and each window's baseline weight sums the same
      // constant per covered slot.
      for (NodeId d : dsts[f]) {
        w.events.push_back({static_cast<NodeId>(f), d, s, 1.0});
      }
      if (masks[f][s]) {
        for (NodeId d : dsts[f]) {
          w.events.push_back({static_cast<NodeId>(f), d, s, 4.0});
        }
      }
    }
  }
  return w;
}

Workload MakeClusteredWorkload() {
  constexpr size_t kClusterSize = 12;
  Workload w;
  w.name = "clustered";
  w.num_nodes = kNumFocal + kNumFocal * kClusterSize;
  auto masks = BurstMasks(0.007, 1.0 / 3.0, 0xc1a57);
  for (size_t f = 0; f < kNumFocal; ++f) w.focal.push_back(f);
  for (uint64_t s = 0; s < kSlots; ++s) {
    for (size_t f = 0; f < kNumFocal; ++f) {
      if (!masks[f][s]) continue;
      for (size_t j = 0; j < kClusterSize; ++j) {
        NodeId d = static_cast<NodeId>(kNumFocal + f * kClusterSize + j);
        // Slot-dependent weights: a burst sliding across the window edge
        // changes the row it leaves behind, not just its presence.
        w.events.push_back(
            {static_cast<NodeId>(f), d, s, 1.0 + 0.1 * ((s * 31 + j) % 7)});
      }
    }
  }
  return w;
}

/// Entry-count checksum so the optimizer cannot elide a timed sweep.
size_t g_sink = 0;

double TimeScratchNs(const SignatureScheme& scheme,
                     const std::vector<CommGraph>& windows,
                     const std::vector<NodeId>& focal, int repeats) {
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t w = 1; w < windows.size(); ++w) {
      auto sigs = scheme.ComputeAll(windows[w], focal);
      for (const Signature& s : sigs) g_sink += s.size();
    }
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
  }
  return best;
}

double TimeIncrementalNs(const SignatureScheme& scheme,
                         const std::vector<CommGraph>& windows,
                         const std::vector<NodeId>& focal, int repeats) {
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    IncrementalSignatureEngine engine(scheme, focal);
    engine.AdvanceBorrowed(windows[0]);  // priming sweep, untimed
    auto t0 = std::chrono::steady_clock::now();
    for (size_t w = 1; w < windows.size(); ++w) {
      const auto& sigs = engine.AdvanceBorrowed(windows[w]);
      for (const Signature& s : sigs) g_sink += s.size();
    }
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
  }
  return best;
}

/// Largest per-entry weight discrepancy between two aligned timelines
/// (node sets must also agree). Used to keep the bench honest: a speedup
/// from diverging results would be a bug, not a win.
double MaxDeviation(const std::vector<std::vector<Signature>>& a,
                    const std::vector<std::vector<Signature>>& b) {
  double max_dev = 0.0;
  for (size_t w = 0; w < a.size(); ++w) {
    for (size_t i = 0; i < a[w].size(); ++i) {
      if (a[w][i].size() != b[w][i].size()) return 1e300;
      for (size_t e = 0; e < a[w][i].size(); ++e) {
        if (a[w][i].entries()[e].node != b[w][i].entries()[e].node) {
          return 1e300;
        }
        max_dev = std::max(max_dev,
                           std::abs(a[w][i].entries()[e].weight -
                                    b[w][i].entries()[e].weight));
      }
    }
  }
  return max_dev;
}

/// `repeats` is best-of count for both timed loops: high for the cheap
/// exact schemes (sub-ms loops, timer noise dominates a single pass), low
/// for the expensive RWR sweeps where one pass is tens of ms.
void RunSweep(const Workload& wl, const std::string& spec,
              const std::string& key, double rwr_epsilon, int repeats) {
  SchemeOptions opts;
  opts.k = 10;
  auto scheme = MustCreateScheme(spec, opts);
  auto& reg = obs::MetricsRegistry::Global();
  for (uint64_t stride : {kWindowLength, kWindowLength / 2, kWindowLength / 4,
                          kWindowLength / 8}) {
    TraceWindower windower(wl.num_nodes, kWindowLength);
    std::vector<CommGraph> windows = windower.SplitSliding(wl.events, stride);
    const int pct = static_cast<int>(
        std::lround(100.0 * (1.0 - static_cast<double>(stride) /
                                       static_cast<double>(kWindowLength))));

    // Equivalence first (untimed): a fast-but-wrong timeline must fail the
    // bench, not publish a speedup.
    auto scratch_tl =
        ComputeSignatureTimeline(*scheme, windows, wl.focal, {false});
    auto incr_tl = ComputeSignatureTimeline(*scheme, windows, wl.focal, {true});
    const double dev = MaxDeviation(scratch_tl, incr_tl);
    if (dev > rwr_epsilon) {
      std::fprintf(stderr,
                   "FAIL %s/%s overlap=%d%%: incremental deviates by %.3g "
                   "(allowed %.3g)\n",
                   wl.name.c_str(), key.c_str(), pct, dev, rwr_epsilon);
      std::exit(1);
    }

    const uint64_t dirty_before =
        reg.GetCounter("timeline/nodes_dirty").Value();
    const uint64_t reused_before =
        reg.GetCounter("timeline/nodes_reused").Value();
    const double scratch_ns = TimeScratchNs(*scheme, windows, wl.focal,
                                            repeats);
    const double incr_ns = TimeIncrementalNs(*scheme, windows, wl.focal,
                                             repeats);
    // Each repeat's untimed priming sweep marks every focal node dirty;
    // exclude those so the printed fraction is the steady-state dirty rate
    // the timed transitions actually saw.
    const uint64_t dirty = reg.GetCounter("timeline/nodes_dirty").Value() -
                           dirty_before -
                           static_cast<uint64_t>(repeats) * wl.focal.size();
    const uint64_t reused =
        reg.GetCounter("timeline/nodes_reused").Value() - reused_before;
    const double dirty_frac =
        dirty + reused > 0
            ? static_cast<double>(dirty) / static_cast<double>(dirty + reused)
            : 1.0;

    const double speedup = incr_ns > 0.0 ? scratch_ns / incr_ns : 0.0;
    const std::string prefix =
        "timeline/" + key + "/overlap" + std::to_string(pct);
    reg.GetGauge(prefix + "_speedup").Set(speedup);
    reg.GetGauge(prefix + "_scratch_ns").Set(scratch_ns);
    reg.GetGauge(prefix + "_incremental_ns").Set(incr_ns);
    PrintRow({wl.name, key, Fmt(pct, "%.0f") + "%",
              Fmt(static_cast<double>(windows.size()), "%.0f"),
              Fmt(100.0 * dirty_frac, "%.1f") + "%",
              Fmt(scratch_ns / 1e6, "%.3f"), Fmt(incr_ns / 1e6, "%.3f"),
              Fmt(speedup, "%.2f") + "x", Fmt(dev, "%.2g")},
             12);
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  using namespace commsig::bench;
  commsig::obs::PreRegisterCoreMetrics();

  PrintHeader("incremental timeline vs from-scratch (steady-state)");
  PrintRow({"workload", "scheme", "overlap", "windows", "dirty", "scratch_ms",
            "incr_ms", "speedup", "max_dev"},
           12);

  // TT/UT: one-hop dirty rules on the shared-service workload. Exact
  // schemes, so any deviation at all fails the bench.
  Workload shared = MakeSharedServicesWorkload();
  RunSweep(shared, "tt", "tt", 0.0, 15);
  RunSweep(shared, "ut", "ut", 0.0, 15);

  // RWR reuse/warm/cold ladder on the clustered workload. The documented
  // bound: accumulated drift estimate <= incremental_max_drift (1e-6)
  // plus solver tolerance on either side.
  Workload clustered = MakeClusteredWorkload();
  RunSweep(clustered, "rwr(c=0.1,h=3)", "rwr_h3", 1e-5, 7);
  RunSweep(clustered, "rwr(c=0.1)", "rwr", 1e-5, 3);

  if (g_sink == 0) std::fprintf(stderr, "(empty timelines)\n");
  WriteBenchSnapshot("timeline");
  return 0;
}
