// Section VI extension: semi-streaming signature construction. Compares
// sketch-based approximate TT / UT signatures against the exact graph-based
// signatures on the flow workload, sweeping the SpaceSaving capacity, and
// reports approximation quality (mean Jaccard distance to the exact
// signature), memory, and throughput.

#include <chrono>

#include "bench/bench_common.h"
#include "core/distance.h"
#include "core/top_talkers.h"
#include "core/unexpected_talkers.h"
#include "sketch/streaming_signatures.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Section VI: semi-streaming signature construction\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();

  // First-window events only, matching the exact per-window signatures.
  std::vector<TraceEvent> events;
  for (const TraceEvent& e : flows.events) {
    if (e.time / flows.window_length == 0) events.push_back(e);
  }
  std::printf("window-0 events: %zu, nodes: %zu\n", events.size(),
              flows.interner.size());

  TopTalkersScheme exact_tt({.k = 10});
  UnexpectedTalkersScheme exact_ut({.k = 10},
                                   UtWeighting::kInverseInDegree);
  auto tt_truth = exact_tt.ComputeAll(windows[0], flows.local_hosts);
  auto ut_truth = exact_ut.ComputeAll(windows[0], flows.local_hosts);

  PrintHeader("approximation quality vs SpaceSaving capacity");
  PrintRow({"capacity", "tt_jac_dist", "ut_jac_dist", "memory_MB",
            "Mevents/s"});
  for (size_t capacity : {16u, 32u, 64u, 128u, 256u}) {
    StreamingSignatureBuilder::Options opts;
    opts.heavy_hitter_capacity = capacity;
    StreamingSignatureBuilder builder(flows.local_hosts, opts);

    auto start = std::chrono::steady_clock::now();
    builder.ObserveAll(events);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    double tt_dist = 0.0, ut_dist = 0.0;
    for (size_t i = 0; i < flows.local_hosts.size(); ++i) {
      NodeId host = flows.local_hosts[i];
      tt_dist += Distance(DistanceKind::kJaccard,
                          builder.TopTalkers(host, 10), tt_truth[i]);
      ut_dist += Distance(DistanceKind::kJaccard,
                          builder.UnexpectedTalkers(host, 10), ut_truth[i]);
    }
    const double n = static_cast<double>(flows.local_hosts.size());
    PrintRow({std::to_string(capacity), Fmt(tt_dist / n), Fmt(ut_dist / n),
              Fmt(builder.MemoryBytes() / 1048576.0, "%.2f"),
              Fmt(events.size() / elapsed / 1e6, "%.2f")});
  }

  // The UT path's residual error is dominated by Count-Min collisions on
  // the crowded light-edge boundary, not by the candidate set: sweep the
  // CM width at a fixed generous capacity.
  PrintHeader("UT approximation vs Count-Min width (capacity 128)");
  PrintRow({"cm_width", "ut_jac_dist", "memory_MB"});
  for (size_t width : {1024u, 4096u, 16384u, 65536u, 262144u}) {
    StreamingSignatureBuilder::Options opts;
    opts.heavy_hitter_capacity = 128;
    opts.cm_width = width;
    StreamingSignatureBuilder builder(flows.local_hosts, opts);
    builder.ObserveAll(events);

    double ut_dist = 0.0;
    for (size_t i = 0; i < flows.local_hosts.size(); ++i) {
      NodeId host = flows.local_hosts[i];
      ut_dist += Distance(DistanceKind::kJaccard,
                          builder.UnexpectedTalkers(host, 10), ut_truth[i]);
    }
    const double n = static_cast<double>(flows.local_hosts.size());
    PrintRow({std::to_string(width), Fmt(ut_dist / n),
              Fmt(builder.MemoryBytes() / 1048576.0, "%.2f")});
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
