// Reproduces Table IV: the qualitative scheme-by-property summary derived
// from the Figure 1/4 measurements. For each property the three schemes are
// ranked on the measured mean value and labelled high / medium / low.
//
// Expected shape (paper Table IV):
//               TT       UT     RWR
//   persistence medium   low    high
//   uniqueness  medium   high   low
//   robustness  high     low    medium

#include <algorithm>
#include <array>

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/perturb.h"
#include "eval/properties.h"

namespace commsig::bench {
namespace {

std::array<std::string, 3> RankLabels(const std::array<double, 3>& values) {
  std::array<size_t, 3> order = {0, 1, 2};
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] > values[b]; });
  std::array<std::string, 3> labels;
  labels[order[0]] = "high";
  labels[order[1]] = "medium";
  labels[order[2]] = "low";
  return labels;
}

void Main() {
  std::printf("Table IV: relative behaviour of the signature schemes\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  SignatureDistance dist(DistanceKind::kScaledHellinger);

  const std::vector<std::string> specs = {"tt", "ut", "rwr(c=0.1,h=3)"};
  std::array<double, 3> persistence{}, uniqueness{}, robustness{};

  CommGraph perturbed =
      Perturb(windows[0],
              {.insert_fraction = 0.4, .delete_fraction = 0.4, .seed = 17});
  for (size_t i = 0; i < specs.size(); ++i) {
    auto scheme = MustCreateScheme(specs[i], opts);
    auto s0 = scheme->ComputeAll(windows[0], flows.local_hosts);
    auto s1 = scheme->ComputeAll(windows[1], flows.local_hosts);
    PropertyEllipse e =
        SummarizeProperties(s0, s1, dist, /*max_pairs=*/20000, /*seed=*/1);
    persistence[i] = e.mean_persistence;
    uniqueness[i] = e.mean_uniqueness;
    auto shaken = scheme->ComputeAll(perturbed, flows.local_hosts);
    robustness[i] = MeanAuc(MatchRoc(s0, shaken, dist));
  }

  PrintHeader("measured means");
  PrintRow({"property", "tt", "ut", "rwr"});
  PrintRow({"persistence", Fmt(persistence[0]), Fmt(persistence[1]),
            Fmt(persistence[2])});
  PrintRow({"uniqueness", Fmt(uniqueness[0]), Fmt(uniqueness[1]),
            Fmt(uniqueness[2])});
  PrintRow({"robustness", Fmt(robustness[0]), Fmt(robustness[1]),
            Fmt(robustness[2])});

  PrintHeader("derived Table IV");
  auto p = RankLabels(persistence);
  auto u = RankLabels(uniqueness);
  auto r = RankLabels(robustness);
  PrintRow({"property", "tt", "ut", "rwr"});
  PrintRow({"persistence", p[0], p[1], p[2]});
  PrintRow({"uniqueness", u[0], u[1], u[2]});
  PrintRow({"robustness", r[0], r[1], r[2]});
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
