// Ablation (DESIGN.md Section 5): how the RWR hop bound h and reset
// probability c trade off the three signature properties. Also verifies
// the paper's two analytic notes numerically:
//   * h = 1, c = 0 coincides with TT;
//   * growing c collapses RWR towards TT;
//   * h beyond ~the graph diameter adds no new information.

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/properties.h"
#include "graph/graph_stats.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Ablation: RWR hop bound and reset probability\n");
  FlowDataset flows = MakeSmallFlowDataset();
  auto windows = flows.Windows();
  std::printf("window-0 diameter estimate: %zu\n",
              EstimateDiameter(windows[0]));
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  SignatureDistance dist(DistanceKind::kScaledHellinger);

  PrintHeader("hop sweep (c = 0.1)");
  PrintRow({"h", "mean_pers", "mean_uniq", "self_auc"});
  for (size_t h : {1u, 2u, 3u, 5u, 7u, 9u}) {
    auto scheme = MustCreateScheme(
        "rwr(c=0.1,h=" + std::to_string(h) + ")", opts);
    auto s0 = scheme->ComputeAll(windows[0], flows.local_hosts);
    auto s1 = scheme->ComputeAll(windows[1], flows.local_hosts);
    PropertyEllipse e = SummarizeProperties(s0, s1, dist, 20000, 1);
    double auc = MeanAuc(SelfMatchRoc(s0, s1, dist));
    PrintRow({std::to_string(h), Fmt(e.mean_persistence),
              Fmt(e.mean_uniqueness), Fmt(auc)});
  }

  PrintHeader("reset sweep (h = 3)");
  PrintRow({"c", "mean_pers", "mean_uniq", "self_auc", "jac_dist_to_tt"});
  auto tt = MustCreateScheme("tt", opts);
  auto tt0 = tt->ComputeAll(windows[0], flows.local_hosts);
  for (double c : {0.05, 0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto scheme =
        MustCreateScheme("rwr(c=" + Fmt(c, "%.2f") + ",h=3)", opts);
    auto s0 = scheme->ComputeAll(windows[0], flows.local_hosts);
    auto s1 = scheme->ComputeAll(windows[1], flows.local_hosts);
    PropertyEllipse e = SummarizeProperties(s0, s1, dist, 20000, 1);
    double auc = MeanAuc(SelfMatchRoc(s0, s1, dist));
    // Similarity of the RWR signature set to TT's: as c grows, the reset
    // keeps the walk near home and RWR converges towards TT.
    double to_tt = 0.0;
    for (size_t i = 0; i < s0.size(); ++i) {
      to_tt += Distance(DistanceKind::kJaccard, s0[i], tt0[i]);
    }
    PrintRow({Fmt(c, "%.2f"), Fmt(e.mean_persistence),
              Fmt(e.mean_uniqueness), Fmt(auc),
              Fmt(to_tt / static_cast<double>(s0.size()))});
  }

  // The paper (Definition 4 discussion): "we did not see much variation in
  // results for different scaling functions" — compare UT's inverse-in-
  // degree weighting against the TF-IDF analogue.
  PrintHeader("UT scaling-function comparison (Dist_SHel)");
  PrintRow({"weighting", "mean_pers", "mean_uniq", "self_auc",
            "jac_dist_between"});
  {
    auto ut = MustCreateScheme("ut", opts);
    auto tfidf = MustCreateScheme("ut-tfidf", opts);
    auto u0 = ut->ComputeAll(windows[0], flows.local_hosts);
    auto u1 = ut->ComputeAll(windows[1], flows.local_hosts);
    auto t0 = tfidf->ComputeAll(windows[0], flows.local_hosts);
    auto t1 = tfidf->ComputeAll(windows[1], flows.local_hosts);
    double between = 0.0;
    for (size_t i = 0; i < u0.size(); ++i) {
      between += Distance(DistanceKind::kJaccard, u0[i], t0[i]);
    }
    between /= static_cast<double>(u0.size());
    PropertyEllipse eu = SummarizeProperties(u0, u1, dist, 20000, 1);
    PropertyEllipse et = SummarizeProperties(t0, t1, dist, 20000, 1);
    PrintRow({"ut", Fmt(eu.mean_persistence), Fmt(eu.mean_uniqueness),
              Fmt(MeanAuc(SelfMatchRoc(u0, u1, dist))), Fmt(between)});
    PrintRow({"ut-tfidf", Fmt(et.mean_persistence), Fmt(et.mean_uniqueness),
              Fmt(MeanAuc(SelfMatchRoc(t0, t1, dist))), "-"});
  }

  PrintHeader("signature length sweep (tt, Dist_SHel)");
  PrintRow({"k", "mean_pers", "mean_uniq", "self_auc"});
  for (size_t k : {3u, 5u, 10u, 20u, 40u}) {
    SchemeOptions ko{.k = k, .restrict_to_opposite_partition = true};
    auto scheme = MustCreateScheme("tt", ko);
    auto s0 = scheme->ComputeAll(windows[0], flows.local_hosts);
    auto s1 = scheme->ComputeAll(windows[1], flows.local_hosts);
    PropertyEllipse e = SummarizeProperties(s0, s1, dist, 20000, 1);
    PrintRow({std::to_string(k), Fmt(e.mean_persistence),
              Fmt(e.mean_uniqueness), Fmt(MeanAuc(SelfMatchRoc(s0, s1, dist)))});
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
