// Extension: the paper's third motivating application — de-anonymization.
// Window t is observed with true labels (the adversary's side
// information); window t+1 is released with all focal labels replaced by
// pseudonyms. The attack matches signatures across the windows under a
// greedy one-to-one assignment and we report re-identification accuracy
// per scheme and distance.
//
// Expected shape: accuracy tracks the persistence x uniqueness profile —
// schemes good at label masquerading (the f -> 1 limit of which is full
// anonymization) do best; random guessing is 1/|pool| = 0.3%.

#include "bench/bench_common.h"
#include "apps/deanonymizer.h"
#include "core/distance.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Extension: signature-based graph de-anonymization\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};

  AnonymizationPlan plan = PlanAnonymization(flows.local_hosts, /*seed=*/7);
  CommGraph released = Anonymize(windows[1], plan);
  std::printf("pool: %zu hosts, random-guess accuracy: %.4f\n",
              flows.local_hosts.size(),
              1.0 / static_cast<double>(flows.local_hosts.size()));

  std::vector<std::string> specs = {"tt", "ut", "rwr(c=0.1,h=3)"};
  for (auto mode : {Deanonymizer::AssignmentMode::kGreedy,
                    Deanonymizer::AssignmentMode::kOptimal}) {
    PrintHeader(std::string("re-identification accuracy (") +
                (mode == Deanonymizer::AssignmentMode::kGreedy
                     ? "greedy one-to-one"
                     : "Hungarian optimum") +
                ")");
    std::vector<std::string> header = {"distance"};
    for (const auto& spec : specs) header.push_back(spec);
    PrintRow(header);
    for (DistanceKind kind : AllDistanceKinds()) {
      std::vector<std::string> row = {"Dist_" +
                                      std::string(DistanceName(kind))};
      for (const auto& spec : specs) {
        auto scheme = MustCreateScheme(spec, opts);
        auto reference = scheme->ComputeAll(windows[0], flows.local_hosts);
        auto anonymous = scheme->ComputeAll(released, flows.local_hosts);
        Deanonymizer attacker(SignatureDistance(kind),
                              {.one_to_one = true, .assignment = mode});
        auto ids = attacker.Identify(flows.local_hosts, reference,
                                     flows.local_hosts, anonymous);
        row.push_back(Fmt(DeanonymizationAccuracy(ids, plan)));
      }
      PrintRow(row);
    }
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
