// Reproduces Figure 2: ROC curves from the network data using Dist_SHel.
// For each scheme, every focal node's window-t signature is ranked against
// every focal node's window-t+1 signature (relevant = itself); the per-query
// curves are vertically averaged and printed as (fpr, tpr) series.
//
// Expected shape: all schemes hug the top-left corner (AUC ~0.9), with the
// multi-hop schemes slightly ahead of the one-hop schemes.

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/properties.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Figure 2: self-match ROC curves, enterprise flows, Dist_SHel\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  SignatureDistance dist(DistanceKind::kScaledHellinger);

  constexpr size_t kGrid = 21;
  std::vector<std::string> header = {"fpr"};
  std::vector<std::vector<RocPoint>> curves;
  std::vector<double> aucs;
  for (const std::string& spec : PaperSchemeSpecs()) {
    auto scheme = MustCreateScheme(spec, opts);
    auto s0 = scheme->ComputeAll(windows[0], flows.local_hosts);
    auto s1 = scheme->ComputeAll(windows[1], flows.local_hosts);
    auto rocs = SelfMatchRoc(s0, s1, dist);
    curves.push_back(AverageRocCurves(rocs, kGrid));
    aucs.push_back(MeanAuc(rocs));
    header.push_back(spec);
  }

  PrintHeader("averaged ROC curves (tpr at each fpr)");
  PrintRow(header);
  for (size_t g = 0; g < kGrid; ++g) {
    std::vector<std::string> row = {Fmt(curves[0][g].fpr, "%.2f")};
    for (const auto& curve : curves) row.push_back(Fmt(curve[g].tpr));
    PrintRow(row);
  }

  PrintHeader("mean AUC");
  std::vector<std::string> auc_row = {"auc"};
  for (double a : aucs) auc_row.push_back(Fmt(a));
  PrintRow(header);
  PrintRow(auc_row);
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
