#ifndef COMMSIG_BENCH_BENCH_COMMON_H_
#define COMMSIG_BENCH_BENCH_COMMON_H_

// Shared workload construction and table printing for the figure-
// reproduction benches. Every bench binary regenerates one table or figure
// of the paper (see DESIGN.md experiment index); the workloads below mirror
// the paper's two data sets at bench-friendly scale.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "data/flow_generator.h"
#include "data/query_log_generator.h"
#include "obs/metrics.h"

namespace commsig::bench {

/// The enterprise-flow workload (stand-in for the paper's AT&T data set):
/// 300 monitored local hosts, heavy-tailed external population, six 5-day
/// windows, k = 10 (half the mean focal out-degree).
inline FlowDataset MakeFlowDataset(uint64_t seed = 42) {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 300;
  cfg.num_external_hosts = 20000;
  cfg.num_windows = 6;
  cfg.seed = seed;
  return FlowTraceGenerator(cfg).Generate();
}

/// A reduced flow workload for the heavier sweeps (fig. 6 runs many
/// detector configurations).
inline FlowDataset MakeSmallFlowDataset(uint64_t seed = 42) {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 150;
  cfg.num_external_hosts = 8000;
  cfg.num_windows = 3;
  cfg.seed = seed;
  return FlowTraceGenerator(cfg).Generate();
}

/// The query-log workload at the paper's scale: 851 users, 979 tables,
/// 5 windows, k = 3.
inline QueryLogDataset MakeQueryLogDataset(uint64_t seed = 7) {
  QueryLogConfig cfg;  // defaults are the paper's scale
  cfg.seed = seed;
  return QueryLogGenerator(cfg).Generate();
}

/// The scheme lineup evaluated throughout the paper's Section IV.
inline std::vector<std::string> PaperSchemeSpecs() {
  return {"tt", "ut", "rwr(c=0.1,h=3)", "rwr(c=0.1,h=5)", "rwr(c=0.1,h=7)"};
}

/// Creates a scheme from a spec, aborting the bench on bad specs (these
/// are programmer-controlled constants).
inline std::unique_ptr<SignatureScheme> MustCreateScheme(
    const std::string& spec, SchemeOptions options) {
  auto scheme = CreateScheme(spec, options);
  if (!scheme.ok()) {
    std::fprintf(stderr, "bad scheme spec %s: %s\n", spec.c_str(),
                 scheme.status().ToString().c_str());
    std::abort();
  }
  return std::move(*scheme);
}

/// Prints a row of fixed-width cells.
inline void PrintRow(const std::vector<std::string>& cells,
                     int width = 16) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double value, const char* format = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Dumps the global metrics registry (bench gauges plus whatever the
/// instrumented library recorded during the run) to BENCH_<name>.json in
/// the working directory — one snapshot per bench binary, the raw material
/// of the perf trajectory.
inline void WriteBenchSnapshot(const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  Status s = obs::MetricsRegistry::Global().WriteJsonFile(path);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  } else {
    std::fprintf(stderr, "perf snapshot written to %s\n", path.c_str());
  }
}

}  // namespace commsig::bench

#endif  // COMMSIG_BENCH_BENCH_COMMON_H_
