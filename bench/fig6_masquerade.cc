// Reproduces Figure 6: accuracy of label-masquerading detection
// (Algorithm 1) as a function of the perturbed fraction f, for top-ell in
// {1, 2, 3}, with the persistence threshold delta set to the mean
// self-persistence divided by c = 5.
//
// Expected shape: accuracy grows with ell; at the low-f range that matters
// in practice, RWR outperforms TT and UT (masquerading needs persistence +
// uniqueness).

#include "bench/bench_common.h"
#include "apps/masquerade_detector.h"
#include "core/distance.h"
#include "eval/masquerade_sim.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf(
      "Figure 6: label-masquerading detection accuracy (c = 5, Dist_SHel)\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  SignatureDistance dist(DistanceKind::kScaledHellinger);

  std::vector<std::string> specs = {"tt", "ut", "rwr(c=0.1,h=3)"};
  const std::vector<double> fractions = {0.05, 0.1, 0.2, 0.3, 0.4};

  for (size_t ell : {1u, 2u, 3u}) {
    PrintHeader("top-ell = " + std::to_string(ell));
    std::vector<std::string> header = {"f"};
    for (const auto& spec : specs) header.push_back(spec);
    PrintRow(header);

    for (double f : fractions) {
      MasqueradePlan plan =
          PlanMasquerade(flows.local_hosts, f, /*seed=*/31);
      CommGraph masked = ApplyMasquerade(windows[1], plan);
      std::vector<std::string> row = {Fmt(f, "%.2f")};
      for (const auto& spec : specs) {
        auto scheme = MustCreateScheme(spec, opts);
        auto s0 = scheme->ComputeAll(windows[0], flows.local_hosts);
        auto s1 = scheme->ComputeAll(masked, flows.local_hosts);
        MasqueradeDetector detector(
            dist, {.top_ell = ell, .delta_divisor = 5.0});
        auto detection = detector.Detect(flows.local_hosts, s0, s1);
        row.push_back(
            Fmt(MasqueradeAccuracy(detection, plan, flows.local_hosts)));
      }
      PrintRow(row);
    }
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
