// Microbenchmarks: signature computation cost per scheme, swept over graph
// size and signature length. Uses google-benchmark; run with --benchmark_*
// flags as usual.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bench/bench_registry.h"
#include "core/rwr.h"
#include "core/rwr_push.h"
#include "core/top_talkers.h"
#include "core/unexpected_talkers.h"

namespace commsig::bench {
namespace {

// Cache one dataset per external-population size.
const FlowDataset& DatasetFor(size_t externals) {
  static auto* cache =
      new std::unordered_map<size_t, FlowDataset>();
  auto it = cache->find(externals);
  if (it == cache->end()) {
    FlowGeneratorConfig cfg;
    cfg.num_local_hosts = 200;
    cfg.num_external_hosts = externals;
    cfg.num_windows = 2;
    cfg.seed = 5;
    it = cache->emplace(externals, FlowTraceGenerator(cfg).Generate()).first;
  }
  return it->second;
}

void BM_TopTalkers(benchmark::State& state) {
  const FlowDataset& ds = DatasetFor(state.range(0));
  auto windows = ds.Windows();
  TopTalkersScheme tt({.k = static_cast<size_t>(state.range(1))});
  size_t host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tt.Compute(windows[0], ds.local_hosts[host % ds.local_hosts.size()]));
    ++host;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopTalkers)
    ->ArgsProduct({{5000, 20000}, {5, 10, 20}})
    ->ArgNames({"externals", "k"});

void BM_UnexpectedTalkers(benchmark::State& state) {
  const FlowDataset& ds = DatasetFor(state.range(0));
  auto windows = ds.Windows();
  UnexpectedTalkersScheme ut({.k = 10}, UtWeighting::kInverseInDegree);
  size_t host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut.Compute(windows[0], ds.local_hosts[host % ds.local_hosts.size()]));
    ++host;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnexpectedTalkers)
    ->Args({5000})
    ->Args({20000})
    ->ArgNames({"externals"});

void BM_RwrTruncated(benchmark::State& state) {
  const FlowDataset& ds = DatasetFor(20000);
  auto windows = ds.Windows();
  RwrScheme rwr({.k = 10},
                {.reset = 0.1,
                 .max_hops = static_cast<size_t>(state.range(0))});
  size_t host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rwr.Compute(
        windows[0], ds.local_hosts[host % ds.local_hosts.size()]));
    ++host;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwrTruncated)->Arg(1)->Arg(3)->Arg(5)->Arg(7)->ArgNames({"h"});

void BM_RwrPush(benchmark::State& state) {
  // Local forward-push vs whole-graph power iteration (BM_RwrUnbounded):
  // work scales with 1/(c·eps), not with |V|+|E|.
  const FlowDataset& ds = DatasetFor(20000);
  auto windows = ds.Windows();
  double eps = 1.0;
  for (int i = 0; i < state.range(0); ++i) eps /= 10.0;
  RwrPushScheme push({.k = 10}, {.reset = 0.1, .epsilon = eps});
  size_t host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(push.Compute(
        windows[0], ds.local_hosts[host % ds.local_hosts.size()]));
    ++host;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("eps=1e-" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RwrPush)->Arg(3)->Arg(5)->Arg(7)->ArgNames({"neg_log_eps"});

void BM_RwrUnbounded(benchmark::State& state) {
  const FlowDataset& ds = DatasetFor(5000);
  auto windows = ds.Windows();
  RwrScheme rwr({.k = 10}, {.reset = 0.1, .max_hops = 0});
  size_t host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rwr.Compute(
        windows[0], ds.local_hosts[host % ds.local_hosts.size()]));
    ++host;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwrUnbounded);

}  // namespace
}  // namespace commsig::bench

int main(int argc, char** argv) {
  // Ops/sec lands in the metrics registry and BENCH_schemes.json (perf
  // trajectory) instead of only the console table.
  return commsig::bench::BenchMain(argc, argv, "schemes");
}
