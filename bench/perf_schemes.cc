// Microbenchmarks: signature computation cost per scheme, swept over graph
// size and signature length. Uses google-benchmark; run with --benchmark_*
// flags as usual.

#include <mutex>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bench/bench_registry.h"
#include "common/simd.h"
#include "core/rwr.h"
#include "core/rwr_batch.h"
#include "core/rwr_push.h"
#include "core/top_talkers.h"
#include "core/unexpected_talkers.h"
#include "graph/graph_builder.h"

namespace commsig::bench {
namespace {

// Cache one dataset per external-population size. Mutex-guarded: benchmark
// registration is single-threaded, but --benchmark_enable_random_interleaving
// (and multi-threaded benchmarks generally) may run setup code concurrently,
// and unordered_map insertion is not. Value references stay stable across
// rehashes, so returning them from under the lock is safe.
const FlowDataset& DatasetFor(size_t externals) {
  static std::mutex mutex;
  static auto* cache = new std::unordered_map<size_t, FlowDataset>();
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache->find(externals);
  if (it == cache->end()) {
    FlowGeneratorConfig cfg;
    cfg.num_local_hosts = 200;
    cfg.num_external_hosts = externals;
    cfg.num_windows = 2;
    cfg.seed = 5;
    it = cache->emplace(externals, FlowTraceGenerator(cfg).Generate()).first;
  }
  return it->second;
}

// The shared shape of every single-source scheme bench: rotate Compute over
// the monitored local hosts, one signature per benchmark iteration.
void RunSingleSourceLoop(benchmark::State& state,
                         const SignatureScheme& scheme,
                         const FlowDataset& ds) {
  auto windows = ds.Windows();
  size_t host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheme.Compute(windows[0],
                       ds.local_hosts[host % ds.local_hosts.size()]));
    ++host;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TopTalkers(benchmark::State& state) {
  TopTalkersScheme tt({.k = static_cast<size_t>(state.range(1))});
  RunSingleSourceLoop(state, tt, DatasetFor(state.range(0)));
}
BENCHMARK(BM_TopTalkers)
    ->ArgsProduct({{5000, 20000}, {5, 10, 20}})
    ->ArgNames({"externals", "k"});

void BM_UnexpectedTalkers(benchmark::State& state) {
  UnexpectedTalkersScheme ut({.k = 10}, UtWeighting::kInverseInDegree);
  RunSingleSourceLoop(state, ut, DatasetFor(state.range(0)));
}
BENCHMARK(BM_UnexpectedTalkers)
    ->Args({5000})
    ->Args({20000})
    ->ArgNames({"externals"});

void BM_RwrTruncated(benchmark::State& state) {
  RwrScheme rwr({.k = 10},
                {.reset = 0.1,
                 .max_hops = static_cast<size_t>(state.range(0))});
  RunSingleSourceLoop(state, rwr, DatasetFor(20000));
}
BENCHMARK(BM_RwrTruncated)->Arg(1)->Arg(3)->Arg(5)->Arg(7)->ArgNames({"h"});

void BM_RwrPush(benchmark::State& state) {
  // Local forward-push vs whole-graph power iteration (BM_RwrUnbounded):
  // work scales with 1/(c·eps), not with |V|+|E|.
  double eps = 1.0;
  for (int i = 0; i < state.range(0); ++i) eps /= 10.0;
  RwrPushScheme push({.k = 10}, {.reset = 0.1, .epsilon = eps});
  RunSingleSourceLoop(state, push, DatasetFor(20000));
  state.SetLabel("eps=1e-" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RwrPush)->Arg(3)->Arg(5)->Arg(7)->ArgNames({"neg_log_eps"});

void BM_RwrUnbounded(benchmark::State& state) {
  RwrScheme rwr({.k = 10}, {.reset = 0.1, .max_hops = 0});
  RunSingleSourceLoop(state, rwr, DatasetFor(5000));
}
BENCHMARK(BM_RwrUnbounded);

// Whole-population sweep (signatures for every local host) through the
// batched engine: one graph scan amortized over each 16-source window,
// frontier-sparse truncated hops. items/sec counts host signatures.
void BM_RwrBatch(benchmark::State& state) {
  const FlowDataset& ds = DatasetFor(state.range(0));
  auto windows = ds.Windows();
  RwrScheme rwr({.k = 10},
                {.reset = 0.1,
                 .max_hops = static_cast<size_t>(state.range(1))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rwr.ComputeAll(windows[0], ds.local_hosts));
  }
  state.SetItemsProcessed(state.iterations() * ds.local_hosts.size());
}
BENCHMARK(BM_RwrBatch)
    ->ArgsProduct({{5000, 20000}, {1, 3, 5, 7}})
    ->Args({5000, 0})  // unbounded walk, kept off the 20k graph for time
    ->ArgNames({"externals", "h"});

// The headline comparison, measured in one run: all-hosts RWR^3 signatures
// on the 20k-external window, per-source baseline (batched:0, the
// pre-batching path looping Compute) vs the batched engine (batched:1).
// perf_schemes' main() derives the speedup gauge from these two rows.
void BM_RwrAllNodes(benchmark::State& state) {
  const FlowDataset& ds = DatasetFor(20000);
  auto windows = ds.Windows();
  const bool batched = state.range(0) == 1;
  RwrScheme rwr({.k = 10}, {.reset = 0.1, .max_hops = 3});
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(rwr.ComputeAll(windows[0], ds.local_hosts));
    } else {
      std::vector<Signature> sigs;
      sigs.reserve(ds.local_hosts.size());
      for (NodeId v : ds.local_hosts) {
        sigs.push_back(rwr.Compute(windows[0], v));
      }
      benchmark::DoNotOptimize(sigs);
    }
  }
  state.SetItemsProcessed(state.iterations() * ds.local_hosts.size());
  state.SetLabel(batched ? "batched" : "per-source");
}
BENCHMARK(BM_RwrAllNodes)->Arg(0)->Arg(1)->ArgNames({"batched"});

// A window dense enough that the block power iteration's B-wide row
// kernels dominate the profile: every node carries ~64 out-edges and the
// occupancy block stays L1-resident, so each dense scan is edge-scatter
// (AxpyRow) work, not frontier bookkeeping or cache misses. The
// paper-shaped bipartite windows are too sparse to expose the kernels —
// a truncated RWR^h there measures the frontier machinery instead.
const CommGraph& SimdKernelGraph() {
  static auto* graph = new CommGraph([] {
    constexpr size_t kNodes = 128;
    constexpr size_t kDegree = 64;
    GraphBuilder builder(kNodes);
    builder.Reserve(kNodes * kDegree);
    uint64_t s = 0x9e3779b97f4a7c15ull;  // xorshift64, fixed seed
    auto next = [&s] {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      return s;
    };
    for (NodeId v = 0; v < kNodes; ++v) {
      for (size_t i = 0; i < kDegree; ++i) {
        const NodeId dst = static_cast<NodeId>(next() % kNodes);
        const double w = 1.0 + static_cast<double>(next() % 1000) / 100.0;
        builder.AddEdge(v, dst, w);
      }
    }
    return std::move(builder).Build();
  }());
  return *graph;
}

// The batched engine with its vectorized loop kernels toggled off (simd:0,
// honestly scalar — the reference loops carry a no-tree-vectorize
// attribute) vs on (simd:1), solving one wide (4×16-source) unbounded
// batch on the kernel-dominated window above — the wide block keeps the
// per-edge vector work large relative to the toggle-independent edge
// bookkeeping. Results are bit-identical either way, so the ratio
// isolates what the SIMD pass itself buys on the block power iteration;
// main() derives the rwr_batch/simd_speedup gauge from these rows. On
// -DCOMMSIG_SIMD=off builds both rows run scalar and the gauge sits at ~1
// (and is not guarded).
void BM_RwrBatchSimd(benchmark::State& state) {
  const CommGraph& g = SimdKernelGraph();
  const RwrOptions opts{.reset = 0.1,
                        .max_hops = 0,
                        .tolerance = 1e-8,
                        .traversal = TraversalMode::kDirected};
  static auto* cache = new TransitionCache(g, opts.traversal);
  const RwrBatchEngine engine(opts, *cache);
  std::vector<NodeId> sources(4 * RwrBatchEngine::kDefaultBatchWidth);
  for (size_t b = 0; b < sources.size(); ++b) {
    sources[b] = static_cast<NodeId>(b * 2);
  }
  simd::SetEnabled(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.SolveBatch(sources));
  }
  simd::SetEnabled(true);
  state.SetItemsProcessed(state.iterations() * sources.size());
  state.SetLabel(state.range(0) == 1 ? "simd" : "scalar");
}
BENCHMARK(BM_RwrBatchSimd)->Arg(0)->Arg(1)->ArgNames({"simd"});

}  // namespace
}  // namespace commsig::bench

int main(int argc, char** argv) {
  // Ops/sec lands in the metrics registry and the BENCH_*.json snapshots
  // (perf trajectory) instead of only the console table.
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  commsig::bench::RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Derived gauge: the all-hosts sweep speedup measured within this run
  // (per-source baseline time / batched time), the number the batched
  // engine is accountable for across the bench trajectory.
  auto& reg = commsig::obs::MetricsRegistry::Global();
  const double serial =
      reg.GetGauge("bench/BM_RwrAllNodes/batched:0/real_time_ns").Value();
  const double batched =
      reg.GetGauge("bench/BM_RwrAllNodes/batched:1/real_time_ns").Value();
  if (serial > 0.0 && batched > 0.0) {
    reg.GetGauge("rwr_batch/all_nodes_speedup").Set(serial / batched);
  }

  // Same-engine scalar vs SIMD ratio (BM_RwrBatchSimd rows). Guarded only
  // on builds with an active backend: a scalar build legitimately measures
  // ~1 here, so the gauge is tagged with the backend for the guard baseline
  // to key on.
  const double scalar_t =
      reg.GetGauge("bench/BM_RwrBatchSimd/simd:0/real_time_ns").Value();
  const double simd_t =
      reg.GetGauge("bench/BM_RwrBatchSimd/simd:1/real_time_ns").Value();
  if (scalar_t > 0.0 && simd_t > 0.0 && commsig::simd::kHasIsa) {
    reg.GetGauge("rwr_batch/simd_speedup").Set(scalar_t / simd_t);
  }
  commsig::bench::WriteBenchSnapshot("schemes");
  commsig::bench::WriteBenchSnapshot("rwr_batch");
  return 0;
}
