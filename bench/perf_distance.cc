// Microbenchmarks: distance-function evaluation cost per kind and
// signature length — the inner loop of every application (uniqueness
// scans are O(n^2) distance evaluations).

#include <benchmark/benchmark.h>

#include "bench/bench_registry.h"
#include "common/random.h"
#include "core/distance.h"

namespace commsig {
namespace {

std::pair<Signature, Signature> MakePair(size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<Signature::Entry> ea, eb;
  for (size_t i = 0; i < k; ++i) {
    NodeId shared = static_cast<NodeId>(rng.UniformInt(1000));
    ea.push_back({shared, rng.UniformDouble() + 0.01});
    // ~half the nodes shared between the two signatures.
    if (rng.Bernoulli(0.5)) {
      eb.push_back({shared, rng.UniformDouble() + 0.01});
    } else {
      eb.push_back({static_cast<NodeId>(1000 + rng.UniformInt(1000)),
                    rng.UniformDouble() + 0.01});
    }
  }
  return {Signature::FromTopK(std::move(ea), k),
          Signature::FromTopK(std::move(eb), k)};
}

void BM_Distance(benchmark::State& state) {
  DistanceKind kind = static_cast<DistanceKind>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  auto [a, b] = MakePair(k, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Distance(kind, a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(DistanceName(kind)));
}
BENCHMARK(BM_Distance)
    ->ArgsProduct({{0, 1, 2, 3}, {3, 10, 50, 200}})
    ->ArgNames({"kind", "k"});

void BM_PairwiseUniquenessScan(benchmark::State& state) {
  // n signatures, full O(n^2) scan — the multiusage hot path.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Signature> sigs;
  for (size_t i = 0; i < n; ++i) {
    sigs.push_back(MakePair(10, i).first);
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        sum += Distance(DistanceKind::kScaledHellinger, sigs[i], sigs[j]);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_PairwiseUniquenessScan)->Arg(100)->Arg(300)->ArgNames({"n"});

}  // namespace
}  // namespace commsig

int main(int argc, char** argv) {
  return commsig::bench::BenchMain(argc, argv, "distance");
}
