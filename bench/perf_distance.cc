// Microbenchmarks: distance-function evaluation cost per kind and
// signature length — the inner loop of every application (uniqueness
// scans are O(n^2) distance evaluations).
//
// BM_PairwiseDistances sweeps every kernel over size-skew ratios 1:1,
// 1:16, 1:256 in both implementations (impl:0 = the pre-SIMD single-merge
// reference, impl:1 = the packed tiered kernels); main() derives the
// in-run `distance/<kind>_speedup` gauges that
// bench/baselines/BENCH_distance.baseline.json guards in CI.

#include <benchmark/benchmark.h>

#include "bench/bench_registry.h"
#include "common/random.h"
#include "core/distance.h"

namespace commsig {
namespace {

std::pair<Signature, Signature> MakePair(size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<Signature::Entry> ea, eb;
  for (size_t i = 0; i < k; ++i) {
    NodeId shared = static_cast<NodeId>(rng.UniformInt(1000));
    ea.push_back({shared, rng.UniformDouble() + 0.01});
    // ~half the nodes shared between the two signatures.
    if (rng.Bernoulli(0.5)) {
      eb.push_back({shared, rng.UniformDouble() + 0.01});
    } else {
      eb.push_back({static_cast<NodeId>(1000 + rng.UniformInt(1000)),
                    rng.UniformDouble() + 0.01});
    }
  }
  return {Signature::FromTopK(std::move(ea), k),
          Signature::FromTopK(std::move(eb), k)};
}

void BM_Distance(benchmark::State& state) {
  DistanceKind kind = static_cast<DistanceKind>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  auto [a, b] = MakePair(k, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Distance(kind, a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(DistanceName(kind)));
}
BENCHMARK(BM_Distance)
    ->ArgsProduct({{0, 1, 2, 3}, {3, 10, 50, 200}})
    ->ArgNames({"kind", "k"});

// --- skew-sweep pairwise bench ---------------------------------------------

// Signature sizes per skew level. Level 0 exercises the similar-size merge
// tiers, level 1 (1:16) sits at the gallop threshold, level 2 (1:256) is
// deep gallop territory.
struct SkewShape {
  size_t small;
  size_t large;
  const char* label;
};
constexpr SkewShape kSkews[] = {
    {192, 192, "1:1"}, {64, 1024, "1:16"}, {16, 4096, "1:256"}};

// One signature of `k` entries drawn from an id universe sized so that
// ~half of the smaller signature intersects the larger one.
Signature MakeSized(size_t k, uint32_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<Signature::Entry> entries;
  entries.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    entries.push_back({static_cast<NodeId>(rng.UniformInt(universe)),
                       rng.UniformDouble() + 0.01});
  }
  return Signature::FromTopK(std::move(entries), k);
}

// A small corpus of pairs per shape, so one benchmark iteration touches
// varied id layouts instead of replaying one branch-predictable pair.
std::vector<std::pair<Signature, Signature>> MakeCorpus(
    const SkewShape& shape) {
  // Universe ~4x the large side keeps id ranges dense enough that the
  // bitset tier is reachable at 1:1 while the skewed shapes stay in their
  // intended tiers.
  const uint32_t universe = static_cast<uint32_t>(4 * shape.large);
  std::vector<std::pair<Signature, Signature>> corpus;
  for (uint64_t s = 0; s < 16; ++s) {
    corpus.emplace_back(MakeSized(shape.small, universe, 2 * s + 1),
                        MakeSized(shape.large, universe, 2 * s + 2));
  }
  return corpus;
}

// args: kind (extended lineup, 0..5), skew level (0..2), impl (0 =
// single-merge reference, 1 = packed tiered kernels). items/sec counts
// pairs, so real_time_ns is ns/pair.
void BM_PairwiseDistances(benchmark::State& state) {
  const DistanceKind kind = static_cast<DistanceKind>(state.range(0));
  const SkewShape& shape = kSkews[state.range(1)];
  const bool packed = state.range(2) == 1;
  const auto corpus = MakeCorpus(shape);
  const SignatureDistance dist(kind);
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& [a, b] : corpus) {
      sum += packed ? dist(a, b) : DistanceReference(kind, a, b);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * corpus.size());
  state.SetLabel(std::string(DistanceName(kind)) + " " + shape.label +
                 (packed ? " packed" : " reference"));
}
BENCHMARK(BM_PairwiseDistances)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1, 2}, {0, 1}})
    ->ArgNames({"kind", "skew", "impl"});

void BM_PairwiseUniquenessScan(benchmark::State& state) {
  // n signatures, full O(n^2) scan — the multiusage hot path.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Signature> sigs;
  for (size_t i = 0; i < n; ++i) {
    sigs.push_back(MakePair(10, i).first);
  }
  const SignatureDistance dist(DistanceKind::kScaledHellinger);
  for (auto _ : state) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        sum += dist(sigs[i], sigs[j]);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_PairwiseUniquenessScan)->Arg(100)->Arg(300)->ArgNames({"n"});

}  // namespace
}  // namespace commsig

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  commsig::bench::RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Derived per-kernel speedup gauges, measured within this run: reference
  // single-merge time over packed tiered-kernel time, averaged across the
  // three skew shapes so no single tier can carry the number. These are
  // what tools/bench_guard.py holds against the checked-in baseline.
  auto& reg = commsig::obs::MetricsRegistry::Global();
  for (int kind = 0; kind < 6; ++kind) {
    double ratio_sum = 0.0;
    int ratios = 0;
    for (int skew = 0; skew < 3; ++skew) {
      const std::string base = "bench/BM_PairwiseDistances/kind:" +
                               std::to_string(kind) +
                               "/skew:" + std::to_string(skew);
      const double ref =
          reg.GetGauge(base + "/impl:0/real_time_ns").Value();
      const double packed =
          reg.GetGauge(base + "/impl:1/real_time_ns").Value();
      if (ref > 0.0 && packed > 0.0) {
        ratio_sum += ref / packed;
        ++ratios;
      }
    }
    if (ratios > 0) {
      const auto name =
          commsig::DistanceName(static_cast<commsig::DistanceKind>(kind));
      reg.GetGauge("distance/" + std::string(name) + "_speedup")
          .Set(ratio_sum / ratios);
    }
  }
  commsig::bench::WriteBenchSnapshot("distance");
  return 0;
}
