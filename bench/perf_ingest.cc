// Sustained ingestion throughput: the staged parallel pipeline and the
// allocation-free serial readers vs a faithful copy of the pre-pipeline
// read path, on synthetic trace-CSV and NetFlow v5 corpora. Emits
// events/sec per reader variant and per pipeline stage plus the headline
// gauges `ingest/<fmt>_serial_opt_speedup` and
// `ingest/<fmt>_pipeline4_speedup` into BENCH_ingest.json — the numbers
// tools/bench_guard.py holds the ingestion layer accountable for (speedup
// floors via the default check, absolute events/sec floors via
// --floor-pair).
//
// The reference readers below (`ref` namespace) reproduce the pre-pipeline
// serial path byte for byte: getline + per-line std::string field splits,
// strtod/strtoull through a heap-copied buffer, and an
// unordered_map<string, NodeId> interner that copies every label on every
// lookup. They are kept here — not imported — precisely so the baseline
// cannot silently inherit later optimizations. An equivalence gate compares
// events, id assignment, and label order against both the optimized serial
// readers and the pipeline before anything is timed: a speedup over a
// wrong baseline is worthless.
//
// All variants re-read the input file each repetition with a fresh
// interner (interning is part of the measured cost); one untimed warmup
// pass primes the page cache so the numbers measure parsing, not disk.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "common/interner.h"
#include "data/netflow.h"
#include "data/trace_io.h"
#include "ingest/chunker.h"
#include "ingest/pipeline.h"
#include "ingest/record_batch.h"
#include "obs/metrics.h"

namespace commsig::bench {
namespace {

constexpr size_t kTraceRows = 1200 * 1000;
constexpr size_t kFlowRecords = 900 * 1000;
constexpr int kReps = 3;

// ---------------------------------------------------------------------------
// Reference (pre-pipeline) readers. Faithful copies; do not "fix" them.
// ---------------------------------------------------------------------------

namespace ref {

/// The old unordered_map-backed interner: one heap string per label copy
/// and a node-based hash table probe per record field.
class Interner {
 public:
  NodeId Intern(std::string_view label) {
    auto it = index_.find(std::string(label));
    if (it != index_.end()) return it->second;
    NodeId id = static_cast<NodeId>(labels_.size());
    labels_.emplace_back(label);
    index_.emplace(labels_.back(), id);
    return id;
  }
  const std::string& LabelOf(NodeId id) const { return labels_[id]; }
  size_t size() const { return labels_.size(); }

 private:
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::string> labels_;
};

std::vector<std::string> SplitCsvLine(std::string_view line, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad double: " + buf);
  }
  return value;
}

Result<uint64_t> ParseUint(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad integer: " + buf);
  }
  return static_cast<uint64_t>(value);
}

/// Pre-pipeline ReadTraceCsv: getline + SplitCsvLine string copies,
/// Result-returning field parses through a heap-copied buffer, validation
/// state per row, per-record Intern of heap-copied labels. Control flow
/// and per-row object lifetimes mirror the original; only the quarantine
/// call is replaced by a hard failure (the bench corpus is clean, so a
/// reject means the equivalence gate must abort anyway).
bool ReadTraceCsv(const std::string& path, Interner& interner,
                  std::vector<TraceEvent>& events) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string line;
  std::vector<std::string> fields;
  const bool require_monotonic_time = false;  // IngestOptions{} default
  uint64_t last_time = 0;
  bool have_last_time = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    fields = SplitCsvLine(line, ',');
    std::string detail;
    uint64_t time = 0;
    double weight = 0.0;
    bool bad = true;
    if (fields.size() != 4) {
      detail = "trace row needs 4 fields, got " +
               std::to_string(fields.size());
    } else if (fields[0].empty() || fields[1].empty()) {
      detail = "empty node label";
    } else if (Result<uint64_t> t = ParseUint(fields[2]); !t.ok()) {
      detail = std::string(t.status().message());
    } else if (Result<double> w = ParseDouble(fields[3]); !w.ok()) {
      detail = std::string(w.status().message());
    } else if (!std::isfinite(*w)) {
      detail = "weight " + fields[3];
    } else if (*w <= 0.0) {
      detail = "non-positive weight " + fields[3];
    } else if (require_monotonic_time && have_last_time && *t < last_time) {
      detail = "time " + fields[2] + " precedes " + std::to_string(last_time);
    } else {
      bad = false;
      time = *t;
      weight = *w;
    }
    if (bad) return false;
    last_time = time;
    have_last_time = true;
    events.push_back({interner.Intern(fields[0]), interner.Intern(fields[1]),
                      time, weight});
  }
  return true;
}

uint16_t ReadU16(const unsigned char* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t ReadU32(const unsigned char* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

/// Pre-pipeline NetFlow path: whole-file buffer, packet walk, then a
/// second pass materializing one heap string per address per record.
bool ReadNetflow(const std::string& path, Interner& interner,
                 std::vector<TraceEvent>& events) {
  constexpr size_t kHeaderBytes = 24;
  constexpr size_t kRecordBytes = 48;
  constexpr size_t kMaxRecordsPerPacket = 30;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  const size_t size = data.size();

  struct Flow {
    uint32_t src_addr, dst_addr, octets, unix_secs;
  };
  std::vector<Flow> flows;
  size_t offset = 0;
  while (offset + kHeaderBytes <= size) {
    if (ReadU16(bytes + offset) != 5) return false;
    const uint16_t count = ReadU16(bytes + offset + 2);
    if (count == 0 || count > kMaxRecordsPerPacket) return false;
    const uint32_t unix_secs = ReadU32(bytes + offset + 8);
    const size_t body = offset + kHeaderBytes;
    if (body + count * kRecordBytes > size) return false;
    for (size_t i = 0; i < count; ++i) {
      const unsigned char* rec = bytes + body + i * kRecordBytes;
      flows.push_back(
          {ReadU32(rec), ReadU32(rec + 4), ReadU32(rec + 20), unix_secs});
    }
    offset = body + count * kRecordBytes;
  }
  if (offset != size) return false;

  events.reserve(flows.size());
  for (const Flow& f : flows) {
    const double weight = static_cast<double>(f.octets);
    if (weight <= 0.0) continue;
    events.push_back({interner.Intern(Ipv4ToString(f.src_addr)),
                      interner.Intern(Ipv4ToString(f.dst_addr)), f.unix_secs,
                      weight});
  }
  return true;
}

}  // namespace ref

// ---------------------------------------------------------------------------
// Corpus generation.
// ---------------------------------------------------------------------------

std::string MakeTraceCorpus(const std::filesystem::path& path) {
  std::mt19937_64 rng(0x19e57);
  std::string out;
  out.reserve(kTraceRows * 32);
  // Log-uniform label draws: a handful of chatty hosts/services dominate
  // with a long quiet tail, matching the heavy-tailed degree distributions
  // of real communication graphs (uniform draws would make every chunk
  // touch the whole node universe, which no production trace does). Labels
  // are FQDN-length like real host identities — long enough that they do
  // not fit std::string's small-string buffer, so the historical reader's
  // per-lookup std::string construction pays the heap traffic it always
  // paid on production traces.
  for (size_t i = 0; i < kTraceRows; ++i) {
    const uint64_t host = rng() % (1 + rng() % 20000);
    const uint64_t svc = rng() % (1 + rng() % 2500);
    out += "host-";
    out += std::to_string(host);
    out += ".rack";
    out += std::to_string(host % 40);
    out += ".dc2.example.net,svc-";
    out += std::to_string(svc);
    out += ".prod.internal";
    out += ',';
    out += std::to_string(1000 + i / 7);
    out += ',';
    out += std::to_string(1 + rng() % 900);
    out += '.';
    out += std::to_string(rng() % 100);
    out += '\n';
  }
  std::ofstream f(path, std::ios::binary);
  f << "# commsig-trace src,dst,time,weight\n" << out;
  f.close();
  return path.string();
}

std::string MakeNetflowCorpus(const std::filesystem::path& path) {
  std::mt19937_64 rng(7);
  std::vector<NetflowV5Record> records(kFlowRecords);
  for (size_t i = 0; i < kFlowRecords; ++i) {
    NetflowV5Record& r = records[i];
    // Same heavy-tailed shape as the trace corpus: busy exporters
    // dominate, a long tail of hosts appears rarely.
    r.src_addr = 0x0a000000u + static_cast<uint32_t>(rng() % (1 + rng() % 30000));
    r.dst_addr = 0xc0a80000u + static_cast<uint32_t>(rng() % (1 + rng() % 4000));
    r.packets = static_cast<uint32_t>(1 + rng() % 100);
    r.octets = static_cast<uint32_t>(64 + rng() % 100000);
    r.src_port = static_cast<uint16_t>(rng());
    r.dst_port = 443;
    r.protocol = 6;
    r.unix_secs = static_cast<uint32_t>(100000 + i / 30);
  }
  Status s = WriteNetflowV5File(records, path.string());
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", std::string(s.message()).c_str());
    std::exit(1);
  }
  return path.string();
}

// ---------------------------------------------------------------------------
// Timing harness.
// ---------------------------------------------------------------------------

struct RunResult {
  std::vector<TraceEvent> events;
  std::vector<std::string> labels;
  double best_sec = 0.0;
};

/// Runs one timed pass of `body(events_out, labels_out)`, folding the wall
/// time into `result.best_sec` (best-of) and keeping the run's output.
template <typename Body>
void TimeOnePass(Body&& body, bool timed, RunResult& result) {
  std::vector<TraceEvent> events;
  std::vector<std::string> labels;
  auto t0 = std::chrono::steady_clock::now();
  if (!body(events, labels)) {
    std::fprintf(stderr, "FATAL: reader variant failed\n");
    std::exit(1);
  }
  auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  if (timed && (result.best_sec == 0.0 || sec < result.best_sec)) {
    result.best_sec = sec;
  }
  result.events = std::move(events);
  result.labels = std::move(labels);
}

std::vector<std::string> CopyLabels(const Interner& interner) {
  std::vector<std::string> labels;
  labels.reserve(interner.size());
  for (NodeId id = 0; id < interner.size(); ++id) {
    labels.push_back(interner.LabelOf(id));
  }
  return labels;
}

std::vector<std::string> CopyLabels(const ref::Interner& interner) {
  std::vector<std::string> labels;
  labels.reserve(interner.size());
  for (NodeId id = 0; id < static_cast<NodeId>(interner.size()); ++id) {
    labels.push_back(interner.LabelOf(id));
  }
  return labels;
}

bool SameEvents(const std::vector<TraceEvent>& a,
                const std::vector<TraceEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].src != b[i].src || a[i].dst != b[i].dst ||
        a[i].time != b[i].time || a[i].weight != b[i].weight) {
      return false;
    }
  }
  return true;
}

void RequireEquivalent(const RunResult& baseline, const RunResult& candidate,
                       const char* what) {
  if (!SameEvents(baseline.events, candidate.events) ||
      baseline.labels != candidate.labels) {
    std::fprintf(stderr,
                 "FATAL: %s output differs from the reference reader "
                 "(%zu vs %zu events, %zu vs %zu labels)\n",
                 what, candidate.events.size(), baseline.events.size(),
                 candidate.labels.size(), baseline.labels.size());
    std::exit(1);
  }
}

/// Framing-stage-only pass: how fast the serial framer can cut the file
/// into record-aligned chunks, with parse and merge costs excluded.
double TimeFramingStage(const std::string& path, ingest::ChunkFormat format,
                        uint64_t* chunks_out) {
  double best = 0.0;
  for (int rep = -1; rep < kReps; ++rep) {
    ingest::Chunker chunker(path, format, 256 * 1024,
                            /*monotonic_time=*/false);
    ingest::RawChunk chunk;
    uint64_t chunks = 0;
    auto t0 = std::chrono::steady_clock::now();
    while (true) {
      Result<bool> more = chunker.Next(chunk);
      if (!more.ok() || !*more) break;
      ++chunks;
    }
    auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    if (rep >= 0 && (best == 0.0 || sec < best)) best = sec;
    *chunks_out = chunks;
  }
  return best;
}

struct FormatReport {
  std::string name;
  size_t events = 0;
  double ref_evps = 0.0;
  double serial_evps = 0.0;
  std::vector<std::pair<int, double>> pipeline_evps;  // (workers, evps)
  double frame_evps = 0.0;
  uint64_t frame_chunks = 0;
  ingest::PipelineStats stats4;
};

FormatReport BenchFormat(const std::string& name, const std::string& path,
                         bool netflow) {
  FormatReport report;
  report.name = name;

  auto reference_body = [&](std::vector<TraceEvent>& events,
                            std::vector<std::string>& labels) {
    ref::Interner interner;
    const bool ok = netflow ? ref::ReadNetflow(path, interner, events)
                            : ref::ReadTraceCsv(path, interner, events);
    if (!ok) return false;
    labels = CopyLabels(interner);
    return true;
  };
  auto serial_body = [&](std::vector<TraceEvent>& events,
                         std::vector<std::string>& labels) {
    Interner interner;
    if (netflow) {
      Result<std::vector<NetflowV5Record>> records =
          ReadNetflowV5File(path, IngestOptions{});
      if (!records.ok()) return false;
      NetflowReadOptions opts;
      opts.weighting = NetflowWeighting::kOctets;
      events = NetflowToEvents(*records, interner, opts);
    } else {
      Result<std::vector<TraceEvent>> read =
          ReadTraceCsv(path, interner, IngestOptions{});
      if (!read.ok()) return false;
      events = std::move(*read);
    }
    labels = CopyLabels(interner);
    return true;
  };
  constexpr int kWorkerSweep[] = {1, 2, 4, 8};
  ingest::PipelineStats stats[4];
  auto pipeline_body = [&](int sweep_idx, std::vector<TraceEvent>& events,
                           std::vector<std::string>& labels) {
    Interner interner;
    ingest::PipelineOptions options;
    options.parse_workers = kWorkerSweep[sweep_idx];
    // Deeper queues than the default: the bench replays from page cache, so
    // the framer runs far ahead of the parse workers and a shallow queue
    // turns that into blocking churn rather than useful buffering.
    options.queue_capacity = 32;
    if (netflow) options.netflow.weighting = NetflowWeighting::kOctets;
    Result<std::vector<TraceEvent>> read = ingest::ReadTraceEventsPipelined(
        path,
        netflow ? ingest::PipelineFormat::kNetflowV5
                : ingest::PipelineFormat::kTraceCsv,
        interner, options, &stats[sweep_idx]);
    if (!read.ok()) return false;
    events = std::move(*read);
    labels = CopyLabels(interner);
    return true;
  };

  // Interleaved rounds — every variant runs once per round, so a load
  // spike on the host degrades all of them rather than whichever variant
  // happened to be running; best-of-round ratios stay meaningful. Round 0
  // is an untimed warmup (page cache, allocator arenas).
  RunResult reference;
  RunResult serial;
  RunResult pipeline[4];
  for (int round = 0; round <= kReps; ++round) {
    const bool timed = round > 0;
    TimeOnePass(reference_body, timed, reference);
    TimeOnePass(serial_body, timed, serial);
    for (int i = 0; i < 4; ++i) {
      TimeOnePass([&](std::vector<TraceEvent>& events,
                      std::vector<std::string>& labels) {
        return pipeline_body(i, events, labels);
      }, timed, pipeline[i]);
    }
  }
  report.events = reference.events.size();
  RequireEquivalent(reference, serial, "optimized serial reader");

  const double n = static_cast<double>(report.events);
  report.ref_evps = n / reference.best_sec;
  report.serial_evps = n / serial.best_sec;

  for (int i = 0; i < 4; ++i) {
    std::string what;
    what += "pipeline@";
    what += std::to_string(kWorkerSweep[i]);
    RequireEquivalent(reference, pipeline[i], what.c_str());
    report.pipeline_evps.emplace_back(kWorkerSweep[i],
                                      n / pipeline[i].best_sec);
  }
  report.stats4 = stats[2];

  report.frame_evps =
      n / TimeFramingStage(path,
                           netflow ? ingest::ChunkFormat::kNetflowV5
                                   : ingest::ChunkFormat::kCsvLines,
                           &report.frame_chunks);
  return report;
}

void Report(const FormatReport& r) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::printf("\n== %s (%zu events) ==\n", r.name.c_str(), r.events);
  PrintRow({"reader", "events/sec", "vs reference"});

  auto row = [&](const std::string& label, double evps) {
    PrintRow({label, Fmt(evps / 1e6, "%.2f") + "M",
              Fmt(evps / r.ref_evps, "%.2f") + "x"});
  };
  row("reference (pre-pipeline)", r.ref_evps);
  row("serial optimized", r.serial_evps);
  for (const auto& [workers, evps] : r.pipeline_evps) {
    std::string label;
    label += "pipeline @";
    label += std::to_string(workers);
    row(label, evps);
  }
  row("frame stage only", r.frame_evps);

  const ingest::PipelineStats& s = r.stats4;
  std::printf(
      "pipeline@4 stages: %llu chunks framed, %llu batches merged, "
      "%llu records, %llu producer stalls, %llu consumer stalls\n",
      static_cast<unsigned long long>(s.chunks_framed),
      static_cast<unsigned long long>(s.batches_merged),
      static_cast<unsigned long long>(s.records_parsed),
      static_cast<unsigned long long>(s.producer_stalls),
      static_cast<unsigned long long>(s.consumer_stalls));

  const std::string prefix = "ingest/" + r.name;
  reg.GetGauge(prefix + "_reference_events_per_sec").Set(r.ref_evps);
  reg.GetGauge(prefix + "_serial_events_per_sec").Set(r.serial_evps);
  reg.GetGauge(prefix + "_frame_stage_events_per_sec").Set(r.frame_evps);
  double pipeline4 = 0.0;
  for (const auto& [workers, evps] : r.pipeline_evps) {
    std::string gauge;
    gauge += prefix;
    gauge += "_pipeline";
    gauge += std::to_string(workers);
    gauge += "_events_per_sec";
    reg.GetGauge(gauge).Set(evps);
    if (workers == 4) pipeline4 = evps;
  }
  reg.GetGauge(prefix + "_serial_opt_speedup")
      .Set(r.serial_evps / r.ref_evps);
  reg.GetGauge(prefix + "_pipeline4_speedup").Set(pipeline4 / r.ref_evps);
}

}  // namespace
}  // namespace commsig::bench

int main() {
  using namespace commsig;
  using namespace commsig::bench;

  std::error_code ec;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "commsig_perf_ingest";
  std::filesystem::create_directories(dir, ec);

  std::printf("generating corpora (%zu trace rows, %zu flow records)...\n",
              kTraceRows, kFlowRecords);
  const std::string trace_path = MakeTraceCorpus(dir / "bench_trace.csv");
  const std::string flow_path = MakeNetflowCorpus(dir / "bench_flows.nf5");

  Report(BenchFormat("trace", trace_path, /*netflow=*/false));
  Report(BenchFormat("netflow", flow_path, /*netflow=*/true));

  WriteBenchSnapshot("ingest");
  std::filesystem::remove_all(dir, ec);
  return 0;
}
