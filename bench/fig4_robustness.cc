// Reproduces Figure 4: signature robustness on the network data. The
// window graph is perturbed per the paper's model (α|E| degree-proportional
// insertions with weights drawn from the empirical distribution; β|E|
// weight-proportional unit deletions), and each node's original signature
// is ranked against all perturbed signatures.
//
// Expected shape: TT most robust, RWR close behind, UT last — with small
// absolute differences (all AUCs high).

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/perturb.h"
#include "eval/properties.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Figure 4: robustness AUC under graph perturbation\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  const CommGraph& g = windows[0];
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};

  std::vector<std::string> specs = {"tt", "ut", "rwr(c=0.1,h=3)"};
  for (double alpha : {0.1, 0.4}) {
    CommGraph perturbed = Perturb(
        g, {.insert_fraction = alpha, .delete_fraction = alpha, .seed = 17});
    PrintHeader("alpha = beta = " + Fmt(alpha, "%.1f") +
                " — matching AUC (paper Fig. 4)");
    std::vector<std::string> header = {"AUC"};
    for (const auto& spec : specs) header.push_back(spec);
    PrintRow(header);
    std::vector<std::vector<Signature>> original(specs.size()),
        shaken(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      auto scheme = MustCreateScheme(specs[i], opts);
      original[i] = scheme->ComputeAll(g, flows.local_hosts);
      shaken[i] = scheme->ComputeAll(perturbed, flows.local_hosts);
    }
    for (DistanceKind kind : AllDistanceKinds()) {
      std::vector<std::string> row = {"Dist_" +
                                      std::string(DistanceName(kind))};
      for (size_t i = 0; i < specs.size(); ++i) {
        row.push_back(Fmt(MeanAuc(
            MatchRoc(original[i], shaken[i], SignatureDistance(kind)))));
      }
      PrintRow(row);
    }

    // The Definition-2 robustness value 1 − Dist(σ, σ̂) itself: the AUC
    // saturates near 1 (as the paper notes, "the relative difference
    // between all methods is very small"), while the raw statistic
    // separates the schemes clearly.
    PrintHeader("alpha = beta = " + Fmt(alpha, "%.1f") +
                " — mean robustness 1 - Dist(sig, perturbed sig)");
    PrintRow(header);
    for (DistanceKind kind : AllDistanceKinds()) {
      std::vector<std::string> row = {"Dist_" +
                                      std::string(DistanceName(kind))};
      SignatureDistance dist(kind);
      for (size_t i = 0; i < specs.size(); ++i) {
        double sum = 0.0;
        for (size_t v = 0; v < original[i].size(); ++v) {
          sum += 1.0 - dist(original[i][v], shaken[i][v]);
        }
        row.push_back(Fmt(sum / static_cast<double>(original[i].size())));
      }
      PrintRow(row);
    }
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
