// Extension: long-horizon persistence. The paper evaluates one window
// transition and remarks that results are similar across periods, and that
// longer-term persistence drives anomaly detection quality. This bench
// sweeps all six windows: per-transition persistence (stability of the
// measurements) and persistence as a function of lag (how fast identity
// signal decays with time) for each scheme.
//
// Expected shape: per-transition means are flat across the horizon;
// persistence decays with lag, RWR above TT above UT at every lag.

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/timeline.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Extension: persistence across the full 6-window horizon\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  SignatureDistance dist(DistanceKind::kScaledHellinger);

  std::vector<std::string> specs = {"tt", "ut", "rwr(c=0.1,h=3)"};
  std::vector<std::vector<std::vector<Signature>>> horizon(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    auto scheme = MustCreateScheme(specs[s], opts);
    for (const CommGraph& g : windows) {
      horizon[s].push_back(scheme->ComputeAll(g, flows.local_hosts));
    }
  }

  PrintHeader("mean persistence per transition (Dist_SHel)");
  std::vector<std::string> header = {"transition"};
  for (const auto& spec : specs) header.push_back(spec);
  PrintRow(header);
  std::vector<std::vector<TransitionStats>> transitions(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    transitions[s] = PersistencePerTransition(horizon[s], dist);
  }
  for (size_t t = 0; t < transitions[0].size(); ++t) {
    std::vector<std::string> row = {std::to_string(t) + "->" +
                                    std::to_string(t + 1)};
    for (size_t s = 0; s < specs.size(); ++s) {
      row.push_back(Fmt(transitions[s][t].mean_persistence));
    }
    PrintRow(row);
  }

  PrintHeader("mean persistence by lag (Dist_SHel)");
  PrintRow(header[0] == "transition"
               ? std::vector<std::string>{"lag", specs[0], specs[1], specs[2]}
               : header);
  std::vector<std::vector<LagStats>> lags(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    lags[s] = PersistenceByLag(horizon[s], dist, windows.size() - 1);
  }
  for (size_t l = 0; l < lags[0].size(); ++l) {
    std::vector<std::string> row = {std::to_string(lags[0][l].lag)};
    for (size_t s = 0; s < specs.size(); ++s) {
      row.push_back(Fmt(lags[s][l].mean_persistence));
    }
    PrintRow(row);
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
