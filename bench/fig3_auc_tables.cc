// Reproduces Figure 3: AUC across signature schemes and distance functions
// on (a) the enterprise network flows and (b) the user query logs.
//
// Expected shape: (a) multi-hop schemes edge out one-hop schemes, with
// RWR^3 the best of the RWR family; (b) every scheme is near-perfect, UT
// marginally ahead, SDice/SHel saturating at ~1.0.

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/properties.h"

namespace commsig::bench {
namespace {

template <typename Dataset>
void RunDataset(const char* title, const Dataset& ds,
                const std::vector<NodeId>& focal, size_t k) {
  auto windows = ds.Windows();
  SchemeOptions opts{.k = k, .restrict_to_opposite_partition = true};

  // Precompute window-0 / window-1 signatures per scheme.
  std::vector<std::string> specs = PaperSchemeSpecs();
  std::vector<std::vector<Signature>> s0(specs.size()), s1(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    auto scheme = MustCreateScheme(specs[i], opts);
    s0[i] = scheme->ComputeAll(windows[0], focal);
    s1[i] = scheme->ComputeAll(windows[1], focal);
  }

  PrintHeader(title);
  std::vector<std::string> header = {"AUC"};
  for (const auto& spec : specs) header.push_back(spec);
  PrintRow(header);
  for (DistanceKind kind : AllDistanceKinds()) {
    std::vector<std::string> row = {"Dist_" +
                                    std::string(DistanceName(kind))};
    for (size_t i = 0; i < specs.size(); ++i) {
      double auc =
          MeanAuc(SelfMatchRoc(s0[i], s1[i], SignatureDistance(kind)));
      row.push_back(Fmt(auc));
    }
    PrintRow(row);
  }
}

void Main() {
  std::printf("Figure 3: AUC across signature schemes\n");
  FlowDataset flows = MakeFlowDataset();
  RunDataset("(a) enterprise network flows, k=10", flows, flows.local_hosts,
             10);
  QueryLogDataset logs = MakeQueryLogDataset();
  RunDataset("(b) user query logs, k=3", logs, logs.users, 3);
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
