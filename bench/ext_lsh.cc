// Section VI extension: scalable signature comparison with MinHash LSH.
// Indexes every focal host's TT signature, then compares LSH candidate
// generation against the brute-force O(n^2) pairwise scan used by
// multiusage detection: recall of true similar pairs, candidate-set size,
// and wall-clock speedup, sweeping the band configuration.

#include <chrono>
#include <set>

#include "bench/bench_common.h"
#include "core/distance.h"
#include "core/top_talkers.h"
#include "lsh/lsh_index.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Section VI: LSH-accelerated signature comparison\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  TopTalkersScheme tt({.k = 10});
  auto sigs = tt.ComputeAll(windows[0], flows.local_hosts);
  const size_t n = sigs.size();

  // Brute-force ground truth: pairs with Jaccard similarity >= 0.5.
  auto start = std::chrono::steady_clock::now();
  std::set<std::pair<NodeId, NodeId>> truth;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double sim =
          1.0 - Distance(DistanceKind::kJaccard, sigs[i], sigs[j]);
      if (sim >= 0.5) {
        truth.emplace(flows.local_hosts[i], flows.local_hosts[j]);
      }
    }
  }
  double brute_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  std::printf("hosts: %zu, true similar pairs (jac >= 0.5): %zu, "
              "brute force: %.4fs (%zu distance evals)\n",
              n, truth.size(), brute_seconds, n * (n - 1) / 2);

  PrintHeader("LSH banding sweep");
  PrintRow({"bands x rows", "recall", "candidates", "index+query_s"});
  struct Config {
    size_t bands, rows;
  };
  for (Config cfg : {Config{16, 8}, Config{32, 4}, Config{64, 2}}) {
    auto t0 = std::chrono::steady_clock::now();
    LshIndex index({.bands = cfg.bands, .rows_per_band = cfg.rows});
    for (size_t i = 0; i < n; ++i) {
      index.Insert(flows.local_hosts[i], sigs[i]);
    }
    auto pairs = index.SimilarPairs(0.0);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    std::set<std::pair<NodeId, NodeId>> candidates;
    for (const auto& p : pairs) candidates.emplace(p.a, p.b);
    size_t hit = 0;
    for (const auto& t : truth) hit += candidates.contains(t) ? 1 : 0;
    double recall =
        truth.empty() ? 1.0 : static_cast<double>(hit) / truth.size();
    PrintRow({std::to_string(cfg.bands) + "x" + std::to_string(cfg.rows),
              Fmt(recall), std::to_string(candidates.size()),
              Fmt(seconds, "%.4f")});
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
