// Reproduces Figure 5: multiusage-detection ROC curves on the network
// data. Queries are the hosts whose (hidden) user owns multiple IPs; each
// query ranks all focal hosts by signature distance within one window, and
// the other IPs of the same user are the relevant set.
//
// Expected shape: TT consistently dominates UT and RWR across all four
// distance functions (multiusage calls for uniqueness + robustness).

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/properties.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Figure 5: multiusage detection ROC, enterprise flows\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};

  // Ground truth: hosts of multi-IP users.
  std::vector<size_t> query_indices;
  std::vector<std::vector<size_t>> relevant_sets;
  for (size_t i = 0; i < flows.local_hosts.size(); ++i) {
    NodeId host = flows.local_hosts[i];
    const auto& siblings =
        flows.hosts_of_user.at(flows.user_of_host[host]);
    if (siblings.size() < 2) continue;
    std::vector<size_t> rel;
    for (NodeId s : siblings) {
      if (s != host) rel.push_back(s);
    }
    query_indices.push_back(i);
    relevant_sets.push_back(std::move(rel));
  }
  std::printf("multi-IP query hosts: %zu of %zu\n", query_indices.size(),
              flows.local_hosts.size());

  std::vector<std::string> specs = {"tt", "ut", "rwr(c=0.1,h=3)"};
  for (DistanceKind kind : AllDistanceKinds()) {
    PrintHeader("Dist_" + std::string(DistanceName(kind)));
    std::vector<std::string> header = {"fpr"};
    std::vector<std::vector<RocPoint>> curves;
    std::vector<double> aucs;
    for (const auto& spec : specs) {
      auto scheme = MustCreateScheme(spec, opts);
      auto sigs = scheme->ComputeAll(windows[0], flows.local_hosts);
      std::vector<Signature> queries;
      for (size_t qi : query_indices) queries.push_back(sigs[qi]);
      auto rocs = SetMatchRoc(queries, query_indices, sigs, relevant_sets,
                              SignatureDistance(kind));
      curves.push_back(AverageRocCurves(rocs, 11));
      aucs.push_back(MeanAuc(rocs));
      header.push_back(spec);
    }
    PrintRow(header);
    for (size_t g = 0; g < 11; ++g) {
      std::vector<std::string> row = {Fmt(curves[0][g].fpr, "%.1f")};
      for (const auto& curve : curves) row.push_back(Fmt(curve[g].tpr));
      PrintRow(row);
    }
    std::vector<std::string> auc_row = {"AUC"};
    for (double a : aucs) auc_row.push_back(Fmt(a));
    PrintRow(auc_row);
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
