#ifndef COMMSIG_BENCH_BENCH_REGISTRY_H_
#define COMMSIG_BENCH_BENCH_REGISTRY_H_

// Bridges google-benchmark results into the obs metrics registry so the
// perf binaries emit machine-readable BENCH_<name>.json snapshots instead
// of (only) console tables. Kept separate from bench_common.h because the
// figure benches do not link against google-benchmark.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "obs/metrics.h"

namespace commsig::bench {

/// Console reporter that additionally records each benchmark run's timing
/// and throughput as gauges ("bench/<run name>/real_time_ns",
/// ".../cpu_time_ns", ".../items_per_sec") in the global registry.
class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string base = "bench/" + run.benchmark_name();
      reg.GetGauge(base + "/real_time_ns").Set(run.GetAdjustedRealTime());
      reg.GetGauge(base + "/cpu_time_ns").Set(run.GetAdjustedCPUTime());
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        reg.GetGauge(base + "/items_per_sec").Set(it->second);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

/// Drop-in replacement for BENCHMARK_MAIN() that routes results through
/// RegistryReporter and writes BENCH_<snapshot_name>.json on exit.
inline int BenchMain(int argc, char** argv,
                     const std::string& snapshot_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  WriteBenchSnapshot(snapshot_name);
  return 0;
}

}  // namespace commsig::bench

#endif  // COMMSIG_BENCH_BENCH_REGISTRY_H_
