// Microbenchmarks: update/query throughput of the Section-VI streaming
// substrates (Count-Min, FM, SpaceSaving, MinHash/LSH).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "lsh/minhash.h"
#include "sketch/count_min.h"
#include "sketch/fm_sketch.h"
#include "sketch/space_saving.h"

namespace commsig {
namespace {

void BM_CountMinAdd(benchmark::State& state) {
  CountMinSketch cm(static_cast<size_t>(state.range(0)), 4);
  Rng rng(1);
  for (auto _ : state) {
    cm.Add(rng.Next() % 100000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinAdd)->Arg(1024)->Arg(65536)->ArgNames({"width"});

void BM_CountMinEstimate(benchmark::State& state) {
  CountMinSketch cm(4096, 4);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) cm.Add(rng.Next() % 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.Estimate(rng.Next() % 100000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinEstimate);

void BM_FmSketchAdd(benchmark::State& state) {
  FmSketch fm(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    fm.Add(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FmSketchAdd)->Arg(16)->Arg(64)->Arg(256)->ArgNames({"bitmaps"});

void BM_SpaceSavingAdd(benchmark::State& state) {
  SpaceSaving ss(static_cast<size_t>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    // Zipf-ish keys exercise both the hit and the eviction paths.
    ss.Add(rng.UniformInt(rng.UniformInt(9999) + 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(16)->Arg(64)->Arg(256)->ArgNames({"cap"});

void BM_MinHashSketch(benchmark::State& state) {
  MinHasher hasher(static_cast<size_t>(state.range(0)));
  std::vector<Signature::Entry> entries;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    entries.push_back({static_cast<NodeId>(rng.UniformInt(100000)), 1.0});
  }
  Signature sig = Signature::FromTopK(std::move(entries), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Sketch(sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashSketch)->Arg(64)->Arg(128)->Arg(256)->ArgNames({"m"});

}  // namespace
}  // namespace commsig

BENCHMARK_MAIN();
