// Reproduces Figure 1: signature persistence and uniqueness on the two data
// sets. For every (data set, distance function, scheme) combination, prints
// the ellipse statistics the paper plots: mean/stddev of per-node
// persistence (x axis) and of pairwise uniqueness (y axis).
//
// Expected shape (paper Section IV-C): on the flow data, UT sits highest in
// uniqueness, RWR^h highest in persistence, and TT lies between them.

#include <vector>

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/properties.h"

namespace commsig::bench {
namespace {

template <typename Dataset>
void RunDataset(const char* name, const Dataset& ds,
                const std::vector<NodeId>& focal, size_t k,
                size_t uniqueness_sample) {
  auto windows = ds.Windows();
  SchemeOptions opts{.k = k, .restrict_to_opposite_partition = true};

  for (DistanceKind kind : AllDistanceKinds()) {
    PrintHeader(std::string(name) + " / Dist_" +
                std::string(DistanceName(kind)));
    PrintRow({"scheme", "mean_pers", "std_pers", "mean_uniq", "std_uniq"});
    for (const std::string& spec : PaperSchemeSpecs()) {
      auto scheme = MustCreateScheme(spec, opts);
      auto s0 = scheme->ComputeAll(windows[0], focal);
      auto s1 = scheme->ComputeAll(windows[1], focal);
      PropertyEllipse e =
          SummarizeProperties(s0, s1, SignatureDistance(kind),
                              uniqueness_sample, /*seed=*/1);
      PrintRow({spec, Fmt(e.mean_persistence), Fmt(e.std_persistence),
                Fmt(e.mean_uniqueness), Fmt(e.std_uniqueness)});
    }
  }
}

void Main() {
  std::printf("Figure 1: persistence/uniqueness ellipse statistics\n");
  std::printf("(centre = (mean_pers, mean_uniq); diameters = stddevs)\n");

  FlowDataset flows = MakeFlowDataset();
  RunDataset("enterprise-flows", flows, flows.local_hosts, /*k=*/10,
             /*uniqueness_sample=*/20000);

  QueryLogDataset logs = MakeQueryLogDataset();
  RunDataset("query-logs", logs, logs.users, /*k=*/3,
             /*uniqueness_sample=*/20000);
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
