// Extension ablation: exponential time decay of edge weights (the
// "Communities of Interest" construction the paper's Definition 3 treats
// as orthogonal). Accumulates windows with C'_t = θ·C'_{t-1} + C_t and
// measures how decayed history changes persistence and self-match AUC of
// TT signatures versus single-window signatures (θ = 0).
//
// Expected shape: moderate decay smooths per-window volatility and lifts
// both persistence and AUC; very heavy history eventually blurs identity
// drift (diminishing or reversing returns).

#include "bench/bench_common.h"
#include "core/distance.h"
#include "eval/properties.h"
#include "graph/decayed_accumulator.h"

namespace commsig::bench {
namespace {

void Main() {
  std::printf("Extension: exponentially decayed edge history (COI-style)\n");
  FlowDataset flows = MakeFlowDataset();
  auto windows = flows.Windows();
  const size_t n_windows = windows.size();
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  SignatureDistance dist(DistanceKind::kScaledHellinger);
  auto tt = MustCreateScheme("tt", opts);

  PrintHeader("theta sweep (tt, Dist_SHel, last two accumulated windows)");
  PrintRow({"theta", "mean_pers", "mean_uniq", "self_auc"});
  for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    DecayedGraphAccumulator acc(
        flows.interner.size(), theta,
        static_cast<NodeId>(flows.local_hosts.size()));
    std::vector<Signature> prev, last;
    for (size_t w = 0; w < n_windows; ++w) {
      acc.AddWindow(windows[w]);
      if (w + 2 == n_windows) {
        prev = tt->ComputeAll(acc.Current(), flows.local_hosts);
      } else if (w + 1 == n_windows) {
        last = tt->ComputeAll(acc.Current(), flows.local_hosts);
      }
    }
    PropertyEllipse e = SummarizeProperties(prev, last, dist, 20000, 1);
    double auc = MeanAuc(SelfMatchRoc(prev, last, dist));
    PrintRow({Fmt(theta, "%.1f"), Fmt(e.mean_persistence),
              Fmt(e.mean_uniqueness), Fmt(auc)});
  }
}

}  // namespace
}  // namespace commsig::bench

int main() {
  commsig::bench::Main();
  return 0;
}
