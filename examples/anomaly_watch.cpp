// Anomaly watch: run the stateful AnomalyMonitor over a stream of weekly
// windows in which one host's behaviour is hijacked mid-stream (e.g. a
// compromised machine that suddenly talks to a new set of destinations).
//
//   $ ./build/examples/anomaly_watch

#include <cstdio>

#include "apps/anomaly.h"
#include "core/scheme.h"
#include "data/flow_generator.h"
#include "graph/graph_builder.h"

using namespace commsig;

namespace {

// Redirects all of `host`'s window traffic to a fresh set of destinations,
// simulating a takeover.
CommGraph HijackHost(const CommGraph& g, NodeId host, NodeId dest_base) {
  GraphBuilder builder(g.NumNodes());
  builder.SetBipartiteLeftSize(g.bipartite().left_size);
  for (const auto& e : g.Edges()) {
    if (e.src == host) {
      builder.AddEdge(e.src, dest_base + (e.dst % 20), e.weight);
    } else {
      builder.AddEdge(e.src, e.dst, e.weight);
    }
  }
  return std::move(builder).Build();
}

}  // namespace

int main() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 120;
  cfg.num_external_hosts = 6000;
  cfg.num_windows = 6;
  cfg.seed = 99;
  FlowDataset flows = FlowTraceGenerator(cfg).Generate();
  auto windows = flows.Windows();

  const NodeId victim = flows.local_hosts[17];
  const size_t hijack_window = 4;
  windows[hijack_window] = HijackHost(
      windows[hijack_window], victim,
      static_cast<NodeId>(cfg.num_local_hosts + 5000));
  std::printf("victim host: %s (hijacked from window %zu on)\n",
              flows.interner.LabelOf(victim).c_str(), hijack_window);

  // RWR favours persistence + robustness — the anomaly-detection profile
  // of the paper's Table I.
  auto rwr = *CreateScheme(
      "rwr(c=0.1,h=3)", {.k = 10, .restrict_to_opposite_partition = true});
  AnomalyMonitor monitor(flows.local_hosts,
                         SignatureDistance(DistanceKind::kScaledHellinger),
                         {.deviation_threshold = 4.0, .min_history = 2});

  for (size_t w = 0; w < windows.size(); ++w) {
    auto sigs = rwr->ComputeAll(windows[w], flows.local_hosts);
    auto alerts = monitor.Observe(std::move(sigs));
    std::printf("window %zu: %zu alert(s)\n", w, alerts.size());
    for (const Anomaly& a : alerts) {
      std::printf("  ALERT %-12s persistence %.3f (%.1f sigma below its "
                  "norm)%s\n",
                  flows.interner.LabelOf(a.node).c_str(), a.persistence,
                  a.deviations_below_mean,
                  a.node == victim ? "  <-- the hijacked host" : "");
    }
  }
  return 0;
}
