// Multiusage ("anti-aliasing") hunt on a synthetic enterprise network:
// generate flow traffic where some users own several IPs, detect aliased
// IP pairs from TT-signature similarity, and score against the hidden
// ground truth. Also shows the LSH-accelerated candidate path.
//
//   $ ./build/examples/multiusage_hunt

#include <cstdio>
#include <set>

#include "apps/multiusage.h"
#include "core/scheme.h"
#include "data/flow_generator.h"
#include "lsh/lsh_index.h"

using namespace commsig;

int main() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 200;
  cfg.num_external_hosts = 10000;
  cfg.num_windows = 2;
  cfg.multi_ip_user_fraction = 0.15;
  cfg.seed = 1234;
  FlowDataset flows = FlowTraceGenerator(cfg).Generate();
  auto windows = flows.Windows();

  // True aliased pairs (hidden from the detector).
  std::set<std::pair<NodeId, NodeId>> truth;
  for (const auto& [user, hosts] : flows.hosts_of_user) {
    for (size_t i = 0; i < hosts.size(); ++i) {
      for (size_t j = i + 1; j < hosts.size(); ++j) {
        truth.emplace(std::min(hosts[i], hosts[j]),
                      std::max(hosts[i], hosts[j]));
      }
    }
  }
  std::printf("hosts: %zu, true aliased pairs: %zu\n",
              flows.local_hosts.size(), truth.size());

  // TT is the paper's scheme of choice for multiusage (Table I + Fig. 5).
  auto tt = *CreateScheme(
      "tt", {.k = 10, .restrict_to_opposite_partition = true});
  auto sigs = tt->ComputeAll(windows[0], flows.local_hosts);

  MultiusageDetector detector(
      SignatureDistance(DistanceKind::kScaledHellinger),
      {.threshold = 0.5});
  auto pairs = detector.Detect(flows.local_hosts, sigs);

  size_t hits = 0;
  for (const auto& p : pairs) {
    if (truth.contains({std::min(p.a, p.b), std::max(p.a, p.b)})) ++hits;
  }
  std::printf("\nbrute-force detector: %zu pairs reported, %zu correct "
              "(precision %.2f, recall %.2f)\n",
              pairs.size(), hits,
              pairs.empty() ? 0.0 : double(hits) / pairs.size(),
              truth.empty() ? 1.0 : double(hits) / truth.size());
  for (size_t i = 0; i < std::min<size_t>(pairs.size(), 5); ++i) {
    const auto& p = pairs[i];
    std::printf("  %s ~ %s  (dist %.3f)%s\n",
                flows.interner.LabelOf(p.a).c_str(),
                flows.interner.LabelOf(p.b).c_str(), p.distance,
                truth.contains({std::min(p.a, p.b), std::max(p.a, p.b)})
                    ? "  [true alias]"
                    : "");
  }

  // The LSH path: near-linear candidate generation instead of O(n^2).
  LshIndex index;
  for (size_t i = 0; i < sigs.size(); ++i) {
    index.Insert(flows.local_hosts[i], sigs[i]);
  }
  auto candidates = index.SimilarPairs(/*min_similarity=*/0.3);
  size_t lsh_hits = 0;
  for (const auto& c : candidates) {
    if (truth.contains({c.a, c.b})) ++lsh_hits;
  }
  std::printf("\nLSH candidate pairs: %zu (vs %zu brute-force "
              "comparisons), true aliases among them: %zu\n",
              candidates.size(),
              sigs.size() * (sigs.size() - 1) / 2, lsh_hits);
  return 0;
}
