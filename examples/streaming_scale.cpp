// Streaming at scale (paper Section VI): build approximate signatures from
// a single pass over a large flow stream — without materializing the graph
// — and use them for alias detection. Compares sketch memory against the
// full-graph footprint.
//
//   $ ./build/examples/streaming_scale

#include <cstdio>

#include "core/distance.h"
#include "data/flow_generator.h"
#include "lsh/lsh_index.h"
#include "sketch/streaming_signatures.h"

using namespace commsig;

int main() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 400;
  cfg.num_external_hosts = 50000;
  cfg.num_windows = 1;
  cfg.multi_ip_user_fraction = 0.15;
  cfg.seed = 321;
  FlowDataset flows = FlowTraceGenerator(cfg).Generate();
  std::printf("stream: %zu flow records over %zu nodes\n",
              flows.events.size(), flows.interner.size());

  // One pass over the stream.
  StreamingSignatureBuilder::Options opts;
  opts.heavy_hitter_capacity = 64;
  StreamingSignatureBuilder builder(flows.local_hosts, opts);
  builder.ObserveAll(flows.events);
  std::printf("sketch memory: %.2f MB (vs ~%.2f MB for raw edge storage)\n",
              builder.MemoryBytes() / 1048576.0,
              flows.events.size() * sizeof(TraceEvent) / 1048576.0);

  // Extract approximate TT signatures and index them for alias search.
  LshIndex index;
  for (NodeId host : flows.local_hosts) {
    index.Insert(host, builder.TopTalkers(host, 10));
  }
  auto pairs = index.SimilarPairs(/*min_similarity=*/0.4);

  size_t true_aliases = 0;
  for (const auto& p : pairs) {
    if (flows.user_of_host[p.a] == flows.user_of_host[p.b]) ++true_aliases;
  }
  std::printf("\nLSH similar pairs from streamed signatures: %zu, of which "
              "%zu share a user\n",
              pairs.size(), true_aliases);
  for (size_t i = 0; i < std::min<size_t>(pairs.size(), 5); ++i) {
    const auto& p = pairs[i];
    std::printf("  %s ~ %s (est. jaccard %.2f)%s\n",
                flows.interner.LabelOf(p.a).c_str(),
                flows.interner.LabelOf(p.b).c_str(),
                p.estimated_similarity,
                flows.user_of_host[p.a] == flows.user_of_host[p.b]
                    ? "  [same user]"
                    : "");
  }
  return 0;
}
