// Label-masquerading hunt: simulate identity swaps between two observation
// windows (a fraction of hosts hand their label to another host, as when
// accounts are abandoned and re-registered), then run the paper's
// Algorithm 1 with RWR signatures to recover who became whom.
//
//   $ ./build/examples/masquerade_hunt

#include <cstdio>

#include "apps/masquerade_detector.h"
#include "core/scheme.h"
#include "data/flow_generator.h"
#include "eval/masquerade_sim.h"

using namespace commsig;

int main() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 150;
  cfg.num_external_hosts = 8000;
  cfg.num_windows = 2;
  cfg.seed = 77;
  FlowDataset flows = FlowTraceGenerator(cfg).Generate();
  auto windows = flows.Windows();

  // 10% of hosts masquerade between window 0 and window 1.
  MasqueradePlan plan = PlanMasquerade(flows.local_hosts, 0.10, /*seed=*/5);
  CommGraph masked = ApplyMasquerade(windows[1], plan);
  std::printf("simulated masquerades: %zu of %zu hosts\n",
              plan.mapping.size(), flows.local_hosts.size());

  // RWR^3 is the paper's recommendation for this task (persistence +
  // uniqueness, Section V).
  auto rwr = *CreateScheme(
      "rwr(c=0.1,h=3)", {.k = 10, .restrict_to_opposite_partition = true});
  auto before = rwr->ComputeAll(windows[0], flows.local_hosts);
  auto after = rwr->ComputeAll(masked, flows.local_hosts);

  MasqueradeDetector detector(
      SignatureDistance(DistanceKind::kScaledHellinger),
      {.top_ell = 3, .delta_divisor = 5.0});
  MasqueradeDetection detection =
      detector.Detect(flows.local_hosts, before, after);

  std::printf("persistence threshold delta = %.4f\n", detection.delta);
  std::printf("cleared hosts: %zu, suspected masquerade pairs: %zu\n",
              detection.non_suspects.size(), detection.detected.size());

  size_t correct = 0;
  for (const auto& [v, u] : detection.detected) {
    bool right = plan.Contains(v, u);
    correct += right ? 1 : 0;
    std::printf("  %s -> now appears as %s %s\n",
                flows.interner.LabelOf(v).c_str(),
                flows.interner.LabelOf(u).c_str(),
                right ? "[correct]" : "[wrong]");
  }
  std::printf("\npair precision: %.2f, overall accuracy: %.2f\n",
              detection.detected.empty()
                  ? 0.0
                  : double(correct) / detection.detected.size(),
              MasqueradeAccuracy(detection, plan, flows.local_hosts));
  return 0;
}
