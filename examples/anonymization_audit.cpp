// Anonymization audit: quantify how re-identifiable an "anonymized" data
// release is. Week 1 is observed with true labels and the signature
// profiles are persisted to disk (the adversary's side information); week
// 2 is released under fresh pseudonyms. The attack reloads the stored
// profiles and matches them against the released graph with the Hungarian
// assignment.
//
//   $ ./build/examples/anonymization_audit

#include <cstdio>
#include <filesystem>

#include "apps/deanonymizer.h"
#include "core/scheme.h"
#include "core/signature_io.h"
#include "data/flow_generator.h"

using namespace commsig;

int main() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 150;
  cfg.num_external_hosts = 8000;
  cfg.num_windows = 2;
  cfg.seed = 2718;
  FlowDataset flows = FlowTraceGenerator(cfg).Generate();
  auto windows = flows.Windows();

  auto scheme = *CreateScheme(
      "tt", {.k = 10, .restrict_to_opposite_partition = true});

  // --- Week 1: profile and persist. ------------------------------------
  SignatureSet profiles;
  profiles.owners = flows.local_hosts;
  profiles.signatures = scheme->ComputeAll(windows[0], flows.local_hosts);
  const std::string store =
      (std::filesystem::temp_directory_path() / "commsig_profiles.csv")
          .string();
  if (Status s = WriteSignatureSetCsv(profiles, flows.interner, store);
      !s.ok()) {
    std::fprintf(stderr, "cannot persist profiles: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("persisted %zu signature profiles to %s\n", profiles.size(),
              store.c_str());

  // --- Week 2 is "anonymized" and released. ----------------------------
  AnonymizationPlan plan = PlanAnonymization(flows.local_hosts, /*seed=*/9);
  CommGraph released = Anonymize(windows[1], plan);

  // --- The attack: reload profiles, match against the release. ---------
  Interner attacker_view = flows.interner;  // labels are public metadata
  auto loaded = ReadSignatureSetCsv(store, attacker_view);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot reload profiles: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto anonymous = scheme->ComputeAll(released, flows.local_hosts);

  for (auto mode : {Deanonymizer::AssignmentMode::kGreedy,
                    Deanonymizer::AssignmentMode::kOptimal}) {
    Deanonymizer attacker(SignatureDistance(DistanceKind::kScaledHellinger),
                          {.one_to_one = true, .assignment = mode});
    auto ids = attacker.Identify(loaded->owners, loaded->signatures,
                                 flows.local_hosts, anonymous);
    double accuracy = DeanonymizationAccuracy(ids, plan);
    std::printf(
        "%-18s re-identified %.1f%% of hosts (random guessing: %.1f%%)\n",
        mode == Deanonymizer::AssignmentMode::kGreedy ? "greedy match:"
                                                      : "Hungarian match:",
        accuracy * 100.0, 100.0 / static_cast<double>(plan.pool.size()));
    if (mode == Deanonymizer::AssignmentMode::kOptimal) {
      std::printf("\nmost confident re-identifications:\n");
      for (size_t i = 0; i < std::min<size_t>(ids.size(), 5); ++i) {
        std::printf("  %s was released as %s (distance %.3f)%s\n",
                    flows.interner.LabelOf(ids[i].original).c_str(),
                    flows.interner.LabelOf(ids[i].pseudonym).c_str(),
                    ids[i].distance,
                    [&] {
                      for (size_t p = 0; p < plan.pool.size(); ++p) {
                        if (plan.pool[p] == ids[i].original &&
                            plan.pseudonym_of[p] == ids[i].pseudonym) {
                          return "  [correct]";
                        }
                      }
                      return "  [wrong]";
                    }());
      }
    }
  }
  std::filesystem::remove(store);
  return 0;
}
