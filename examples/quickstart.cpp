// Quickstart: build a small communication graph, compute signatures under
// the three schemes, and compare nodes with the four distance functions.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/interner.h"
#include "core/distance.h"
#include "core/scheme.h"
#include "graph/graph_builder.h"

using namespace commsig;

int main() {
  // A toy week of phone traffic. alice and alicia are secretly the same
  // person; everyone occasionally calls the "directory" service.
  Interner interner;
  GraphBuilder builder(/*num_nodes=*/8);
  auto edge = [&](const char* src, const char* dst, double calls) {
    builder.AddEdge(interner.Intern(src), interner.Intern(dst), calls);
  };
  edge("alice", "mom", 12);
  edge("alice", "pizza", 3);
  edge("alice", "directory", 1);
  edge("alicia", "mom", 9);
  edge("alicia", "pizza", 2);
  edge("alicia", "directory", 2);
  edge("bob", "tires", 4);
  edge("bob", "directory", 5);
  CommGraph graph = std::move(builder).Build();

  // Compute signatures under each scheme.
  SchemeOptions opts{.k = 3};
  for (const char* spec : {"tt", "ut", "rwr(c=0.1,h=3)"}) {
    auto scheme = CreateScheme(spec, opts);
    if (!scheme.ok()) {
      std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
      return 1;
    }
    std::printf("--- scheme %s ---\n", (*scheme)->name().c_str());
    for (const char* who : {"alice", "alicia", "bob"}) {
      Signature sig = (*scheme)->Compute(graph, interner.Find(who));
      std::printf("  %-8s %s\n", who, sig.ToString(interner).c_str());
    }
  }

  // Distance between the suspected aliases, and a control pair.
  auto tt = *CreateScheme("tt", opts);
  Signature alice = tt->Compute(graph, interner.Find("alice"));
  Signature alicia = tt->Compute(graph, interner.Find("alicia"));
  Signature bob = tt->Compute(graph, interner.Find("bob"));
  std::printf("\ndistances under tt signatures:\n");
  for (DistanceKind kind : AllDistanceKinds()) {
    std::printf("  Dist_%-6s alice~alicia = %.3f   alice~bob = %.3f\n",
                std::string(DistanceName(kind)).c_str(),
                Distance(kind, alice, alicia), Distance(kind, alice, bob));
  }
  std::printf(
      "\nalice and alicia look alike under every distance -> likely one "
      "individual behind both labels.\n");
  return 0;
}
