// libFuzzer harness for the NetFlow v5 lenient reader. The reader is
// file-based, so each input is staged through a per-process temp file; the
// property under test is "no crash / no sanitizer report under any
// ErrorPolicy", not any particular parse result.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "data/netflow.h"
#include "robust/record_errors.h"

namespace {

std::string StageInput(const uint8_t* data, size_t size) {
  static std::string path = "/tmp/commsig_fuzz_netflow_" +
                            std::to_string(::getpid()) + ".bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return {};
  if (size > 0) std::fwrite(data, 1, size, f);
  std::fclose(f);
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = StageInput(data, size);
  if (path.empty()) return 0;

  for (commsig::ErrorPolicy policy :
       {commsig::ErrorPolicy::kFail, commsig::ErrorPolicy::kSkip,
        commsig::ErrorPolicy::kQuarantine}) {
    commsig::RecordErrorLog log;
    commsig::IngestOptions options;
    options.policy = policy;
    options.error_log = &log;
    (void)commsig::ReadNetflowV5File(path, options);
  }
  return 0;
}
