// libFuzzer harness for checkpoint decoding, at both layers:
//   1. the on-disk frame (magic/version/seq/length/CRC) via
//      CheckpointManager::LoadLatest on a staged file, and
//   2. the payload decoders (StreamingSignatureBuilder and each sketch)
//      fed the raw input directly, bypassing the CRC that would otherwise
//      reject most mutations before the decoders ever see them.
// The property under test is "no crash / no sanitizer report".

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "graph/windower.h"
#include "robust/checkpoint.h"
#include "sketch/count_min.h"
#include "sketch/fm_sketch.h"
#include "sketch/space_saving.h"
#include "sketch/streaming_signatures.h"

namespace {

// Stages the input as `<dir>/ckpt.<seq>.ckpt` so LoadLatest picks it up.
std::string StageDir(const uint8_t* data, size_t size) {
  static std::string dir =
      "/tmp/commsig_fuzz_ckpt_" + std::to_string(::getpid());
  static std::string path = dir + "/ckpt.00000000000000000001.ckpt";
  static bool made = [] {
    return std::system(("mkdir -p " + dir).c_str()) == 0;
  }();
  if (!made) return {};
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return {};
  if (size > 0) std::fwrite(data, 1, size, f);
  std::fclose(f);
  return dir;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string dir = StageDir(data, size);
  if (!dir.empty()) {
    commsig::CheckpointManager manager(dir);
    (void)manager.LoadLatest();
  }

  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  {
    commsig::ByteReader in(bytes);
    (void)commsig::StreamingSignatureBuilder::FromBytes(in);
  }
  {
    commsig::ByteReader in(bytes);
    (void)commsig::CountMinSketch::FromBytes(in);
  }
  {
    commsig::ByteReader in(bytes);
    (void)commsig::FmSketch::FromBytes(in);
  }
  {
    commsig::ByteReader in(bytes);
    (void)commsig::SpaceSaving::FromBytes(in);
  }
  {
    commsig::ByteReader in(bytes);
    (void)commsig::TraceWindower::FromBytes(in);
  }
  return 0;
}
