// libFuzzer harness for the CSV ingestion paths: the trace reader (with and
// without monotonic-time enforcement) and the signature-set reader, under
// every ErrorPolicy. Inputs are staged through a per-process temp file
// because the readers are file-based.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/interner.h"
#include "core/signature_io.h"
#include "data/trace_io.h"
#include "robust/record_errors.h"

namespace {

std::string StageInput(const uint8_t* data, size_t size) {
  static std::string path =
      "/tmp/commsig_fuzz_csv_" + std::to_string(::getpid()) + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return {};
  if (size > 0) std::fwrite(data, 1, size, f);
  std::fclose(f);
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = StageInput(data, size);
  if (path.empty()) return 0;

  for (commsig::ErrorPolicy policy :
       {commsig::ErrorPolicy::kFail, commsig::ErrorPolicy::kSkip,
        commsig::ErrorPolicy::kQuarantine}) {
    {
      commsig::RecordErrorLog log;
      commsig::IngestOptions options;
      options.policy = policy;
      options.error_log = &log;
      commsig::Interner interner;
      (void)commsig::ReadTraceCsv(path, interner, options);
      options.require_monotonic_time = true;
      (void)commsig::ReadTraceCsv(path, interner, options);
    }
    {
      commsig::RecordErrorLog log;
      commsig::IngestOptions options;
      options.policy = policy;
      options.error_log = &log;
      commsig::Interner interner;
      (void)commsig::ReadSignatureSetCsv(path, interner, options);
    }
  }
  return 0;
}
