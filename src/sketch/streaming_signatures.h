#ifndef COMMSIG_SKETCH_STREAMING_SIGNATURES_H_
#define COMMSIG_SKETCH_STREAMING_SIGNATURES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "core/signature.h"
#include "graph/windower.h"
#include "sketch/count_min.h"
#include "sketch/fm_sketch.h"
#include "sketch/space_saving.h"

namespace commsig {

/// Semi-streaming signature construction (paper Section VI): builds
/// approximate Top Talkers and Unexpected Talkers signatures from a single
/// pass over the communication stream, without materializing the graph.
///
/// Per focal node: a SpaceSaving summary of its outgoing edges (candidate
/// set + TT weights). Globally: one Count-Min sketch of edge volumes
/// C[i,j], and one small FM distinct-counter per destination estimating its
/// in-degree |I(j)| — together these recover the UT weight
/// C[i,j] / |I(j)| approximately. Memory is O(1) per node, as the
/// semi-streaming model allows.
class StreamingSignatureBuilder {
 public:
  struct Options {
    /// SpaceSaving capacity per focal node. Must exceed the signature
    /// length k; 4-8x k keeps the candidate set honest for UT, whose top-k
    /// need not be TT's top-k.
    size_t heavy_hitter_capacity = 64;
    /// Count-Min dimensions.
    size_t cm_width = 4096;
    size_t cm_depth = 4;
    /// FM bitmaps per destination (64 => ~10% degree error, 512 B each).
    size_t fm_bitmaps = 64;
    uint64_t seed = 0xc0de;
  };

  /// `focal_nodes`: the nodes whose signatures will be extracted (the
  /// enterprise "local hosts").
  StreamingSignatureBuilder(std::vector<NodeId> focal_nodes, Options options);

  /// Processes one communication. Non-focal sources still feed the
  /// destination in-degree estimators, so UT novelty reflects the whole
  /// stream.
  void Observe(const TraceEvent& event);

  /// Convenience for whole traces.
  void ObserveAll(const std::vector<TraceEvent>& events);

  /// Approximate Top Talkers signature of `focal`: SpaceSaving counts
  /// normalized by the node's total observed out-volume. Returns an empty
  /// signature for unknown focal nodes.
  ///
  /// Extractions are cached with dirty-node tracking: a focal node's TT
  /// cache entry stays valid until an event with that source arrives, so
  /// periodic re-emission over a mostly-quiet population (the `commsig
  /// stream --emit-every` path) re-extracts only the nodes that actually
  /// talked. The caches make the const accessors non-reentrant — callers
  /// that share a builder across threads must serialize extraction the
  /// same way they already serialize Observe.
  Signature TopTalkers(NodeId focal, size_t k) const;

  /// Approximate Unexpected Talkers: Count-Min volume estimates divided by
  /// FM in-degree estimates, over the node's SpaceSaving candidates. Cached
  /// like TopTalkers, additionally invalidated whenever any destination's
  /// FM in-degree sketch changes state (novelty is global).
  Signature UnexpectedTalkers(NodeId focal, size_t k) const;

  /// Total sketch memory in bytes (diagnostics for the scalability bench).
  size_t MemoryBytes() const;

  /// Serializes the complete builder state — options, all per-focal
  /// summaries, the global Count-Min, the per-destination FM sketches —
  /// in deterministic (key-sorted) order so two builders that observed the
  /// same stream serialize to identical bytes. Used by the streaming
  /// checkpoint format.
  void AppendTo(ByteWriter& out) const;

  /// Inverse of AppendTo. Corruption on malformed bytes.
  static Result<StreamingSignatureBuilder> FromBytes(ByteReader& in);

  uint64_t events_observed() const { return events_observed_; }

 private:
  /// One memoized extraction. Valid while the stamps still match the
  /// builder's current versions (and the same k is requested).
  struct CachedSignature {
    Signature signature;
    size_t k = 0;
    uint64_t focal_version = 0;
    uint64_t novelty_version = 0;
  };

  Signature ExtractTopTalkers(NodeId focal, size_t k) const;
  Signature ExtractUnexpectedTalkers(NodeId focal, size_t k) const;

  Options options_;
  std::unordered_map<NodeId, SpaceSaving> per_focal_;
  std::unordered_map<NodeId, double> out_volume_;
  CountMinSketch edge_volumes_;
  std::unordered_map<NodeId, FmSketch> in_degree_;
  uint64_t events_observed_ = 0;

  // Dirty-tracking versions; derived state, deliberately excluded from
  // AppendTo/FromBytes (a restored builder starts with cold caches).
  std::unordered_map<NodeId, uint64_t> focal_version_;
  uint64_t novelty_version_ = 0;
  mutable std::unordered_map<NodeId, CachedSignature> tt_cache_;
  mutable std::unordered_map<NodeId, CachedSignature> ut_cache_;
};

}  // namespace commsig

#endif  // COMMSIG_SKETCH_STREAMING_SIGNATURES_H_
