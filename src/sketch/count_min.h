#ifndef COMMSIG_SKETCH_COUNT_MIN_H_
#define COMMSIG_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace commsig {

/// Count-Min sketch [Cormode & Muthukrishnan, LATIN 2004] over 64-bit keys
/// with double-valued counts. Supports point updates and point queries with
/// one-sided error: the estimate never underestimates, and overestimates by
/// at most ε·(total count) with probability 1−δ when built with
/// width = ⌈e/ε⌉ and depth = ⌈ln(1/δ)⌉.
///
/// Section VI uses one CM sketch to approximate the edge volumes C[i,j]
/// (keyed by the (i,j) pair) when the raw graph is too large to store.
class CountMinSketch {
 public:
  /// `width` counters per row, `depth` rows; both must be positive. `seed`
  /// derives the per-row hash functions.
  CountMinSketch(size_t width, size_t depth, uint64_t seed = 0x5eed);

  /// Builds a sketch meeting the (epsilon, delta) guarantee.
  static CountMinSketch WithGuarantee(double epsilon, double delta,
                                      uint64_t seed = 0x5eed);

  /// Adds `count` (> 0) to `key`.
  void Add(uint64_t key, double count = 1.0);

  /// Point estimate: min over rows. Never less than the true count.
  double Estimate(uint64_t key) const;

  /// Sum of all counts added.
  double TotalCount() const { return total_; }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  /// Memory footprint in bytes (counter array only).
  size_t MemoryBytes() const { return table_.size() * sizeof(double); }

  /// Merges another sketch with identical dimensions and seed.
  void Merge(const CountMinSketch& other);

  /// Packs an edge (src, dst) into a sketch key.
  static uint64_t EdgeKey(uint32_t src, uint32_t dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }

  /// Serializes the full sketch state (checkpoint wire format).
  void AppendTo(ByteWriter& out) const;

  /// Inverse of AppendTo. Corruption on truncated bytes or inconsistent
  /// dimensions — checkpoint payloads are untrusted.
  static Result<CountMinSketch> FromBytes(ByteReader& in);

 private:
  size_t Index(size_t row, uint64_t key) const;

  size_t width_;
  size_t depth_;
  uint64_t seed_;
  double total_ = 0.0;
  std::vector<double> table_;  // depth_ rows of width_ counters
};

}  // namespace commsig

#endif  // COMMSIG_SKETCH_COUNT_MIN_H_
