#include "sketch/count_min.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"
#include "obs/obs.h"

namespace commsig {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  assert(width > 0 && depth > 0);
  table_.assign(width * depth, 0.0);
}

CountMinSketch CountMinSketch::WithGuarantee(double epsilon, double delta,
                                             uint64_t seed) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  assert(delta > 0.0 && delta < 1.0);
  size_t width = static_cast<size_t>(std::ceil(M_E / epsilon));
  size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<size_t>(width, 1), std::max<size_t>(depth, 1),
                        seed);
}

size_t CountMinSketch::Index(size_t row, uint64_t key) const {
  // Row-seeded SplitMix64 acts as a family of pairwise-enough hashes.
  uint64_t h = SplitMix64(key ^ SplitMix64(seed_ + row * 0x9e37u));
  return row * width_ + static_cast<size_t>(h % width_);
}

void CountMinSketch::Add(uint64_t key, double count) {
  assert(count > 0.0);
  total_ += count;
  for (size_t row = 0; row < depth_; ++row) {
    table_[Index(row, key)] += count;
  }
  COMMSIG_COUNTER_ADD("sketch/cm_updates", 1);
  // The one-sided error guarantee at the current fill level:
  // estimate - truth <= (e / width) * total with probability 1 - delta.
  COMMSIG_GAUGE_SET("sketch/cm_error_bound",
                    (M_E / static_cast<double>(width_)) * total_);
}

double CountMinSketch::Estimate(uint64_t key) const {
  COMMSIG_COUNTER_ADD("sketch/cm_queries", 1);
  double best = table_[Index(0, key)];
  for (size_t row = 1; row < depth_; ++row) {
    best = std::min(best, table_[Index(row, key)]);
  }
  return best;
}

void CountMinSketch::AppendTo(ByteWriter& out) const {
  out.PutU64(width_);
  out.PutU64(depth_);
  out.PutU64(seed_);
  out.PutDouble(total_);
  for (double v : table_) out.PutDouble(v);
}

Result<CountMinSketch> CountMinSketch::FromBytes(ByteReader& in) {
  Result<uint64_t> width = in.U64();
  if (!width.ok()) return width.status();
  Result<uint64_t> depth = in.U64();
  if (!depth.ok()) return depth.status();
  Result<uint64_t> seed = in.U64();
  if (!seed.ok()) return seed.status();
  Result<double> total = in.Double();
  if (!total.ok()) return total.status();
  if (*width == 0 || *depth == 0 || !std::isfinite(*total) || *total < 0.0) {
    return Status::Corruption("invalid CountMinSketch header");
  }
  // Reject dimensions the remaining bytes cannot back before allocating
  // width*depth counters (also catches width*depth overflow).
  if (*depth > in.remaining() / sizeof(double) ||
      *width > in.remaining() / sizeof(double) / *depth) {
    return Status::Corruption("CountMinSketch dimensions exceed payload");
  }
  CountMinSketch sketch(*width, *depth, *seed);
  sketch.total_ = *total;
  for (double& cell : sketch.table_) {
    Result<double> v = in.Double();
    if (!v.ok()) return v.status();
    if (!std::isfinite(*v) || *v < 0.0) {
      return Status::Corruption("non-finite CountMinSketch counter");
    }
    cell = *v;
  }
  return sketch;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  assert(width_ == other.width_ && depth_ == other.depth_ &&
         seed_ == other.seed_);
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  total_ += other.total_;
}

}  // namespace commsig
