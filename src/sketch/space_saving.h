#ifndef COMMSIG_SKETCH_SPACE_SAVING_H_
#define COMMSIG_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"

namespace commsig {

/// SpaceSaving heavy-hitters summary [Metwally et al.]: tracks at most
/// `capacity` keys; when a new key arrives at a full summary it evicts the
/// key with the smallest count and inherits that count as its error bound.
/// Guarantees: every key with true count > TotalWeight()/capacity is
/// retained, and for every tracked key
///   true count <= EstimatedCount <= true count + MaxError(key).
///
/// The streaming signature builder keeps one SpaceSaving per focal node to
/// recover its heaviest outgoing edges (approximate Top Talkers).
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity);

  /// Adds `weight` (> 0) to `key`.
  void Add(uint64_t key, double weight = 1.0);

  struct Item {
    uint64_t key = 0;
    double count = 0.0;  // upper-bound estimate
    double error = 0.0;  // count - error is a lower bound on the true count
  };

  /// Tracked items, heaviest first.
  std::vector<Item> Items() const;

  /// Upper-bound estimate for `key`; 0 if not tracked.
  double Estimate(uint64_t key) const;

  double TotalWeight() const { return total_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return counters_.size(); }

  /// Serializes the full summary state (checkpoint wire format). Entries
  /// are emitted in ascending key order so equal summaries serialize to
  /// identical bytes.
  void AppendTo(ByteWriter& out) const;

  /// Inverse of AppendTo. Corruption on malformed bytes.
  static Result<SpaceSaving> FromBytes(ByteReader& in);

 private:
  struct Counter {
    double count = 0.0;
    double error = 0.0;
  };

  size_t capacity_;
  double total_ = 0.0;
  std::unordered_map<uint64_t, Counter> counters_;
};

}  // namespace commsig

#endif  // COMMSIG_SKETCH_SPACE_SAVING_H_
