#include "sketch/space_saving.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/obs.h"

namespace commsig {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  assert(capacity > 0);
  counters_.reserve(capacity);
}

void SpaceSaving::Add(uint64_t key, double weight) {
  assert(weight > 0.0);
  COMMSIG_COUNTER_ADD("sketch/ss_updates", 1);
  total_ += weight;

  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second.count += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Counter{weight, 0.0});
    return;
  }
  // Evict the minimum-count key; the newcomer inherits its count as error.
  // Linear scan is fine at signature-sized capacities (tens of entries).
  auto min_it = counters_.begin();
  for (auto i = counters_.begin(); i != counters_.end(); ++i) {
    if (i->second.count < min_it->second.count) min_it = i;
  }
  COMMSIG_COUNTER_ADD("sketch/ss_evictions", 1);
  Counter evicted = min_it->second;
  counters_.erase(min_it);
  counters_.emplace(key, Counter{evicted.count + weight, evicted.count});
}

std::vector<SpaceSaving::Item> SpaceSaving::Items() const {
  std::vector<Item> items;
  items.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    items.push_back({key, counter.count, counter.error});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return items;
}

void SpaceSaving::AppendTo(ByteWriter& out) const {
  out.PutU64(capacity_);
  out.PutDouble(total_);
  out.PutU64(counters_.size());
  std::vector<uint64_t> keys;
  keys.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    const Counter& c = counters_.at(key);
    out.PutU64(key);
    out.PutDouble(c.count);
    out.PutDouble(c.error);
  }
}

Result<SpaceSaving> SpaceSaving::FromBytes(ByteReader& in) {
  Result<uint64_t> capacity = in.U64();
  if (!capacity.ok()) return capacity.status();
  Result<double> total = in.Double();
  if (!total.ok()) return total.status();
  Result<uint64_t> size = in.U64();
  if (!size.ok()) return size.status();
  if (*capacity == 0 || *size > *capacity || !std::isfinite(*total) ||
      *total < 0.0) {
    return Status::Corruption("invalid SpaceSaving header");
  }
  // The constructor reserves `capacity` slots up front, and capacity may
  // legitimately exceed the serialized size (a half-full summary), so it
  // cannot be bounded by the remaining bytes. Cap it at a value far above
  // any real heavy-hitter configuration instead of letting a bit-flipped
  // header drive a multi-terabyte reserve.
  if (*capacity > (1ull << 20)) {
    return Status::Corruption("implausible SpaceSaving capacity");
  }
  SpaceSaving summary(*capacity);
  summary.total_ = *total;
  for (uint64_t i = 0; i < *size; ++i) {
    Result<uint64_t> key = in.U64();
    if (!key.ok()) return key.status();
    Result<double> count = in.Double();
    if (!count.ok()) return count.status();
    Result<double> error = in.Double();
    if (!error.ok()) return error.status();
    if (!std::isfinite(*count) || *count < 0.0 || !std::isfinite(*error) ||
        *error < 0.0 || *error > *count) {
      return Status::Corruption("invalid SpaceSaving counter");
    }
    if (!summary.counters_.emplace(*key, Counter{*count, *error}).second) {
      return Status::Corruption("duplicate SpaceSaving key");
    }
  }
  return summary;
}

double SpaceSaving::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0.0 : it->second.count;
}

}  // namespace commsig
