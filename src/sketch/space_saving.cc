#include "sketch/space_saving.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"

namespace commsig {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  assert(capacity > 0);
  counters_.reserve(capacity);
}

void SpaceSaving::Add(uint64_t key, double weight) {
  assert(weight > 0.0);
  COMMSIG_COUNTER_ADD("sketch/ss_updates", 1);
  total_ += weight;

  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second.count += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Counter{weight, 0.0});
    return;
  }
  // Evict the minimum-count key; the newcomer inherits its count as error.
  // Linear scan is fine at signature-sized capacities (tens of entries).
  auto min_it = counters_.begin();
  for (auto i = counters_.begin(); i != counters_.end(); ++i) {
    if (i->second.count < min_it->second.count) min_it = i;
  }
  COMMSIG_COUNTER_ADD("sketch/ss_evictions", 1);
  Counter evicted = min_it->second;
  counters_.erase(min_it);
  counters_.emplace(key, Counter{evicted.count + weight, evicted.count});
}

std::vector<SpaceSaving::Item> SpaceSaving::Items() const {
  std::vector<Item> items;
  items.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    items.push_back({key, counter.count, counter.error});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return items;
}

double SpaceSaving::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0.0 : it->second.count;
}

}  // namespace commsig
