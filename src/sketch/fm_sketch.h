#ifndef COMMSIG_SKETCH_FM_SKETCH_H_
#define COMMSIG_SKETCH_FM_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace commsig {

/// Flajolet-Martin probabilistic distinct counter (PCSA variant, FOCS'83):
/// `m` 64-bit bitmaps; each item hashes to one bitmap and sets the bit at
/// the position of the first trailing 1 in a second hash. The distinct
/// count is estimated as (m / φ) · 2^R̄ where R̄ is the mean index of the
/// lowest unset bit and φ ≈ 0.77351. Standard error ≈ 0.78/√m.
///
/// Section VI keeps one FM sketch per destination node to estimate its
/// in-degree |I(j)| for the streaming Unexpected Talkers scheme.
class FmSketch {
 public:
  /// `num_bitmaps` must be positive; 64 gives ~10% standard error at a
  /// 512-byte footprint.
  explicit FmSketch(size_t num_bitmaps = 64, uint64_t seed = 0xf1a9);

  /// Registers an item; duplicates are absorbed idempotently. Returns true
  /// iff the sketch state changed (i.e. Estimate() may now differ) —
  /// callers use this to version derived caches cheaply.
  bool Add(uint64_t item);

  /// Estimated number of distinct items added.
  double Estimate() const;

  /// Union with another sketch of identical shape and seed (bitwise OR).
  void Merge(const FmSketch& other);

  size_t num_bitmaps() const { return bitmaps_.size(); }
  size_t MemoryBytes() const { return bitmaps_.size() * sizeof(uint64_t); }

  /// Serializes the full sketch state (checkpoint wire format).
  void AppendTo(ByteWriter& out) const;

  /// Inverse of AppendTo. Corruption on malformed bytes.
  static Result<FmSketch> FromBytes(ByteReader& in);

 private:
  uint64_t seed_;
  std::vector<uint64_t> bitmaps_;
};

}  // namespace commsig

#endif  // COMMSIG_SKETCH_FM_SKETCH_H_
