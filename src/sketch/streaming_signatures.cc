#include "sketch/streaming_signatures.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace commsig {

StreamingSignatureBuilder::StreamingSignatureBuilder(
    std::vector<NodeId> focal_nodes, Options options)
    : options_(options),
      edge_volumes_(options.cm_width, options.cm_depth, options.seed) {
  for (NodeId v : focal_nodes) {
    per_focal_.emplace(v, SpaceSaving(options_.heavy_hitter_capacity));
    out_volume_.emplace(v, 0.0);
  }
}

void StreamingSignatureBuilder::Observe(const TraceEvent& event) {
  ++events_observed_;
  // Destination novelty statistics see the whole stream. The novelty
  // version moves only when an FM bitmap actually flips a bit, so the UT
  // caches survive the (dominant, in steady state) duplicate-source case.
  auto [it, inserted] = in_degree_.try_emplace(
      event.dst, FmSketch(options_.fm_bitmaps, options_.seed ^ 0xf));
  if (it->second.Add(event.src)) ++novelty_version_;

  auto focal_it = per_focal_.find(event.src);
  if (focal_it == per_focal_.end()) return;
  focal_it->second.Add(event.dst, event.weight);
  out_volume_[event.src] += event.weight;
  edge_volumes_.Add(CountMinSketch::EdgeKey(event.src, event.dst),
                    event.weight);
  ++focal_version_[event.src];
}

void StreamingSignatureBuilder::ObserveAll(
    const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) Observe(e);
}

Signature StreamingSignatureBuilder::ExtractTopTalkers(NodeId focal,
                                                       size_t k) const {
  auto it = per_focal_.find(focal);
  if (it == per_focal_.end()) return Signature();
  const double total = out_volume_.at(focal);
  if (total <= 0.0) return Signature();

  std::vector<Signature::Entry> candidates;
  for (const SpaceSaving::Item& item : it->second.Items()) {
    NodeId dst = static_cast<NodeId>(item.key);
    if (dst == focal) continue;
    candidates.push_back({dst, item.count / total});
  }
  return Signature::FromTopK(std::move(candidates), k);
}

Signature StreamingSignatureBuilder::TopTalkers(NodeId focal,
                                                size_t k) const {
  auto fv = focal_version_.find(focal);
  const uint64_t version = fv == focal_version_.end() ? 0 : fv->second;
  auto cached = tt_cache_.find(focal);
  if (cached != tt_cache_.end() && cached->second.k == k &&
      cached->second.focal_version == version) {
    COMMSIG_COUNTER_ADD("sketch/signature_cache_hits", 1);
    return cached->second.signature;
  }
  Signature sig = ExtractTopTalkers(focal, k);
  tt_cache_[focal] = {sig, k, version, 0};
  return sig;
}

Signature StreamingSignatureBuilder::ExtractUnexpectedTalkers(
    NodeId focal, size_t k) const {
  auto it = per_focal_.find(focal);
  if (it == per_focal_.end()) return Signature();

  std::vector<Signature::Entry> candidates;
  for (const SpaceSaving::Item& item : it->second.Items()) {
    NodeId dst = static_cast<NodeId>(item.key);
    if (dst == focal) continue;
    double volume =
        edge_volumes_.Estimate(CountMinSketch::EdgeKey(focal, dst));
    auto fm = in_degree_.find(dst);
    double degree = fm == in_degree_.end() ? 1.0
                                           : std::max(1.0, fm->second.Estimate());
    candidates.push_back({dst, volume / degree});
  }
  return Signature::FromTopK(std::move(candidates), k);
}

Signature StreamingSignatureBuilder::UnexpectedTalkers(NodeId focal,
                                                       size_t k) const {
  auto fv = focal_version_.find(focal);
  const uint64_t version = fv == focal_version_.end() ? 0 : fv->second;
  auto cached = ut_cache_.find(focal);
  if (cached != ut_cache_.end() && cached->second.k == k &&
      cached->second.focal_version == version &&
      cached->second.novelty_version == novelty_version_) {
    COMMSIG_COUNTER_ADD("sketch/signature_cache_hits", 1);
    return cached->second.signature;
  }
  Signature sig = ExtractUnexpectedTalkers(focal, k);
  ut_cache_[focal] = {sig, k, version, novelty_version_};
  return sig;
}

namespace {

// Key-sorted iteration order for deterministic checkpoint bytes.
template <typename Map>
std::vector<NodeId> SortedKeys(const Map& map) {
  std::vector<NodeId> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void StreamingSignatureBuilder::AppendTo(ByteWriter& out) const {
  out.PutU64(options_.heavy_hitter_capacity);
  out.PutU64(options_.cm_width);
  out.PutU64(options_.cm_depth);
  out.PutU64(options_.fm_bitmaps);
  out.PutU64(options_.seed);
  out.PutU64(events_observed_);

  out.PutU64(per_focal_.size());
  for (NodeId focal : SortedKeys(per_focal_)) {
    out.PutU32(focal);
    out.PutDouble(out_volume_.at(focal));
    per_focal_.at(focal).AppendTo(out);
  }

  edge_volumes_.AppendTo(out);

  out.PutU64(in_degree_.size());
  for (NodeId dst : SortedKeys(in_degree_)) {
    out.PutU32(dst);
    in_degree_.at(dst).AppendTo(out);
  }
}

Result<StreamingSignatureBuilder> StreamingSignatureBuilder::FromBytes(
    ByteReader& in) {
  Options options;
  Result<uint64_t> capacity = in.U64();
  if (!capacity.ok()) return capacity.status();
  Result<uint64_t> cm_width = in.U64();
  if (!cm_width.ok()) return cm_width.status();
  Result<uint64_t> cm_depth = in.U64();
  if (!cm_depth.ok()) return cm_depth.status();
  Result<uint64_t> fm_bitmaps = in.U64();
  if (!fm_bitmaps.ok()) return fm_bitmaps.status();
  Result<uint64_t> seed = in.U64();
  if (!seed.ok()) return seed.status();
  if (*capacity == 0 || *cm_width == 0 || *cm_depth == 0 ||
      *fm_bitmaps == 0) {
    return Status::Corruption("invalid StreamingSignatureBuilder options");
  }
  // Constructing the builder below allocates the cm_width * cm_depth table
  // immediately. The table's cells are serialized later in this same
  // buffer, so dimensions the remaining bytes cannot back are corrupt —
  // reject them before allocating (also catches width*depth overflow).
  if (*cm_depth > in.remaining() / sizeof(double) ||
      *cm_width > in.remaining() / sizeof(double) / *cm_depth ||
      *capacity > (1ull << 20) || *fm_bitmaps > (1ull << 20)) {
    return Status::Corruption(
        "StreamingSignatureBuilder options exceed payload");
  }
  options.heavy_hitter_capacity = *capacity;
  options.cm_width = *cm_width;
  options.cm_depth = *cm_depth;
  options.fm_bitmaps = *fm_bitmaps;
  options.seed = *seed;

  StreamingSignatureBuilder builder({}, options);
  Result<uint64_t> events = in.U64();
  if (!events.ok()) return events.status();
  builder.events_observed_ = *events;

  Result<uint64_t> num_focal = in.U64();
  if (!num_focal.ok()) return num_focal.status();
  for (uint64_t i = 0; i < *num_focal; ++i) {
    Result<uint32_t> focal = in.U32();
    if (!focal.ok()) return focal.status();
    Result<double> volume = in.Double();
    if (!volume.ok()) return volume.status();
    if (!std::isfinite(*volume) || *volume < 0.0) {
      return Status::Corruption("invalid focal out-volume");
    }
    Result<SpaceSaving> summary = SpaceSaving::FromBytes(in);
    if (!summary.ok()) return summary.status();
    if (!builder.per_focal_.emplace(*focal, *std::move(summary)).second) {
      return Status::Corruption("duplicate focal node");
    }
    builder.out_volume_.emplace(*focal, *volume);
  }

  Result<CountMinSketch> edge_volumes = CountMinSketch::FromBytes(in);
  if (!edge_volumes.ok()) return edge_volumes.status();
  builder.edge_volumes_ = *std::move(edge_volumes);

  Result<uint64_t> num_dst = in.U64();
  if (!num_dst.ok()) return num_dst.status();
  for (uint64_t i = 0; i < *num_dst; ++i) {
    Result<uint32_t> dst = in.U32();
    if (!dst.ok()) return dst.status();
    Result<FmSketch> sketch = FmSketch::FromBytes(in);
    if (!sketch.ok()) return sketch.status();
    if (!builder.in_degree_.emplace(*dst, *std::move(sketch)).second) {
      return Status::Corruption("duplicate in-degree destination");
    }
  }
  return builder;
}

size_t StreamingSignatureBuilder::MemoryBytes() const {
  size_t bytes = edge_volumes_.MemoryBytes();
  for (const auto& [node, sketch] : in_degree_) {
    bytes += sketch.MemoryBytes();
  }
  // SpaceSaving summaries: key + counter pair per tracked entry.
  for (const auto& [node, summary] : per_focal_) {
    bytes += summary.size() * (sizeof(uint64_t) + 2 * sizeof(double));
  }
  return bytes;
}

}  // namespace commsig
