#include "sketch/streaming_signatures.h"

#include <algorithm>

namespace commsig {

StreamingSignatureBuilder::StreamingSignatureBuilder(
    std::vector<NodeId> focal_nodes, Options options)
    : options_(options),
      edge_volumes_(options.cm_width, options.cm_depth, options.seed) {
  for (NodeId v : focal_nodes) {
    per_focal_.emplace(v, SpaceSaving(options_.heavy_hitter_capacity));
    out_volume_.emplace(v, 0.0);
  }
}

void StreamingSignatureBuilder::Observe(const TraceEvent& event) {
  ++events_observed_;
  // Destination novelty statistics see the whole stream.
  auto [it, inserted] = in_degree_.try_emplace(
      event.dst, FmSketch(options_.fm_bitmaps, options_.seed ^ 0xf));
  it->second.Add(event.src);

  auto focal_it = per_focal_.find(event.src);
  if (focal_it == per_focal_.end()) return;
  focal_it->second.Add(event.dst, event.weight);
  out_volume_[event.src] += event.weight;
  edge_volumes_.Add(CountMinSketch::EdgeKey(event.src, event.dst),
                    event.weight);
}

void StreamingSignatureBuilder::ObserveAll(
    const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) Observe(e);
}

Signature StreamingSignatureBuilder::TopTalkers(NodeId focal,
                                                size_t k) const {
  auto it = per_focal_.find(focal);
  if (it == per_focal_.end()) return Signature();
  const double total = out_volume_.at(focal);
  if (total <= 0.0) return Signature();

  std::vector<Signature::Entry> candidates;
  for (const SpaceSaving::Item& item : it->second.Items()) {
    NodeId dst = static_cast<NodeId>(item.key);
    if (dst == focal) continue;
    candidates.push_back({dst, item.count / total});
  }
  return Signature::FromTopK(std::move(candidates), k);
}

Signature StreamingSignatureBuilder::UnexpectedTalkers(NodeId focal,
                                                       size_t k) const {
  auto it = per_focal_.find(focal);
  if (it == per_focal_.end()) return Signature();

  std::vector<Signature::Entry> candidates;
  for (const SpaceSaving::Item& item : it->second.Items()) {
    NodeId dst = static_cast<NodeId>(item.key);
    if (dst == focal) continue;
    double volume =
        edge_volumes_.Estimate(CountMinSketch::EdgeKey(focal, dst));
    auto fm = in_degree_.find(dst);
    double degree = fm == in_degree_.end() ? 1.0
                                           : std::max(1.0, fm->second.Estimate());
    candidates.push_back({dst, volume / degree});
  }
  return Signature::FromTopK(std::move(candidates), k);
}

size_t StreamingSignatureBuilder::MemoryBytes() const {
  size_t bytes = edge_volumes_.MemoryBytes();
  for (const auto& [node, sketch] : in_degree_) {
    bytes += sketch.MemoryBytes();
  }
  // SpaceSaving summaries: key + counter pair per tracked entry.
  for (const auto& [node, summary] : per_focal_) {
    bytes += summary.size() * (sizeof(uint64_t) + 2 * sizeof(double));
  }
  return bytes;
}

}  // namespace commsig
