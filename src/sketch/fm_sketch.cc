#include "sketch/fm_sketch.h"

#include <cassert>
#include <cmath>

#include "common/random.h"
#include "obs/obs.h"

namespace commsig {

namespace {
// Flajolet-Martin magic constant correcting the 2^R̄ bias.
constexpr double kPhi = 0.77351;
}  // namespace

FmSketch::FmSketch(size_t num_bitmaps, uint64_t seed) : seed_(seed) {
  assert(num_bitmaps > 0);
  bitmaps_.assign(num_bitmaps, 0);
}

bool FmSketch::Add(uint64_t item) {
  COMMSIG_COUNTER_ADD("sketch/fm_updates", 1);
  uint64_t h = SplitMix64(item ^ seed_);
  size_t bucket = static_cast<size_t>(h % bitmaps_.size());
  uint64_t h2 = SplitMix64(h);
  // Position of the lowest set bit of h2 (geometric with p = 1/2).
  int r = h2 == 0 ? 63 : __builtin_ctzll(h2);
  const uint64_t bit = uint64_t{1} << r;
  const bool changed = (bitmaps_[bucket] & bit) == 0;
  bitmaps_[bucket] |= bit;
  return changed;
}

double FmSketch::Estimate() const {
  COMMSIG_COUNTER_ADD("sketch/fm_queries", 1);
  double sum_r = 0.0;
  size_t empty = 0;
  for (uint64_t bitmap : bitmaps_) {
    if (bitmap == 0) ++empty;
    // Index of the lowest *unset* bit.
    int r = 0;
    while (r < 64 && (bitmap & (uint64_t{1} << r))) ++r;
    sum_r += r;
  }
  const double m = static_cast<double>(bitmaps_.size());
  const double raw = (m / kPhi) * std::pow(2.0, sum_r / m);
  // Small-range correction (the HyperLogLog trick, equally valid for PCSA
  // bucket occupancy): the raw estimator is heavily biased upward when the
  // cardinality is far below the bitmap count — exactly the regime of
  // per-destination in-degrees in the streaming UT scheme. When occupancy
  // is sparse, linear counting on empty buckets is far more accurate.
  if (raw < 2.5 * m && empty > 0) {
    return m * std::log(m / static_cast<double>(empty));
  }
  return raw;
}

void FmSketch::AppendTo(ByteWriter& out) const {
  out.PutU64(bitmaps_.size());
  out.PutU64(seed_);
  for (uint64_t bitmap : bitmaps_) out.PutU64(bitmap);
}

Result<FmSketch> FmSketch::FromBytes(ByteReader& in) {
  Result<uint64_t> num_bitmaps = in.U64();
  if (!num_bitmaps.ok()) return num_bitmaps.status();
  Result<uint64_t> seed = in.U64();
  if (!seed.ok()) return seed.status();
  if (*num_bitmaps == 0 ||
      *num_bitmaps > in.remaining() / sizeof(uint64_t)) {
    return Status::Corruption("invalid FmSketch bitmap count");
  }
  FmSketch sketch(*num_bitmaps, *seed);
  for (uint64_t& bitmap : sketch.bitmaps_) {
    Result<uint64_t> v = in.U64();
    if (!v.ok()) return v.status();
    bitmap = *v;
  }
  return sketch;
}

void FmSketch::Merge(const FmSketch& other) {
  assert(bitmaps_.size() == other.bitmaps_.size() && seed_ == other.seed_);
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    bitmaps_[i] |= other.bitmaps_[i];
  }
}

}  // namespace commsig
