#ifndef COMMSIG_GRAPH_DECAYED_ACCUMULATOR_H_
#define COMMSIG_GRAPH_DECAYED_ACCUMULATOR_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/comm_graph.h"

namespace commsig {

/// Exponentially-decayed accumulation of window graphs:
///   C'_t = decay · C'_{t-1} + C_t
/// — the age-weighted edge volumes used by the "Communities of Interest"
/// line of work the paper builds on (Definition 3 discussion: signatures
/// may be computed "over a set of modified edge weights C'[i,j] which
/// reflect an appropriate exponential decay ... of historical data").
///
/// Feed one CommGraph per time window in order; `Current()` materializes
/// the decayed graph, on which any SignatureScheme can be evaluated
/// unchanged. Edges whose decayed weight falls below `prune_threshold`
/// are dropped, bounding memory over long horizons.
class DecayedGraphAccumulator {
 public:
  /// `decay` in [0, 1): 0 keeps only the latest window; values near 1
  /// remember history for ~1/(1-decay) windows.
  DecayedGraphAccumulator(size_t num_nodes, double decay,
                          NodeId bipartite_left_size = 0,
                          double prune_threshold = 1e-9);

  /// Folds in the next window. The graph must be over the same node
  /// universe.
  void AddWindow(const CommGraph& window);

  /// Materializes the decayed graph (empty if no windows were added).
  CommGraph Current() const;

  /// Decayed weight of edge (src, dst); 0 if absent.
  double EdgeWeight(NodeId src, NodeId dst) const;

  size_t windows_seen() const { return windows_seen_; }
  double decay() const { return decay_; }

 private:
  size_t num_nodes_;
  double decay_;
  NodeId bipartite_left_size_;
  double prune_threshold_;
  size_t windows_seen_ = 0;
  // Sparse decayed volumes, per source.
  std::vector<std::unordered_map<NodeId, double>> weights_;
};

}  // namespace commsig

#endif  // COMMSIG_GRAPH_DECAYED_ACCUMULATOR_H_
