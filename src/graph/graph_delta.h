#ifndef COMMSIG_GRAPH_GRAPH_DELTA_H_
#define COMMSIG_GRAPH_GRAPH_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/comm_graph.h"

namespace commsig {

/// Structural diff between two consecutive window graphs over the same node
/// universe (the paper's G_t -> G_{t+1} transition), built in one
/// O(V + E_old + E_new) pass. The incremental signature engine uses it to
/// decide which focal nodes' signatures can be carried over unchanged:
///
///  - OutChanged(v): v's out-adjacency (neighbour set or any edge weight)
///    differs. The exact dirtiness condition for Top Talkers, whose
///    signature reads nothing but v's out-row.
///  - InDegreeChanged(v): |I(v)| differs. Feeds LocalDirty.
///  - InChanged(v): v's in-adjacency differs (set or weights). Together
///    with OutChanged this flags every node whose symmetric-traversal
///    transition row moved, which is what the RWR warm-start drift bound
///    integrates over.
///  - LocalDirty(v): OutChanged(v), or some out-neighbour of v changed
///    in-degree. The dirtiness condition for Unexpected Talkers (weights
///    C[v,u] / |I(u)|) and the safe default for any scheme whose signature
///    depends only on the focal out-row and its endpoints' in-degrees.
///
/// Both graphs must outlive the delta (spans into their CSR storage are
/// compared lazily by the drift helpers).
class GraphDelta {
 public:
  /// Requires old_g.NumNodes() == new_g.NumNodes() (windows share one
  /// universe by construction; violating this aborts).
  GraphDelta(const CommGraph& old_g, const CommGraph& new_g);

  const CommGraph& old_graph() const { return *old_; }
  const CommGraph& new_graph() const { return *new_; }

  size_t num_nodes() const { return out_changed_.size(); }

  bool OutChanged(NodeId v) const { return out_changed_[v] != 0; }
  bool InChanged(NodeId v) const { return in_changed_[v] != 0; }
  bool InDegreeChanged(NodeId v) const { return in_degree_changed_[v] != 0; }
  bool LocalDirty(NodeId v) const { return local_dirty_[v] != 0; }

  /// True iff v's transition row under the given traversal moved: the
  /// out-row changed, or (symmetric traversal) the in-row changed.
  bool RowChanged(NodeId v, bool symmetric) const {
    return OutChanged(v) || (symmetric && InChanged(v));
  }

  /// Nodes with OutChanged, ascending. Empty means the windows aggregate
  /// to identical graphs (full signature reuse).
  std::span<const NodeId> changed_out_nodes() const {
    return changed_out_nodes_;
  }

  /// Nodes with OutChanged or InChanged, ascending — the union the RWR
  /// drift pass iterates.
  std::span<const NodeId> changed_row_nodes() const {
    return changed_row_nodes_;
  }

  size_t num_out_changed() const { return changed_out_nodes_.size(); }
  bool Empty() const { return changed_row_nodes_.empty(); }

  /// Sum over changed out-rows of |C_new[v,u] - C_old[v,u]| (absent edges
  /// count their full weight) — the L1 edge-volume drift between the
  /// windows, and the numerator of the overlap fraction diagnostics.
  double EdgeWeightL1() const;

  /// Distinct (src, dst) pairs whose weight changed, appeared or vanished.
  size_t NumChangedEdges() const;

 private:
  const CommGraph* old_;
  const CommGraph* new_;
  std::vector<uint8_t> out_changed_;
  std::vector<uint8_t> in_changed_;
  std::vector<uint8_t> in_degree_changed_;
  std::vector<uint8_t> local_dirty_;
  std::vector<NodeId> changed_out_nodes_;
  std::vector<NodeId> changed_row_nodes_;
};

}  // namespace commsig

#endif  // COMMSIG_GRAPH_GRAPH_DELTA_H_
