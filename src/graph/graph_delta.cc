#include "graph/graph_delta.h"

#include <cmath>

#include "common/check.h"

namespace commsig {

namespace {

/// Merge-walk over two id-sorted edge rows, invoking fn(old_w, new_w) for
/// every dst present in either (0.0 for the absent side).
template <typename Fn>
void MergeRows(std::span<const Edge> old_row, std::span<const Edge> new_row,
               Fn&& fn) {
  size_t i = 0, j = 0;
  while (i < old_row.size() || j < new_row.size()) {
    if (j == new_row.size() ||
        (i < old_row.size() && old_row[i].node < new_row[j].node)) {
      fn(old_row[i].weight, 0.0);
      ++i;
    } else if (i == old_row.size() || new_row[j].node < old_row[i].node) {
      fn(0.0, new_row[j].weight);
      ++j;
    } else {
      fn(old_row[i].weight, new_row[j].weight);
      ++i;
      ++j;
    }
  }
}

}  // namespace

GraphDelta::GraphDelta(const CommGraph& old_g, const CommGraph& new_g)
    : old_(&old_g), new_(&new_g) {
  const size_t n = new_g.NumNodes();
  COMMSIG_CHECK(old_g.NumNodes() == n,
                "GraphDelta requires a shared node universe");
  out_changed_.assign(n, 0);
  in_changed_.assign(n, 0);
  in_degree_changed_.assign(n, 0);
  local_dirty_.assign(n, 0);

  // Rows are compared by their Build-time digests — O(1) per node instead
  // of O(row) — so a sliding-window diff costs O(V) plus work proportional
  // to what actually changed. Two different rows collide with probability
  // 2^-64; the equivalence suite compares against from-scratch sweeps with
  // full-row equality, so a collision would surface there.
  std::vector<NodeId> degree_changed;
  for (NodeId v = 0; v < n; ++v) {
    if (old_g.OutRowDigest(v) != new_g.OutRowDigest(v)) {
      out_changed_[v] = 1;
      local_dirty_[v] = 1;
      changed_out_nodes_.push_back(v);
    }
    if (old_g.InRowDigest(v) != new_g.InRowDigest(v)) in_changed_[v] = 1;
    if (old_g.InDegree(v) != new_g.InDegree(v)) {
      in_degree_changed_[v] = 1;
      degree_changed.push_back(v);
    }
    if (out_changed_[v] || in_changed_[v]) changed_row_nodes_.push_back(v);
  }

  // Local dirtiness beyond a changed out-row: v also goes dirty when some
  // out-neighbour's |I(u)| moved. Walking the *in*-rows of the few
  // degree-changed endpoints reaches exactly those v — a node with a clean
  // out-row has the same neighbour set in both graphs, so the new in-rows
  // cover it — and costs O(sum indeg(changed)) instead of an O(E) sweep;
  // a steady window with stable in-degrees pays nothing at all.
  // (Old-graph in-rows are not needed: a node holding the edge only in the
  // old graph has a changed out-row and is dirty already.)
  for (NodeId d : degree_changed) {
    for (const Edge& e : new_g.InEdges(d)) local_dirty_[e.node] = 1;
  }
}

double GraphDelta::EdgeWeightL1() const {
  double l1 = 0.0;
  for (NodeId v : changed_out_nodes_) {
    MergeRows(old_->OutEdges(v), new_->OutEdges(v),
              [&](double old_w, double new_w) {
                l1 += std::abs(new_w - old_w);
              });
  }
  return l1;
}

size_t GraphDelta::NumChangedEdges() const {
  size_t changed = 0;
  for (NodeId v : changed_out_nodes_) {
    MergeRows(old_->OutEdges(v), new_->OutEdges(v),
              [&](double old_w, double new_w) {
                if (old_w != new_w) ++changed;
              });
  }
  return changed;
}

}  // namespace commsig
