#include "graph/graph_stats.h"

#include <algorithm>
#include <deque>

namespace commsig {

GraphSummary Summarize(const CommGraph& g) {
  GraphSummary s;
  s.num_nodes = g.NumNodes();
  s.num_edges = g.NumEdges();
  s.total_weight = g.TotalWeight();
  size_t out_deg_sum = 0;
  size_t out_active = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    size_t od = g.OutDegree(v);
    size_t id = g.InDegree(v);
    if (od > 0 || id > 0) ++s.num_active_nodes;
    if (od > 0) {
      ++out_active;
      out_deg_sum += od;
    }
    s.max_out_degree = std::max(s.max_out_degree, static_cast<double>(od));
    s.max_in_degree = std::max(s.max_in_degree, static_cast<double>(id));
  }
  if (out_active > 0) {
    s.mean_out_degree_active =
        static_cast<double>(out_deg_sum) / static_cast<double>(out_active);
  }
  return s;
}

namespace {

std::vector<size_t> DegreeHistogram(const CommGraph& g, bool out) {
  size_t max_deg = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_deg = std::max(max_deg, out ? g.OutDegree(v) : g.InDegree(v));
  }
  std::vector<size_t> hist(max_deg + 1, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    hist[out ? g.OutDegree(v) : g.InDegree(v)] += 1;
  }
  return hist;
}

}  // namespace

std::vector<size_t> OutDegreeHistogram(const CommGraph& g) {
  return DegreeHistogram(g, /*out=*/true);
}

std::vector<size_t> InDegreeHistogram(const CommGraph& g) {
  return DegreeHistogram(g, /*out=*/false);
}

std::vector<size_t> UndirectedHopDistances(const CommGraph& g, NodeId start) {
  std::vector<size_t> dist(g.NumNodes(), kUnreachable);
  if (start >= g.NumNodes()) return dist;
  std::deque<NodeId> queue;
  dist[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    auto visit = [&](NodeId u) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    };
    for (const Edge& e : g.OutEdges(v)) visit(e.node);
    for (const Edge& e : g.InEdges(v)) visit(e.node);
  }
  return dist;
}

size_t UndirectedEccentricity(const CommGraph& g, NodeId start) {
  auto dist = UndirectedHopDistances(g, start);
  size_t ecc = 0;
  for (size_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

size_t EstimateDiameter(const CommGraph& g, NodeId start) {
  if (g.NumEdges() == 0 || g.NumNodes() == 0) return 0;
  if (start >= g.NumNodes()) start = 0;
  // First sweep: find the farthest reachable node from `start`.
  auto dist = UndirectedHopDistances(g, start);
  NodeId far = start;
  size_t best = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (dist[v] != kUnreachable && dist[v] > best) {
      best = dist[v];
      far = v;
    }
  }
  // Second sweep from that node.
  return UndirectedEccentricity(g, far);
}

}  // namespace commsig
