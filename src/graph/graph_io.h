#ifndef COMMSIG_GRAPH_GRAPH_IO_H_
#define COMMSIG_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/interner.h"
#include "common/result.h"
#include "graph/comm_graph.h"
#include "robust/record_errors.h"

namespace commsig {

/// Writes `g` as an edge-list CSV: one `src_label,dst_label,weight` row per
/// edge, where labels come from `interner`. A `# commsig-graph` header
/// comment records node count and bipartite split.
Status WriteEdgeListCsv(const CommGraph& g, const Interner& interner,
                        const std::string& path);

/// Reads an edge-list CSV produced by WriteEdgeListCsv (or hand-written in
/// the same `src,dst,weight` format), interning labels into `interner`.
/// Repeated (src,dst) rows aggregate. `bipartite_left_size` (optional) flags
/// the first ids as V1; pass 0 for a general graph. Fails with
/// InvalidArgument on malformed rows.
Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size = 0);

/// Lenient variant: malformed rows (wrong field count, empty labels,
/// unparseable / NaN / Inf / non-positive weights) are handled per
/// `options.policy`; labels of rejected rows are never interned.
Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size,
                                  const IngestOptions& options);

}  // namespace commsig

#endif  // COMMSIG_GRAPH_GRAPH_IO_H_
