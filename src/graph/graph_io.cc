#include "graph/graph_io.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "graph/graph_builder.h"
#include "ingest/record_decode.h"

namespace commsig {

Status WriteEdgeListCsv(const CommGraph& g, const Interner& interner,
                        const std::string& path) {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  // Header comment is informational; readers skip '#' lines.
  writer.WriteRow({"# commsig-graph nodes=" + std::to_string(g.NumNodes()) +
                   " left=" + std::to_string(g.bipartite().left_size)});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      writer.WriteRow({interner.LabelOf(v), interner.LabelOf(e.node),
                       std::to_string(e.weight)});
    }
  }
  return writer.Close();
}

Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size) {
  return ReadEdgeListCsv(path, interner, bipartite_left_size, IngestOptions{});
}

Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size,
                                  const IngestOptions& options) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();

  struct Row {
    NodeId src;
    NodeId dst;
    double weight;
  };
  std::vector<Row> rows;
  LineScanner scanner(*data);
  std::string_view line;
  std::string_view fields[3];
  uint64_t errors = 0;
  while (scanner.Next(line)) {
    const size_t count = SplitFields(line, ',', fields, 3);
    ingest::EdgeRow row;
    ingest::RowReject reject;
    if (!ingest::DecodeEdgeRow(fields, count, row, reject)) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, reject.reason, scanner.line_number(),
          std::move(reject.detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    rows.push_back(
        {interner.Intern(row.src), interner.Intern(row.dst), row.weight});
  }

  GraphBuilder builder(interner.size());
  builder.SetBipartiteLeftSize(bipartite_left_size);
  for (const Row& r : rows) builder.AddEdge(r.src, r.dst, r.weight);
  return std::move(builder).Build();
}

}  // namespace commsig
