#include "graph/graph_io.h"

#include <string>
#include <vector>

#include "common/csv.h"
#include "graph/graph_builder.h"

namespace commsig {

Status WriteEdgeListCsv(const CommGraph& g, const Interner& interner,
                        const std::string& path) {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  // Header comment is informational; readers skip '#' lines.
  writer.WriteRow({"# commsig-graph nodes=" + std::to_string(g.NumNodes()) +
                   " left=" + std::to_string(g.bipartite().left_size)});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      writer.WriteRow({interner.LabelOf(v), interner.LabelOf(e.node),
                       std::to_string(e.weight)});
    }
  }
  return writer.Close();
}

Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size) {
  CsvReader reader(path);
  if (!reader.status().ok()) return reader.status();

  struct Row {
    NodeId src;
    NodeId dst;
    double weight;
  };
  std::vector<Row> rows;
  std::vector<std::string> fields;
  while (reader.Next(fields)) {
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "edge row needs 3 fields at line " +
          std::to_string(reader.line_number()));
    }
    Result<double> w = ParseDouble(fields[2]);
    if (!w.ok()) return w.status();
    if (*w <= 0.0) {
      return Status::InvalidArgument("non-positive weight at line " +
                                     std::to_string(reader.line_number()));
    }
    rows.push_back(
        {interner.Intern(fields[0]), interner.Intern(fields[1]), *w});
  }

  GraphBuilder builder(interner.size());
  builder.SetBipartiteLeftSize(bipartite_left_size);
  for (const Row& r : rows) builder.AddEdge(r.src, r.dst, r.weight);
  return std::move(builder).Build();
}

}  // namespace commsig
