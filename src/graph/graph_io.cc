#include "graph/graph_io.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/csv.h"
#include "graph/graph_builder.h"

namespace commsig {

Status WriteEdgeListCsv(const CommGraph& g, const Interner& interner,
                        const std::string& path) {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  // Header comment is informational; readers skip '#' lines.
  writer.WriteRow({"# commsig-graph nodes=" + std::to_string(g.NumNodes()) +
                   " left=" + std::to_string(g.bipartite().left_size)});
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      writer.WriteRow({interner.LabelOf(v), interner.LabelOf(e.node),
                       std::to_string(e.weight)});
    }
  }
  return writer.Close();
}

Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size) {
  return ReadEdgeListCsv(path, interner, bipartite_left_size, IngestOptions{});
}

Result<CommGraph> ReadEdgeListCsv(const std::string& path, Interner& interner,
                                  NodeId bipartite_left_size,
                                  const IngestOptions& options) {
  CsvReader reader(path);
  if (!reader.status().ok()) return reader.status();

  struct Row {
    NodeId src;
    NodeId dst;
    double weight;
  };
  std::vector<Row> rows;
  std::vector<std::string> fields;
  uint64_t errors = 0;
  while (reader.Next(fields)) {
    const uint64_t line = reader.line_number();
    RecordErrorReason reason;
    std::string detail;
    bool bad = true;
    double weight = 0.0;
    if (fields.size() != 3) {
      reason = RecordErrorReason::kBadField;
      detail =
          "edge row needs 3 fields, got " + std::to_string(fields.size());
    } else if (fields[0].empty() || fields[1].empty()) {
      reason = RecordErrorReason::kZeroNode;
      detail = "empty node label";
    } else if (Result<double> w = ParseDouble(fields[2]); !w.ok()) {
      reason = RecordErrorReason::kBadField;
      detail = w.status().message();
    } else if (!std::isfinite(*w)) {
      reason = RecordErrorReason::kNonFiniteWeight;
      detail = "weight " + fields[2];
    } else if (*w <= 0.0) {
      reason = RecordErrorReason::kNonPositiveWeight;
      detail = "non-positive weight " + fields[2];
    } else {
      bad = false;
      weight = *w;
    }
    if (bad) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, reason, line, std::move(detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    rows.push_back(
        {interner.Intern(fields[0]), interner.Intern(fields[1]), weight});
  }

  GraphBuilder builder(interner.size());
  builder.SetBipartiteLeftSize(bipartite_left_size);
  for (const Row& r : rows) builder.AddEdge(r.src, r.dst, r.weight);
  return std::move(builder).Build();
}

}  // namespace commsig
