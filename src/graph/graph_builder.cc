#include "graph/graph_builder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace commsig {

GraphBuilder::GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {
  adjacency_.resize(num_nodes);
}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, double weight) {
  assert(src < num_nodes_ && dst < num_nodes_);
  assert(weight > 0.0);
  adjacency_[src][dst] += weight;
}

bool GraphBuilder::TryAddEdge(NodeId src, NodeId dst, double weight) {
  if (src >= num_nodes_ || dst >= num_nodes_) return false;
  if (!std::isfinite(weight) || weight <= 0.0) return false;
  adjacency_[src][dst] += weight;
  return true;
}

CommGraph GraphBuilder::Build() && {
  CommGraph g;
  const size_t n = num_nodes_;
  g.out_index_.assign(n + 1, 0);
  g.in_index_.assign(n + 1, 0);
  g.out_weight_.assign(n, 0.0);
  g.in_weight_.assign(n, 0.0);

  // Pass 1: degree counts.
  size_t num_edges = 0;
  for (NodeId v = 0; v < n; ++v) {
    g.out_index_[v + 1] = adjacency_[v].size();
    num_edges += adjacency_[v].size();
    for (const auto& [dst, w] : adjacency_[v]) {
      g.in_index_[dst + 1] += 1;
    }
  }
  for (size_t i = 1; i <= n; ++i) {
    g.out_index_[i] += g.out_index_[i - 1];
    g.in_index_[i] += g.in_index_[i - 1];
  }

  // Pass 2: fill out-edges (sorted by dst) and scatter in-edges.
  g.out_edges_.resize(num_edges);
  g.in_edges_.resize(num_edges);
  std::vector<size_t> in_cursor(g.in_index_.begin(), g.in_index_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    size_t begin = g.out_index_[v];
    size_t pos = begin;
    for (const auto& [dst, w] : adjacency_[v]) {
      g.out_edges_[pos++] = {dst, w};
      g.out_weight_[v] += w;
      g.in_weight_[dst] += w;
      g.total_weight_ += w;
    }
    std::sort(g.out_edges_.begin() + begin, g.out_edges_.begin() + pos,
              [](const Edge& a, const Edge& b) { return a.node < b.node; });
  }
  // Scattering in src order keeps each in-adjacency range sorted by source,
  // since sources are visited in increasing id order.
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      g.in_edges_[in_cursor[e.node]++] = {v, e.weight};
    }
  }

  g.bipartite_.left_size = left_size_;
  return g;
}

}  // namespace commsig
