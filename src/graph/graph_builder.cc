#include "graph/graph_builder.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/random.h"

namespace commsig {

namespace {

/// Chained SplitMix64 over a sorted edge row. Equal rows (same neighbours,
/// bit-identical weights) always digest identically; the digest seeds are
/// fixed so digests are comparable across graphs and processes.
uint64_t DigestRow(std::span<const Edge> row) {
  uint64_t h = 0x9017;
  for (const Edge& e : row) {
    h = SplitMix64(h ^ e.node);
    h = SplitMix64(h ^ std::bit_cast<uint64_t>(e.weight));
  }
  return h;
}

}  // namespace

GraphBuilder::GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, double weight) {
  assert(src < num_nodes_ && dst < num_nodes_);
  assert(weight > 0.0);
  staged_.push_back({src, dst, weight});
}

bool GraphBuilder::TryAddEdge(NodeId src, NodeId dst, double weight) {
  if (src >= num_nodes_ || dst >= num_nodes_) return false;
  if (!std::isfinite(weight) || weight <= 0.0) return false;
  staged_.push_back({src, dst, weight});
  return true;
}

CommGraph GraphBuilder::Build() && {
  CommGraph g;
  const size_t n = num_nodes_;
  // Stable: same-(src,dst) observations keep insertion order, so each
  // edge's weight sums in arrival order (deterministic FP aggregation).
  std::stable_sort(staged_.begin(), staged_.end(),
                   [](const CommGraph::FlatEdge& a,
                      const CommGraph::FlatEdge& b) {
                     return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                   });

  g.out_index_.assign(n + 1, 0);
  g.in_index_.assign(n + 1, 0);
  g.out_weight_.assign(n, 0.0);
  g.in_weight_.assign(n, 0.0);

  // Collapse sorted runs into aggregated out-edges (already dst-sorted
  // within each src range) while tallying degrees and weights.
  for (size_t i = 0; i < staged_.size();) {
    const NodeId src = staged_[i].src;
    const NodeId dst = staged_[i].dst;
    double w = 0.0;
    for (; i < staged_.size() && staged_[i].src == src &&
           staged_[i].dst == dst;
         ++i) {
      w += staged_[i].weight;
    }
    g.out_edges_.push_back({dst, w});
    g.out_index_[src + 1] += 1;
    g.in_index_[dst + 1] += 1;
    g.out_weight_[src] += w;
    g.in_weight_[dst] += w;
    g.total_weight_ += w;
  }
  staged_.clear();
  staged_.shrink_to_fit();
  for (size_t i = 1; i <= n; ++i) {
    g.out_index_[i] += g.out_index_[i - 1];
    g.in_index_[i] += g.in_index_[i - 1];
  }

  // Scattering in src order keeps each in-adjacency range sorted by source,
  // since sources are visited in increasing id order.
  g.in_edges_.resize(g.out_edges_.size());
  std::vector<size_t> in_cursor(g.in_index_.begin(), g.in_index_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      g.in_edges_[in_cursor[e.node]++] = {v, e.weight};
    }
  }

  g.out_row_digest_.resize(n);
  g.in_row_digest_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    g.out_row_digest_[v] = DigestRow(g.OutEdges(v));
    g.in_row_digest_[v] = DigestRow(g.InEdges(v));
  }

  g.bipartite_.left_size = left_size_;
  return g;
}

}  // namespace commsig
