#ifndef COMMSIG_GRAPH_GRAPH_STATS_H_
#define COMMSIG_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <vector>

#include "graph/comm_graph.h"

namespace commsig {

/// Summary statistics of one window graph. The paper sizes its signature
/// length k from the mean focal-host out-degree (k = half the mean), and its
/// RWR-depth discussion rests on the graph's small diameter — both are
/// computed here.
struct GraphSummary {
  size_t num_nodes = 0;
  size_t num_active_nodes = 0;  // nodes with at least one incident edge
  size_t num_edges = 0;
  double total_weight = 0.0;
  double mean_out_degree_active = 0.0;  // over nodes with out-degree > 0
  double max_out_degree = 0.0;
  double max_in_degree = 0.0;
};

/// Computes the summary above.
GraphSummary Summarize(const CommGraph& g);

/// Histogram of a degree sequence: result[d] = number of nodes with degree
/// exactly d (sized to max degree + 1). Power-law shape checks in tests use
/// this.
std::vector<size_t> OutDegreeHistogram(const CommGraph& g);
std::vector<size_t> InDegreeHistogram(const CommGraph& g);

/// BFS eccentricity of `start` treating edges as undirected, i.e. the
/// longest hop distance from `start` to any reachable node.
size_t UndirectedEccentricity(const CommGraph& g, NodeId start);

/// Lower bound on the undirected diameter obtained by double-sweep BFS from
/// `start`. Exact on trees; a good estimate on communication graphs. Returns
/// 0 for graphs with no edges.
size_t EstimateDiameter(const CommGraph& g, NodeId start = 0);

/// Hop distances (undirected) from `start`; kUnreachable for disconnected
/// nodes. Used by tests and by the h-hop locality checks.
inline constexpr size_t kUnreachable = static_cast<size_t>(-1);
std::vector<size_t> UndirectedHopDistances(const CommGraph& g, NodeId start);

}  // namespace commsig

#endif  // COMMSIG_GRAPH_GRAPH_STATS_H_
