#include "graph/comm_graph.h"

#include <algorithm>

namespace commsig {

double CommGraph::EdgeWeight(NodeId v, NodeId u) const {
  auto edges = OutEdges(v);
  auto it = std::lower_bound(
      edges.begin(), edges.end(), u,
      [](const Edge& e, NodeId id) { return e.node < id; });
  if (it != edges.end() && it->node == u) return it->weight;
  return 0.0;
}

std::vector<NodeId> CommGraph::NodesByTraversalDegree(bool symmetric) const {
  const size_t n = NumNodes();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const size_t da = OutDegree(a) + (symmetric ? InDegree(a) : 0);
    const size_t db = OutDegree(b) + (symmetric ? InDegree(b) : 0);
    if (da != db) return da > db;
    return a < b;
  });
  return order;
}

std::vector<CommGraph::FlatEdge> CommGraph::Edges() const {
  std::vector<FlatEdge> flat;
  flat.reserve(out_edges_.size());
  for (NodeId v = 0; v < NumNodes(); ++v) {
    for (const Edge& e : OutEdges(v)) {
      flat.push_back({v, e.node, e.weight});
    }
  }
  return flat;
}

}  // namespace commsig
