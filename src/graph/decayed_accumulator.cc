#include "graph/decayed_accumulator.h"

#include <cassert>

#include "graph/graph_builder.h"

namespace commsig {

DecayedGraphAccumulator::DecayedGraphAccumulator(size_t num_nodes,
                                                 double decay,
                                                 NodeId bipartite_left_size,
                                                 double prune_threshold)
    : num_nodes_(num_nodes),
      decay_(decay),
      bipartite_left_size_(bipartite_left_size),
      prune_threshold_(prune_threshold) {
  assert(decay >= 0.0 && decay < 1.0);
  weights_.resize(num_nodes);
}

void DecayedGraphAccumulator::AddWindow(const CommGraph& window) {
  assert(window.NumNodes() == num_nodes_);
  ++windows_seen_;
  for (auto& per_src : weights_) {
    for (auto it = per_src.begin(); it != per_src.end();) {
      it->second *= decay_;
      if (it->second < prune_threshold_) {
        it = per_src.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (NodeId src = 0; src < num_nodes_; ++src) {
    for (const Edge& e : window.OutEdges(src)) {
      weights_[src][e.node] += e.weight;
    }
  }
}

CommGraph DecayedGraphAccumulator::Current() const {
  GraphBuilder builder(num_nodes_);
  builder.SetBipartiteLeftSize(bipartite_left_size_);
  for (NodeId src = 0; src < num_nodes_; ++src) {
    for (const auto& [dst, w] : weights_[src]) {
      builder.AddEdge(src, dst, w);
    }
  }
  return std::move(builder).Build();
}

double DecayedGraphAccumulator::EdgeWeight(NodeId src, NodeId dst) const {
  assert(src < num_nodes_);
  auto it = weights_[src].find(dst);
  return it == weights_[src].end() ? 0.0 : it->second;
}

}  // namespace commsig
