#ifndef COMMSIG_GRAPH_WINDOWER_H_
#define COMMSIG_GRAPH_WINDOWER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/interner.h"
#include "graph/comm_graph.h"

namespace commsig {

/// One observed communication: `src` talked to `dst` at `time` with volume
/// `weight` (e.g. one flow record contributing some number of sessions).
/// Node ids refer to a shared Interner / node universe.
struct TraceEvent {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  uint64_t time = 0;
  double weight = 1.0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Splits an event stream into fixed-length time windows and aggregates each
/// window into a CommGraph over a common node universe — producing the
/// paper's sequence G_0, G_1, ... of window graphs.
///
/// Window w covers times [start + w*length, start + (w+1)*length). Events
/// before `start` are dropped.
class TraceWindower {
 public:
  /// `num_nodes`: size of the shared node universe.
  /// `window_length`: window extent; 0 (meaningless) is clamped to 1 —
  /// window configuration can come from untrusted flags or checkpoints, so
  /// a bad value must not be UB (division by zero in WindowOf).
  /// `start_time`: timestamp where window 0 begins.
  /// `bipartite_left_size`: forwarded to every window graph (0 = general).
  TraceWindower(size_t num_nodes, uint64_t window_length,
                uint64_t start_time = 0, NodeId bipartite_left_size = 0);

  /// Buckets `events` (any order) and builds one graph per window, from
  /// window 0 through the last window containing an event. Windows with no
  /// events yield empty graphs over the same universe. Events with invalid
  /// node ids (>= num_nodes) or NaN/Inf/non-positive weights are dropped
  /// and counted under `robust/windower_dropped_events` — corrupt upstream
  /// records must not index out of bounds or poison edge weights.
  std::vector<CommGraph> Split(const std::vector<TraceEvent>& events) const;

  /// Sliding/stepping variant: window w covers
  /// [start + w*stride, start + w*stride + length), so consecutive windows
  /// overlap by (length - stride) time units and each event lands in up to
  /// ceil(length / stride) windows. `stride` is clamped to >= 1; stride ==
  /// length degenerates to Split's tumbling windows. This is the window
  /// sequence the incremental signature engine consumes — the overlap
  /// fraction 1 - stride/length is what dirty-node reuse scales with.
  /// Event validation and drop accounting match Split.
  std::vector<CommGraph> SplitSliding(const std::vector<TraceEvent>& events,
                                      uint64_t stride) const;

  /// Window index for a timestamp, or SIZE_MAX if before start.
  size_t WindowOf(uint64_t time) const;

  /// Serializes the windower configuration (checkpoint wire format).
  void AppendTo(ByteWriter& out) const;

  /// Inverse of AppendTo. Corruption on malformed bytes.
  static Result<TraceWindower> FromBytes(ByteReader& in);

  size_t num_nodes() const { return num_nodes_; }
  uint64_t window_length() const { return window_length_; }
  uint64_t start_time() const { return start_time_; }

 private:
  size_t num_nodes_;
  uint64_t window_length_;
  uint64_t start_time_;
  NodeId bipartite_left_size_;
};

}  // namespace commsig

#endif  // COMMSIG_GRAPH_WINDOWER_H_
