#include "graph/windower.h"

#include <algorithm>

#include "graph/graph_builder.h"
#include "obs/obs.h"

namespace commsig {

TraceWindower::TraceWindower(size_t num_nodes, uint64_t window_length,
                             uint64_t start_time, NodeId bipartite_left_size)
    : num_nodes_(num_nodes),
      window_length_(std::max<uint64_t>(window_length, 1)),
      start_time_(start_time),
      bipartite_left_size_(bipartite_left_size) {}

size_t TraceWindower::WindowOf(uint64_t time) const {
  if (time < start_time_) return static_cast<size_t>(-1);
  return static_cast<size_t>((time - start_time_) / window_length_);
}

std::vector<CommGraph> TraceWindower::Split(
    const std::vector<TraceEvent>& events) const {
  COMMSIG_SPAN("windower/split");
  size_t num_windows = 0;
  for (const TraceEvent& e : events) {
    size_t w = WindowOf(e.time);
    if (w == static_cast<size_t>(-1)) continue;
    num_windows = std::max(num_windows, w + 1);
  }

  std::vector<GraphBuilder> builders;
  std::vector<size_t> events_per_window(num_windows, 0);
  builders.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    builders.emplace_back(num_nodes_);
    builders.back().SetBipartiteLeftSize(bipartite_left_size_);
  }
  size_t dropped = 0;
  for (const TraceEvent& e : events) {
    size_t w = WindowOf(e.time);
    if (w == static_cast<size_t>(-1)) continue;
    // TryAddEdge rejects out-of-range ids and NaN/Inf/non-positive weights
    // — the windower sits on the ingest path, where such events mean a
    // corrupt upstream record, not a programming error.
    if (!builders[w].TryAddEdge(e.src, e.dst, e.weight)) {
      ++dropped;
      continue;
    }
    ++events_per_window[w];
  }
  if (dropped > 0) {
    COMMSIG_COUNTER_ADD("robust/windower_dropped_events", dropped);
  }

  std::vector<CommGraph> graphs;
  graphs.reserve(num_windows);
  for (auto& b : builders) {
    graphs.push_back(std::move(b).Build());
  }
  COMMSIG_COUNTER_ADD("windower/windows_built", num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    COMMSIG_HISTOGRAM_OBSERVE("windower/window_events", events_per_window[w]);
  }
  return graphs;
}

void TraceWindower::AppendTo(ByteWriter& out) const {
  out.PutU64(num_nodes_);
  out.PutU64(window_length_);
  out.PutU64(start_time_);
  out.PutU32(bipartite_left_size_);
}

Result<TraceWindower> TraceWindower::FromBytes(ByteReader& in) {
  Result<uint64_t> num_nodes = in.U64();
  if (!num_nodes.ok()) return num_nodes.status();
  Result<uint64_t> window_length = in.U64();
  if (!window_length.ok()) return window_length.status();
  Result<uint64_t> start_time = in.U64();
  if (!start_time.ok()) return start_time.status();
  Result<uint32_t> left = in.U32();
  if (!left.ok()) return left.status();
  if (*window_length == 0) {
    return Status::Corruption("zero window length in TraceWindower bytes");
  }
  return TraceWindower(*num_nodes, *window_length, *start_time, *left);
}

}  // namespace commsig
