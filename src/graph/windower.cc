#include "graph/windower.h"

#include <cassert>

#include "graph/graph_builder.h"
#include "obs/obs.h"

namespace commsig {

TraceWindower::TraceWindower(size_t num_nodes, uint64_t window_length,
                             uint64_t start_time, NodeId bipartite_left_size)
    : num_nodes_(num_nodes),
      window_length_(window_length),
      start_time_(start_time),
      bipartite_left_size_(bipartite_left_size) {
  assert(window_length_ > 0);
}

size_t TraceWindower::WindowOf(uint64_t time) const {
  if (time < start_time_) return static_cast<size_t>(-1);
  return static_cast<size_t>((time - start_time_) / window_length_);
}

std::vector<CommGraph> TraceWindower::Split(
    const std::vector<TraceEvent>& events) const {
  COMMSIG_SPAN("windower/split");
  size_t num_windows = 0;
  for (const TraceEvent& e : events) {
    size_t w = WindowOf(e.time);
    if (w == static_cast<size_t>(-1)) continue;
    num_windows = std::max(num_windows, w + 1);
  }

  std::vector<GraphBuilder> builders;
  std::vector<size_t> events_per_window(num_windows, 0);
  builders.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    builders.emplace_back(num_nodes_);
    builders.back().SetBipartiteLeftSize(bipartite_left_size_);
  }
  for (const TraceEvent& e : events) {
    size_t w = WindowOf(e.time);
    if (w == static_cast<size_t>(-1)) continue;
    builders[w].AddEdge(e.src, e.dst, e.weight);
    ++events_per_window[w];
  }

  std::vector<CommGraph> graphs;
  graphs.reserve(num_windows);
  for (auto& b : builders) {
    graphs.push_back(std::move(b).Build());
  }
  COMMSIG_COUNTER_ADD("windower/windows_built", num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    COMMSIG_HISTOGRAM_OBSERVE("windower/window_events", events_per_window[w]);
  }
  return graphs;
}

}  // namespace commsig
