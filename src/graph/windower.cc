#include "graph/windower.h"

#include <algorithm>

#include "graph/graph_builder.h"
#include "obs/obs.h"

namespace commsig {

TraceWindower::TraceWindower(size_t num_nodes, uint64_t window_length,
                             uint64_t start_time, NodeId bipartite_left_size)
    : num_nodes_(num_nodes),
      window_length_(std::max<uint64_t>(window_length, 1)),
      start_time_(start_time),
      bipartite_left_size_(bipartite_left_size) {}

size_t TraceWindower::WindowOf(uint64_t time) const {
  if (time < start_time_) return static_cast<size_t>(-1);
  return static_cast<size_t>((time - start_time_) / window_length_);
}

std::vector<CommGraph> TraceWindower::Split(
    const std::vector<TraceEvent>& events) const {
  COMMSIG_SPAN("windower/split");
  // Pass 1: per-window event counts, so each builder's staging array is
  // allocated once at exactly the right size (the count is a slight
  // overestimate when corrupt events are later dropped — harmless).
  size_t num_windows = 0;
  std::vector<size_t> window_counts;
  for (const TraceEvent& e : events) {
    size_t w = WindowOf(e.time);
    if (w == static_cast<size_t>(-1)) continue;
    if (w + 1 > num_windows) {
      num_windows = w + 1;
      window_counts.resize(num_windows, 0);
    }
    ++window_counts[w];
  }

  std::vector<GraphBuilder> builders;
  std::vector<size_t> events_per_window(num_windows, 0);
  builders.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    builders.emplace_back(num_nodes_);
    builders.back().SetBipartiteLeftSize(bipartite_left_size_);
    builders.back().Reserve(window_counts[w]);
  }
  size_t dropped = 0;
  for (const TraceEvent& e : events) {
    size_t w = WindowOf(e.time);
    if (w == static_cast<size_t>(-1)) continue;
    // TryAddEdge rejects out-of-range ids and NaN/Inf/non-positive weights
    // — the windower sits on the ingest path, where such events mean a
    // corrupt upstream record, not a programming error.
    if (!builders[w].TryAddEdge(e.src, e.dst, e.weight)) {
      ++dropped;
      continue;
    }
    ++events_per_window[w];
  }
  if (dropped > 0) {
    COMMSIG_COUNTER_ADD("robust/windower_dropped_events", dropped);
  }

  std::vector<CommGraph> graphs;
  graphs.reserve(num_windows);
  for (auto& b : builders) {
    graphs.push_back(std::move(b).Build());
  }
  COMMSIG_COUNTER_ADD("windower/windows_built", num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    COMMSIG_HISTOGRAM_OBSERVE("windower/window_events", events_per_window[w]);
  }
  return graphs;
}

std::vector<CommGraph> TraceWindower::SplitSliding(
    const std::vector<TraceEvent>& events, uint64_t stride) const {
  COMMSIG_SPAN("windower/split_sliding");
  stride = std::max<uint64_t>(stride, 1);
  // Event at offset d from start lands in windows w with
  // w*stride <= d < w*stride + length, i.e. w in [w_lo(d), d/stride].
  auto first_window = [&](uint64_t d) -> size_t {
    if (d < window_length_) return 0;
    return static_cast<size_t>((d - window_length_) / stride + 1);
  };

  size_t num_windows = 0;
  std::vector<size_t> window_counts;
  for (const TraceEvent& e : events) {
    if (e.time < start_time_) continue;
    const uint64_t d = e.time - start_time_;
    const size_t hi = static_cast<size_t>(d / stride);
    if (hi + 1 > num_windows) {
      num_windows = hi + 1;
      window_counts.resize(num_windows, 0);
    }
    for (size_t w = first_window(d); w <= hi; ++w) ++window_counts[w];
  }

  std::vector<GraphBuilder> builders;
  std::vector<size_t> events_per_window(num_windows, 0);
  builders.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    builders.emplace_back(num_nodes_);
    builders.back().SetBipartiteLeftSize(bipartite_left_size_);
    builders.back().Reserve(window_counts[w]);
  }
  size_t dropped = 0;
  for (const TraceEvent& e : events) {
    if (e.time < start_time_) continue;
    const uint64_t d = e.time - start_time_;
    const size_t hi = static_cast<size_t>(d / stride);
    // Validate once per event, not once per covering window, so a corrupt
    // record counts as one drop regardless of overlap.
    bool ok = true;
    for (size_t w = first_window(d); w <= hi && ok; ++w) {
      ok = builders[w].TryAddEdge(e.src, e.dst, e.weight);
      if (ok) ++events_per_window[w];
    }
    if (!ok) ++dropped;
  }
  if (dropped > 0) {
    COMMSIG_COUNTER_ADD("robust/windower_dropped_events", dropped);
  }

  std::vector<CommGraph> graphs;
  graphs.reserve(num_windows);
  for (auto& b : builders) {
    graphs.push_back(std::move(b).Build());
  }
  COMMSIG_COUNTER_ADD("windower/windows_built", num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    COMMSIG_HISTOGRAM_OBSERVE("windower/window_events", events_per_window[w]);
  }
  return graphs;
}

void TraceWindower::AppendTo(ByteWriter& out) const {
  out.PutU64(num_nodes_);
  out.PutU64(window_length_);
  out.PutU64(start_time_);
  out.PutU32(bipartite_left_size_);
}

Result<TraceWindower> TraceWindower::FromBytes(ByteReader& in) {
  Result<uint64_t> num_nodes = in.U64();
  if (!num_nodes.ok()) return num_nodes.status();
  Result<uint64_t> window_length = in.U64();
  if (!window_length.ok()) return window_length.status();
  Result<uint64_t> start_time = in.U64();
  if (!start_time.ok()) return start_time.status();
  Result<uint32_t> left = in.U32();
  if (!left.ok()) return left.status();
  if (*window_length == 0) {
    return Status::Corruption("zero window length in TraceWindower bytes");
  }
  return TraceWindower(*num_nodes, *window_length, *start_time, *left);
}

}  // namespace commsig
