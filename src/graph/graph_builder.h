#ifndef COMMSIG_GRAPH_GRAPH_BUILDER_H_
#define COMMSIG_GRAPH_GRAPH_BUILDER_H_

#include <cstddef>
#include <vector>

#include "graph/comm_graph.h"

namespace commsig {

/// Accumulates directed weighted edge observations and finalizes them into
/// an immutable CommGraph.
///
/// Repeated AddEdge calls on the same (src, dst) pair aggregate their
/// weights — this is the paper's flow aggregation step where individual
/// communications within a window are summed into edge volumes C[v,u].
///
/// Observations are staged as a flat array and aggregated in one
/// stable-sort pass at Build() time, so AddEdge is a branch-free push_back
/// and callers that know their event count up front (TraceWindower::Split)
/// can Reserve() the exact capacity. The stable sort keeps same-pair
/// observations in insertion order, so per-edge weights sum in the same
/// order as the old hash-map accumulation did.
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node universe; all ids must be < num_nodes.
  explicit GraphBuilder(size_t num_nodes);

  /// Pre-sizes the staging array for `num_observations` AddEdge calls
  /// (a capacity hint — exceeding it only costs the usual growth).
  void Reserve(size_t num_observations) { staged_.reserve(num_observations); }

  /// Adds `weight` (> 0) to edge (src, dst). Self-loops are permitted at
  /// this layer; signature schemes ignore the focal node per Definition 1.
  /// Ids and weight must already be validated — this is the trusted-caller
  /// fast path (asserts in Debug only).
  void AddEdge(NodeId src, NodeId dst, double weight = 1.0);

  /// Validating variant for the ingest path: returns false (and adds
  /// nothing) if an id is >= num_nodes or the weight is NaN/Inf/<= 0.
  /// Use this when the edge comes from untrusted input that may have been
  /// corrupted downstream of the readers (e.g. fault injection, stale
  /// checkpoints).
  bool TryAddEdge(NodeId src, NodeId dst, double weight = 1.0);

  /// Marks the first `left_size` node ids as partition V1 of a bipartite
  /// graph (see CommGraph::Bipartite).
  void SetBipartiteLeftSize(NodeId left_size) { left_size_ = left_size; }

  size_t num_nodes() const { return num_nodes_; }

  /// Finalizes into a CommGraph. The builder is consumed.
  CommGraph Build() &&;

 private:
  size_t num_nodes_;
  NodeId left_size_ = 0;
  std::vector<CommGraph::FlatEdge> staged_;
};

}  // namespace commsig

#endif  // COMMSIG_GRAPH_GRAPH_BUILDER_H_
