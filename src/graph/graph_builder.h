#ifndef COMMSIG_GRAPH_GRAPH_BUILDER_H_
#define COMMSIG_GRAPH_GRAPH_BUILDER_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/comm_graph.h"

namespace commsig {

/// Accumulates directed weighted edge observations and finalizes them into
/// an immutable CommGraph.
///
/// Repeated AddEdge calls on the same (src, dst) pair aggregate their
/// weights — this is the paper's flow aggregation step where individual
/// communications within a window are summed into edge volumes C[v,u].
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node universe; all ids must be < num_nodes.
  explicit GraphBuilder(size_t num_nodes);

  /// Adds `weight` (> 0) to edge (src, dst). Self-loops are permitted at
  /// this layer; signature schemes ignore the focal node per Definition 1.
  /// Ids and weight must already be validated — this is the trusted-caller
  /// fast path (asserts in Debug only).
  void AddEdge(NodeId src, NodeId dst, double weight = 1.0);

  /// Validating variant for the ingest path: returns false (and adds
  /// nothing) if an id is >= num_nodes or the weight is NaN/Inf/<= 0.
  /// Use this when the edge comes from untrusted input that may have been
  /// corrupted downstream of the readers (e.g. fault injection, stale
  /// checkpoints).
  bool TryAddEdge(NodeId src, NodeId dst, double weight = 1.0);

  /// Marks the first `left_size` node ids as partition V1 of a bipartite
  /// graph (see CommGraph::Bipartite).
  void SetBipartiteLeftSize(NodeId left_size) { left_size_ = left_size; }

  size_t num_nodes() const { return num_nodes_; }

  /// Finalizes into a CommGraph. The builder is consumed.
  CommGraph Build() &&;

 private:
  size_t num_nodes_;
  NodeId left_size_ = 0;
  // Per-source aggregation maps; dense enough for window-sized graphs while
  // keeping AddEdge O(1) expected.
  std::vector<std::unordered_map<NodeId, double>> adjacency_;
};

}  // namespace commsig

#endif  // COMMSIG_GRAPH_GRAPH_BUILDER_H_
