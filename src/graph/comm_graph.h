#ifndef COMMSIG_GRAPH_COMM_GRAPH_H_
#define COMMSIG_GRAPH_COMM_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/interner.h"

namespace commsig {

/// One adjacency entry: a neighbour and the aggregated communication volume
/// on the connecting edge (e.g. number of TCP sessions, call count).
struct Edge {
  NodeId node = kInvalidNode;
  double weight = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A weighted directed communication graph aggregated over one time window
/// (the paper's `G_t = <V, E_t>` with weights `C[v,u]`).
///
/// The node universe [0, num_nodes) is fixed at construction and typically
/// shared across all windows of a data set via a common Interner. Storage is
/// CSR-like: per-node sorted out- and in-adjacency arrays, so neighbour scans
/// are cache-friendly and `EdgeWeight` is a binary search.
///
/// Immutable after construction; build instances with GraphBuilder.
class CommGraph {
 public:
  /// Metadata for bipartite data sets (e.g. client/server, user/table).
  /// Nodes with id < left_size belong to V1, the rest to V2. A value of 0
  /// means the graph is not flagged bipartite.
  struct Bipartite {
    NodeId left_size = 0;
    bool IsBipartite() const { return left_size > 0; }
  };

  CommGraph() = default;

  CommGraph(const CommGraph&) = default;
  CommGraph& operator=(const CommGraph&) = default;
  CommGraph(CommGraph&&) = default;
  CommGraph& operator=(CommGraph&&) = default;

  /// Number of nodes in the (window-independent) universe.
  size_t NumNodes() const { return out_index_.empty() ? 0 : out_index_.size() - 1; }

  /// Number of distinct directed edges with non-zero weight.
  size_t NumEdges() const { return out_edges_.size(); }

  /// Sum of all edge weights (total communication volume).
  double TotalWeight() const { return total_weight_; }

  /// Out-neighbours of `v`, sorted by node id.
  std::span<const Edge> OutEdges(NodeId v) const {
    return {out_edges_.data() + out_index_[v],
            out_index_[v + 1] - out_index_[v]};
  }

  /// In-neighbours of `v`, sorted by node id.
  std::span<const Edge> InEdges(NodeId v) const {
    return {in_edges_.data() + in_index_[v], in_index_[v + 1] - in_index_[v]};
  }

  /// |O(v)| and |I(v)| — distinct out-/in-neighbour counts.
  size_t OutDegree(NodeId v) const {
    return out_index_[v + 1] - out_index_[v];
  }
  size_t InDegree(NodeId v) const { return in_index_[v + 1] - in_index_[v]; }

  /// Total outgoing volume from `v` (the TT normalizer).
  double OutWeight(NodeId v) const { return out_weight_[v]; }

  /// Total incoming volume into `v`.
  double InWeight(NodeId v) const { return in_weight_[v]; }

  /// C[v,u]: weight of edge (v,u), or 0 if absent. O(log outdeg(v)).
  double EdgeWeight(NodeId v, NodeId u) const;

  /// True iff edge (v,u) is present with non-zero weight.
  bool HasEdge(NodeId v, NodeId u) const { return EdgeWeight(v, u) > 0.0; }

  /// 64-bit digest of `v`'s out-row (neighbour ids and exact weight bits),
  /// computed once during Build. Two equal rows always have equal digests;
  /// unequal rows collide with probability 2^-64 per pair, which is what
  /// lets GraphDelta compare rows in O(1) instead of O(row).
  uint64_t OutRowDigest(NodeId v) const { return out_row_digest_[v]; }
  uint64_t InRowDigest(NodeId v) const { return in_row_digest_[v]; }

  const Bipartite& bipartite() const { return bipartite_; }

  /// For bipartite graphs: true iff `v` is in the left partition V1.
  bool InLeftPartition(NodeId v) const { return v < bipartite_.left_size; }

  /// Flat list of all edges as (src, dst, weight) triples, grouped by src in
  /// id order. Convenient for perturbation and serialization.
  struct FlatEdge {
    NodeId src;
    NodeId dst;
    double weight;
  };
  std::vector<FlatEdge> Edges() const;

  /// Node ids permuted for cache-friendly full-graph traversal: descending
  /// traversable degree (out-degree, plus in-degree when `symmetric`), ties
  /// by ascending id. Scanning rows in this order front-loads the hub rows
  /// whose edge ranges dominate a CSR sweep, so their scatter targets are
  /// touched while the hot part of the state slab is still cache-resident.
  /// Note: consuming a full scan in this order reorders the per-target
  /// accumulation relative to the ascending-id scan, which perturbs sums at
  /// rounding level — see TransitionCache::EnableDegreeOrder.
  std::vector<NodeId> NodesByTraversalDegree(bool symmetric) const;

 private:
  friend class GraphBuilder;

  std::vector<size_t> out_index_;  // size NumNodes()+1
  std::vector<Edge> out_edges_;    // sorted by dst within each src range
  std::vector<size_t> in_index_;
  std::vector<Edge> in_edges_;
  std::vector<double> out_weight_;
  std::vector<double> in_weight_;
  std::vector<uint64_t> out_row_digest_;  // size NumNodes()
  std::vector<uint64_t> in_row_digest_;
  double total_weight_ = 0.0;
  Bipartite bipartite_;
};

}  // namespace commsig

#endif  // COMMSIG_GRAPH_COMM_GRAPH_H_
