#ifndef COMMSIG_DATA_ZIPF_H_
#define COMMSIG_DATA_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace commsig {

/// Samples ranks 0..n-1 with P(rank r) ∝ 1/(r+1)^s — the heavy-tailed
/// popularity law communication graphs exhibit (paper Section III,
/// "Novelty": a few nodes have very high degree, the majority small).
/// Backed by an alias table, so draws are O(1) after O(n) setup.
class ZipfSampler {
 public:
  /// `n` > 0 items; `exponent` >= 0 (0 = uniform).
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const { return sampler_.Sample(rng); }

  size_t size() const { return sampler_.size(); }
  double exponent() const { return exponent_; }

  /// The unnormalized weight of rank r (1/(r+1)^s).
  double WeightOfRank(size_t r) const;

 private:
  double exponent_;
  DiscreteSampler sampler_;
};

/// Convenience: the vector of Zipf weights 1/(r+1)^s for r in [0, n).
std::vector<double> ZipfWeights(size_t n, double exponent);

}  // namespace commsig

#endif  // COMMSIG_DATA_ZIPF_H_
