#ifndef COMMSIG_DATA_TRACE_IO_H_
#define COMMSIG_DATA_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "graph/windower.h"
#include "robust/record_errors.h"

namespace commsig {

/// Writes a trace as CSV rows `src_label,dst_label,time,weight` — the
/// interchange format for loading real NetFlow-style or query-log data into
/// commsig.
Status WriteTraceCsv(const std::vector<TraceEvent>& events,
                     const Interner& interner, const std::string& path);

/// Reads a trace written by WriteTraceCsv (or hand-prepared in the same
/// format), interning labels into `interner` in row order. Fails with
/// InvalidArgument on malformed rows.
Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner);

/// Lenient variant: malformed rows (wrong field count, empty labels,
/// unparseable numbers, NaN/Inf or non-positive weights, and — with
/// `require_monotonic_time` — timestamp regressions) are handled per
/// `options.policy`. Labels of rejected rows are never interned.
Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner,
                                             const IngestOptions& options);

}  // namespace commsig

#endif  // COMMSIG_DATA_TRACE_IO_H_
