#include "data/flow_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/random.h"
#include "data/zipf.h"
#include "graph/graph_builder.h"

namespace commsig {

std::vector<CommGraph> FlowDataset::Windows() const {
  TraceWindower windower(interner.size(), window_length, /*start_time=*/0,
                         static_cast<NodeId>(local_hosts.size()));
  std::vector<CommGraph> graphs = windower.Split(events);
  // Trailing silent windows still belong to the data set: pad with empty
  // graphs over the same universe.
  while (graphs.size() < num_windows) {
    GraphBuilder builder(interner.size());
    builder.SetBipartiteLeftSize(static_cast<NodeId>(local_hosts.size()));
    graphs.push_back(std::move(builder).Build());
  }
  return graphs;
}

namespace {

/// Which sub-population a profile destination was drawn from. Churn
/// replaces an entry with a fresh one of the same category, so community
/// membership is stable even as individual picks rotate.
enum class Category { kPopular, kCommunity, kTail };

/// A destination with its per-window session rate.
struct ProfileEntry {
  NodeId dest;
  double rate;
  Category category;
};

}  // namespace

FlowDataset FlowTraceGenerator::Generate() const {
  const FlowGeneratorConfig& cfg = config_;
  assert(cfg.num_local_hosts >= 2);
  assert(cfg.num_external_hosts > cfg.num_popular_services);
  assert(cfg.num_windows >= 2);

  Rng rng(cfg.seed);
  FlowDataset ds;
  ds.num_windows = cfg.num_windows;
  ds.window_length = cfg.window_length;

  // Node universe: local hosts first (V1), then externals (V2).
  for (size_t i = 0; i < cfg.num_local_hosts; ++i) {
    ds.local_hosts.push_back(
        ds.interner.Intern("10.0." + std::to_string(i / 256) + "." +
                           std::to_string(i % 256)));
  }
  std::vector<NodeId> externals;
  externals.reserve(cfg.num_external_hosts);
  for (size_t i = 0; i < cfg.num_external_hosts; ++i) {
    externals.push_back(ds.interner.Intern("ext-" + std::to_string(i)));
  }

  // External popularity: Zipf over all externals; the first
  // num_popular_services ranks are the universally popular head.
  ZipfSampler popularity(cfg.num_external_hosts, cfg.zipf_exponent);
  ZipfSampler head(cfg.num_popular_services, cfg.zipf_exponent);
  // Long tail: uniform over non-head externals; tail destinations are the
  // user-specific, discriminating part of a profile.
  const size_t tail_size = cfg.num_external_hosts - cfg.num_popular_services;

  auto sample_popular = [&](Rng& r) {
    return externals[head.Sample(r)];
  };
  auto sample_tail = [&](Rng& r) {
    return externals[cfg.num_popular_services + r.UniformInt(tail_size)];
  };
  auto sample_any = [&](Rng& r) {
    return externals[popularity.Sample(r)];
  };

  // Interest-group pools: tail destinations shared by group members.
  std::vector<std::vector<NodeId>> group_pool(cfg.num_interest_groups);
  for (auto& pool : group_pool) {
    std::unordered_set<NodeId> used;
    while (pool.size() < cfg.group_pool_size) {
      NodeId dest = sample_tail(rng);
      if (used.insert(dest).second) pool.push_back(dest);
    }
  }

  // --- Assign local hosts to users (multiusage ground truth). ----------
  std::vector<NodeId> unassigned = ds.local_hosts;
  rng.Shuffle(unassigned);
  uint32_t next_user = 0;
  size_t cursor = 0;
  ds.user_of_host.assign(cfg.num_local_hosts, 0);
  while (cursor < unassigned.size()) {
    uint32_t user = next_user++;
    size_t ips = 1;
    if (rng.Bernoulli(cfg.multi_ip_user_fraction) &&
        unassigned.size() - cursor >= 2) {
      ips = 2 + rng.UniformInt(std::max<size_t>(cfg.max_ips_per_user, 2) - 1);
      ips = std::min(ips, unassigned.size() - cursor);
    }
    for (size_t i = 0; i < ips; ++i) {
      NodeId host = unassigned[cursor++];
      ds.user_of_host[host] = user;
      ds.hosts_of_user[user].push_back(host);
    }
  }
  const uint32_t num_users = next_user;

  // --- Per-user profiles. ----------------------------------------------
  // Each user joins a distinctive combination of interest groups;
  // profiles mix popular services, group destinations, and the tail.
  std::vector<std::vector<uint32_t>> groups_of_user(num_users);
  for (uint32_t u = 0; u < num_users; ++u) {
    std::unordered_set<uint32_t> chosen;
    const size_t want =
        std::min(std::max<size_t>(cfg.groups_per_user, 1),
                 cfg.num_interest_groups);
    while (chosen.size() < want) {
      chosen.insert(static_cast<uint32_t>(
          rng.UniformInt(cfg.num_interest_groups)));
    }
    groups_of_user[u].assign(chosen.begin(), chosen.end());
    // `chosen` iterates in hash order, which libstdc++/libc++ lay out
    // differently; the group list indexes into rng draws, so an unsorted
    // copy would make the seeded dataset differ across standard libraries.
    std::sort(groups_of_user[u].begin(), groups_of_user[u].end());
  }

  auto fresh_entry = [&](uint32_t user, Category category,
                         Rng& r) -> ProfileEntry {
    NodeId dest = 0;  // all enumerators assign; init placates -Wmaybe-uninitialized
    switch (category) {
      case Category::kPopular:
        dest = sample_popular(r);
        break;
      case Category::kCommunity: {
        const auto& groups = groups_of_user[user];
        const auto& pool = group_pool[groups[r.UniformInt(groups.size())]];
        dest = pool[r.UniformInt(pool.size())];
        break;
      }
      case Category::kTail:
        dest = sample_tail(r);
        break;
    }
    // Exponential rate around the mean; popular services carry ~3x the
    // traffic of tail destinations.
    double rate = -cfg.mean_sessions * std::log(1.0 - r.UniformDouble() +
                                                1e-12);
    if (category == Category::kPopular) rate *= cfg.popular_rate_boost;
    if (category == Category::kTail) rate *= cfg.tail_rate_factor;
    rate = std::max(rate, 1.0);
    return {dest, rate, category};
  };

  auto fresh_category = [&](Rng& r) -> Category {
    double roll = r.UniformDouble();
    if (roll < cfg.popular_fraction) return Category::kPopular;
    if (roll < cfg.popular_fraction + cfg.community_fraction) {
      return Category::kCommunity;
    }
    return Category::kTail;
  };

  std::vector<std::vector<ProfileEntry>> profile(num_users);
  for (uint32_t u = 0; u < num_users; ++u) {
    size_t size = std::max<uint64_t>(4, rng.Poisson(cfg.mean_profile_size));
    std::unordered_set<NodeId> used;
    while (profile[u].size() < size) {
      ProfileEntry e = fresh_entry(u, fresh_category(rng), rng);
      if (used.insert(e.dest).second) profile[u].push_back(e);
    }
  }

  // Per-IP activity level: multi-IP users split their attention unevenly
  // (e.g. office desktop vs hotel laptop).
  std::vector<double> activity(cfg.num_local_hosts, 1.0);
  for (NodeId host : ds.local_hosts) {
    activity[host] = 0.5 + rng.UniformDouble();  // in [0.5, 1.5)
  }

  // --- Emit windows. -----------------------------------------------------
  for (size_t w = 0; w < cfg.num_windows; ++w) {
    const uint64_t window_start = w * cfg.window_length;
    for (NodeId host : ds.local_hosts) {
      const uint32_t user = ds.user_of_host[host];
      for (const ProfileEntry& e : profile[user]) {
        // Window coverage: only a subset of the profile shows up in any
        // one window.
        if (!rng.Bernoulli(cfg.profile_visibility)) continue;
        // Week-over-week volatility: the same destination swings in volume
        // across windows (log-normal jitter), so a host's top-k ranking is
        // not frozen even without churn.
        const double jitter =
            std::exp(cfg.rate_volatility * rng.Gaussian());
        uint64_t sessions = rng.Poisson(e.rate * activity[host] * jitter);
        if (sessions == 0) continue;
        // Split the window's sessions over a few flow records at distinct
        // times, exercising the aggregation path.
        size_t records = 1 + rng.UniformInt(3);
        records = std::min<size_t>(records, sessions);
        uint64_t remaining = sessions;
        for (size_t rec = 0; rec < records; ++rec) {
          uint64_t part = (rec + 1 == records)
                              ? remaining
                              : std::max<uint64_t>(1, remaining / (records - rec));
          remaining -= part;
          ds.events.push_back(
              {host, e.dest,
               window_start + rng.UniformInt(cfg.window_length),
               static_cast<double>(part)});
          if (remaining == 0) break;
        }
      }
      // One-off noise destinations, popularity-biased like real stray
      // traffic.
      uint64_t noise = rng.Poisson(cfg.noise_destinations);
      for (uint64_t s = 0; s < noise; ++s) {
        NodeId dest = sample_any(rng);
        uint64_t sessions = 1 + rng.Poisson(cfg.noise_sessions);
        ds.events.push_back(
            {host, dest, window_start + rng.UniformInt(cfg.window_length),
             static_cast<double>(sessions)});
      }
    }

    // Window-boundary churn: each user replaces a fraction of their
    // profile with fresh destinations *of the same category*, so community
    // membership outlives individual picks. Popular services churn much
    // more slowly.
    if (w + 1 < cfg.num_windows) {
      for (uint32_t u = 0; u < num_users; ++u) {
        std::unordered_set<NodeId> used;
        for (const ProfileEntry& e : profile[u]) used.insert(e.dest);
        for (ProfileEntry& e : profile[u]) {
          double churn = cfg.profile_churn;
          if (e.category == Category::kPopular) {
            churn *= cfg.popular_churn_factor;
          } else if (e.category == Category::kTail) {
            churn = std::min(1.0, churn * cfg.tail_churn_factor);
          }
          if (!rng.Bernoulli(churn)) continue;
          for (int attempt = 0; attempt < 8; ++attempt) {
            ProfileEntry fresh = fresh_entry(u, e.category, rng);
            if (used.insert(fresh.dest).second) {
              used.erase(e.dest);
              e = fresh;
              break;
            }
          }
        }
      }
    }
  }

  return ds;
}

}  // namespace commsig
