#include "data/query_log_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/random.h"
#include "data/zipf.h"
#include "graph/graph_builder.h"

namespace commsig {

std::vector<CommGraph> QueryLogDataset::Windows() const {
  TraceWindower windower(interner.size(), window_length, /*start_time=*/0,
                         static_cast<NodeId>(users.size()));
  std::vector<CommGraph> graphs = windower.Split(events);
  while (graphs.size() < num_windows) {
    GraphBuilder builder(interner.size());
    builder.SetBipartiteLeftSize(static_cast<NodeId>(users.size()));
    graphs.push_back(std::move(builder).Build());
  }
  return graphs;
}

QueryLogDataset QueryLogGenerator::Generate() const {
  const QueryLogConfig& cfg = config_;
  assert(cfg.num_users >= 2 && cfg.num_tables >= 4);
  assert(cfg.num_windows >= 2);

  Rng rng(cfg.seed);
  QueryLogDataset ds;
  ds.num_windows = cfg.num_windows;
  ds.window_length = cfg.window_length;

  for (size_t u = 0; u < cfg.num_users; ++u) {
    ds.users.push_back(ds.interner.Intern("user-" + std::to_string(u)));
  }
  std::vector<NodeId> tables;
  tables.reserve(cfg.num_tables);
  for (size_t t = 0; t < cfg.num_tables; ++t) {
    tables.push_back(ds.interner.Intern("table-" + std::to_string(t)));
  }

  ZipfSampler popularity(cfg.num_tables, cfg.zipf_exponent);

  struct Entry {
    NodeId table;
    double rate;
  };
  auto fresh_entry = [&](Rng& r) -> Entry {
    NodeId table = tables[popularity.Sample(r)];
    double rate =
        -cfg.mean_accesses * std::log(1.0 - r.UniformDouble() + 1e-12);
    return {table, std::max(rate, 1.0)};
  };

  std::vector<std::vector<Entry>> working_set(cfg.num_users);
  for (size_t u = 0; u < cfg.num_users; ++u) {
    size_t size =
        std::max<uint64_t>(2, rng.Poisson(cfg.mean_tables_per_user));
    std::unordered_set<NodeId> used;
    while (working_set[u].size() < size) {
      Entry e = fresh_entry(rng);
      if (used.insert(e.table).second) working_set[u].push_back(e);
    }
  }

  for (size_t w = 0; w < cfg.num_windows; ++w) {
    const uint64_t window_start = w * cfg.window_length;
    for (size_t u = 0; u < cfg.num_users; ++u) {
      for (const Entry& e : working_set[u]) {
        uint64_t accesses = rng.Poisson(e.rate);
        if (accesses == 0) continue;
        ds.events.push_back(
            {ds.users[u], e.table,
             window_start + rng.UniformInt(cfg.window_length),
             static_cast<double>(accesses)});
      }
    }
    if (w + 1 < cfg.num_windows) {
      for (size_t u = 0; u < cfg.num_users; ++u) {
        std::unordered_set<NodeId> used;
        for (const Entry& e : working_set[u]) used.insert(e.table);
        for (Entry& e : working_set[u]) {
          if (!rng.Bernoulli(cfg.churn)) continue;
          for (int attempt = 0; attempt < 8; ++attempt) {
            Entry fresh = fresh_entry(rng);
            if (used.insert(fresh.table).second) {
              used.erase(e.table);
              e = fresh;
              break;
            }
          }
        }
      }
    }
  }
  return ds;
}

}  // namespace commsig
