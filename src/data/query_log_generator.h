#ifndef COMMSIG_DATA_QUERY_LOG_GENERATOR_H_
#define COMMSIG_DATA_QUERY_LOG_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/interner.h"
#include "graph/comm_graph.h"
#include "graph/windower.h"

namespace commsig {

/// Configuration of the synthetic data-warehouse query log standing in for
/// the paper's second data set: 851 users querying 979 tables, ~820K
/// (userID, tableID) tuples over 5 periods, edge weight = access count,
/// mean tables-per-user ≈ 6 so the paper's k = 3 is half of it.
struct QueryLogConfig {
  size_t num_users = 851;
  size_t num_tables = 979;
  size_t num_windows = 5;
  /// Window length (arbitrary units; one "period").
  uint64_t window_length = 1000;

  /// Mean size of a user's working set of tables (Poisson, floor 2).
  double mean_tables_per_user = 6.0;
  /// Zipf exponent of table popularity (shared dimension tables are hot;
  /// most fact tables are touched by few users).
  double zipf_exponent = 0.8;
  /// Fraction of the working set replaced each period.
  double churn = 0.06;
  /// Mean accesses per (user, table) per period.
  double mean_accesses = 32.0;

  uint64_t seed = 7;
};

/// A generated query-log workload over the bipartite user -> table graph.
struct QueryLogDataset {
  Interner interner;
  std::vector<TraceEvent> events;
  /// Focal nodes: all users, ids 0..num_users-1 (V1 of the bipartite
  /// graph; tables occupy the remaining ids).
  std::vector<NodeId> users;
  size_t num_windows = 0;
  uint64_t window_length = 0;

  /// One bipartite CommGraph per period.
  std::vector<CommGraph> Windows() const;
};

/// Deterministic generator for QueryLogDatasets. Each user holds a small,
/// highly discriminative working set of tables (distinct users rarely share
/// the same combination even when they share hot tables), which reproduces
/// the paper's Figure 3(b) regime where every scheme scores near-perfect
/// AUC.
class QueryLogGenerator {
 public:
  explicit QueryLogGenerator(QueryLogConfig config) : config_(config) {}

  QueryLogDataset Generate() const;

  const QueryLogConfig& config() const { return config_; }

 private:
  QueryLogConfig config_;
};

}  // namespace commsig

#endif  // COMMSIG_DATA_QUERY_LOG_GENERATOR_H_
