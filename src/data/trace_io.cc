#include "data/trace_io.h"

#include <string>
#include <string_view>
#include <utility>

#include "common/csv.h"
#include "ingest/record_decode.h"

namespace commsig {

Status WriteTraceCsv(const std::vector<TraceEvent>& events,
                     const Interner& interner, const std::string& path) {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-trace src,dst,time,weight"});
  for (const TraceEvent& e : events) {
    writer.WriteRow({interner.LabelOf(e.src), interner.LabelOf(e.dst),
                     std::to_string(e.time), std::to_string(e.weight)});
  }
  return writer.Close();
}

Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner) {
  return ReadTraceCsv(path, interner, IngestOptions{});
}

Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner,
                                             const IngestOptions& options) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();

  std::vector<TraceEvent> events;
  LineScanner scanner(*data);
  std::string_view line;
  std::string_view fields[4];
  uint64_t errors = 0;
  uint64_t last_time = 0;
  bool have_last_time = false;
  while (scanner.Next(line)) {
    // Validation happens fully before interning: a quarantined row must not
    // grow the node universe. Field decoding is shared with the parallel
    // pipeline (ingest/record_decode.h); only the monotonic-time check lives
    // here because it needs cross-row state.
    const size_t count = SplitFields(line, ',', fields, 4);
    ingest::TraceRow row;
    ingest::RowReject reject;
    bool bad = !ingest::DecodeTraceRow(fields, count, row, reject);
    if (!bad && options.require_monotonic_time && have_last_time &&
        row.time < last_time) {
      bad = true;
      reject.reason = RecordErrorReason::kTimestampRegression;
      reject.detail = "time ";
      reject.detail += row.time_text;
      reject.detail += " precedes ";
      reject.detail += std::to_string(last_time);
    }
    if (bad) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, reject.reason, scanner.line_number(),
          std::move(reject.detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    last_time = row.time;
    have_last_time = true;
    events.push_back({interner.Intern(row.src), interner.Intern(row.dst),
                      row.time, row.weight});
  }
  return events;
}

}  // namespace commsig
