#include "data/trace_io.h"

#include "common/csv.h"

namespace commsig {

Status WriteTraceCsv(const std::vector<TraceEvent>& events,
                     const Interner& interner, const std::string& path) {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-trace src,dst,time,weight"});
  for (const TraceEvent& e : events) {
    writer.WriteRow({interner.LabelOf(e.src), interner.LabelOf(e.dst),
                     std::to_string(e.time), std::to_string(e.weight)});
  }
  return writer.Close();
}

Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner) {
  CsvReader reader(path);
  if (!reader.status().ok()) return reader.status();

  std::vector<TraceEvent> events;
  std::vector<std::string> fields;
  while (reader.Next(fields)) {
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          "trace row needs 4 fields at line " +
          std::to_string(reader.line_number()));
    }
    Result<uint64_t> time = ParseUint(fields[2]);
    if (!time.ok()) return time.status();
    Result<double> weight = ParseDouble(fields[3]);
    if (!weight.ok()) return weight.status();
    if (*weight <= 0.0) {
      return Status::InvalidArgument("non-positive weight at line " +
                                     std::to_string(reader.line_number()));
    }
    events.push_back({interner.Intern(fields[0]), interner.Intern(fields[1]),
                      *time, *weight});
  }
  return events;
}

}  // namespace commsig
