#include "data/trace_io.h"

#include <cmath>

#include "common/csv.h"

namespace commsig {

Status WriteTraceCsv(const std::vector<TraceEvent>& events,
                     const Interner& interner, const std::string& path) {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-trace src,dst,time,weight"});
  for (const TraceEvent& e : events) {
    writer.WriteRow({interner.LabelOf(e.src), interner.LabelOf(e.dst),
                     std::to_string(e.time), std::to_string(e.weight)});
  }
  return writer.Close();
}

Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner) {
  return ReadTraceCsv(path, interner, IngestOptions{});
}

Result<std::vector<TraceEvent>> ReadTraceCsv(const std::string& path,
                                             Interner& interner,
                                             const IngestOptions& options) {
  CsvReader reader(path);
  if (!reader.status().ok()) return reader.status();

  std::vector<TraceEvent> events;
  std::vector<std::string> fields;
  uint64_t errors = 0;
  uint64_t last_time = 0;
  bool have_last_time = false;
  while (reader.Next(fields)) {
    const uint64_t line = reader.line_number();
    // Validation happens fully before interning: a quarantined row must not
    // grow the node universe.
    RecordErrorReason reason;
    std::string detail;
    uint64_t time = 0;
    double weight = 0.0;
    bool bad = true;
    if (fields.size() != 4) {
      reason = RecordErrorReason::kBadField;
      detail = "trace row needs 4 fields, got " +
               std::to_string(fields.size());
    } else if (fields[0].empty() || fields[1].empty()) {
      reason = RecordErrorReason::kZeroNode;
      detail = "empty node label";
    } else if (Result<uint64_t> t = ParseUint(fields[2]); !t.ok()) {
      reason = RecordErrorReason::kBadField;
      detail = t.status().message();
    } else if (Result<double> w = ParseDouble(fields[3]); !w.ok()) {
      reason = RecordErrorReason::kBadField;
      detail = w.status().message();
    } else if (!std::isfinite(*w)) {
      reason = RecordErrorReason::kNonFiniteWeight;
      detail = "weight " + fields[3];
    } else if (*w <= 0.0) {
      reason = RecordErrorReason::kNonPositiveWeight;
      detail = "non-positive weight " + fields[3];
    } else if (options.require_monotonic_time && have_last_time &&
               *t < last_time) {
      reason = RecordErrorReason::kTimestampRegression;
      detail = "time " + fields[2] + " precedes " +
               std::to_string(last_time);
    } else {
      bad = false;
      time = *t;
      weight = *w;
    }
    if (bad) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, reason, line, std::move(detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    last_time = time;
    have_last_time = true;
    events.push_back({interner.Intern(fields[0]), interner.Intern(fields[1]),
                      time, weight});
  }
  return events;
}

}  // namespace commsig
