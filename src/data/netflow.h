#ifndef COMMSIG_DATA_NETFLOW_H_
#define COMMSIG_DATA_NETFLOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "graph/windower.h"
#include "robust/record_errors.h"

namespace commsig {

/// One NetFlow v5 flow record (the router-export format the paper cites as
/// the canonical source of aggregated communication "flows"). Only the
/// fields commsig consumes are modelled; the on-disk layout is the full
/// standard 48-byte record.
struct NetflowV5Record {
  uint32_t src_addr = 0;  // IPv4, host byte order
  uint32_t dst_addr = 0;
  uint32_t packets = 0;
  uint32_t octets = 0;
  uint32_t unix_secs = 0;  // export timestamp (from the packet header)
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;  // 6 = TCP, 17 = UDP

  friend bool operator==(const NetflowV5Record&,
                         const NetflowV5Record&) = default;
};

/// How a flow record maps onto an edge weight.
enum class NetflowWeighting {
  kFlows,    // each record contributes 1 (the paper's "TCP sessions")
  kPackets,  // dPkts
  kOctets,   // dOctets
};

struct NetflowReadOptions {
  NetflowWeighting weighting = NetflowWeighting::kFlows;
  /// Keep only this IP protocol (0 = all). The paper uses TCP only (6).
  uint8_t protocol_filter = 0;
};

/// Renders an IPv4 address (host byte order) as dotted decimal.
std::string Ipv4ToString(uint32_t addr);

/// Parses a file of concatenated NetFlow v5 export packets (24-byte header
/// + N x 48-byte records, all fields big-endian) into flow records.
/// Fails with Corruption on truncated packets or non-v5 headers.
Result<std::vector<NetflowV5Record>> ReadNetflowV5File(
    const std::string& path);

/// Lenient variant: under ErrorPolicy::kSkip/kQuarantine, corrupt headers
/// are rejected (kBadMagic / kBadRecordCount) and the reader resynchronizes
/// by scanning forward for the next plausible v5 packet header; a truncated
/// final packet salvages its whole records (kTruncated). With
/// `require_monotonic_time`, a packet whose export timestamp precedes the
/// previous accepted packet's is rejected (kTimestampRegression). Rejections
/// beyond `options.max_errors` fail the read with Corruption.
Result<std::vector<NetflowV5Record>> ReadNetflowV5File(
    const std::string& path, const IngestOptions& options);

/// Converts flow records to TraceEvents, interning dotted-decimal labels.
/// Records filtered out by `options` are skipped; zero-weight records are
/// dropped.
std::vector<TraceEvent> NetflowToEvents(
    const std::vector<NetflowV5Record>& records, Interner& interner,
    const NetflowReadOptions& options = {});

/// Writes records as NetFlow v5 export packets (up to 30 records per
/// packet, per the standard). Used by tests and by simulators exporting
/// commsig workloads to external tools.
Status WriteNetflowV5File(const std::vector<NetflowV5Record>& records,
                          const std::string& path);

}  // namespace commsig

#endif  // COMMSIG_DATA_NETFLOW_H_
