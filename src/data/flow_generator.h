#ifndef COMMSIG_DATA_FLOW_GENERATOR_H_
#define COMMSIG_DATA_FLOW_GENERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "graph/comm_graph.h"
#include "graph/windower.h"

namespace commsig {

/// Configuration of the synthetic enterprise-flow workload that stands in
/// for the paper's proprietary AT&T data set (see DESIGN.md, substitution
/// table). The defaults mirror the paper's regime scaled to bench size:
/// ~300 monitored local hosts talking to a heavy-tailed population of
/// external hosts over six 5-day windows, edge weight = TCP session count,
/// mean focal out-degree ≈ 20 so the paper's k = 10 is half of it.
struct FlowGeneratorConfig {
  size_t num_local_hosts = 300;
  size_t num_external_hosts = 20000;
  size_t num_windows = 6;
  /// Window length in seconds (5 days).
  uint64_t window_length = 5 * 24 * 3600;

  /// --- per-user behaviour profile ---
  /// Mean number of regular destinations per user (Poisson distributed,
  /// floor 4).
  double mean_profile_size = 20.0;
  /// Fraction of profile slots drawn from the globally popular services
  /// (search/mail/video analogues).
  double popular_fraction = 0.15;
  /// Fraction of profile slots drawn from the user's *interest groups* —
  /// overlapping communities of destinations (team servers, industry
  /// sites, hobby forums) shared by the users who belong to the same
  /// group. Each user joins `groups_per_user` of `num_interest_groups`
  /// groups; the membership combination is stable and user-specific even
  /// as the concrete picks churn, which is exactly the community
  /// structure that lets multi-hop signatures out-persist one-hop ones
  /// (paper Section III-B). The remaining slots come from the long tail.
  double community_fraction = 0.6;
  /// How many externals constitute the "universally popular" head.
  size_t num_popular_services = 30;
  /// Number of interest groups in the population.
  size_t num_interest_groups = 100;
  /// Groups each user belongs to.
  size_t groups_per_user = 3;
  /// Destinations per group pool (sampled from the long tail).
  size_t group_pool_size = 15;
  /// Zipf exponent of external-host popularity.
  double zipf_exponent = 1.0;
  /// Per-window probability that a (non-popular) profile destination is
  /// replaced with a fresh one of the same category (behaviour drift).
  double profile_churn = 0.6;
  /// Churn multiplier for popular-service entries: people change mail and
  /// search providers far more slowly than tail destinations.
  double popular_churn_factor = 0.2;
  /// Churn multiplier for long-tail entries (effective churn capped at 1):
  /// private one-off interests rotate almost completely between windows,
  /// so they discriminate within a window but rarely persist across
  /// windows -- the regime where one-hop signatures struggle and multi-hop
  /// community structure pays off (paper Section III-B).
  double tail_churn_factor = 2.0;
  /// Mean sessions per profile destination per window (per-destination
  /// rates are exponential around this, popular services get 3x).
  double mean_sessions = 24.0;
  /// Rate multiplier for popular-service entries relative to community
  /// entries (mail/search traffic is heavier than niche browsing).
  double popular_rate_boost = 2.0;
  /// Rate multiplier for long-tail entries: rare destinations carry light
  /// edges (a handful of sessions), which is what makes the UT scheme —
  /// whose signatures concentrate on exactly these nodes — the least
  /// robust under weight-proportional deletions (paper Fig. 4).
  double tail_rate_factor = 0.15;
  /// Log-normal sigma of the per-(destination, window) activity jitter:
  /// how strongly a destination's session count swings week over week.
  double rate_volatility = 0.9;
  /// Probability that a profile destination is visited at all within one
  /// window. A 5-day window only captures part of a host's habitual
  /// destinations (travel, sparse habits); invisible entries return in
  /// later windows. This is the paper's Section III-B regime: when a node
  /// communicates with a different *subset* of its interests each period,
  /// no one-hop signature can persist, but the multi-hop neighbourhood
  /// still identifies it.
  double profile_visibility = 0.75;
  /// Poisson mean of one-off noise destinations per host-window.
  double noise_destinations = 15.0;
  /// Mean sessions for a noise destination.
  double noise_sessions = 3.0;

  /// --- multiusage ground truth ---
  /// Fraction of users assigned more than one local IP (e.g. desktop +
  /// laptop + hotspot).
  double multi_ip_user_fraction = 0.12;
  /// IP count for a multi-IP user is uniform in [2, max_ips_per_user].
  size_t max_ips_per_user = 3;

  uint64_t seed = 42;
};

/// A generated flow workload: the raw event trace plus everything an
/// experiment needs — the shared node universe, the focal (local) hosts,
/// and the hidden user → hosts ground truth the paper obtained from IP
/// registration records.
struct FlowDataset {
  Interner interner;
  std::vector<TraceEvent> events;
  /// Focal nodes (all local hosts), ascending ids 0..num_local_hosts-1.
  std::vector<NodeId> local_hosts;
  size_t num_windows = 0;
  uint64_t window_length = 0;

  /// Ground truth: user index owning each local host (aligned with
  /// local_hosts), and the inverse map. Hidden from detectors; used only
  /// for evaluation.
  std::vector<uint32_t> user_of_host;
  std::unordered_map<uint32_t, std::vector<NodeId>> hosts_of_user;

  /// Aggregates the event trace into one bipartite CommGraph per window
  /// (local hosts = V1).
  std::vector<CommGraph> Windows() const;
};

/// Generates FlowDatasets. Deterministic for a fixed config (including
/// seed).
///
/// Generative model: each *user* owns one or more local IPs and a
/// persistent interest profile — a set of external destinations with
/// per-destination session rates, mixing globally popular services with
/// long-tail destinations specific to the user. Every window, each owned
/// IP emits Poisson session counts per profile destination (scaled by a
/// per-IP activity level), a churn fraction of the profile is replaced,
/// and a few one-off noise destinations are visited. This reproduces the
/// trace structure the paper's findings rest on: heavy-tailed destination
/// popularity, per-host stable favourites, noise, and drift.
class FlowTraceGenerator {
 public:
  explicit FlowTraceGenerator(FlowGeneratorConfig config)
      : config_(config) {}

  FlowDataset Generate() const;

  const FlowGeneratorConfig& config() const { return config_; }

 private:
  FlowGeneratorConfig config_;
};

}  // namespace commsig

#endif  // COMMSIG_DATA_FLOW_GENERATOR_H_
