#include "data/netflow.h"

#include <algorithm>
#include <fstream>
#include <iterator>

#include "ingest/record_decode.h"

namespace commsig {

namespace {

constexpr size_t kHeaderBytes = 24;
constexpr size_t kRecordBytes = 48;
constexpr size_t kMaxRecordsPerPacket = 30;

// Big-endian (network order) readers/writers; the read side is shared with
// the pipeline framer via ingest/record_decode.h.
using ingest::ReadU16Be;
using ingest::ReadU32Be;

void WriteU16(unsigned char* p, uint16_t v) {
  p[0] = static_cast<unsigned char>(v >> 8);
  p[1] = static_cast<unsigned char>(v);
}
void WriteU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v >> 24);
  p[1] = static_cast<unsigned char>(v >> 16);
  p[2] = static_cast<unsigned char>(v >> 8);
  p[3] = static_cast<unsigned char>(v);
}

}  // namespace

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  return std::string(buf, ingest::FormatIpv4(addr, buf));
}

Result<std::vector<NetflowV5Record>> ReadNetflowV5File(
    const std::string& path) {
  return ReadNetflowV5File(path, IngestOptions{});
}

Result<std::vector<NetflowV5Record>> ReadNetflowV5File(
    const std::string& path, const IngestOptions& options) {
  // Whole-file buffering keeps byte offsets exact for quarantine reports and
  // makes header resynchronization a plain scan; one export file covers one
  // observation window, so the buffer is bounded by window size.
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();

  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data->data());
  const size_t size = data->size();

  // First offset >= `from` holding a plausible v5 header, or `size`.
  auto resync = [&](size_t from) {
    for (size_t o = from; o + kHeaderBytes <= size; ++o) {
      if (ReadU16Be(bytes + o) != 5) continue;
      const uint16_t count = ReadU16Be(bytes + o + 2);
      if (count >= 1 && count <= kMaxRecordsPerPacket) return o;
    }
    return size;
  };

  std::vector<NetflowV5Record> records;
  uint64_t errors = 0;
  uint32_t last_secs = 0;
  bool have_last_secs = false;
  size_t offset = 0;
  while (offset < size) {
    if (size - offset < kHeaderBytes) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, RecordErrorReason::kTruncated, offset,
          "trailing partial header");
      if (!s.ok()) return s;
      break;
    }
    const uint16_t version = ReadU16Be(bytes + offset);
    const uint16_t count = ReadU16Be(bytes + offset + 2);
    const uint32_t unix_secs = ReadU32Be(bytes + offset + 8);
    if (version != 5) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, RecordErrorReason::kBadMagic, offset,
          "not a NetFlow v5 header (version " + std::to_string(version) +
              ")");
      if (!s.ok()) return s;
      offset = resync(offset + 1);
      continue;
    }
    if (count == 0 || count > kMaxRecordsPerPacket) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, RecordErrorReason::kBadRecordCount, offset,
          "invalid record count " + std::to_string(count));
      if (!s.ok()) return s;
      offset = resync(offset + 1);
      continue;
    }
    const size_t body = offset + kHeaderBytes;
    if (options.require_monotonic_time && have_last_secs &&
        unix_secs < last_secs) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, RecordErrorReason::kTimestampRegression, offset,
          "export time " + std::to_string(unix_secs) + " precedes " +
              std::to_string(last_secs));
      if (!s.ok()) return s;
      offset = std::min(size, body + count * kRecordBytes);
      continue;
    }
    // Whole records present in the buffer; a short final packet salvages
    // these and reports the cut as truncation.
    const size_t whole =
        std::min<size_t>(count, (size - body) / kRecordBytes);
    for (size_t i = 0; i < whole; ++i) {
      records.push_back(ingest::DecodeNetflowRecord(
          bytes + body + i * kRecordBytes, unix_secs));
    }
    if (whole < count) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, RecordErrorReason::kTruncated,
          body + whole * kRecordBytes, "truncated NetFlow packet");
      if (!s.ok()) return s;
      break;
    }
    have_last_secs = true;
    last_secs = unix_secs;
    offset = body + count * kRecordBytes;
  }
  return records;
}

std::vector<TraceEvent> NetflowToEvents(
    const std::vector<NetflowV5Record>& records, Interner& interner,
    const NetflowReadOptions& options) {
  std::vector<TraceEvent> events;
  events.reserve(records.size());
  // The label cache formats/hashes/interns each distinct address once; flow
  // traces revisit a small address set, so the per-record cost drops to two
  // memo lookups. Addresses still hit the interner in stream order, so id
  // assignment is identical to the historical per-record Intern calls.
  ingest::Ipv4LabelCache labels;
  for (const NetflowV5Record& r : records) {
    double weight = 0.0;
    if (!ingest::NetflowEventWeight(r, options, weight)) continue;
    events.push_back({labels.Intern(r.src_addr, interner),
                      labels.Intern(r.dst_addr, interner), r.unix_secs,
                      weight});
  }
  return events;
}

Status WriteNetflowV5File(const std::vector<NetflowV5Record>& records,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  size_t cursor = 0;
  uint32_t sequence = 0;
  while (cursor < records.size()) {
    const size_t batch =
        std::min(kMaxRecordsPerPacket, records.size() - cursor);
    unsigned char header[kHeaderBytes] = {};
    WriteU16(header, 5);
    WriteU16(header + 2, static_cast<uint16_t>(batch));
    WriteU32(header + 4, 0);  // sysuptime
    WriteU32(header + 8, records[cursor].unix_secs);
    WriteU32(header + 12, 0);  // unix nsecs
    WriteU32(header + 16, sequence);
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
    for (size_t i = 0; i < batch; ++i) {
      const NetflowV5Record& r = records[cursor + i];
      unsigned char rec[kRecordBytes] = {};
      WriteU32(rec, r.src_addr);
      WriteU32(rec + 4, r.dst_addr);
      WriteU32(rec + 16, r.packets);
      WriteU32(rec + 20, r.octets);
      WriteU16(rec + 32, r.src_port);
      WriteU16(rec + 34, r.dst_port);
      rec[38] = r.protocol;
      out.write(reinterpret_cast<const char*>(rec), kRecordBytes);
    }
    sequence += static_cast<uint32_t>(batch);
    cursor += batch;
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace commsig
