#include "data/netflow.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace commsig {

namespace {

constexpr size_t kHeaderBytes = 24;
constexpr size_t kRecordBytes = 48;
constexpr size_t kMaxRecordsPerPacket = 30;

// Big-endian (network order) readers/writers.
uint16_t ReadU16(const unsigned char* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t ReadU32(const unsigned char* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}
void WriteU16(unsigned char* p, uint16_t v) {
  p[0] = static_cast<unsigned char>(v >> 8);
  p[1] = static_cast<unsigned char>(v);
}
void WriteU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v >> 24);
  p[1] = static_cast<unsigned char>(v >> 16);
  p[2] = static_cast<unsigned char>(v >> 8);
  p[3] = static_cast<unsigned char>(v);
}

}  // namespace

std::string Ipv4ToString(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

Result<std::vector<NetflowV5Record>> ReadNetflowV5File(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);

  std::vector<NetflowV5Record> records;
  unsigned char header[kHeaderBytes];
  while (in.read(reinterpret_cast<char*>(header), kHeaderBytes)) {
    const uint16_t version = ReadU16(header);
    const uint16_t count = ReadU16(header + 2);
    const uint32_t unix_secs = ReadU32(header + 8);
    if (version != 5) {
      return Status::Corruption("not a NetFlow v5 header (version " +
                                std::to_string(version) + ")");
    }
    if (count == 0 || count > kMaxRecordsPerPacket) {
      return Status::Corruption("invalid record count " +
                                std::to_string(count));
    }
    for (uint16_t i = 0; i < count; ++i) {
      unsigned char rec[kRecordBytes];
      if (!in.read(reinterpret_cast<char*>(rec), kRecordBytes)) {
        return Status::Corruption("truncated NetFlow packet");
      }
      NetflowV5Record r;
      r.src_addr = ReadU32(rec);
      r.dst_addr = ReadU32(rec + 4);
      // rec+8: nexthop; rec+12: input/output ifindex.
      r.packets = ReadU32(rec + 16);
      r.octets = ReadU32(rec + 20);
      // rec+24: first; rec+28: last (sysuptime ms).
      r.src_port = ReadU16(rec + 32);
      r.dst_port = ReadU16(rec + 34);
      // rec+36: pad; rec+37: tcp_flags.
      r.protocol = rec[38];
      r.unix_secs = unix_secs;
      records.push_back(r);
    }
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  // A trailing partial header is corruption; eof exactly at a packet
  // boundary is success.
  if (in.gcount() != 0) return Status::Corruption("trailing partial header");
  return records;
}

std::vector<TraceEvent> NetflowToEvents(
    const std::vector<NetflowV5Record>& records, Interner& interner,
    const NetflowReadOptions& options) {
  std::vector<TraceEvent> events;
  events.reserve(records.size());
  for (const NetflowV5Record& r : records) {
    if (options.protocol_filter != 0 &&
        r.protocol != options.protocol_filter) {
      continue;
    }
    double weight = 1.0;
    switch (options.weighting) {
      case NetflowWeighting::kFlows:
        weight = 1.0;
        break;
      case NetflowWeighting::kPackets:
        weight = static_cast<double>(r.packets);
        break;
      case NetflowWeighting::kOctets:
        weight = static_cast<double>(r.octets);
        break;
    }
    if (weight <= 0.0) continue;
    events.push_back({interner.Intern(Ipv4ToString(r.src_addr)),
                      interner.Intern(Ipv4ToString(r.dst_addr)),
                      r.unix_secs, weight});
  }
  return events;
}

Status WriteNetflowV5File(const std::vector<NetflowV5Record>& records,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  size_t cursor = 0;
  uint32_t sequence = 0;
  while (cursor < records.size()) {
    const size_t batch =
        std::min(kMaxRecordsPerPacket, records.size() - cursor);
    unsigned char header[kHeaderBytes] = {};
    WriteU16(header, 5);
    WriteU16(header + 2, static_cast<uint16_t>(batch));
    WriteU32(header + 4, 0);  // sysuptime
    WriteU32(header + 8, records[cursor].unix_secs);
    WriteU32(header + 12, 0);  // unix nsecs
    WriteU32(header + 16, sequence);
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
    for (size_t i = 0; i < batch; ++i) {
      const NetflowV5Record& r = records[cursor + i];
      unsigned char rec[kRecordBytes] = {};
      WriteU32(rec, r.src_addr);
      WriteU32(rec + 4, r.dst_addr);
      WriteU32(rec + 16, r.packets);
      WriteU32(rec + 20, r.octets);
      WriteU16(rec + 32, r.src_port);
      WriteU16(rec + 34, r.dst_port);
      rec[38] = r.protocol;
      out.write(reinterpret_cast<const char*>(rec), kRecordBytes);
    }
    sequence += static_cast<uint32_t>(batch);
    cursor += batch;
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace commsig
