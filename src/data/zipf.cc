#include "data/zipf.h"

#include <cassert>
#include <cmath>

namespace commsig {

std::vector<double> ZipfWeights(size_t n, double exponent) {
  assert(n > 0);
  std::vector<double> weights(n);
  for (size_t r = 0; r < n; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), exponent);
  }
  return weights;
}

ZipfSampler::ZipfSampler(size_t n, double exponent)
    : exponent_(exponent), sampler_(ZipfWeights(n, exponent)) {}

double ZipfSampler::WeightOfRank(size_t r) const {
  return 1.0 / std::pow(static_cast<double>(r + 1), exponent_);
}

}  // namespace commsig
