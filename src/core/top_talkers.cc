#include "core/top_talkers.h"

#include <vector>

#include "graph/graph_delta.h"
#include "obs/obs.h"

namespace commsig {

Signature TopTalkersScheme::Compute(const CommGraph& g, NodeId v) const {
  COMMSIG_SPAN("top_talkers/compute");
  const double total = g.OutWeight(v);
  if (total <= 0.0) return Signature();

  std::vector<Signature::Entry> candidates;
  candidates.reserve(g.OutDegree(v));
  for (const Edge& e : g.OutEdges(v)) {
    if (!KeepCandidate(g, v, e.node)) continue;
    candidates.push_back({e.node, e.weight / total});
  }
  return Signature::FromTopK(std::move(candidates), options_.k);
}

std::vector<Signature> TopTalkersScheme::IncrementalComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes, const GraphDelta* delta,
    std::vector<Signature> previous,
    std::unique_ptr<IncrementalState>& state) const {
  (void)state;
  if (delta == nullptr || previous.size() != nodes.size()) {
    COMMSIG_COUNTER_ADD("timeline/nodes_dirty", nodes.size());
    return ComputeAll(g, nodes);
  }
  return RecomputeDirty(g, nodes, std::move(previous),
                        [&](NodeId v) { return delta->OutChanged(v); });
}

std::unique_ptr<SignatureScheme> MakeTopTalkers(SchemeOptions options) {
  return std::make_unique<TopTalkersScheme>(options);
}

}  // namespace commsig
