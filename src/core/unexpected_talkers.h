#ifndef COMMSIG_CORE_UNEXPECTED_TALKERS_H_
#define COMMSIG_CORE_UNEXPECTED_TALKERS_H_

#include <string>

#include "core/scheme.h"

namespace commsig {

/// Unexpected Talkers (paper Definition 4): w_ij = C[i,j] / |I(j)| —
/// outgoing volume scaled down by the destination's in-degree, so
/// universally popular nodes (search engines, mail servers) stop dominating
/// signatures. A TF-IDF-style variant w_ij = C[i,j] * log(|V| / |I(j)|) is
/// also provided (the paper reports little difference between scalings).
///
/// Exploits novelty and locality; expected to excel at uniqueness.
class UnexpectedTalkersScheme final : public SignatureScheme {
 public:
  UnexpectedTalkersScheme(SchemeOptions options, UtWeighting weighting)
      : SignatureScheme(options), weighting_(weighting) {}

  std::string name() const override {
    return weighting_ == UtWeighting::kInverseInDegree ? "ut" : "ut-tfidf";
  }

  SchemeTraits traits() const override {
    return {{GraphCharacteristic::kNovelty, GraphCharacteristic::kLocality},
            {SignatureProperty::kUniqueness}};
  }

  Signature Compute(const CommGraph& g, NodeId v) const override;

 private:
  UtWeighting weighting_;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_UNEXPECTED_TALKERS_H_
