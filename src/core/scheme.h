#ifndef COMMSIG_CORE_SCHEME_H_
#define COMMSIG_CORE_SCHEME_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/signature.h"
#include "graph/comm_graph.h"

namespace commsig {

class GraphDelta;

/// The paper's three fundamental signature properties (Definition 2).
enum class SignatureProperty {
  kPersistence,
  kUniqueness,
  kRobustness,
};

/// Communication-graph characteristics a scheme can exploit (Section III).
enum class GraphCharacteristic {
  kEngagement,    // edge weight / communication strength
  kNovelty,       // low in-degree neighbours are more discriminating
  kLocality,      // nearby nodes are more relevant
  kTransitivity,  // many connecting paths imply closeness
};

/// Requirement level in the paper's Table I.
enum class Requirement { kLow, kMedium, kHigh };

/// One row of Table I: which property levels an application needs.
struct ApplicationRequirement {
  std::string_view application;
  Requirement persistence;
  Requirement uniqueness;
  Requirement robustness;
};

/// The paper's Table I (application -> property requirements).
std::span<const ApplicationRequirement> ApplicationRequirements();

/// One row of Table II: characteristic -> properties it supports.
struct CharacteristicLink {
  GraphCharacteristic characteristic;
  std::vector<SignatureProperty> properties;
};

/// The paper's Table II.
const std::vector<CharacteristicLink>& CharacteristicLinks();

/// Per-scheme metadata mirroring Table III: the characteristics a scheme
/// exploits and the properties it is therefore expected to deliver.
struct SchemeTraits {
  std::vector<GraphCharacteristic> characteristics;
  std::vector<SignatureProperty> properties;
};

/// Options common to all signature schemes.
struct SchemeOptions {
  /// Signature length: the (at most) k highest-relevance nodes are kept
  /// (paper Definition 1). The paper uses k = 10 on flow data, k = 3 on
  /// query logs — half the mean focal out-degree.
  size_t k = 10;

  /// For bipartite graphs, restrict signature members to the partition
  /// opposite the focal node (the paper's V1 -> V2 restriction). Ignored
  /// for non-bipartite graphs.
  bool restrict_to_opposite_partition = false;
};

/// Opaque scheme-owned warm state threaded through consecutive
/// IncrementalComputeAll calls (e.g. RWR stationary-vector supports). The
/// caller keeps one slot per (scheme, focal set) sequence and never
/// inspects it; resetting to nullptr forces the next call to re-prime.
class IncrementalState {
 public:
  virtual ~IncrementalState() = default;

  IncrementalState() = default;
  IncrementalState(const IncrementalState&) = delete;
  IncrementalState& operator=(const IncrementalState&) = delete;
};

/// Interface implemented by every signature scheme (TT, UT, RWR, ...).
///
/// A scheme maps (window graph, focal node) -> Signature. Schemes are
/// stateless with respect to graphs: the same scheme object can be applied
/// to every window of a data set.
class SignatureScheme {
 public:
  explicit SignatureScheme(SchemeOptions options) : options_(options) {}
  virtual ~SignatureScheme() = default;

  SignatureScheme(const SignatureScheme&) = delete;
  SignatureScheme& operator=(const SignatureScheme&) = delete;

  /// Short spec-style name, e.g. "tt", "ut", "rwr(c=0.1,h=3)".
  virtual std::string name() const = 0;

  /// Table III metadata for this scheme.
  virtual SchemeTraits traits() const = 0;

  /// Computes the signature of `v` in `g`. `v` must be < g.NumNodes().
  virtual Signature Compute(const CommGraph& g, NodeId v) const = 0;

  /// Computes signatures for a set of focal nodes (the enterprise-data
  /// "local hosts"). The default loops over Compute; schemes whose
  /// per-source work shares expensive state override it with a batched
  /// implementation (RwrScheme amortizes one graph scan over a window of
  /// sources), so all-population sweeps should prefer this entry point.
  virtual std::vector<Signature> ComputeAll(const CommGraph& g,
                                            std::span<const NodeId> nodes) const;

  /// Window-transition sweep: computes the signatures of `nodes` on `g`
  /// given the signatures they had on the previous window (`previous`,
  /// index-aligned with `nodes`) and the structural diff between the two
  /// windows (`delta`, with delta->new_graph() == g). Passing delta ==
  /// nullptr (or a mismatched `previous`) primes the sequence: a full
  /// ComputeAll that also initializes `state`. `state` is the scheme's
  /// opaque warm state — thread the same slot through every transition of
  /// one window sequence and through nothing else.
  ///
  /// The default recomputes exactly the LocalDirty focal nodes (out-row
  /// changed, or an out-neighbour's in-degree changed) and reuses every
  /// clean Signature — bit-identical to ComputeAll for any scheme
  /// whose signature reads only the focal out-row and its endpoints'
  /// in-degrees (TT narrows the rule; UT uses it as-is). Schemes with
  /// global dependence (RWR, rwr-push) MUST override: the base rule is
  /// wrong for them. Reuse/recompute volumes are counted under
  /// `timeline/nodes_reused` / `timeline/nodes_dirty`.
  ///
  /// `previous` is taken by value so clean signatures are *moved* into the
  /// result, not copied — a reuse must cost O(1), or high-overlap sweeps
  /// of cheap schemes would spend their savings on allocation. Callers that
  /// still need the previous window's signatures pass an explicit copy.
  virtual std::vector<Signature> IncrementalComputeAll(
      const CommGraph& g, std::span<const NodeId> nodes,
      const GraphDelta* delta, std::vector<Signature> previous,
      std::unique_ptr<IncrementalState>& state) const;

  const SchemeOptions& options() const { return options_; }

 protected:
  /// Shared skeleton for dirty-set incremental sweeps: recomputes the nodes
  /// `is_dirty` flags (batched through ComputeAll, so schemes with batched
  /// sweeps keep their amortization) and moves `previous` through for the
  /// rest, maintaining the timeline/* counters.
  std::vector<Signature> RecomputeDirty(
      const CommGraph& g, std::span<const NodeId> nodes,
      std::vector<Signature> previous,
      const std::function<bool(NodeId)>& is_dirty) const;

  /// Definition-1 candidate filter: rejects the focal node itself and, when
  /// requested and the graph is bipartite, nodes in the focal node's own
  /// partition.
  bool KeepCandidate(const CommGraph& g, NodeId focal, NodeId candidate) const;

  SchemeOptions options_;
};

/// How UnexpectedTalkers scales down universally popular destinations.
enum class UtWeighting {
  /// w_ij = C[i,j] / |I(j)| (paper Definition 4).
  kInverseInDegree,
  /// w_ij = C[i,j] * log(|V| / |I(j)|) — the TF-IDF analogue the paper
  /// mentions; reported to behave very similarly.
  kTfIdf,
};

/// How a random walk traverses directed edges.
enum class TraversalMode {
  /// Follow out-edges only.
  kDirected,
  /// Treat every edge as traversable in both directions. This is the mode
  /// that makes multi-hop walks meaningful on one-way monitored traces
  /// (e.g. enterprise data where only local->external flows are captured):
  /// the walk alternates local -> external -> other local -> ...
  kSymmetric,
};

/// Parameters of the Random Walk with Resets scheme (Definition 5).
struct RwrOptions {
  /// Reset (teleport) probability c. The paper evaluates c = 0.1 and notes
  /// that c -> 0.9 collapses RWR onto TT.
  double reset = 0.1;

  /// Hop bound h: run exactly this many power-iteration steps (RWR^h).
  /// 0 means unbounded — iterate to convergence (full RWR).
  size_t max_hops = 0;

  /// Convergence threshold on the L1 change of the probability vector,
  /// used only when max_hops == 0.
  double tolerance = 1e-10;

  /// Iteration cap for the unbounded walk. The per-iteration contraction
  /// factor is (1 - reset), so reaching `tolerance` needs roughly
  /// ln(tolerance) / ln(1 - reset) iterations — about 220 at the defaults.
  /// The cap must stay above that or the walk can never converge and the
  /// fallback ladder fires on every call.
  size_t max_iterations = 500;

  /// Degradation ladder: when the unbounded walk hits max_iterations
  /// without meeting `tolerance`, Compute falls back to the truncated
  /// RWR^h walk with this hop bound instead of silently using the
  /// unconverged vector. 0 disables the fallback (the unconverged vector
  /// is used as-is). Fallbacks are counted under `robust/rwr_fallbacks`.
  size_t fallback_hops = 4;

  TraversalMode traversal = TraversalMode::kSymmetric;

  /// Incremental sweeps (IncrementalComputeAll): a focal node's previous
  /// signature is reused while its accumulated drift-bound estimate —
  /// sum over its stored stationary support of occupancy mass times the
  /// changed rows' normalized-transition L1 drift, scaled by the walk's
  /// geometric amplification factor — stays at or below this L1 bound.
  /// 0 disables reuse entirely (every node re-solves each window); nodes
  /// whose support touches no changed row estimate exactly 0 and are
  /// reused at any setting. See DESIGN.md §11 for the bound.
  double incremental_max_drift = 1e-6;

  /// Unbounded walks whose drift estimate exceeds incremental_max_drift
  /// but stays at or below this limit are warm-started: the power
  /// iteration is seeded with the previous stationary vector, so it pays
  /// ~ln(drift/tolerance) contraction steps instead of ~ln(1/tolerance).
  /// Above the limit (or when the warm solve fails to converge) the node
  /// joins the cold batched re-solve, counted under
  /// `timeline/rwr_warm_start_fallbacks`.
  double incremental_warm_drift = 0.25;
};

/// Factory helpers.
std::unique_ptr<SignatureScheme> MakeTopTalkers(SchemeOptions options);
std::unique_ptr<SignatureScheme> MakeUnexpectedTalkers(
    SchemeOptions options, UtWeighting weighting = UtWeighting::kInverseInDegree);
std::unique_ptr<SignatureScheme> MakeRwr(SchemeOptions options,
                                         RwrOptions rwr_options);

/// Creates a scheme from a spec string, as used by the benchmark binaries
/// and the CLI:
///   "tt" | "ut" | "ut-tfidf" | "rwr(c=C)" | "rwr(c=C,h=H)"
///   | "rwr-push(c=C,eps=E)"
/// rwr specs also accept "mode=directed|symmetric".
/// Returns InvalidArgument for unknown specs or malformed parameters.
Result<std::unique_ptr<SignatureScheme>> CreateScheme(std::string_view spec,
                                                      SchemeOptions options);

}  // namespace commsig

#endif  // COMMSIG_CORE_SCHEME_H_
