#ifndef COMMSIG_CORE_SCHEME_H_
#define COMMSIG_CORE_SCHEME_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/signature.h"
#include "graph/comm_graph.h"

namespace commsig {

/// The paper's three fundamental signature properties (Definition 2).
enum class SignatureProperty {
  kPersistence,
  kUniqueness,
  kRobustness,
};

/// Communication-graph characteristics a scheme can exploit (Section III).
enum class GraphCharacteristic {
  kEngagement,    // edge weight / communication strength
  kNovelty,       // low in-degree neighbours are more discriminating
  kLocality,      // nearby nodes are more relevant
  kTransitivity,  // many connecting paths imply closeness
};

/// Requirement level in the paper's Table I.
enum class Requirement { kLow, kMedium, kHigh };

/// One row of Table I: which property levels an application needs.
struct ApplicationRequirement {
  std::string_view application;
  Requirement persistence;
  Requirement uniqueness;
  Requirement robustness;
};

/// The paper's Table I (application -> property requirements).
std::span<const ApplicationRequirement> ApplicationRequirements();

/// One row of Table II: characteristic -> properties it supports.
struct CharacteristicLink {
  GraphCharacteristic characteristic;
  std::vector<SignatureProperty> properties;
};

/// The paper's Table II.
const std::vector<CharacteristicLink>& CharacteristicLinks();

/// Per-scheme metadata mirroring Table III: the characteristics a scheme
/// exploits and the properties it is therefore expected to deliver.
struct SchemeTraits {
  std::vector<GraphCharacteristic> characteristics;
  std::vector<SignatureProperty> properties;
};

/// Options common to all signature schemes.
struct SchemeOptions {
  /// Signature length: the (at most) k highest-relevance nodes are kept
  /// (paper Definition 1). The paper uses k = 10 on flow data, k = 3 on
  /// query logs — half the mean focal out-degree.
  size_t k = 10;

  /// For bipartite graphs, restrict signature members to the partition
  /// opposite the focal node (the paper's V1 -> V2 restriction). Ignored
  /// for non-bipartite graphs.
  bool restrict_to_opposite_partition = false;
};

/// Interface implemented by every signature scheme (TT, UT, RWR, ...).
///
/// A scheme maps (window graph, focal node) -> Signature. Schemes are
/// stateless with respect to graphs: the same scheme object can be applied
/// to every window of a data set.
class SignatureScheme {
 public:
  explicit SignatureScheme(SchemeOptions options) : options_(options) {}
  virtual ~SignatureScheme() = default;

  SignatureScheme(const SignatureScheme&) = delete;
  SignatureScheme& operator=(const SignatureScheme&) = delete;

  /// Short spec-style name, e.g. "tt", "ut", "rwr(c=0.1,h=3)".
  virtual std::string name() const = 0;

  /// Table III metadata for this scheme.
  virtual SchemeTraits traits() const = 0;

  /// Computes the signature of `v` in `g`. `v` must be < g.NumNodes().
  virtual Signature Compute(const CommGraph& g, NodeId v) const = 0;

  /// Computes signatures for a set of focal nodes (the enterprise-data
  /// "local hosts"). The default loops over Compute; schemes whose
  /// per-source work shares expensive state override it with a batched
  /// implementation (RwrScheme amortizes one graph scan over a window of
  /// sources), so all-population sweeps should prefer this entry point.
  virtual std::vector<Signature> ComputeAll(const CommGraph& g,
                                            std::span<const NodeId> nodes) const;

  const SchemeOptions& options() const { return options_; }

 protected:
  /// Definition-1 candidate filter: rejects the focal node itself and, when
  /// requested and the graph is bipartite, nodes in the focal node's own
  /// partition.
  bool KeepCandidate(const CommGraph& g, NodeId focal, NodeId candidate) const;

  SchemeOptions options_;
};

/// How UnexpectedTalkers scales down universally popular destinations.
enum class UtWeighting {
  /// w_ij = C[i,j] / |I(j)| (paper Definition 4).
  kInverseInDegree,
  /// w_ij = C[i,j] * log(|V| / |I(j)|) — the TF-IDF analogue the paper
  /// mentions; reported to behave very similarly.
  kTfIdf,
};

/// How a random walk traverses directed edges.
enum class TraversalMode {
  /// Follow out-edges only.
  kDirected,
  /// Treat every edge as traversable in both directions. This is the mode
  /// that makes multi-hop walks meaningful on one-way monitored traces
  /// (e.g. enterprise data where only local->external flows are captured):
  /// the walk alternates local -> external -> other local -> ...
  kSymmetric,
};

/// Parameters of the Random Walk with Resets scheme (Definition 5).
struct RwrOptions {
  /// Reset (teleport) probability c. The paper evaluates c = 0.1 and notes
  /// that c -> 0.9 collapses RWR onto TT.
  double reset = 0.1;

  /// Hop bound h: run exactly this many power-iteration steps (RWR^h).
  /// 0 means unbounded — iterate to convergence (full RWR).
  size_t max_hops = 0;

  /// Convergence threshold on the L1 change of the probability vector,
  /// used only when max_hops == 0.
  double tolerance = 1e-10;

  /// Iteration cap for the unbounded walk. The per-iteration contraction
  /// factor is (1 - reset), so reaching `tolerance` needs roughly
  /// ln(tolerance) / ln(1 - reset) iterations — about 220 at the defaults.
  /// The cap must stay above that or the walk can never converge and the
  /// fallback ladder fires on every call.
  size_t max_iterations = 500;

  /// Degradation ladder: when the unbounded walk hits max_iterations
  /// without meeting `tolerance`, Compute falls back to the truncated
  /// RWR^h walk with this hop bound instead of silently using the
  /// unconverged vector. 0 disables the fallback (the unconverged vector
  /// is used as-is). Fallbacks are counted under `robust/rwr_fallbacks`.
  size_t fallback_hops = 4;

  TraversalMode traversal = TraversalMode::kSymmetric;
};

/// Factory helpers.
std::unique_ptr<SignatureScheme> MakeTopTalkers(SchemeOptions options);
std::unique_ptr<SignatureScheme> MakeUnexpectedTalkers(
    SchemeOptions options, UtWeighting weighting = UtWeighting::kInverseInDegree);
std::unique_ptr<SignatureScheme> MakeRwr(SchemeOptions options,
                                         RwrOptions rwr_options);

/// Creates a scheme from a spec string, as used by the benchmark binaries
/// and the CLI:
///   "tt" | "ut" | "ut-tfidf" | "rwr(c=C)" | "rwr(c=C,h=H)"
///   | "rwr-push(c=C,eps=E)"
/// rwr specs also accept "mode=directed|symmetric".
/// Returns InvalidArgument for unknown specs or malformed parameters.
Result<std::unique_ptr<SignatureScheme>> CreateScheme(std::string_view spec,
                                                      SchemeOptions options);

}  // namespace commsig

#endif  // COMMSIG_CORE_SCHEME_H_
