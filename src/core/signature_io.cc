#include "core/signature_io.h"

#include <limits>
#include <unordered_map>

#include "common/csv.h"

namespace commsig {

size_t SignatureSet::Find(NodeId owner) const {
  for (size_t i = 0; i < owners.size(); ++i) {
    if (owners[i] == owner) return i;
  }
  return std::numeric_limits<size_t>::max();
}

Status WriteSignatureSetCsv(const SignatureSet& set, const Interner& interner,
                            const std::string& path) {
  if (set.owners.size() != set.signatures.size()) {
    return Status::InvalidArgument("owners/signatures size mismatch");
  }
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-signatures owner,member,weight"});
  for (size_t i = 0; i < set.owners.size(); ++i) {
    const std::string& owner = interner.LabelOf(set.owners[i]);
    if (set.signatures[i].empty()) {
      writer.WriteRow({owner, "", "0"});
      continue;
    }
    for (const Signature::Entry& e : set.signatures[i].entries()) {
      writer.WriteRow(
          {owner, interner.LabelOf(e.node), std::to_string(e.weight)});
    }
  }
  return writer.Close();
}

Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner) {
  CsvReader reader(path);
  if (!reader.status().ok()) return reader.status();

  // Collect entries per owner, preserving first-seen owner order.
  std::vector<NodeId> order;
  std::unordered_map<NodeId, std::vector<Signature::Entry>> entries;
  std::vector<std::string> fields;
  while (reader.Next(fields)) {
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "signature row needs 3 fields at line " +
          std::to_string(reader.line_number()));
    }
    NodeId owner = interner.Intern(fields[0]);
    if (!entries.contains(owner)) {
      order.push_back(owner);
      entries.emplace(owner, std::vector<Signature::Entry>{});
    }
    if (fields[1].empty()) continue;  // empty-signature marker
    Result<double> weight = ParseDouble(fields[2]);
    if (!weight.ok()) return weight.status();
    if (*weight <= 0.0) {
      return Status::InvalidArgument("non-positive weight at line " +
                                     std::to_string(reader.line_number()));
    }
    entries[owner].push_back({interner.Intern(fields[1]), *weight});
  }

  SignatureSet set;
  for (NodeId owner : order) {
    set.owners.push_back(owner);
    auto& e = entries[owner];
    const size_t k = e.size();
    set.signatures.push_back(Signature::FromTopK(std::move(e), k));
  }
  return set;
}

}  // namespace commsig
