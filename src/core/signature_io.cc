#include "core/signature_io.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/csv.h"

namespace commsig {

size_t SignatureSet::Find(NodeId owner) const {
  for (size_t i = 0; i < owners.size(); ++i) {
    if (owners[i] == owner) return i;
  }
  return std::numeric_limits<size_t>::max();
}

Status WriteSignatureSetCsv(const SignatureSet& set, const Interner& interner,
                            const std::string& path) {
  if (set.owners.size() != set.signatures.size()) {
    return Status::InvalidArgument("owners/signatures size mismatch");
  }
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-signatures owner,member,weight"});
  for (size_t i = 0; i < set.owners.size(); ++i) {
    const std::string& owner = interner.LabelOf(set.owners[i]);
    if (set.signatures[i].empty()) {
      writer.WriteRow({owner, "", "0"});
      continue;
    }
    for (const Signature::Entry& e : set.signatures[i].entries()) {
      writer.WriteRow(
          {owner, interner.LabelOf(e.node), std::to_string(e.weight)});
    }
  }
  return writer.Close();
}

Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner) {
  return ReadSignatureSetCsv(path, interner, IngestOptions{});
}

Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner,
                                         const IngestOptions& options) {
  CsvReader reader(path);
  if (!reader.status().ok()) return reader.status();

  // Collect entries per owner, preserving first-seen owner order.
  std::vector<NodeId> order;
  std::unordered_map<NodeId, std::vector<Signature::Entry>> entries;
  std::vector<std::string> fields;
  uint64_t errors = 0;
  while (reader.Next(fields)) {
    const uint64_t line = reader.line_number();
    // Validate the full row before interning anything, so a quarantined row
    // neither grows the node universe nor registers its owner.
    RecordErrorReason reason;
    std::string detail;
    double weight = 0.0;
    bool bad = true;
    const bool marker_row = fields.size() == 3 && fields[1].empty();
    if (fields.size() != 3) {
      reason = RecordErrorReason::kBadField;
      detail = "signature row needs 3 fields, got " +
               std::to_string(fields.size());
    } else if (fields[0].empty()) {
      reason = RecordErrorReason::kZeroNode;
      detail = "empty owner label";
    } else if (marker_row) {
      bad = false;  // empty-signature marker: owner only
    } else if (Result<double> w = ParseDouble(fields[2]); !w.ok()) {
      reason = RecordErrorReason::kBadField;
      detail = w.status().message();
    } else if (!std::isfinite(*w)) {
      reason = RecordErrorReason::kNonFiniteWeight;
      detail = "weight " + fields[2];
    } else if (*w <= 0.0) {
      reason = RecordErrorReason::kNonPositiveWeight;
      detail = "non-positive weight " + fields[2];
    } else {
      bad = false;
      weight = *w;
    }
    if (bad) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, reason, line, std::move(detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    NodeId owner = interner.Intern(fields[0]);
    if (!entries.contains(owner)) {
      order.push_back(owner);
      entries.emplace(owner, std::vector<Signature::Entry>{});
    }
    if (marker_row) continue;
    entries[owner].push_back({interner.Intern(fields[1]), weight});
  }

  SignatureSet set;
  for (NodeId owner : order) {
    set.owners.push_back(owner);
    auto& e = entries[owner];
    const size_t k = e.size();
    set.signatures.push_back(Signature::FromTopK(std::move(e), k));
  }
  return set;
}

}  // namespace commsig
