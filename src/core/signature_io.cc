#include "core/signature_io.h"

#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/csv.h"
#include "ingest/record_decode.h"

namespace commsig {

size_t SignatureSet::Find(NodeId owner) const {
  for (size_t i = 0; i < owners.size(); ++i) {
    if (owners[i] == owner) return i;
  }
  return std::numeric_limits<size_t>::max();
}

Status WriteSignatureSetCsv(const SignatureSet& set, const Interner& interner,
                            const std::string& path) {
  if (set.owners.size() != set.signatures.size()) {
    return Status::InvalidArgument("owners/signatures size mismatch");
  }
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-signatures owner,member,weight"});
  for (size_t i = 0; i < set.owners.size(); ++i) {
    const std::string& owner = interner.LabelOf(set.owners[i]);
    if (set.signatures[i].empty()) {
      writer.WriteRow({owner, "", "0"});
      continue;
    }
    for (const Signature::Entry& e : set.signatures[i].entries()) {
      writer.WriteRow(
          {owner, interner.LabelOf(e.node), std::to_string(e.weight)});
    }
  }
  return writer.Close();
}

Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner) {
  return ReadSignatureSetCsv(path, interner, IngestOptions{});
}

Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner,
                                         const IngestOptions& options) {
  Result<std::string> data = ReadFileBytes(path);
  if (!data.ok()) return data.status();

  // Collect entries per owner, preserving first-seen owner order.
  std::vector<NodeId> order;
  std::unordered_map<NodeId, std::vector<Signature::Entry>> entries;
  LineScanner scanner(*data);
  std::string_view line;
  std::string_view fields[3];
  uint64_t errors = 0;
  while (scanner.Next(line)) {
    // Validate the full row before interning anything, so a quarantined row
    // neither grows the node universe nor registers its owner. Row decoding
    // is shared with the parallel pipeline (ingest/record_decode.h).
    const size_t count = SplitFields(line, ',', fields, 3);
    ingest::SignatureRow row;
    ingest::RowReject reject;
    const ingest::SignatureRowKind kind =
        ingest::DecodeSignatureRow(fields, count, row, reject);
    if (kind == ingest::SignatureRowKind::kReject) {
      Status s = robust_internal::HandleBadRecord(
          options, &errors, reject.reason, scanner.line_number(),
          std::move(reject.detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    NodeId owner = interner.Intern(row.owner);
    if (!entries.contains(owner)) {
      order.push_back(owner);
      entries.emplace(owner, std::vector<Signature::Entry>{});
    }
    if (kind == ingest::SignatureRowKind::kMarker) continue;
    entries[owner].push_back({interner.Intern(row.member), row.weight});
  }

  SignatureSet set;
  for (NodeId owner : order) {
    set.owners.push_back(owner);
    auto& e = entries[owner];
    const size_t k = e.size();
    set.signatures.push_back(Signature::FromTopK(std::move(e), k));
  }
  return set;
}

}  // namespace commsig
