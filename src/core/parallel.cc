#include "core/parallel.h"

#include <cmath>

#include "core/distance.h"
#include "core/rwr_batch.h"
#include "obs/obs.h"

namespace commsig {

std::vector<Signature> ComputeAllParallel(const SignatureScheme& scheme,
                                          const CommGraph& g,
                                          std::span<const NodeId> nodes,
                                          ThreadPool& pool) {
  COMMSIG_SPAN("signature/compute_all");
  std::vector<Signature> out(nodes.size());
  if (nodes.empty()) return out;
  // Hand each worker a window of sources, not a single node: schemes with a
  // batched ComputeAll (RWR's block power iteration) amortize one graph
  // scan over the whole window, and schemes without one just run their
  // serial loop over the chunk — identical results either way.
  const size_t chunk = RwrBatchEngine::kDefaultBatchWidth;
  const size_t num_chunks = (nodes.size() + chunk - 1) / chunk;
  ParallelFor(pool, num_chunks, [&](size_t ci) {
    const size_t begin = ci * chunk;
    const size_t count = std::min(chunk, nodes.size() - begin);
    std::vector<Signature> sigs =
        scheme.ComputeAll(g, nodes.subspan(begin, count));
    for (size_t j = 0; j < count; ++j) out[begin + j] = std::move(sigs[j]);
  });
  return out;
}

std::vector<double> PairwiseDistancesParallel(
    std::span<const Signature> sigs, SignatureDistance dist,
    ThreadPool& pool) {
  COMMSIG_SPAN("distance/pairwise_scan");
  const size_t n = sigs.size();
  std::vector<double> matrix(n * n, 0.0);
  if (n < 2) return matrix;
  const size_t pairs = n * (n - 1) / 2;
  COMMSIG_COUNTER_ADD("distance/pairwise_pairs", pairs);
  // Each unordered pair is evaluated once and mirrored into both triangles.
  // Parallelizing over the flattened upper-triangle index space (instead of
  // over rows, where row i carries n-i-1 evaluations and the tail rows
  // almost none) keeps every worker chunk the same size.
  ParallelFor(pool, pairs, [&](size_t p) {
    // Invert p = i*(2n-i-1)/2 + (j-i-1): rows_before(i) <= p has the
    // closed-form root below; the loops absorb floating-point slack.
    auto rows_before = [n](size_t i) { return i * (2 * n - i - 1) / 2; };
    size_t i = static_cast<size_t>(
        (2.0 * n - 1.0 -
         std::sqrt((2.0 * n - 1.0) * (2.0 * n - 1.0) - 8.0 * p)) /
        2.0);
    if (i >= n - 1) i = n - 2;
    while (i > 0 && rows_before(i) > p) --i;
    while (rows_before(i + 1) <= p) ++i;
    const size_t j = i + 1 + (p - rows_before(i));
    const double d = dist(sigs[i], sigs[j]);
    matrix[i * n + j] = d;
    matrix[j * n + i] = d;
  });
  return matrix;
}

}  // namespace commsig
