#include "core/parallel.h"

#include "core/distance.h"

namespace commsig {

std::vector<Signature> ComputeAllParallel(const SignatureScheme& scheme,
                                          const CommGraph& g,
                                          std::span<const NodeId> nodes,
                                          ThreadPool& pool) {
  std::vector<Signature> out(nodes.size());
  ParallelFor(pool, nodes.size(), [&](size_t i) {
    out[i] = scheme.Compute(g, nodes[i]);
  });
  return out;
}

std::vector<double> PairwiseDistancesParallel(
    std::span<const Signature> sigs, SignatureDistance dist,
    ThreadPool& pool) {
  const size_t n = sigs.size();
  std::vector<double> matrix(n * n, 0.0);
  ParallelFor(pool, n, [&](size_t i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = dist(sigs[i], sigs[j]);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  });
  return matrix;
}

}  // namespace commsig
