#include "core/parallel.h"

#include "core/distance.h"
#include "obs/obs.h"

namespace commsig {

std::vector<Signature> ComputeAllParallel(const SignatureScheme& scheme,
                                          const CommGraph& g,
                                          std::span<const NodeId> nodes,
                                          ThreadPool& pool) {
  COMMSIG_SPAN("signature/compute_all");
  std::vector<Signature> out(nodes.size());
  ParallelFor(pool, nodes.size(), [&](size_t i) {
    out[i] = scheme.Compute(g, nodes[i]);
  });
  return out;
}

std::vector<double> PairwiseDistancesParallel(
    std::span<const Signature> sigs, SignatureDistance dist,
    ThreadPool& pool) {
  COMMSIG_SPAN("distance/pairwise_scan");
  const size_t n = sigs.size();
  COMMSIG_COUNTER_ADD("distance/pairwise_pairs", n * (n - 1) / 2);
  std::vector<double> matrix(n * n, 0.0);
  ParallelFor(pool, n, [&](size_t i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = dist(sigs[i], sigs[j]);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  });
  return matrix;
}

}  // namespace commsig
