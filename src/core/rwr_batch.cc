#include "core/rwr_batch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/simd.h"
#include "obs/obs.h"

namespace commsig {

TransitionCache::TransitionCache(const CommGraph& g, TraversalMode mode)
    : graph_(&g), mode_(mode) {
  const size_t n = g.NumNodes();
  norm_.resize(n);
  inv_norm_.resize(n);
  walkable_.resize(n);
  const bool symmetric = mode == TraversalMode::kSymmetric;
  for (NodeId x = 0; x < n; ++x) {
    const double w = g.OutWeight(x) + (symmetric ? g.InWeight(x) : 0.0);
    norm_[x] = w;
    inv_norm_[x] = w > 0.0 ? 1.0 / w : 0.0;
    walkable_[x] = w > 0.0 ? 1 : 0;
    num_walkable_ += walkable_[x];
  }
}

void TransitionCache::EnableDegreeOrder() {
  traversal_order_ = graph_->NodesByTraversalDegree(
      mode_ == TraversalMode::kSymmetric);
}

void TransitionCache::Rebase(const CommGraph& new_g,
                             std::span<const NodeId> changed_rows) {
  COMMSIG_CHECK(new_g.NumNodes() == norm_.size(),
                "TransitionCache::Rebase requires a shared node universe");
  graph_ = &new_g;
  const bool symmetric = mode_ == TraversalMode::kSymmetric;
  if (!traversal_order_.empty()) EnableDegreeOrder();
  for (NodeId x : changed_rows) {
    const double w = new_g.OutWeight(x) + (symmetric ? new_g.InWeight(x) : 0.0);
    num_walkable_ -= walkable_[x];
    norm_[x] = w;
    inv_norm_[x] = w > 0.0 ? 1.0 / w : 0.0;
    walkable_[x] = w > 0.0 ? 1 : 0;
    num_walkable_ += walkable_[x];
  }
}

void RwrBatchWorkspace::Prepare(size_t n, size_t width) {
  const size_t cells = n * width;
  // The dense state is restored to all-zero at the end of every solve, so
  // reuse at an unchanged shape skips the O(n·width) refill that used to
  // dominate small-h batches.
  if (r.size() != cells) r.assign(cells, 0.0);
  if (next.size() != cells) next.assign(cells, 0.0);
  if (in_next.size() != n) in_next.assign(n, 0);
  scale.assign(width, 0.0);
  walked.assign(width, 0.0);
  dangling.assign(width, 0.0);
  delta.assign(width, 0.0);
  last_residual.assign(width, 0.0);
  active.assign(width, 1);
  iterations.assign(width, 0);
  if (lanes.size() < width) lanes.resize(width);
  frontier.clear();
  touched.clear();
  dense = false;
}

RwrBatchEngine::RwrBatchEngine(const RwrOptions& opts,
                               const TransitionCache& cache)
    : opts_(opts), cache_(&cache) {
  COMMSIG_CHECK(opts.traversal == cache.mode(),
                "TransitionCache traversal mode does not match RwrOptions");
}

RwrBatchWorkspace& RwrBatchEngine::LocalWorkspace() {
  thread_local RwrBatchWorkspace ws;
  return ws;
}

template <typename Fn>
void RwrBatchEngine::VisitColumn(const RwrBatchWorkspace& ws, size_t num_nodes,
                                 size_t width, size_t b, Fn&& fn) {
  if (ws.dense) {
    for (size_t x = 0; x < num_nodes; ++x) {
      const double val = ws.r[x * width + b];
      if (val != 0.0) fn(static_cast<NodeId>(x), val);
    }
  } else {
    for (NodeId x : ws.frontier) {
      const double val = ws.r[static_cast<size_t>(x) * width + b];
      if (val != 0.0) fn(x, val);
    }
  }
}

template <typename FinalizeCol, typename FinalizeRest>
void RwrBatchEngine::Run(std::span<const NodeId> sources,
                         RwrBatchWorkspace& ws, FinalizeCol&& on_converged,
                         FinalizeRest&& on_done) const {
  const CommGraph& g = cache_->graph();
  const size_t n = g.NumNodes();
  const size_t B = sources.size();
  if (B == 0 || n == 0) return;

  COMMSIG_SPAN("rwr/batch_solve");
  ws.Prepare(n, B);

  const double c = opts_.reset;
  const bool symmetric = opts_.traversal == TraversalMode::kSymmetric;
  const bool truncated = opts_.max_hops > 0;
  const size_t max_iters = truncated ? opts_.max_hops : opts_.max_iterations;
  // Frontier bookkeeping stops paying for itself once most rows are live.
  const size_t dense_threshold = n / 4;

  // Seed each column with unit mass at its source; the initial frontier is
  // the sorted, deduplicated source set.
  for (size_t b = 0; b < B; ++b) {
    COMMSIG_CHECK(sources[b] < n, "RWR source out of range");
    ws.r[static_cast<size_t>(sources[b]) * B + b] = 1.0;
    if (!ws.in_next[sources[b]]) {
      ws.in_next[sources[b]] = 1;
      ws.frontier.push_back(sources[b]);
    }
  }
  std::sort(ws.frontier.begin(), ws.frontier.end());
  for (NodeId x : ws.frontier) ws.in_next[x] = 0;

  size_t active_count = B;

  // One row of the scatter: mass at x either returns to the sources
  // (dangling) or spreads along x's traversable edges. Rows where only a
  // few columns are live — the common case on early frontier hops, where
  // each row carries mass for one or two sources — take a scalar
  // per-column path; rows most columns share take the contiguous B-wide
  // multiply-add, which vectorizes. Either way each column adds the same
  // terms in the same edge order as the serial path (RWR^h bit-identity).
  auto scatter_row = [&](NodeId x, bool track) {
    const double* mass = &ws.r[static_cast<size_t>(x) * B];
    if (!cache_->walkable(x)) {
      // Accumulating an all-zero row adds 0.0 everywhere — harmless, so no
      // occupancy pre-check is needed on this branch.
      simd::AccumAdd(ws.dangling.data(), mass, B);
      return;
    }
    uint32_t* lanes = ws.lanes.data();
    size_t live = 0;
    for (size_t b = 0; b < B; ++b) {
      if (mass[b] != 0.0) lanes[live++] = static_cast<uint32_t>(b);
    }
    if (live == 0) return;
    const double row_scale = (1.0 - c) * cache_->inv_norm(x);
    if (live * 2 <= B) {
      // Few live lanes: per-lane scalar work proportional to `live`
      // instead of B. The walked adds skip the all-zero lanes — adding 0.0
      // is an FP identity here, so this matches the full-width path
      // bit-for-bit. Touched-row tracking only needs one sweep over the
      // edge list: every live lane scatters to the same target rows.
      bool first = true;
      for (size_t i = 0; i < live; ++i) {
        const size_t b = lanes[i];
        ws.walked[b] += mass[b];
        const double scale_b = mass[b] * row_scale;
        auto scatter_one = [&](std::span<const Edge> edges) {
          for (const Edge& e : edges) {
            if (track && first && !ws.in_next[e.node]) {
              ws.in_next[e.node] = 1;
              ws.touched.push_back(e.node);
            }
            ws.next[static_cast<size_t>(e.node) * B + b] += scale_b * e.weight;
          }
        };
        scatter_one(g.OutEdges(x));
        if (symmetric) scatter_one(g.InEdges(x));
        first = false;
      }
      return;
    }
    simd::AccumAdd(ws.walked.data(), mass, B);
    simd::ScaleInto(ws.scale.data(), mass, row_scale, B);
    auto scatter_edges = [&](std::span<const Edge> edges) {
      for (const Edge& e : edges) {
        if (track && !ws.in_next[e.node]) {
          ws.in_next[e.node] = 1;
          ws.touched.push_back(e.node);
        }
        double* row = &ws.next[static_cast<size_t>(e.node) * B];
        // 4-wide multiply-add over the column block; strictly elementwise
        // (no FMA, no reassociation), so each column still adds the same
        // terms in the same edge order as the serial path.
        simd::AxpyRow(row, ws.scale.data(), e.weight, B);
      }
    };
    scatter_edges(g.OutEdges(x));
    if (symmetric) scatter_edges(g.InEdges(x));
  };

  size_t sparse_iters = 0, dense_iters = 0, column_iters = 0;
  for (size_t iter = 0; iter < max_iters && active_count > 0; ++iter) {
    if (!ws.dense && ws.frontier.size() > dense_threshold) ws.dense = true;
    column_iters += active_count;

    std::fill(ws.walked.begin(), ws.walked.end(), 0.0);
    std::fill(ws.dangling.begin(), ws.dangling.end(), 0.0);

    if (ws.dense) {
      ++dense_iters;
      std::fill(ws.next.begin(), ws.next.end(), 0.0);
      if (cache_->has_traversal_order()) {
        // Degree-descending row order (opt-in via EnableDegreeOrder): the
        // hub rows run first while the state slab is cache-hot. Reorders
        // per-target accumulation, so results drift at rounding level from
        // the ascending scan.
        for (NodeId x : cache_->traversal_order()) {
          scatter_row(x, /*track=*/false);
        }
      } else {
        for (NodeId x = 0; x < n; ++x) scatter_row(x, /*track=*/false);
      }
    } else {
      ++sparse_iters;
      // `next` is all-zero here (maintained below), so the scatter only
      // needs to mark which rows it wrote.
      for (NodeId x : ws.frontier) scatter_row(x, /*track=*/true);
    }

    // Reset mass: c from every walking step plus everything dangling nodes
    // carried, re-injected at each column's own source.
    for (size_t b = 0; b < B; ++b) {
      if (!ws.active[b]) continue;
      const NodeId v = sources[b];
      if (!ws.dense && !ws.in_next[v]) {
        ws.in_next[v] = 1;
        ws.touched.push_back(v);
      }
      ws.next[static_cast<size_t>(v) * B + b] +=
          c * ws.walked[b] + ws.dangling[b];
    }

    if (!ws.dense) {
      // The scatter order (and therefore bit-identity with the serial
      // ascending scan) requires a sorted frontier. Large touched sets are
      // rebuilt from the in_next bitmask with one sequential O(n) pass,
      // which beats the O(m log m) random-access sort well before m = n/16.
      if (ws.touched.size() > n / 16) {
        ws.touched.clear();
        for (NodeId x = 0; x < n; ++x) {
          if (ws.in_next[x]) ws.touched.push_back(x);
        }
      } else {
        std::sort(ws.touched.begin(), ws.touched.end());
      }
    }

    if (!truncated) {
      // Per-column L1 step change. Outside frontier ∪ touched both vectors
      // are zero; walking their sorted union in ascending row order makes
      // the summation order match the serial full scan.
      std::fill(ws.delta.begin(), ws.delta.end(), 0.0);
      if (ws.dense) {
        for (size_t i = 0; i < n * B; i += B) {
          simd::AccumAbsDiff(ws.delta.data(), &ws.next[i], &ws.r[i], B);
        }
      } else {
        size_t fi = 0, ti = 0;
        while (fi < ws.frontier.size() || ti < ws.touched.size()) {
          NodeId x;
          if (ti >= ws.touched.size() ||
              (fi < ws.frontier.size() && ws.frontier[fi] <= ws.touched[ti])) {
            x = ws.frontier[fi];
            if (ti < ws.touched.size() && ws.touched[ti] == x) ++ti;
            ++fi;
          } else {
            x = ws.touched[ti++];
          }
          const size_t row = static_cast<size_t>(x) * B;
          simd::AccumAbsDiff(ws.delta.data(), &ws.next[row], &ws.r[row], B);
        }
      }
    }

    ws.r.swap(ws.next);
    if (!ws.dense) {
      // `next` now holds the previous state: zero its frontier rows to
      // restore the all-zero invariant, then advance the frontier.
      for (NodeId x : ws.frontier) {
        double* row = &ws.next[static_cast<size_t>(x) * B];
        for (size_t b = 0; b < B; ++b) row[b] = 0.0;
      }
      ws.frontier.swap(ws.touched);
      ws.touched.clear();
      for (NodeId x : ws.frontier) ws.in_next[x] = 0;
    }

    if (!truncated) {
      // Convergence masking: finalize finished columns and zero them so
      // they drop out of the remaining iterations.
      for (size_t b = 0; b < B; ++b) {
        if (!ws.active[b]) continue;
        ws.last_residual[b] = ws.delta[b];
        ws.iterations[b] = iter + 1;
        if (ws.delta[b] < opts_.tolerance) {
          on_converged(b, ws.delta[b], iter + 1);
          ws.active[b] = 0;
          --active_count;
          if (ws.dense) {
            for (size_t x = 0; x < n; ++x) ws.r[x * B + b] = 0.0;
          } else {
            for (NodeId x : ws.frontier) {
              ws.r[static_cast<size_t>(x) * B + b] = 0.0;
            }
          }
          COMMSIG_HISTOGRAM_OBSERVE("rwr/residual_at_convergence",
                                    ws.delta[b]);
        }
      }
    } else {
      for (size_t b = 0; b < B; ++b) ws.iterations[b] = iter + 1;
    }
  }

  // Columns still live after the cap: truncated walks converge by fiat,
  // unbounded ones report their last residual for the caller's fallback
  // ladder. Handed to the caller as one bulk set so it can extract all of
  // them in a single row-major pass instead of B column-strided ones.
  std::vector<size_t> live;
  live.reserve(active_count);
  for (size_t b = 0; b < B; ++b) {
    if (!ws.active[b]) continue;
    live.push_back(b);
    if (!truncated) {
      COMMSIG_HISTOGRAM_OBSERVE("rwr/residual_at_convergence",
                                ws.last_residual[b]);
    }
  }
  on_done(std::span<const size_t>(live));

  // Restore the workspace's all-zero invariant so the next Prepare at this
  // shape can skip the O(n·B) refill. In sparse mode only the frontier rows
  // of r are live (next and in_next were re-zeroed every iteration).
  if (ws.dense) {
    std::fill(ws.r.begin(), ws.r.end(), 0.0);
    std::fill(ws.next.begin(), ws.next.end(), 0.0);
  } else {
    for (NodeId x : ws.frontier) {
      double* row = &ws.r[static_cast<size_t>(x) * B];
      for (size_t b = 0; b < B; ++b) row[b] = 0.0;
    }
  }

  COMMSIG_COUNTER_ADD("rwr/calls", B);
  COMMSIG_COUNTER_ADD("rwr/iterations", column_iters);
  COMMSIG_COUNTER_ADD("rwr/batch_solves", 1);
  COMMSIG_COUNTER_ADD("rwr/batch_sparse_iterations", sparse_iters);
  COMMSIG_COUNTER_ADD("rwr/batch_dense_iterations", dense_iters);
}

std::vector<RwrScheme::RwrSolve> RwrBatchEngine::SolveBatch(
    std::span<const NodeId> sources) const {
  return SolveBatch(sources, LocalWorkspace());
}

std::vector<RwrScheme::RwrSolve> RwrBatchEngine::SolveBatch(
    std::span<const NodeId> sources, RwrBatchWorkspace& ws) const {
  const size_t n = cache_->num_nodes();
  const size_t B = sources.size();
  const bool truncated = opts_.max_hops > 0;
  std::vector<RwrScheme::RwrSolve> solves(B);
  auto extract = [&](size_t b, bool converged, double residual, size_t iters) {
    RwrScheme::RwrSolve& s = solves[b];
    s.probabilities.assign(n, 0.0);
    VisitColumn(ws, n, B, b,
                [&](NodeId x, double val) { s.probabilities[x] = val; });
    s.converged = converged;
    s.residual = residual;
    s.iterations = iters;
  };
  Run(sources, ws,
      [&](size_t b, double residual, size_t iters) {
        extract(b, /*converged=*/true, residual, iters);
      },
      [&](std::span<const size_t> live) {
        for (size_t b : live) {
          extract(b, /*converged=*/truncated,
                  truncated ? 0.0 : ws.last_residual[b], ws.iterations[b]);
        }
      });
  return solves;
}

void RwrBatchEngine::SolveBatchSupport(
    std::span<const NodeId> sources, RwrBatchWorkspace& ws,
    std::vector<Signature::Entry>& entries,
    std::vector<std::pair<size_t, size_t>>& ranges,
    std::vector<uint8_t>& converged) const {
  const size_t n = cache_->num_nodes();
  const size_t B = sources.size();
  const bool truncated = opts_.max_hops > 0;
  entries.clear();
  ranges.assign(B, {0, 0});
  converged.assign(B, 0);
  Run(sources, ws,
      [&](size_t b, double /*residual*/, size_t /*iters*/) {
        const size_t start = entries.size();
        VisitColumn(ws, n, B, b, [&](NodeId x, double val) {
          entries.push_back({x, val});
        });
        ranges[b] = {start, entries.size()};
        converged[b] = 1;
      },
      [&](std::span<const size_t> live) {
        // Bulk extraction of every still-live column in two row-major
        // passes (count, then fill): the state slab is traversed in memory
        // order once per pass instead of once per column with a B-double
        // stride, which is what makes sweep extraction cheap.
        auto for_each_row = [&](auto&& fn) {
          if (ws.dense) {
            for (size_t x = 0; x < n; ++x) fn(x);
          } else {
            for (NodeId x : ws.frontier) fn(static_cast<size_t>(x));
          }
        };
        std::vector<size_t> cursor(B, 0);
        for_each_row([&](size_t x) {
          const double* row = &ws.r[x * B];
          for (size_t b : live) cursor[b] += row[b] != 0.0 ? 1 : 0;
        });
        size_t base = entries.size();
        for (size_t b : live) {
          const size_t count = cursor[b];
          ranges[b] = {base, base + count};
          cursor[b] = base;
          base += count;
          converged[b] = truncated ? 1 : 0;
        }
        entries.resize(base);
        for_each_row([&](size_t x) {
          const double* row = &ws.r[x * B];
          for (size_t b : live) {
            const double val = row[b];
            if (val != 0.0) {
              entries[cursor[b]++] = {static_cast<NodeId>(x), val};
            }
          }
        });
      });
}

}  // namespace commsig
