#include "core/unexpected_talkers.h"

#include <cmath>
#include <vector>

namespace commsig {

Signature UnexpectedTalkersScheme::Compute(const CommGraph& g,
                                           NodeId v) const {
  const double num_nodes = static_cast<double>(g.NumNodes());

  std::vector<Signature::Entry> candidates;
  candidates.reserve(g.OutDegree(v));
  for (const Edge& e : g.OutEdges(v)) {
    if (!KeepCandidate(g, v, e.node)) continue;
    // A candidate reached via an out-edge from v has in-degree >= 1, so the
    // divisor is always positive.
    const double in_degree = static_cast<double>(g.InDegree(e.node));
    double w = 0.0;
    switch (weighting_) {
      case UtWeighting::kInverseInDegree:
        w = e.weight / in_degree;
        break;
      case UtWeighting::kTfIdf:
        w = e.weight * std::log(num_nodes / in_degree);
        break;
    }
    candidates.push_back({e.node, w});
  }
  return Signature::FromTopK(std::move(candidates), options_.k);
}

std::unique_ptr<SignatureScheme> MakeUnexpectedTalkers(SchemeOptions options,
                                                       UtWeighting weighting) {
  return std::make_unique<UnexpectedTalkersScheme>(options, weighting);
}

}  // namespace commsig
