#ifndef COMMSIG_CORE_RWR_PUSH_H_
#define COMMSIG_CORE_RWR_PUSH_H_

#include <string>
#include <vector>

#include "core/scheme.h"

namespace commsig {

/// Local forward-push computation of personalized PageRank
/// [Andersen-Chung-Lang, FOCS 2006], addressing the scalability question
/// the paper's Section VI leaves open for RWR-based signatures: instead of
/// whole-graph power iterations, mass is pushed out of a residual vector
/// only where it exceeds `epsilon` times the node's traversable weight, so
/// work is proportional to 1/(c·epsilon) regardless of graph size.
///
/// Guarantee: for every node u, the returned estimate p[u] underestimates
/// the exact RWR probability by at most epsilon · norm(u), where norm(u)
/// is u's total traversable edge weight. Signatures built from p therefore
/// converge to the exact RWR signatures as epsilon -> 0.
struct RwrPushOptions {
  /// Reset probability c (same role as RwrOptions::reset).
  double reset = 0.1;
  /// Residual push threshold relative to a node's traversable weight.
  double epsilon = 1e-6;
  /// Safety cap on push operations (0 = unlimited).
  size_t max_pushes = 0;
  TraversalMode traversal = TraversalMode::kSymmetric;
};

class RwrPushScheme final : public SignatureScheme {
 public:
  RwrPushScheme(SchemeOptions options, RwrPushOptions push_options)
      : SignatureScheme(options), push_(push_options) {}

  std::string name() const override;

  SchemeTraits traits() const override {
    return {{GraphCharacteristic::kTransitivity,
             GraphCharacteristic::kEngagement},
            {SignatureProperty::kPersistence, SignatureProperty::kRobustness}};
  }

  Signature Compute(const CommGraph& g, NodeId v) const override;

  /// Full recompute every transition. Push estimates depend on the whole
  /// reachable neighbourhood and the scheme keeps no residual state across
  /// windows, so the base LocalDirty rule would silently reuse stale
  /// signatures; RwrScheme's drift-gated path is the incremental RWR
  /// option.
  std::vector<Signature> IncrementalComputeAll(
      const CommGraph& g, std::span<const NodeId> nodes,
      const GraphDelta* delta, std::vector<Signature> previous,
      std::unique_ptr<IncrementalState>& state) const override;

  /// The approximate PPR vector (lower bounds the exact probabilities).
  /// Also reports the number of push operations performed, for the
  /// scalability bench.
  std::vector<double> ApproximateVector(const CommGraph& g, NodeId v,
                                        size_t* pushes = nullptr) const;

  const RwrPushOptions& push_options() const { return push_; }

 private:
  RwrPushOptions push_;
};

std::unique_ptr<SignatureScheme> MakeRwrPush(SchemeOptions options,
                                             RwrPushOptions push_options);

}  // namespace commsig

#endif  // COMMSIG_CORE_RWR_PUSH_H_
