#include "core/rwr.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/rwr_batch.h"
#include "graph/graph_delta.h"
#include "obs/obs.h"

namespace commsig {

std::string RwrScheme::name() const {
  char buf[64];
  if (rwr_.max_hops > 0) {
    std::snprintf(buf, sizeof(buf), "rwr(c=%g,h=%zu)", rwr_.reset,
                  rwr_.max_hops);
  } else {
    std::snprintf(buf, sizeof(buf), "rwr(c=%g)", rwr_.reset);
  }
  return buf;
}

SchemeTraits RwrScheme::traits() const {
  if (rwr_.max_hops > 0) {
    // RWR^h: locality + transitivity -> all three properties (Table III).
    return {{GraphCharacteristic::kLocality,
             GraphCharacteristic::kTransitivity},
            {SignatureProperty::kPersistence, SignatureProperty::kUniqueness,
             SignatureProperty::kRobustness}};
  }
  return {{GraphCharacteristic::kTransitivity,
           GraphCharacteristic::kEngagement},
          {SignatureProperty::kPersistence, SignatureProperty::kRobustness}};
}

std::vector<double> RwrScheme::StationaryVector(const CommGraph& g,
                                                NodeId v) const {
  return Solve(g, v).probabilities;
}

RwrScheme::RwrSolve RwrScheme::Solve(const CommGraph& g, NodeId v) const {
  return Solve(g, v, TransitionCache(g, rwr_.traversal));
}

RwrScheme::RwrSolve RwrScheme::Solve(const CommGraph& g, NodeId v,
                                     const TransitionCache& cache) const {
  std::vector<double> r(g.NumNodes(), 0.0);
  r[v] = 1.0;
  return SolveFrom(g, v, cache, std::move(r));
}

RwrScheme::RwrSolve RwrScheme::SolveFrom(const CommGraph& g, NodeId v,
                                         const TransitionCache& cache,
                                         std::vector<double> r) const {
  const size_t n = g.NumNodes();
  const bool symmetric = rwr_.traversal == TraversalMode::kSymmetric;
  const double c = rwr_.reset;

  // Scratch survives across calls: an all-hosts sweep allocates the result
  // vector only, not a second O(n) buffer per solve.
  thread_local std::vector<double> scratch;
  scratch.assign(n, 0.0);
  std::vector<double>& next = scratch;

  COMMSIG_SPAN("rwr/iterate");
  const size_t iterations =
      rwr_.max_hops > 0 ? rwr_.max_hops : rwr_.max_iterations;
  size_t iterations_run = 0;
  double last_residual = 0.0;
  bool converged = rwr_.max_hops > 0;  // truncated walks converge by fiat
  for (size_t iter = 0; iter < iterations; ++iter) {
    ++iterations_run;
    std::fill(next.begin(), next.end(), 0.0);
    // Walking mass (the reset-tax base) and dangling mass are accumulated
    // inside the scatter scan — the old separate all-n rescan per iteration
    // summed exactly the same terms in the same order.
    double walked = 0.0;
    double dangling = 0.0;
    for (NodeId x = 0; x < n; ++x) {
      const double mass = r[x];
      if (mass == 0.0) continue;
      if (!cache.walkable(x)) {
        // Nodes with no traversable edges return their mass to the start
        // node, preserving a total probability of 1.
        dangling += mass;
        continue;
      }
      walked += mass;
      // Multiply by the cached reciprocal instead of dividing — the same
      // two-multiply expression the batched engine uses, which keeps the
      // two paths bit-identical while removing the division that dominated
      // the inner loop's arithmetic cost.
      const double scale = mass * ((1.0 - c) * cache.inv_norm(x));
      for (const Edge& e : g.OutEdges(x)) {
        next[e.node] += scale * e.weight;
      }
      if (symmetric) {
        for (const Edge& e : g.InEdges(x)) {
          next[e.node] += scale * e.weight;
        }
      }
    }
    // Reset mass: c from every walking node, plus everything a dangling
    // node would have carried.
    next[v] += c * walked + dangling;

    if (rwr_.max_hops == 0) {
      double delta = 0.0;
      for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - r[i]);
      r.swap(next);
      last_residual = delta;
      if (delta < rwr_.tolerance) {
        converged = true;
        break;
      }
    } else {
      r.swap(next);
    }
  }
  COMMSIG_COUNTER_ADD("rwr/calls", 1);
  COMMSIG_COUNTER_ADD("rwr/iterations", iterations_run);
  if (rwr_.max_hops == 0) {
    COMMSIG_HISTOGRAM_OBSERVE("rwr/residual_at_convergence", last_residual);
  }
  return {std::move(r), converged, last_residual, iterations_run};
}

Signature RwrScheme::SignatureFromVector(const CommGraph& g, NodeId v,
                                         const std::vector<double>& r) const {
  std::vector<Signature::Entry> candidates;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (r[u] <= 0.0) continue;
    if (!KeepCandidate(g, v, u)) continue;
    candidates.push_back({u, r[u]});
  }
  return Signature::FromTopK(std::move(candidates), options_.k);
}

Signature RwrScheme::SignatureFromSupport(
    const CommGraph& g, NodeId v,
    std::span<const Signature::Entry> support) const {
  // Streaming selection with the Definition-1 filter fused in (the
  // partition test hoisted out of the loop): no candidate vector, no
  // partitioning pass. Selects the same top-k set FromTopK would.
  Signature::TopKSelector selector(options_.k);
  const bool restrict_partition =
      options_.restrict_to_opposite_partition && g.bipartite().IsBipartite();
  if (restrict_partition) {
    const bool focal_left = g.InLeftPartition(v);
    for (const Signature::Entry& e : support) {
      if (e.node == v || g.InLeftPartition(e.node) == focal_left) continue;
      selector.Offer(e);
    }
  } else {
    for (const Signature::Entry& e : support) {
      if (e.node != v) selector.Offer(e);
    }
  }
  return selector.Take();
}

Signature RwrScheme::Compute(const CommGraph& g, NodeId v) const {
  RwrSolve solve = Solve(g, v);
  if (!solve.converged && rwr_.fallback_hops > 0) {
    // Degradation ladder (RWR -> RWR^h): an unconverged vector has no
    // accuracy guarantee at any rank, while the truncated walk is exact for
    // its restricted h-hop semantics — a defined approximation beats an
    // undefined one.
    COMMSIG_COUNTER_ADD("robust/rwr_fallbacks", 1);
    RwrOptions truncated = rwr_;
    truncated.max_hops = rwr_.fallback_hops;
    solve = RwrScheme(options_, truncated).Solve(g, v);
  }
  return SignatureFromVector(g, v, solve.probabilities);
}

std::vector<Signature> RwrScheme::ComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes) const {
  if (nodes.empty()) return {};
  COMMSIG_SPAN("rwr/compute_all_batched");
  // One normalizer/partition derivation for the whole sweep, shared by the
  // main engine and the fallback ladder.
  TransitionCache cache(g, rwr_.traversal);
  return SolveManyBatched(g, cache, nodes, nullptr);
}

std::vector<Signature> RwrScheme::SolveManyBatched(
    const CommGraph& g, const TransitionCache& cache,
    std::span<const NodeId> nodes,
    std::vector<std::vector<Signature::Entry>>* supports) const {
  std::vector<Signature> out(nodes.size());
  if (supports != nullptr) {
    supports->clear();
    supports->resize(nodes.size());
  }
  if (nodes.empty()) return out;

  RwrBatchEngine engine(rwr_, cache);
  RwrBatchWorkspace& ws = RwrBatchEngine::LocalWorkspace();

  RwrOptions truncated = rwr_;
  truncated.max_hops = rwr_.fallback_hops;
  RwrBatchEngine fallback_engine(truncated, cache);

  // Support-sparse result buffers (nonzero entries per column), reused
  // across batches so the sweep never materializes n-length vectors.
  std::vector<Signature::Entry> entries, retry_entries;
  std::vector<std::pair<size_t, size_t>> ranges, retry_ranges;
  std::vector<uint8_t> converged, retry_converged;
  std::vector<NodeId> retry_sources;

  const bool use_fallback = rwr_.max_hops == 0 && rwr_.fallback_hops > 0;
  const size_t width = RwrBatchEngine::kDefaultBatchWidth;
  for (size_t begin = 0; begin < nodes.size(); begin += width) {
    const size_t count = std::min(width, nodes.size() - begin);
    std::span<const NodeId> batch = nodes.subspan(begin, count);
    engine.SolveBatchSupport(batch, ws, entries, ranges, converged);

    if (use_fallback) {
      // Same degradation ladder as Compute, applied per column: re-solve
      // only the unconverged sources as a truncated sub-batch.
      retry_sources.clear();
      for (size_t b = 0; b < count; ++b) {
        if (!converged[b]) retry_sources.push_back(batch[b]);
      }
      if (!retry_sources.empty()) {
        COMMSIG_COUNTER_ADD("robust/rwr_fallbacks", retry_sources.size());
        fallback_engine.SolveBatchSupport(retry_sources, ws, retry_entries,
                                          retry_ranges, retry_converged);
      }
    }

    size_t ri = 0;
    for (size_t b = 0; b < count; ++b) {
      const bool retried = use_fallback && !converged[b];
      const auto [start, end] = retried ? retry_ranges[ri++] : ranges[b];
      const Signature::Entry* base =
          retried ? retry_entries.data() : entries.data();
      std::span<const Signature::Entry> support(base + start, end - start);
      out[begin + b] = SignatureFromSupport(g, batch[b], support);
      if (supports != nullptr) {
        (*supports)[begin + b].assign(support.begin(), support.end());
      }
    }
  }
  return out;
}

namespace {

/// RwrScheme's warm state: per focal node, the sparse support of the last
/// solved stationary vector and the drift-bound mass accumulated against
/// it since. Memory is O(sum of support sizes) — bounded by h-hop
/// neighbourhood sizes for truncated walks, up to O(reachable set) for
/// unbounded ones. `warm` is dense, index-aligned with `nodes` (the focal
/// population the state was primed for — a changed population re-primes),
/// so the steady-state per-focal probe is an array load, not a hash find.
/// The TransitionCache is carried across windows and Rebased per delta,
/// making the fixed per-window setup O(changed rows) instead of O(n).
struct RwrIncrementalState final : IncrementalState {
  struct Warm {
    std::vector<Signature::Entry> support;
    double acc_drift = 0.0;
  };
  std::vector<NodeId> nodes;
  std::vector<Warm> warm;
  std::optional<TransitionCache> cache;
  /// Scratch: normalized drift per changed row, kept all-zero between
  /// calls (only the entries touched this window are set and re-cleared)
  /// so steady state pays no O(n) refill.
  std::vector<double> row_drift;
};

/// Merge-walk over two id-sorted edge rows accumulating
/// sum |w_new/norm_new - w_old/norm_old| (absent edges contribute their
/// full normalized weight).
double NormalizedRowL1(std::span<const Edge> old_row,
                       std::span<const Edge> new_row, double inv_old,
                       double inv_new) {
  double drift = 0.0;
  size_t i = 0, j = 0;
  while (i < old_row.size() || j < new_row.size()) {
    if (j == new_row.size() ||
        (i < old_row.size() && old_row[i].node < new_row[j].node)) {
      drift += old_row[i].weight * inv_old;
      ++i;
    } else if (i == old_row.size() || new_row[j].node < old_row[i].node) {
      drift += new_row[j].weight * inv_new;
      ++j;
    } else {
      drift += std::fabs(new_row[j].weight * inv_new -
                         old_row[i].weight * inv_old);
      ++i;
      ++j;
    }
  }
  return drift;
}

/// L1 distance between x's normalized transition rows in the two windows.
/// Dangling rows redirect to the walk's start node, so a walkable <->
/// dangling flip is maximal drift (2); symmetric traversals sum the out-
/// and in-halves separately, a triangle-inequality upper bound on the
/// merged row's true drift.
double TransitionRowDrift(const CommGraph& old_g, const CommGraph& new_g,
                          const TransitionCache& cache, NodeId x,
                          bool symmetric) {
  const double old_norm =
      old_g.OutWeight(x) + (symmetric ? old_g.InWeight(x) : 0.0);
  const bool old_walkable = old_norm > 0.0;
  if (old_walkable != cache.walkable(x)) return 2.0;
  if (!old_walkable) return 0.0;
  const double inv_old = 1.0 / old_norm;
  const double inv_new = cache.inv_norm(x);
  double drift = NormalizedRowL1(old_g.OutEdges(x), new_g.OutEdges(x),
                                 inv_old, inv_new);
  if (symmetric) {
    drift += NormalizedRowL1(old_g.InEdges(x), new_g.InEdges(x), inv_old,
                             inv_new);
  }
  return std::min(drift, 2.0);
}

}  // namespace

std::vector<Signature> RwrScheme::IncrementalComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes, const GraphDelta* delta,
    std::vector<Signature> previous,
    std::unique_ptr<IncrementalState>& state) const {
  auto* st = dynamic_cast<RwrIncrementalState*>(state.get());
  const bool can_advance =
      st != nullptr && delta != nullptr && previous.size() == nodes.size() &&
      st->nodes.size() == nodes.size() && st->cache.has_value() &&
      st->cache->num_nodes() == g.NumNodes() &&
      std::equal(nodes.begin(), nodes.end(), st->nodes.begin());
  if (!can_advance) {
    // Prime: full batched sweep, capturing every stationary support as the
    // warm state for the transitions that follow.
    auto fresh = std::make_unique<RwrIncrementalState>();
    COMMSIG_COUNTER_ADD("timeline/nodes_dirty", nodes.size());
    std::vector<Signature> out;
    fresh->cache.emplace(g, rwr_.traversal);
    fresh->nodes.assign(nodes.begin(), nodes.end());
    fresh->warm.resize(nodes.size());
    fresh->row_drift.assign(g.NumNodes(), 0.0);
    if (!nodes.empty()) {
      std::vector<std::vector<Signature::Entry>> supports;
      out = SolveManyBatched(g, *fresh->cache, nodes, &supports);
      for (size_t i = 0; i < nodes.size(); ++i) {
        fresh->warm[i].support = std::move(supports[i]);
      }
    }
    state = std::move(fresh);
    return out;
  }

  COMMSIG_SPAN("rwr/incremental_compute_all");
  const size_t n = g.NumNodes();
  const bool symmetric = rwr_.traversal == TraversalMode::kSymmetric;
  const double c = rwr_.reset;
  // Carry the previous window's cache forward: only changed rows can hold
  // new normalizers, so the per-window setup is O(changed), not O(n).
  st->cache->Rebase(g, delta->changed_row_nodes());
  const TransitionCache& cache = *st->cache;

  // Normalized transition drift of every changed row, dense-indexed so the
  // per-focal pass is a sparse dot against its stored support. The scratch
  // lives in the state (all-zero between calls) to skip the O(n) refill.
  const CommGraph& old_g = delta->old_graph();
  std::vector<double>& row_drift = st->row_drift;
  bool any_drift = false;
  for (NodeId x : delta->changed_row_nodes()) {
    if (!delta->RowChanged(x, symmetric)) continue;
    const double d = TransitionRowDrift(old_g, g, cache, x, symmetric);
    if (d > 0.0) {
      row_drift[x] = d;
      any_drift = true;
    }
  }

  // Geometric amplification of one-step row drift over the whole walk:
  // sum_{t=1..h} (1-c)^t, with h -> inf for the unbounded walk. c = 0 has
  // no contraction, so only exact-zero drift may reuse there.
  double factor;
  if (c <= 0.0) {
    factor = 1e30;
  } else if (rwr_.max_hops > 0) {
    factor = (1.0 - c) *
             (1.0 - std::pow(1.0 - c, static_cast<double>(rwr_.max_hops))) / c;
  } else {
    factor = (1.0 - c) / c;
  }

  std::vector<Signature> out(nodes.size());
  std::vector<NodeId> cold_nodes;
  std::vector<size_t> cold_slots;
  std::vector<size_t> warm_slots;
  size_t reused = 0;
  size_t warm_fallbacks = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v = nodes[i];
    RwrIncrementalState::Warm& warm = st->warm[i];
    double weighted = 0.0;
    if (any_drift) {
      for (const Signature::Entry& e : warm.support) {
        weighted += e.weight * row_drift[e.node];
      }
    }
    if (weighted > 0.0) warm.acc_drift += factor * weighted;
    if (warm.acc_drift <= rwr_.incremental_max_drift) {
      out[i] = std::move(previous[i]);  // reuse is O(1), previous is owned
      ++reused;
    } else if (rwr_.max_hops == 0 &&
               warm.acc_drift <= rwr_.incremental_warm_drift) {
      warm_slots.push_back(i);
    } else {
      // Truncated walks re-solve exactly (their normal path); unbounded
      // walks past the warm bound fall to the cold ladder.
      if (rwr_.max_hops == 0) ++warm_fallbacks;
      cold_nodes.push_back(v);
      cold_slots.push_back(i);
    }
  }

  // Warm starts: seed the power iteration with the previous stationary
  // vector. The convergence criterion is Solve's own, so the fixed point —
  // and therefore the signature — matches a cold solve within tolerance.
  for (size_t i : warm_slots) {
    const NodeId v = nodes[i];
    RwrIncrementalState::Warm& warm = st->warm[i];
    std::vector<double> seed(n, 0.0);
    double total = 0.0;
    for (const Signature::Entry& e : warm.support) total += e.weight;
    if (total > 0.0) {
      const double inv = 1.0 / total;
      for (const Signature::Entry& e : warm.support) {
        seed[e.node] = e.weight * inv;
      }
    } else {
      seed[v] = 1.0;
    }
    RwrSolve solve = SolveFrom(g, v, cache, std::move(seed));
    if (!solve.converged) {
      ++warm_fallbacks;
      cold_nodes.push_back(v);
      cold_slots.push_back(i);
      continue;
    }
    out[i] = SignatureFromVector(g, v, solve.probabilities);
    warm.support.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (solve.probabilities[u] > 0.0) {
        warm.support.push_back({u, solve.probabilities[u]});
      }
    }
    warm.acc_drift = 0.0;
  }

  if (!cold_nodes.empty()) {
    std::vector<std::vector<Signature::Entry>> supports;
    std::vector<Signature> solved =
        SolveManyBatched(g, cache, cold_nodes, &supports);
    for (size_t j = 0; j < cold_nodes.size(); ++j) {
      out[cold_slots[j]] = std::move(solved[j]);
      st->warm[cold_slots[j]] = {std::move(supports[j]), 0.0};
    }
  }

  // Restore the row_drift all-zero invariant by clearing only what this
  // window touched.
  for (NodeId x : delta->changed_row_nodes()) row_drift[x] = 0.0;

  COMMSIG_COUNTER_ADD("timeline/nodes_reused", reused);
  COMMSIG_COUNTER_ADD("timeline/nodes_dirty", nodes.size() - reused);
  if (warm_fallbacks > 0) {
    COMMSIG_COUNTER_ADD("timeline/rwr_warm_start_fallbacks", warm_fallbacks);
  }
  return out;
}

std::unique_ptr<SignatureScheme> MakeRwr(SchemeOptions options,
                                         RwrOptions rwr_options) {
  return std::make_unique<RwrScheme>(options, rwr_options);
}

}  // namespace commsig
