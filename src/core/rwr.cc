#include "core/rwr.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/rwr_batch.h"
#include "obs/obs.h"

namespace commsig {

std::string RwrScheme::name() const {
  char buf[64];
  if (rwr_.max_hops > 0) {
    std::snprintf(buf, sizeof(buf), "rwr(c=%g,h=%zu)", rwr_.reset,
                  rwr_.max_hops);
  } else {
    std::snprintf(buf, sizeof(buf), "rwr(c=%g)", rwr_.reset);
  }
  return buf;
}

SchemeTraits RwrScheme::traits() const {
  if (rwr_.max_hops > 0) {
    // RWR^h: locality + transitivity -> all three properties (Table III).
    return {{GraphCharacteristic::kLocality,
             GraphCharacteristic::kTransitivity},
            {SignatureProperty::kPersistence, SignatureProperty::kUniqueness,
             SignatureProperty::kRobustness}};
  }
  return {{GraphCharacteristic::kTransitivity,
           GraphCharacteristic::kEngagement},
          {SignatureProperty::kPersistence, SignatureProperty::kRobustness}};
}

std::vector<double> RwrScheme::StationaryVector(const CommGraph& g,
                                                NodeId v) const {
  return Solve(g, v).probabilities;
}

RwrScheme::RwrSolve RwrScheme::Solve(const CommGraph& g, NodeId v) const {
  return Solve(g, v, TransitionCache(g, rwr_.traversal));
}

RwrScheme::RwrSolve RwrScheme::Solve(const CommGraph& g, NodeId v,
                                     const TransitionCache& cache) const {
  const size_t n = g.NumNodes();
  const bool symmetric = rwr_.traversal == TraversalMode::kSymmetric;
  const double c = rwr_.reset;

  std::vector<double> r(n, 0.0);
  // Scratch survives across calls: an all-hosts sweep allocates the result
  // vector only, not a second O(n) buffer per solve.
  thread_local std::vector<double> scratch;
  scratch.assign(n, 0.0);
  std::vector<double>& next = scratch;
  r[v] = 1.0;

  COMMSIG_SPAN("rwr/iterate");
  const size_t iterations =
      rwr_.max_hops > 0 ? rwr_.max_hops : rwr_.max_iterations;
  size_t iterations_run = 0;
  double last_residual = 0.0;
  bool converged = rwr_.max_hops > 0;  // truncated walks converge by fiat
  for (size_t iter = 0; iter < iterations; ++iter) {
    ++iterations_run;
    std::fill(next.begin(), next.end(), 0.0);
    // Walking mass (the reset-tax base) and dangling mass are accumulated
    // inside the scatter scan — the old separate all-n rescan per iteration
    // summed exactly the same terms in the same order.
    double walked = 0.0;
    double dangling = 0.0;
    for (NodeId x = 0; x < n; ++x) {
      const double mass = r[x];
      if (mass == 0.0) continue;
      if (!cache.walkable(x)) {
        // Nodes with no traversable edges return their mass to the start
        // node, preserving a total probability of 1.
        dangling += mass;
        continue;
      }
      walked += mass;
      // Multiply by the cached reciprocal instead of dividing — the same
      // two-multiply expression the batched engine uses, which keeps the
      // two paths bit-identical while removing the division that dominated
      // the inner loop's arithmetic cost.
      const double scale = mass * ((1.0 - c) * cache.inv_norm(x));
      for (const Edge& e : g.OutEdges(x)) {
        next[e.node] += scale * e.weight;
      }
      if (symmetric) {
        for (const Edge& e : g.InEdges(x)) {
          next[e.node] += scale * e.weight;
        }
      }
    }
    // Reset mass: c from every walking node, plus everything a dangling
    // node would have carried.
    next[v] += c * walked + dangling;

    if (rwr_.max_hops == 0) {
      double delta = 0.0;
      for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - r[i]);
      r.swap(next);
      last_residual = delta;
      if (delta < rwr_.tolerance) {
        converged = true;
        break;
      }
    } else {
      r.swap(next);
    }
  }
  COMMSIG_COUNTER_ADD("rwr/calls", 1);
  COMMSIG_COUNTER_ADD("rwr/iterations", iterations_run);
  if (rwr_.max_hops == 0) {
    COMMSIG_HISTOGRAM_OBSERVE("rwr/residual_at_convergence", last_residual);
  }
  return {std::move(r), converged, last_residual, iterations_run};
}

Signature RwrScheme::SignatureFromVector(const CommGraph& g, NodeId v,
                                         const std::vector<double>& r) const {
  std::vector<Signature::Entry> candidates;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (r[u] <= 0.0) continue;
    if (!KeepCandidate(g, v, u)) continue;
    candidates.push_back({u, r[u]});
  }
  return Signature::FromTopK(std::move(candidates), options_.k);
}

Signature RwrScheme::SignatureFromSupport(
    const CommGraph& g, NodeId v,
    std::span<const Signature::Entry> support) const {
  // Streaming selection with the Definition-1 filter fused in (the
  // partition test hoisted out of the loop): no candidate vector, no
  // partitioning pass. Selects the same top-k set FromTopK would.
  Signature::TopKSelector selector(options_.k);
  const bool restrict_partition =
      options_.restrict_to_opposite_partition && g.bipartite().IsBipartite();
  if (restrict_partition) {
    const bool focal_left = g.InLeftPartition(v);
    for (const Signature::Entry& e : support) {
      if (e.node == v || g.InLeftPartition(e.node) == focal_left) continue;
      selector.Offer(e);
    }
  } else {
    for (const Signature::Entry& e : support) {
      if (e.node != v) selector.Offer(e);
    }
  }
  return selector.Take();
}

Signature RwrScheme::Compute(const CommGraph& g, NodeId v) const {
  RwrSolve solve = Solve(g, v);
  if (!solve.converged && rwr_.fallback_hops > 0) {
    // Degradation ladder (RWR -> RWR^h): an unconverged vector has no
    // accuracy guarantee at any rank, while the truncated walk is exact for
    // its restricted h-hop semantics — a defined approximation beats an
    // undefined one.
    COMMSIG_COUNTER_ADD("robust/rwr_fallbacks", 1);
    RwrOptions truncated = rwr_;
    truncated.max_hops = rwr_.fallback_hops;
    solve = RwrScheme(options_, truncated).Solve(g, v);
  }
  return SignatureFromVector(g, v, solve.probabilities);
}

std::vector<Signature> RwrScheme::ComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes) const {
  std::vector<Signature> out(nodes.size());
  if (nodes.empty()) return out;
  COMMSIG_SPAN("rwr/compute_all_batched");

  // One normalizer/partition derivation for the whole sweep, shared by the
  // main engine and the fallback ladder.
  TransitionCache cache(g, rwr_.traversal);
  RwrBatchEngine engine(rwr_, cache);
  RwrBatchWorkspace& ws = RwrBatchEngine::LocalWorkspace();

  RwrOptions truncated = rwr_;
  truncated.max_hops = rwr_.fallback_hops;
  RwrBatchEngine fallback_engine(truncated, cache);

  // Support-sparse result buffers (nonzero entries per column), reused
  // across batches so the sweep never materializes n-length vectors.
  std::vector<Signature::Entry> entries, retry_entries;
  std::vector<std::pair<size_t, size_t>> ranges, retry_ranges;
  std::vector<uint8_t> converged, retry_converged;
  std::vector<NodeId> retry_sources;

  const bool use_fallback = rwr_.max_hops == 0 && rwr_.fallback_hops > 0;
  const size_t width = RwrBatchEngine::kDefaultBatchWidth;
  for (size_t begin = 0; begin < nodes.size(); begin += width) {
    const size_t count = std::min(width, nodes.size() - begin);
    std::span<const NodeId> batch = nodes.subspan(begin, count);
    engine.SolveBatchSupport(batch, ws, entries, ranges, converged);

    if (use_fallback) {
      // Same degradation ladder as Compute, applied per column: re-solve
      // only the unconverged sources as a truncated sub-batch.
      retry_sources.clear();
      for (size_t b = 0; b < count; ++b) {
        if (!converged[b]) retry_sources.push_back(batch[b]);
      }
      if (!retry_sources.empty()) {
        COMMSIG_COUNTER_ADD("robust/rwr_fallbacks", retry_sources.size());
        fallback_engine.SolveBatchSupport(retry_sources, ws, retry_entries,
                                          retry_ranges, retry_converged);
      }
    }

    size_t ri = 0;
    for (size_t b = 0; b < count; ++b) {
      const bool retried = use_fallback && !converged[b];
      const auto [start, end] = retried ? retry_ranges[ri++] : ranges[b];
      const Signature::Entry* base =
          retried ? retry_entries.data() : entries.data();
      out[begin + b] = SignatureFromSupport(
          g, batch[b], std::span<const Signature::Entry>(base + start,
                                                         end - start));
    }
  }
  return out;
}

std::unique_ptr<SignatureScheme> MakeRwr(SchemeOptions options,
                                         RwrOptions rwr_options) {
  return std::make_unique<RwrScheme>(options, rwr_options);
}

}  // namespace commsig
