#include "core/rwr.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "obs/obs.h"

namespace commsig {

std::string RwrScheme::name() const {
  char buf[64];
  if (rwr_.max_hops > 0) {
    std::snprintf(buf, sizeof(buf), "rwr(c=%g,h=%zu)", rwr_.reset,
                  rwr_.max_hops);
  } else {
    std::snprintf(buf, sizeof(buf), "rwr(c=%g)", rwr_.reset);
  }
  return buf;
}

SchemeTraits RwrScheme::traits() const {
  if (rwr_.max_hops > 0) {
    // RWR^h: locality + transitivity -> all three properties (Table III).
    return {{GraphCharacteristic::kLocality,
             GraphCharacteristic::kTransitivity},
            {SignatureProperty::kPersistence, SignatureProperty::kUniqueness,
             SignatureProperty::kRobustness}};
  }
  return {{GraphCharacteristic::kTransitivity,
           GraphCharacteristic::kEngagement},
          {SignatureProperty::kPersistence, SignatureProperty::kRobustness}};
}

std::vector<double> RwrScheme::StationaryVector(const CommGraph& g,
                                                NodeId v) const {
  return Solve(g, v).probabilities;
}

RwrScheme::RwrSolve RwrScheme::Solve(const CommGraph& g, NodeId v) const {
  const size_t n = g.NumNodes();
  const bool symmetric = rwr_.traversal == TraversalMode::kSymmetric;
  const double c = rwr_.reset;

  // Total traversable weight per node (the row normalizer of P).
  std::vector<double> norm(n, 0.0);
  for (NodeId x = 0; x < n; ++x) {
    norm[x] = g.OutWeight(x) + (symmetric ? g.InWeight(x) : 0.0);
  }

  std::vector<double> r(n, 0.0), next(n, 0.0);
  r[v] = 1.0;

  COMMSIG_SPAN("rwr/iterate");
  const size_t iterations =
      rwr_.max_hops > 0 ? rwr_.max_hops : rwr_.max_iterations;
  size_t iterations_run = 0;
  double last_residual = 0.0;
  bool converged = rwr_.max_hops > 0;  // truncated walks converge by fiat
  for (size_t iter = 0; iter < iterations; ++iter) {
    ++iterations_run;
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId x = 0; x < n; ++x) {
      const double mass = r[x];
      if (mass == 0.0) continue;
      if (norm[x] <= 0.0) {
        // Nodes with no traversable edges return their mass to the start
        // node, preserving a total probability of 1.
        dangling += mass;
        continue;
      }
      const double scale = (1.0 - c) * mass / norm[x];
      for (const Edge& e : g.OutEdges(x)) {
        next[e.node] += scale * e.weight;
      }
      if (symmetric) {
        for (const Edge& e : g.InEdges(x)) {
          next[e.node] += scale * e.weight;
        }
      }
    }
    // Reset mass: c from every walking node, plus everything a dangling
    // node would have carried.
    double walked = 0.0;
    for (NodeId x = 0; x < n; ++x) {
      if (norm[x] > 0.0) walked += r[x];
    }
    next[v] += c * walked + dangling;

    if (rwr_.max_hops == 0) {
      double delta = 0.0;
      for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - r[i]);
      r.swap(next);
      last_residual = delta;
      if (delta < rwr_.tolerance) {
        converged = true;
        break;
      }
    } else {
      r.swap(next);
    }
  }
  COMMSIG_COUNTER_ADD("rwr/calls", 1);
  COMMSIG_COUNTER_ADD("rwr/iterations", iterations_run);
  if (rwr_.max_hops == 0) {
    COMMSIG_HISTOGRAM_OBSERVE("rwr/residual_at_convergence", last_residual);
  }
  return {std::move(r), converged, last_residual, iterations_run};
}

Signature RwrScheme::Compute(const CommGraph& g, NodeId v) const {
  RwrSolve solve = Solve(g, v);
  if (!solve.converged && rwr_.fallback_hops > 0) {
    // Degradation ladder (RWR -> RWR^h): an unconverged vector has no
    // accuracy guarantee at any rank, while the truncated walk is exact for
    // its restricted h-hop semantics — a defined approximation beats an
    // undefined one.
    COMMSIG_COUNTER_ADD("robust/rwr_fallbacks", 1);
    RwrOptions truncated = rwr_;
    truncated.max_hops = rwr_.fallback_hops;
    solve = RwrScheme(options_, truncated).Solve(g, v);
  }
  const std::vector<double>& r = solve.probabilities;

  std::vector<Signature::Entry> candidates;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (r[u] <= 0.0) continue;
    if (!KeepCandidate(g, v, u)) continue;
    candidates.push_back({u, r[u]});
  }
  return Signature::FromTopK(std::move(candidates), options_.k);
}

std::unique_ptr<SignatureScheme> MakeRwr(SchemeOptions options,
                                         RwrOptions rwr_options) {
  return std::make_unique<RwrScheme>(options, rwr_options);
}

}  // namespace commsig
