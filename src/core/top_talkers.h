#ifndef COMMSIG_CORE_TOP_TALKERS_H_
#define COMMSIG_CORE_TOP_TALKERS_H_

#include <string>

#include "core/scheme.h"

namespace commsig {

/// Top Talkers (paper Definition 3): the signature of `i` is the (at most)
/// k out-neighbours with the largest normalized outgoing volume
/// w_ij = C[i,j] / sum_v C[i,v].
///
/// Exploits locality and engagement only; the "Communities of Interest"
/// baseline from the fraud-detection literature.
class TopTalkersScheme final : public SignatureScheme {
 public:
  explicit TopTalkersScheme(SchemeOptions options)
      : SignatureScheme(options) {}

  std::string name() const override { return "tt"; }

  SchemeTraits traits() const override {
    return {{GraphCharacteristic::kLocality, GraphCharacteristic::kEngagement},
            {SignatureProperty::kUniqueness, SignatureProperty::kRobustness}};
  }

  Signature Compute(const CommGraph& g, NodeId v) const override;

  /// TT reads nothing but the focal out-row, so the dirty rule narrows
  /// from the base LocalDirty to OutChanged alone: an out-neighbour's
  /// in-degree change cannot move a TT signature.
  std::vector<Signature> IncrementalComputeAll(
      const CommGraph& g, std::span<const NodeId> nodes,
      const GraphDelta* delta, std::vector<Signature> previous,
      std::unique_ptr<IncrementalState>& state) const override;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_TOP_TALKERS_H_
