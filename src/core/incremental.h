#ifndef COMMSIG_CORE_INCREMENTAL_H_
#define COMMSIG_CORE_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/scheme.h"
#include "graph/comm_graph.h"

namespace commsig {

/// Drives a scheme's IncrementalComputeAll across a window sequence
/// G_0, G_1, ...: keeps the previous window's graph (for diffing), the
/// previous signatures, and the scheme's opaque warm state, so callers
/// just feed windows in order and read signatures back.
///
/// Determinism: an engine rebuilt mid-sequence (e.g. after a checkpoint
/// restore) primes its first Advance with a full sweep, which equals the
/// continuous run's signatures bit-for-bit for TT/UT (whose reuse is
/// bit-identical by construction) and within the scheme's documented
/// epsilon for RWR — engine state therefore never needs to be serialized.
///
/// Not thread-safe; the scheme must outlive the engine.
class IncrementalSignatureEngine {
 public:
  /// `nodes` is the focal population every Advance computes, in a fixed
  /// order (signatures() is index-aligned with it).
  IncrementalSignatureEngine(const SignatureScheme& scheme,
                             std::vector<NodeId> nodes);

  /// Consumes the next window graph and returns its signatures. The first
  /// call after construction or Reset primes (full sweep); subsequent
  /// calls diff against the retained previous window and go incremental.
  /// This owning form copies (or, if the caller moves, adopts) the graph.
  const std::vector<Signature>& Advance(CommGraph g);

  /// Zero-copy form for callers that keep the window sequence alive
  /// themselves (a materialized `std::vector<CommGraph>`): the engine
  /// borrows `g` as the diff base for the *next* Advance instead of
  /// copying it. `g` must stay valid and unmodified until the next
  /// Advance/AdvanceBorrowed/Reset or engine destruction. The two forms
  /// may be mixed freely.
  const std::vector<Signature>& AdvanceBorrowed(const CommGraph& g);

  /// Signatures of the most recent window (empty before the first Advance).
  const std::vector<Signature>& signatures() const { return current_; }

  std::span<const NodeId> nodes() const { return nodes_; }
  size_t windows_advanced() const { return windows_advanced_; }

  /// Arms the poison-window budget: an Advance whose wall time exceeds
  /// `budget_us` is a strike, and `strikes` consecutive strikes drop every
  /// piece of carried state (diff base, warm state, previous signatures)
  /// so the next Advance primes from scratch — the self-healing answer to
  /// an incremental path that has gone pathological (delta blow-up, warm
  /// state grown degenerate) and keeps missing its budget. An in-budget
  /// Advance clears the streak. budget_us = 0 disables (the default).
  /// Each strike logs `incremental_budget_strike`; each fallback logs
  /// `incremental_scratch_fallback` and bumps
  /// `core/incremental_scratch_rebuilds`.
  void SetOverBudgetPolicy(uint64_t budget_us, uint32_t strikes = 3);

  /// Replaces the wall clock driving the budget (tests feed a scripted
  /// sequence of microsecond readings; one reading is taken before and one
  /// after each Advance's compute).
  void SetClockForTest(std::function<uint64_t()> clock);

  uint64_t budget_strikes() const { return budget_strikes_total_; }
  uint64_t scratch_rebuilds() const { return scratch_rebuilds_; }

  /// Drops all carried state; the next Advance primes from scratch.
  void Reset();

 private:
  const std::vector<Signature>& AdvanceImpl(const CommGraph& g);
  uint64_t ClockNowUs() const;
  /// Drops the scheme warm state and forces the next Advance to prime
  /// (counters and the budget policy survive).
  void DropWarmState();

  const SignatureScheme* scheme_;
  std::vector<NodeId> nodes_;
  /// Diff base for the next Advance: `prev_graph_` when owning, or the
  /// caller's graph when borrowed (then `prev_owned_` stays empty).
  CommGraph prev_owned_;
  const CommGraph* prev_graph_ = nullptr;
  std::vector<Signature> current_;
  std::unique_ptr<IncrementalState> state_;
  size_t windows_advanced_ = 0;

  uint64_t budget_us_ = 0;
  uint32_t max_strikes_ = 3;
  uint32_t strike_streak_ = 0;
  /// Set by DropWarmState: the next Advance primes even though the caller
  /// re-installs a diff base after every AdvanceImpl.
  bool force_prime_ = false;
  uint64_t budget_strikes_total_ = 0;
  uint64_t scratch_rebuilds_ = 0;
  std::function<uint64_t()> clock_;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_INCREMENTAL_H_
