#ifndef COMMSIG_CORE_INCREMENTAL_H_
#define COMMSIG_CORE_INCREMENTAL_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/scheme.h"
#include "graph/comm_graph.h"

namespace commsig {

/// Drives a scheme's IncrementalComputeAll across a window sequence
/// G_0, G_1, ...: keeps the previous window's graph (for diffing), the
/// previous signatures, and the scheme's opaque warm state, so callers
/// just feed windows in order and read signatures back.
///
/// Determinism: an engine rebuilt mid-sequence (e.g. after a checkpoint
/// restore) primes its first Advance with a full sweep, which equals the
/// continuous run's signatures bit-for-bit for TT/UT (whose reuse is
/// bit-identical by construction) and within the scheme's documented
/// epsilon for RWR — engine state therefore never needs to be serialized.
///
/// Not thread-safe; the scheme must outlive the engine.
class IncrementalSignatureEngine {
 public:
  /// `nodes` is the focal population every Advance computes, in a fixed
  /// order (signatures() is index-aligned with it).
  IncrementalSignatureEngine(const SignatureScheme& scheme,
                             std::vector<NodeId> nodes);

  /// Consumes the next window graph and returns its signatures. The first
  /// call after construction or Reset primes (full sweep); subsequent
  /// calls diff against the retained previous window and go incremental.
  /// This owning form copies (or, if the caller moves, adopts) the graph.
  const std::vector<Signature>& Advance(CommGraph g);

  /// Zero-copy form for callers that keep the window sequence alive
  /// themselves (a materialized `std::vector<CommGraph>`): the engine
  /// borrows `g` as the diff base for the *next* Advance instead of
  /// copying it. `g` must stay valid and unmodified until the next
  /// Advance/AdvanceBorrowed/Reset or engine destruction. The two forms
  /// may be mixed freely.
  const std::vector<Signature>& AdvanceBorrowed(const CommGraph& g);

  /// Signatures of the most recent window (empty before the first Advance).
  const std::vector<Signature>& signatures() const { return current_; }

  std::span<const NodeId> nodes() const { return nodes_; }
  size_t windows_advanced() const { return windows_advanced_; }

  /// Drops all carried state; the next Advance primes from scratch.
  void Reset();

 private:
  const std::vector<Signature>& AdvanceImpl(const CommGraph& g);

  const SignatureScheme* scheme_;
  std::vector<NodeId> nodes_;
  /// Diff base for the next Advance: `prev_graph_` when owning, or the
  /// caller's graph when borrowed (then `prev_owned_` stays empty).
  CommGraph prev_owned_;
  const CommGraph* prev_graph_ = nullptr;
  std::vector<Signature> current_;
  std::unique_ptr<IncrementalState> state_;
  size_t windows_advanced_ = 0;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_INCREMENTAL_H_
