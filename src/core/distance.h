#ifndef COMMSIG_CORE_DISTANCE_H_
#define COMMSIG_CORE_DISTANCE_H_

#include <span>
#include <string_view>

#include "common/result.h"
#include "core/signature.h"

namespace commsig {

/// The four signature distance functions of Section IV-B. All map a pair of
/// signatures into [0, 1]; 0 means identical support (and, for the weighted
/// variants, identical weights), 1 means disjoint support.
enum class DistanceKind {
  /// Jaccard: 1 - |S1 ∩ S2| / |S1 ∪ S2|. Ignores weights.
  kJaccard,
  /// Weighted Dice: 1 - Σ_{j∈∩}(w1j + w2j) / Σ_{j∈∪}(w1j + w2j).
  kDice,
  /// Scaled Dice: 1 - Σ_{j∈∩} min(w1j, w2j) / Σ_{j∈∪} max(w1j, w2j) —
  /// rewards signatures whose common nodes also carry similar weights.
  kScaledDice,
  /// Scaled Hellinger: 1 - Σ_{j∈∩} sqrt(w1j·w2j) / Σ_{j∈∪} max(w1j, w2j) —
  /// like ScaledDice but with a geometric-mean numerator that penalizes
  /// unequal weights less harshly.
  kScaledHellinger,

  // --- Extensions beyond the paper's four (Section IV-B notes "other
  // functions are certainly suitable"). Not included in AllDistanceKinds()
  // so the figure benches keep the paper's lineup. ---

  /// Cosine: 1 - <w1, w2> / (|w1|·|w2|). Scale-invariant in each
  /// signature's weights.
  kCosine,
  /// Overlap (Szymkiewicz-Simpson): 1 - |S1 ∩ S2| / min(|S1|, |S2|).
  /// Insensitive to signature-length mismatch; useful when comparing
  /// signatures built with different k.
  kOverlap,
};

/// The paper's four kinds, in its presentation order.
std::span<const DistanceKind> AllDistanceKinds();

/// The paper's four plus the extensions.
std::span<const DistanceKind> AllDistanceKindsExtended();

/// Short name: "jac", "dice", "sdice", "shel".
std::string_view DistanceName(DistanceKind kind);

/// Inverse of DistanceName; InvalidArgument for unknown names.
Result<DistanceKind> ParseDistanceName(std::string_view name);

/// One distance kernel, specialized per kind over the packed signature
/// views: it touches only the statistics its formula needs (Jaccard never
/// reads a weight) and runs the tiered set intersection of Section §14 —
/// vectorized linear merge for similar-size sets, galloping search for
/// skewed sizes, and a bitset path for dense id ranges.
using DistanceKernelFn = double (*)(const Signature&, const Signature&);

/// The kernel for `kind`. Hoist this out of pairwise loops (or use
/// SignatureDistance, which does it for you) so the kind dispatch runs
/// once per scan instead of once per pair.
DistanceKernelFn DistanceKernel(DistanceKind kind);

/// Computes Dist_kind(a, b).
///
/// Edge cases (both signatures must come from schemes that emit positive
/// weights): two empty signatures are at distance 0 — an individual with no
/// observable communication is "identical to itself"; empty vs non-empty is
/// distance 1.
double Distance(DistanceKind kind, const Signature& a, const Signature& b);

/// The pre-SIMD single-merge formulation: one linear merge over the entry
/// pairs accumulating every statistic. Kept as the semantic reference the
/// randomized equivalence tests compare the packed kernels against, and as
/// the in-run baseline the BM_PairwiseDistances speedup gauges divide by.
/// Values may differ from Distance() in the last few ulps (the packed
/// kernels hoist per-signature sums to construction and accumulate matches
/// 4 lanes at a time), never more.
double DistanceReference(DistanceKind kind, const Signature& a,
                         const Signature& b);

/// Convenience value type bundling a kind with its evaluation; cheap to
/// copy, usable as a function object. Resolves the kernel once at
/// construction, so per-pair calls are a single indirect call with no kind
/// switch.
class SignatureDistance {
 public:
  explicit SignatureDistance(DistanceKind kind)
      : kind_(kind), kernel_(DistanceKernel(kind)) {}

  double operator()(const Signature& a, const Signature& b) const;

  DistanceKind kind() const { return kind_; }
  std::string_view name() const { return DistanceName(kind_); }

 private:
  DistanceKind kind_;
  DistanceKernelFn kernel_;
};

namespace distance_internal {

/// Intersection strategy, normally auto-selected per pair from the set
/// sizes and id range. Exposed so the equivalence tests can force each
/// tier and assert bit-identical results (every tier emits the same
/// matched-weight sequence in ascending id order, so the accumulated sums
/// are equal bit for bit).
enum class IntersectTier {
  kAuto,
  kMerge,       // scalar two-pointer linear merge
  kBlockMerge,  // 8-wide vectorized merge (falls back to kMerge without a
                // wide-integer SIMD backend)
  kGallop,      // galloping/binary search of the smaller set in the larger
  kBitset,      // word-parallel bitmap over the overlapping id range
};

/// Distance with a forced intersection tier. Test seam; production code
/// goes through Distance()/SignatureDistance, which always auto-select.
double DistanceWithTier(DistanceKind kind, const Signature& a,
                        const Signature& b, IntersectTier tier);

}  // namespace distance_internal

}  // namespace commsig

#endif  // COMMSIG_CORE_DISTANCE_H_
