#include "core/scheme.h"

#include <array>
#include <cstdlib>

#include "core/rwr_push.h"
#include "graph/graph_delta.h"
#include "obs/obs.h"

namespace commsig {

std::span<const ApplicationRequirement> ApplicationRequirements() {
  // Paper Table I.
  static constexpr std::array<ApplicationRequirement, 3> kTable = {{
      {"multiusage-detection", Requirement::kLow, Requirement::kHigh,
       Requirement::kHigh},
      {"label-masquerading", Requirement::kHigh, Requirement::kHigh,
       Requirement::kMedium},
      {"anomaly-detection", Requirement::kHigh, Requirement::kLow,
       Requirement::kHigh},
  }};
  return kTable;
}

const std::vector<CharacteristicLink>& CharacteristicLinks() {
  // Paper Table II.
  // NOLINT(commsig-naked-new): leaked singleton
  static const auto& kLinks = *new std::vector<CharacteristicLink>{
      {GraphCharacteristic::kEngagement,
       {SignatureProperty::kPersistence, SignatureProperty::kRobustness}},
      {GraphCharacteristic::kNovelty, {SignatureProperty::kUniqueness}},
      {GraphCharacteristic::kLocality, {SignatureProperty::kUniqueness}},
      {GraphCharacteristic::kTransitivity,
       {SignatureProperty::kPersistence, SignatureProperty::kRobustness}},
  };
  return kLinks;
}

std::vector<Signature> SignatureScheme::ComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes) const {
  std::vector<Signature> out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) out.push_back(Compute(g, v));
  return out;
}

std::vector<Signature> SignatureScheme::RecomputeDirty(
    const CommGraph& g, std::span<const NodeId> nodes,
    std::vector<Signature> previous,
    const std::function<bool(NodeId)>& is_dirty) const {
  std::vector<NodeId> dirty_nodes;
  std::vector<size_t> dirty_slots;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (is_dirty(nodes[i])) {
      dirty_nodes.push_back(nodes[i]);
      dirty_slots.push_back(i);
    }
  }
  // Route dirty recomputes through ComputeAll, not per-node Compute, so a
  // scheme's batched sweep amortization carries over to the dirty subset.
  std::vector<Signature> recomputed = ComputeAll(g, dirty_nodes);

  // Clean signatures ride along by move: a reuse is O(1), no allocation.
  std::vector<Signature> out = std::move(previous);
  for (size_t j = 0; j < dirty_slots.size(); ++j) {
    out[dirty_slots[j]] = std::move(recomputed[j]);
  }
  COMMSIG_COUNTER_ADD("timeline/nodes_dirty", dirty_nodes.size());
  COMMSIG_COUNTER_ADD("timeline/nodes_reused",
                      nodes.size() - dirty_nodes.size());
  return out;
}

std::vector<Signature> SignatureScheme::IncrementalComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes, const GraphDelta* delta,
    std::vector<Signature> previous,
    std::unique_ptr<IncrementalState>& state) const {
  (void)state;  // the base rule is stateless; schemes with warm state override
  if (delta == nullptr || previous.size() != nodes.size()) {
    COMMSIG_COUNTER_ADD("timeline/nodes_dirty", nodes.size());
    return ComputeAll(g, nodes);
  }
  return RecomputeDirty(g, nodes, std::move(previous),
                        [&](NodeId v) { return delta->LocalDirty(v); });
}

bool SignatureScheme::KeepCandidate(const CommGraph& g, NodeId focal,
                                    NodeId candidate) const {
  if (candidate == focal) return false;  // Definition 1: u != v
  if (options_.restrict_to_opposite_partition &&
      g.bipartite().IsBipartite()) {
    return g.InLeftPartition(focal) != g.InLeftPartition(candidate);
  }
  return true;
}

namespace {

// Parses "key=value" pairs inside "rwr(...)".
bool ParseRwrParams(std::string_view params, RwrOptions& opts,
                    bool& has_hops) {
  has_hops = false;
  while (!params.empty()) {
    size_t comma = params.find(',');
    std::string_view item =
        comma == std::string_view::npos ? params : params.substr(0, comma);
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) return false;
    std::string key(item.substr(0, eq));
    std::string value(item.substr(eq + 1));
    char* end = nullptr;
    if (key == "c") {
      opts.reset = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size()) return false;
      if (opts.reset < 0.0 || opts.reset > 1.0) return false;
    } else if (key == "h") {
      unsigned long h = std::strtoul(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size()) return false;
      opts.max_hops = h;
      has_hops = true;
    } else if (key == "mode") {
      if (value == "directed") {
        opts.traversal = TraversalMode::kDirected;
      } else if (value == "symmetric") {
        opts.traversal = TraversalMode::kSymmetric;
      } else {
        return false;
      }
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<SignatureScheme>> CreateScheme(std::string_view spec,
                                                      SchemeOptions options) {
  if (spec == "tt") return MakeTopTalkers(options);
  if (spec == "ut") {
    return MakeUnexpectedTalkers(options, UtWeighting::kInverseInDegree);
  }
  if (spec == "ut-tfidf") {
    return MakeUnexpectedTalkers(options, UtWeighting::kTfIdf);
  }
  if (spec.rfind("rwr-push", 0) == 0) {
    RwrPushOptions push;
    if (spec != "rwr-push") {
      if (spec.size() < 10 || spec[8] != '(' || spec.back() != ')') {
        return Status::InvalidArgument("bad rwr-push spec: " +
                                       std::string(spec));
      }
      std::string_view params = spec.substr(9, spec.size() - 10);
      while (!params.empty()) {
        size_t comma = params.find(',');
        std::string_view item = comma == std::string_view::npos
                                    ? params
                                    : params.substr(0, comma);
        params = comma == std::string_view::npos ? std::string_view{}
                                                 : params.substr(comma + 1);
        size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
          return Status::InvalidArgument("bad rwr-push param");
        }
        std::string key(item.substr(0, eq));
        std::string value(item.substr(eq + 1));
        char* end = nullptr;
        if (key == "c") {
          push.reset = std::strtod(value.c_str(), &end);
          if (end != value.c_str() + value.size() || push.reset <= 0.0 ||
              push.reset > 1.0) {
            return Status::InvalidArgument("bad rwr-push c");
          }
        } else if (key == "eps") {
          push.epsilon = std::strtod(value.c_str(), &end);
          if (end != value.c_str() + value.size() || push.epsilon <= 0.0) {
            return Status::InvalidArgument("bad rwr-push eps");
          }
        } else if (key == "mode") {
          if (value == "directed") {
            push.traversal = TraversalMode::kDirected;
          } else if (value == "symmetric") {
            push.traversal = TraversalMode::kSymmetric;
          } else {
            return Status::InvalidArgument("bad rwr-push mode");
          }
        } else {
          return Status::InvalidArgument("unknown rwr-push param: " + key);
        }
      }
    }
    return MakeRwrPush(options, push);
  }
  if (spec.rfind("rwr", 0) == 0) {
    RwrOptions rwr;
    if (spec != "rwr") {
      if (spec.size() < 5 || spec[3] != '(' || spec.back() != ')') {
        return Status::InvalidArgument("bad rwr spec: " + std::string(spec));
      }
      bool has_hops = false;
      if (!ParseRwrParams(spec.substr(4, spec.size() - 5), rwr, has_hops)) {
        return Status::InvalidArgument("bad rwr params: " + std::string(spec));
      }
    }
    return MakeRwr(options, rwr);
  }
  return Status::InvalidArgument("unknown scheme spec: " + std::string(spec));
}

}  // namespace commsig
