#ifndef COMMSIG_CORE_SIGNATURE_IO_H_
#define COMMSIG_CORE_SIGNATURE_IO_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "core/signature.h"
#include "robust/record_errors.h"

namespace commsig {

/// A set of signatures keyed by their owner node — the unit a production
/// deployment persists between observation windows (COI-style profile
/// store: compute this week's signatures, save, load next week to compare).
struct SignatureSet {
  std::vector<NodeId> owners;
  std::vector<Signature> signatures;  // index-aligned with owners

  size_t size() const { return owners.size(); }

  /// Index of an owner, or SIZE_MAX if absent. O(n).
  size_t Find(NodeId owner) const;
};

/// Writes a signature set as CSV rows `owner_label,member_label,weight`
/// (one row per signature entry; owners with empty signatures are written
/// as a single `owner_label,,0` marker row so they round-trip).
Status WriteSignatureSetCsv(const SignatureSet& set, const Interner& interner,
                            const std::string& path);

/// Reads a signature set written by WriteSignatureSetCsv, interning labels
/// into `interner`. Rows are grouped by owner in file order; entries of
/// one owner may appear in any order. Fails with InvalidArgument on
/// malformed rows or non-positive entry weights.
Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner);

/// Lenient variant: malformed rows (wrong field count, empty owner labels,
/// unparseable / NaN / Inf / non-positive entry weights) are handled per
/// `options.policy`; labels of rejected rows are never interned.
Result<SignatureSet> ReadSignatureSetCsv(const std::string& path,
                                         Interner& interner,
                                         const IngestOptions& options);

}  // namespace commsig

#endif  // COMMSIG_CORE_SIGNATURE_IO_H_
