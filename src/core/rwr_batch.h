#ifndef COMMSIG_CORE_RWR_BATCH_H_
#define COMMSIG_CORE_RWR_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/rwr.h"
#include "graph/comm_graph.h"

namespace commsig {

/// Per-(graph, traversal-mode) precomputation shared by every RWR solve on
/// the same window: the row normalizers of the transition matrix P and the
/// walkable/dangling node partition. Building it is one O(n) pass; the
/// per-source paths used to re-derive it on every call, which made an
/// all-hosts sweep pay n× redundant setup.
///
/// Safe to share across threads between mutations; the referenced graph
/// must outlive the cache. Rebase() is the only mutator — sliding-window
/// callers use it to carry the cache to the next window for O(changed)
/// instead of O(n) per-window setup.
class TransitionCache {
 public:
  TransitionCache(const CommGraph& g, TraversalMode mode);

  /// Re-points the cache at `new_g` (same node universe) and recomputes
  /// the normalizers of `changed_rows` only. `changed_rows` must cover
  /// every node whose out-row (or, for symmetric traversals, in-row)
  /// differs between the old and new graph — GraphDelta::changed_row_nodes
  /// is such a cover. Afterwards the cache is indistinguishable from one
  /// freshly built on `new_g`.
  void Rebase(const CommGraph& new_g, std::span<const NodeId> changed_rows);

  const CommGraph& graph() const { return *graph_; }
  TraversalMode mode() const { return mode_; }

  /// Total traversable weight of `x` (out-weight, plus in-weight when the
  /// traversal is symmetric) — the row normalizer of P.
  double norm(NodeId x) const { return norm_[x]; }

  /// 1 / norm(x) (0 for dangling rows), precomputed so the power-iteration
  /// inner loops multiply instead of divide — divisions were the single
  /// largest arithmetic cost of a sweep. Both the serial and batched
  /// solvers scale by this, keeping their results bit-identical to each
  /// other.
  double inv_norm(NodeId x) const { return inv_norm_[x]; }

  /// True iff `x` has traversable edges. Walks at non-walkable (dangling)
  /// nodes return their mass to the start node.
  bool walkable(NodeId x) const { return walkable_[x] != 0; }

  size_t num_nodes() const { return norm_.size(); }
  size_t num_walkable() const { return num_walkable_; }
  size_t num_dangling() const { return norm_.size() - num_walkable_; }

  /// Opts this cache into degree-ordered dense traversal: full-graph scans
  /// of the batched solver visit rows in CommGraph::NodesByTraversalDegree
  /// order instead of ascending id, which keeps the hub rows' scatter
  /// targets cache-hot. Off by default because reordering a full scan
  /// changes the per-target accumulation order: batched results then match
  /// the serial solver only within rounding drift (the RWR^h bit-identity
  /// guarantee holds only for the default ascending order). O(n log n) to
  /// build; Rebase() rebuilds it when enabled.
  void EnableDegreeOrder();

  /// Degree-descending row order when EnableDegreeOrder was called; empty
  /// otherwise (callers then scan ascending).
  std::span<const NodeId> traversal_order() const { return traversal_order_; }
  bool has_traversal_order() const { return !traversal_order_.empty(); }

 private:
  const CommGraph* graph_;
  TraversalMode mode_;
  std::vector<double> norm_;
  std::vector<double> inv_norm_;
  std::vector<uint8_t> walkable_;
  std::vector<NodeId> traversal_order_;  // empty unless EnableDegreeOrder
  size_t num_walkable_ = 0;
};

/// Reusable scratch for RwrBatchEngine::SolveBatch. All buffers grow to the
/// high-water mark and are recycled across batches: every solve restores
/// the "r/next/in_next all-zero" invariant on exit, so a steady-state
/// all-hosts sweep performs neither per-batch allocation nor per-batch
/// O(n·B) zero-fills. Obtain one per thread via
/// RwrBatchEngine::LocalWorkspace().
struct RwrBatchWorkspace {
  std::vector<double> r;     // n × B occupancy, node-major (row x is B-wide)
  std::vector<double> next;  // n × B scatter target
  std::vector<double> scale, walked, dangling, delta, last_residual;  // B
  std::vector<uint8_t> active;   // B: column still iterating
  std::vector<uint8_t> in_next;  // n: row already touched this iteration
  std::vector<NodeId> frontier;  // sorted rows where r is nonzero
  std::vector<NodeId> touched;   // rows written this iteration
  std::vector<uint32_t> lanes;   // scratch: live column indices of one row
  std::vector<size_t> iterations;  // B: iterations run per column
  bool dense = false;  // frontier tracking abandoned for this solve

  /// Sizes the buffers, zero-filling only on shape changes (the all-zero
  /// invariant covers reuse).
  void Prepare(size_t n, size_t width);
};

/// Batched multi-source RWR solver: iterates B source columns simultaneously
/// as one SpMM-style pass over the CSR adjacency, so each graph scan is
/// amortized over B sources and the per-edge inner loop is a contiguous
/// B-wide multiply-add that vectorizes.
///
/// Two sparsity levers on top of the blocking:
///  - frontier-sparse iteration: only rows holding nonzero mass (for any
///    column) are visited, which collapses the cost of RWR^h hops 1–2 and
///    of the early unbounded iterations on large windows. The engine
///    switches to dense scans once the frontier covers more than a quarter
///    of the nodes (and stays dense — RWR mass never re-sparsifies).
///  - per-column convergence masking: a converged column's result is
///    extracted and the column zeroed, so finished sources drop out of the
///    remaining iterations instead of being recomputed to the slowest
///    column's horizon.
///
/// Per-column results are bit-identical to RwrScheme::Solve for truncated
/// RWR^h walks (same additions in the same order), and match within solver
/// tolerance for unbounded walks.
class RwrBatchEngine {
 public:
  /// Number of source columns a batch window holds by default. Wide enough
  /// to amortize the graph scan and fill vector lanes, small enough that
  /// the n × B state of a 20k-node window stays cache-resident.
  static constexpr size_t kDefaultBatchWidth = 16;

  /// `cache` must outlive the engine and must have been built with
  /// `opts.traversal` (checked).
  RwrBatchEngine(const RwrOptions& opts, const TransitionCache& cache);

  /// Solves all sources as one block power iteration. `solves[i]` is
  /// index-aligned with `sources[i]`; duplicate sources are allowed.
  /// Memory is O(n · sources.size()), so callers should window large
  /// populations (kDefaultBatchWidth at a time) rather than pass them
  /// whole.
  std::vector<RwrScheme::RwrSolve> SolveBatch(std::span<const NodeId> sources,
                                              RwrBatchWorkspace& ws) const;

  /// Convenience overload using the calling thread's reusable workspace.
  std::vector<RwrScheme::RwrSolve> SolveBatch(
      std::span<const NodeId> sources) const;

  /// Sweep-oriented variant: solves the batch and stores each column's
  /// nonzero (node, probability) entries — ascending by node id — into
  /// `entries`, recording column b's slice as
  /// [ranges[b].first, ranges[b].second). Skips SolveBatch's O(n)
  /// densification per column, which dominates sweeps on windows whose
  /// live support is far below n. `converged[b]` reports per-column
  /// convergence (always true for truncated walks) for the caller's
  /// fallback ladder. The output vectors are cleared and refilled, so
  /// callers can reuse them across batches without reallocation.
  void SolveBatchSupport(std::span<const NodeId> sources,
                         RwrBatchWorkspace& ws,
                         std::vector<Signature::Entry>& entries,
                         std::vector<std::pair<size_t, size_t>>& ranges,
                         std::vector<uint8_t>& converged) const;

  /// The calling thread's lazily constructed scratch workspace
  /// (thread_local, so never shared; the reference must not be handed to
  /// another thread — it dangles when this thread exits).
  static RwrBatchWorkspace& LocalWorkspace();

  const RwrOptions& options() const { return opts_; }

 private:
  /// Shared block power iteration. on_converged(b, residual, iterations)
  /// fires when a column meets tolerance and is masked out (column b of
  /// ws.r is readable through VisitColumn at that point); on_done(live)
  /// fires once after the iteration cap with the still-live column indices
  /// (their state readable in bulk — residuals/iterations via the
  /// workspace arrays). Restores the workspace's all-zero invariant before
  /// returning.
  template <typename FinalizeCol, typename FinalizeRest>
  void Run(std::span<const NodeId> sources, RwrBatchWorkspace& ws,
           FinalizeCol&& on_converged, FinalizeRest&& on_done) const;

  /// Invokes fn(node, probability) for each nonzero entry of column b,
  /// ascending by node id.
  template <typename Fn>
  static void VisitColumn(const RwrBatchWorkspace& ws, size_t num_nodes,
                          size_t width, size_t b, Fn&& fn);

  RwrOptions opts_;
  const TransitionCache* cache_;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_RWR_BATCH_H_
