#ifndef COMMSIG_CORE_SIGNATURE_H_
#define COMMSIG_CORE_SIGNATURE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/interner.h"

namespace commsig {

/// A communication-graph signature (paper Definition 1): the top-k nodes by
/// relevancy weight for some focal node, stored as (node, weight) entries.
///
/// Entries are kept sorted by node id so that the set operations behind the
/// distance functions are single linear merges. All weights are positive —
/// zero-relevance nodes never enter a signature.
class Signature {
 public:
  struct Entry {
    NodeId node = kInvalidNode;
    double weight = 0.0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// An empty signature (node with no observed relevant neighbours).
  Signature() = default;

  /// Builds a signature from arbitrary candidate weights: keeps the (at
  /// most) k candidates with the largest weights, drops non-positive
  /// weights, and sorts by node id. Ties beyond position k are broken by
  /// smaller node id (deterministic; the paper allows arbitrary
  /// tie-breaking).
  static Signature FromTopK(std::vector<Entry> candidates, size_t k);

  /// Streaming top-k selection with FromTopK's exact ranking (weight desc,
  /// node asc — the top-k set under that strict total order is unique, so
  /// the result equals FromTopK over the same candidates). Lets callers
  /// fuse candidate filtering with selection instead of materializing and
  /// partitioning a candidate vector per focal node, which dominates
  /// all-hosts sweeps with large walk supports. Offer cost is O(1) unless
  /// the candidate enters the running top-k (O(k) then).
  class TopKSelector {
   public:
    explicit TopKSelector(size_t k);

    /// Considers one candidate; non-positive and non-finite weights are
    /// ignored, exactly like FromTopK's pre-filter.
    void Offer(Entry e);

    /// Finishes the selection: sorts by node id and observes the same
    /// signature/* metrics FromTopK does. The selector is left empty and
    /// can be reused via Reset.
    Signature Take();

    /// Clears state for the next focal node, keeping capacity.
    void Reset();

   private:
    size_t k_;
    size_t seen_ = 0;     // candidates surviving the weight pre-filter
    size_t weakest_ = 0;  // index into best_ of the lowest-ranked entry
    std::vector<Entry> best_;
  };

  /// Entries sorted ascending by node id.
  std::span<const Entry> entries() const { return entries_; }

  /// Flat structure-of-arrays view of the entries, rebuilt whenever the
  /// entries change. The distance kernels consume this instead of the
  /// (node, weight) structs: the id array is contiguous u32s — what the
  /// vectorized set-intersection tiers load 8 at a time — and the weight
  /// array is contiguous doubles for the 4-lane match accumulators.
  /// total_weight and sum_squares are the per-signature reductions every
  /// kernel denominator needs, hoisted to construction time so a pairwise
  /// scan never re-sums a signature. Pointers are valid while the
  /// signature is alive and unmodified; ids/weights are null when empty.
  struct PackedView {
    const NodeId* ids = nullptr;
    const double* weights = nullptr;
    size_t size = 0;
    double total_weight = 0.0;  // Σ w   (ascending-id accumulation order)
    double sum_squares = 0.0;   // Σ w²  (same order)
  };
  PackedView packed() const {
    return {packed_ids_.data(), packed_weights_.data(), packed_ids_.size(),
            total_weight_, sum_squares_};
  }

  /// Σ w² over the entries, cached at construction (the cosine kernel's
  /// per-signature norm).
  double SumSquares() const { return sum_squares_; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True iff `node` appears in the signature. O(log size).
  bool Contains(NodeId node) const { return WeightOf(node) > 0.0; }

  /// Weight of `node` in the signature, or 0 if absent. O(log size).
  double WeightOf(NodeId node) const;

  /// Sum of entry weights. Cached at construction — this sits under
  /// Normalized() and every per-pair distance call, so it must not re-sum
  /// the entries each time.
  double TotalWeight() const { return total_weight_; }

  /// Returns a copy with weights scaled to sum to 1 (no-op when empty).
  /// Useful when comparing signatures whose schemes emit different scales.
  Signature Normalized() const;

  /// Human-readable rendering "{label:weight, ...}" in descending weight
  /// order, using `interner` for labels.
  std::string ToString(const Interner& interner) const;

  /// Equality is over entries only; the cached total is derived state.
  friend bool operator==(const Signature& a, const Signature& b) {
    return a.entries_ == b.entries_;
  }

 private:
  /// Recomputes every piece of derived state from entries_: the cached
  /// total and sum of squares, and the packed SoA arrays. Must be called
  /// by every path that (re)sets entries_.
  void RecomputeTotal();

  std::vector<Entry> entries_;
  std::vector<NodeId> packed_ids_;      // entries_[i].node, flat
  std::vector<double> packed_weights_;  // entries_[i].weight, flat
  double total_weight_ = 0.0;
  double sum_squares_ = 0.0;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_SIGNATURE_H_
