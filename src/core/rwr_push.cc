#include "core/rwr_push.h"

#include <cstdio>
#include <deque>
#include <vector>

#include "obs/obs.h"

namespace commsig {

std::string RwrPushScheme::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "rwr-push(c=%g,eps=%g)", push_.reset,
                push_.epsilon);
  return buf;
}

std::vector<double> RwrPushScheme::ApproximateVector(const CommGraph& g,
                                                     NodeId v,
                                                     size_t* pushes) const {
  COMMSIG_SPAN("rwr_push/approximate");
  const size_t n = g.NumNodes();
  const bool symmetric = push_.traversal == TraversalMode::kSymmetric;
  const double c = push_.reset;

  std::vector<double> norm(n, 0.0);
  for (NodeId x = 0; x < n; ++x) {
    norm[x] = g.OutWeight(x) + (symmetric ? g.InWeight(x) : 0.0);
  }

  std::vector<double> p(n, 0.0), r(n, 0.0);
  std::vector<bool> queued(n, false);
  std::deque<NodeId> queue;
  r[v] = 1.0;
  queue.push_back(v);
  queued[v] = true;

  size_t push_count = 0;
  auto enqueue_if_hot = [&](NodeId u) {
    // Nodes with no traversable edges are pushed too (their threshold is
    // any positive residual) so their mass returns to the start.
    const double threshold =
        norm[u] > 0.0 ? push_.epsilon * norm[u] : 1e-12;
    if (!queued[u] && r[u] > threshold) {
      queued[u] = true;
      queue.push_back(u);
    }
  };

  while (!queue.empty()) {
    if (push_.max_pushes > 0 && push_count >= push_.max_pushes) break;
    NodeId u = queue.front();
    queue.pop_front();
    queued[u] = false;
    const double mass = r[u];
    const double threshold =
        norm[u] > 0.0 ? push_.epsilon * norm[u] : 1e-12;
    if (mass <= threshold) continue;
    ++push_count;
    r[u] = 0.0;
    p[u] += c * mass;
    const double spread = (1.0 - c) * mass;
    if (norm[u] <= 0.0) {
      // Dangling: remaining mass walks home (same convention as the power
      // iteration in RwrScheme).
      r[v] += spread;
      enqueue_if_hot(v);
      continue;
    }
    const double scale = spread / norm[u];
    for (const Edge& e : g.OutEdges(u)) {
      r[e.node] += scale * e.weight;
      enqueue_if_hot(e.node);
    }
    if (symmetric) {
      for (const Edge& e : g.InEdges(u)) {
        r[e.node] += scale * e.weight;
        enqueue_if_hot(e.node);
      }
    }
  }
  COMMSIG_COUNTER_ADD("rwr_push/calls", 1);
  COMMSIG_COUNTER_ADD("rwr_push/pushes", push_count);
  if (pushes != nullptr) *pushes = push_count;
  return p;
}

Signature RwrPushScheme::Compute(const CommGraph& g, NodeId v) const {
  std::vector<double> p = ApproximateVector(g, v);
  std::vector<Signature::Entry> candidates;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (p[u] <= 0.0) continue;
    if (!KeepCandidate(g, v, u)) continue;
    candidates.push_back({u, p[u]});
  }
  return Signature::FromTopK(std::move(candidates), options_.k);
}

std::vector<Signature> RwrPushScheme::IncrementalComputeAll(
    const CommGraph& g, std::span<const NodeId> nodes, const GraphDelta* delta,
    std::vector<Signature> previous,
    std::unique_ptr<IncrementalState>& state) const {
  (void)delta;
  (void)previous;
  (void)state;
  COMMSIG_COUNTER_ADD("timeline/nodes_dirty", nodes.size());
  return ComputeAll(g, nodes);
}

std::unique_ptr<SignatureScheme> MakeRwrPush(SchemeOptions options,
                                             RwrPushOptions push_options) {
  return std::make_unique<RwrPushScheme>(options, push_options);
}

}  // namespace commsig
