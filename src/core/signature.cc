#include "core/signature.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace commsig {

Signature Signature::FromTopK(std::vector<Entry> candidates, size_t k) {
  // Drop non-positive and non-finite weights first; Definition 1 takes
  // weights in R+, and a +Inf weight (e.g. from a corrupted volume) would
  // otherwise outrank every legitimate entry and poison normalization.
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [](const Entry& e) {
                       return !(e.weight > 0.0) || !std::isfinite(e.weight);
                     }),
      candidates.end());
  COMMSIG_COUNTER_ADD("signature/built", 1);
  COMMSIG_HISTOGRAM_OBSERVE("signature/candidates", candidates.size());

  if (candidates.size() > k) {
    // Rank by (weight desc, node asc) so the cut at k is deterministic.
    auto rank = [](const Entry& a, const Entry& b) {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.node < b.node;
    };
    std::nth_element(candidates.begin(), candidates.begin() + k,
                     candidates.end(), rank);
    candidates.resize(k);
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Entry& a, const Entry& b) { return a.node < b.node; });

  Signature sig;
  sig.entries_ = std::move(candidates);
  sig.RecomputeTotal();
  return sig;
}

Signature::TopKSelector::TopKSelector(size_t k) : k_(k) { best_.reserve(k); }

namespace {

// Index of the lowest-ranked entry under (weight desc, node asc).
size_t WeakestIndex(const std::vector<Signature::Entry>& best) {
  size_t weakest = 0;
  for (size_t i = 1; i < best.size(); ++i) {
    const Signature::Entry& a = best[i];
    const Signature::Entry& b = best[weakest];
    if (a.weight < b.weight || (a.weight == b.weight && a.node > b.node)) {
      weakest = i;
    }
  }
  return weakest;
}

}  // namespace

void Signature::TopKSelector::Offer(Entry e) {
  if (!(e.weight > 0.0) || !std::isfinite(e.weight)) return;
  ++seen_;
  if (best_.size() < k_) {
    best_.push_back(e);
    if (best_.size() == k_) weakest_ = WeakestIndex(best_);
    return;
  }
  if (k_ == 0) return;
  const Entry& w = best_[weakest_];
  // Keep only candidates that outrank the current weakest entry under the
  // (weight desc, node asc) total order.
  if (e.weight < w.weight || (e.weight == w.weight && e.node >= w.node)) {
    return;
  }
  best_[weakest_] = e;
  weakest_ = WeakestIndex(best_);
}

Signature Signature::TopKSelector::Take() {
  COMMSIG_COUNTER_ADD("signature/built", 1);
  COMMSIG_HISTOGRAM_OBSERVE("signature/candidates", seen_);
  std::sort(best_.begin(), best_.end(),
            [](const Entry& a, const Entry& b) { return a.node < b.node; });
  Signature sig;
  sig.entries_ = std::move(best_);
  sig.RecomputeTotal();
  Reset();
  return sig;
}

void Signature::TopKSelector::Reset() {
  best_.clear();
  seen_ = 0;
  weakest_ = 0;
}

double Signature::WeightOf(NodeId node) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), node,
      [](const Entry& e, NodeId id) { return e.node < id; });
  if (it != entries_.end() && it->node == node) return it->weight;
  return 0.0;
}

void Signature::RecomputeTotal() {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.weight;
  total_weight_ = total;
}

Signature Signature::Normalized() const {
  Signature out = *this;
  double total = TotalWeight();
  if (total > 0.0) {
    for (Entry& e : out.entries_) e.weight /= total;
  }
  out.RecomputeTotal();
  return out;
}

std::string Signature::ToString(const Interner& interner) const {
  std::vector<Entry> by_weight(entries_.begin(), entries_.end());
  std::sort(by_weight.begin(), by_weight.end(),
            [](const Entry& a, const Entry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.node < b.node;
            });
  std::string out = "{";
  for (size_t i = 0; i < by_weight.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", by_weight[i].weight);
    out += interner.LabelOf(by_weight[i].node);
    out += ":";
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace commsig
