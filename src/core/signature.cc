#include "core/signature.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"
#include "obs/obs.h"

namespace commsig {

Signature Signature::FromTopK(std::vector<Entry> candidates, size_t k) {
  // Drop non-positive and non-finite weights first; Definition 1 takes
  // weights in R+, and a +Inf weight (e.g. from a corrupted volume) would
  // otherwise outrank every legitimate entry and poison normalization.
  candidates.erase(
      std::remove_if(candidates.begin(), candidates.end(),
                     [](const Entry& e) {
                       return !(e.weight > 0.0) || !std::isfinite(e.weight);
                     }),
      candidates.end());
  COMMSIG_COUNTER_ADD("signature/built", 1);
  COMMSIG_HISTOGRAM_OBSERVE("signature/candidates", candidates.size());

  if (candidates.size() > k) {
    // Rank by (weight desc, node asc) so the cut at k is deterministic.
    auto rank = [](const Entry& a, const Entry& b) {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.node < b.node;
    };
    std::nth_element(candidates.begin(), candidates.begin() + k,
                     candidates.end(), rank);
    candidates.resize(k);
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Entry& a, const Entry& b) { return a.node < b.node; });

  Signature sig;
  sig.entries_ = std::move(candidates);
  sig.RecomputeTotal();
  return sig;
}

Signature::TopKSelector::TopKSelector(size_t k) : k_(k) { best_.reserve(k); }

namespace {

// Index of the lowest-ranked entry under (weight desc, node asc).
size_t WeakestIndex(const std::vector<Signature::Entry>& best) {
  size_t weakest = 0;
  for (size_t i = 1; i < best.size(); ++i) {
    const Signature::Entry& a = best[i];
    const Signature::Entry& b = best[weakest];
    if (a.weight < b.weight || (a.weight == b.weight && a.node > b.node)) {
      weakest = i;
    }
  }
  return weakest;
}

}  // namespace

void Signature::TopKSelector::Offer(Entry e) {
  if (!(e.weight > 0.0) || !std::isfinite(e.weight)) return;
  ++seen_;
  if (best_.size() < k_) {
    best_.push_back(e);
    if (best_.size() == k_) weakest_ = WeakestIndex(best_);
    return;
  }
  if (k_ == 0) return;
  const Entry& w = best_[weakest_];
  // Keep only candidates that outrank the current weakest entry under the
  // (weight desc, node asc) total order.
  if (e.weight < w.weight || (e.weight == w.weight && e.node >= w.node)) {
    return;
  }
  best_[weakest_] = e;
  weakest_ = WeakestIndex(best_);
}

Signature Signature::TopKSelector::Take() {
  COMMSIG_COUNTER_ADD("signature/built", 1);
  COMMSIG_HISTOGRAM_OBSERVE("signature/candidates", seen_);
  std::sort(best_.begin(), best_.end(),
            [](const Entry& a, const Entry& b) { return a.node < b.node; });
  Signature sig;
  sig.entries_ = std::move(best_);
  sig.RecomputeTotal();
  Reset();
  return sig;
}

void Signature::TopKSelector::Reset() {
  best_.clear();
  seen_ = 0;
  weakest_ = 0;
}

double Signature::WeightOf(NodeId node) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), node,
      [](const Entry& e, NodeId id) { return e.node < id; });
  if (it != entries_.end() && it->node == node) return it->weight;
  return 0.0;
}

void Signature::RecomputeTotal() {
  const size_t n = entries_.size();
  packed_ids_.resize(n);
  packed_weights_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    packed_ids_[i] = entries_[i].node;
    packed_weights_[i] = entries_[i].weight;
  }
  // Σw and Σw² must use the same canonical 4-lane accumulation order as the
  // packed distance kernels (distance.cc AccumulateMatches): when two
  // identical signatures intersect, the kernel's numerator sums exactly these
  // weights in exactly this order, and identity distances come out as an
  // exact 0 only if the cached totals match that sum bit-for-bit.
  const double* w = packed_weights_.data();
  simd::VecD total_acc = simd::Zero();
  simd::VecD sq_acc = simd::Zero();
  size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::VecD v = simd::LoadU(w + i);
    total_acc = simd::Add(total_acc, v);
    sq_acc = simd::Add(sq_acc, simd::Mul(v, v));
  }
  double total = simd::ReduceAdd(total_acc);
  double squares = simd::ReduceAdd(sq_acc);
  for (; i < n; ++i) {
    total += w[i];
    squares += w[i] * w[i];
  }
  total_weight_ = total;
  sum_squares_ = squares;
}

Signature Signature::Normalized() const {
  Signature out = *this;
  double total = TotalWeight();
  if (total > 0.0) {
    for (Entry& e : out.entries_) e.weight /= total;
  }
  out.RecomputeTotal();
  return out;
}

std::string Signature::ToString(const Interner& interner) const {
  std::vector<Entry> by_weight(entries_.begin(), entries_.end());
  std::sort(by_weight.begin(), by_weight.end(),
            [](const Entry& a, const Entry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.node < b.node;
            });
  std::string out = "{";
  for (size_t i = 0; i < by_weight.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", by_weight[i].weight);
    out += interner.LabelOf(by_weight[i].node);
    out += ":";
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace commsig
