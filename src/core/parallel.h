#ifndef COMMSIG_CORE_PARALLEL_H_
#define COMMSIG_CORE_PARALLEL_H_

#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/distance.h"
#include "core/scheme.h"

namespace commsig {

/// Parallel counterpart of SignatureScheme::ComputeAll: computes the
/// signatures of `nodes` across the pool's workers, handing each worker a
/// batch-width window of sources so batched schemes (RWR's block power
/// iteration) amortize their per-window setup and graph scans. Safe because
/// schemes are immutable and Compute/ComputeAll are const with no shared
/// mutable state — workers share nothing but disjoint slices of the output
/// vector and per-thread workspaces (RwrBatchEngine::LocalWorkspace), so
/// there is no lock for the thread-safety annotations to name here; the
/// tests/concurrency/ determinism suite pins the contract instead. Results
/// are index-aligned with `nodes`, identical to the serial path
/// (bit-identical for RWR^h) for any worker count.
std::vector<Signature> ComputeAllParallel(const SignatureScheme& scheme,
                                          const CommGraph& g,
                                          std::span<const NodeId> nodes,
                                          ThreadPool& pool);

/// Parallel pairwise distance matrix (row-major n x n, zero diagonal) —
/// the inner loop of uniqueness scans and multiusage detection at scale.
/// Evaluates each unordered pair once (upper triangle, mirrored), and
/// balances the triangle across workers by flattening the pair index space.
std::vector<double> PairwiseDistancesParallel(
    std::span<const Signature> sigs, SignatureDistance dist,
    ThreadPool& pool);

}  // namespace commsig

#endif  // COMMSIG_CORE_PARALLEL_H_
