#include "core/incremental.h"

#include <utility>

#include "graph/graph_delta.h"
#include "obs/obs.h"

namespace commsig {

IncrementalSignatureEngine::IncrementalSignatureEngine(
    const SignatureScheme& scheme, std::vector<NodeId> nodes)
    : scheme_(&scheme), nodes_(std::move(nodes)) {}

const std::vector<Signature>& IncrementalSignatureEngine::AdvanceImpl(
    const CommGraph& g) {
  COMMSIG_SPAN("timeline/advance");
  if (windows_advanced_ == 0 || prev_graph_ == nullptr) {
    current_ = scheme_->IncrementalComputeAll(g, nodes_, nullptr, {}, state_);
  } else {
    GraphDelta delta(*prev_graph_, g);
    current_ = scheme_->IncrementalComputeAll(g, nodes_, &delta,
                                              std::move(current_), state_);
  }
  ++windows_advanced_;
  return current_;
}

const std::vector<Signature>& IncrementalSignatureEngine::Advance(CommGraph g) {
  const std::vector<Signature>& out = AdvanceImpl(g);
  prev_owned_ = std::move(g);
  prev_graph_ = &prev_owned_;
  return out;
}

const std::vector<Signature>& IncrementalSignatureEngine::AdvanceBorrowed(
    const CommGraph& g) {
  const std::vector<Signature>& out = AdvanceImpl(g);
  prev_owned_ = CommGraph();  // release any previously owned window
  prev_graph_ = &g;
  return out;
}

void IncrementalSignatureEngine::Reset() {
  prev_owned_ = CommGraph();
  prev_graph_ = nullptr;
  current_.clear();
  state_.reset();
  windows_advanced_ = 0;
}

}  // namespace commsig
