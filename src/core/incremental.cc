#include "core/incremental.h"

#include <utility>

#include "graph/graph_delta.h"
#include "obs/obs.h"
#include "obs/window_stats.h"

namespace commsig {

IncrementalSignatureEngine::IncrementalSignatureEngine(
    const SignatureScheme& scheme, std::vector<NodeId> nodes)
    : scheme_(&scheme), nodes_(std::move(nodes)) {}

const std::vector<Signature>& IncrementalSignatureEngine::AdvanceImpl(
    const CommGraph& g) {
  COMMSIG_SPAN("timeline/advance");
  obs::WindowRecord record;
  record.window_index = windows_advanced_;
  record.events = g.NumEdges();
  record.focal_nodes = nodes_.size();

  // The dirty/reused split is maintained by the schemes' shared
  // RecomputeDirty skeleton as process-wide counters; the per-window
  // attribution is the counter delta across this advance. (With several
  // engines advancing concurrently the split becomes approximate; the
  // stage latencies stay exact either way.)
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& dirty_counter = reg.GetCounter("timeline/nodes_dirty");
  obs::Counter& reused_counter = reg.GetCounter("timeline/nodes_reused");
  const uint64_t dirty_before = dirty_counter.Value();
  const uint64_t reused_before = reused_counter.Value();

  if (windows_advanced_ == 0 || prev_graph_ == nullptr) {
    obs::ScopedStageTimer timer(record, obs::PipelineStage::kDirtyRecompute);
    current_ = scheme_->IncrementalComputeAll(g, nodes_, nullptr, {}, state_);
    record.dirty_nodes = nodes_.size();  // a prime recomputes everyone
  } else {
    std::unique_ptr<GraphDelta> delta;
    {
      obs::ScopedStageTimer timer(record, obs::PipelineStage::kDeltaDiff);
      delta = std::make_unique<GraphDelta>(*prev_graph_, g);
    }
    {
      obs::ScopedStageTimer timer(record,
                                  obs::PipelineStage::kDirtyRecompute);
      current_ = scheme_->IncrementalComputeAll(g, nodes_, delta.get(),
                                                std::move(current_), state_);
    }
    record.dirty_nodes = dirty_counter.Value() - dirty_before;
    record.reused_nodes = reused_counter.Value() - reused_before;
  }
  obs::WindowStatsAggregator::Global().Record(record);
  ++windows_advanced_;
  return current_;
}

const std::vector<Signature>& IncrementalSignatureEngine::Advance(CommGraph g) {
  const std::vector<Signature>& out = AdvanceImpl(g);
  prev_owned_ = std::move(g);
  prev_graph_ = &prev_owned_;
  return out;
}

const std::vector<Signature>& IncrementalSignatureEngine::AdvanceBorrowed(
    const CommGraph& g) {
  const std::vector<Signature>& out = AdvanceImpl(g);
  prev_owned_ = CommGraph();  // release any previously owned window
  prev_graph_ = &g;
  return out;
}

void IncrementalSignatureEngine::Reset() {
  prev_owned_ = CommGraph();
  prev_graph_ = nullptr;
  current_.clear();
  state_.reset();
  windows_advanced_ = 0;
}

}  // namespace commsig
