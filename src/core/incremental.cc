#include "core/incremental.h"

#include <utility>

#include "graph/graph_delta.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/window_stats.h"

namespace commsig {

IncrementalSignatureEngine::IncrementalSignatureEngine(
    const SignatureScheme& scheme, std::vector<NodeId> nodes)
    : scheme_(&scheme), nodes_(std::move(nodes)) {}

const std::vector<Signature>& IncrementalSignatureEngine::AdvanceImpl(
    const CommGraph& g) {
  COMMSIG_SPAN("timeline/advance");
  obs::WindowRecord record;
  record.window_index = windows_advanced_;
  record.events = g.NumEdges();
  record.focal_nodes = nodes_.size();

  // The dirty/reused split is maintained by the schemes' shared
  // RecomputeDirty skeleton as process-wide counters; the per-window
  // attribution is the counter delta across this advance. (With several
  // engines advancing concurrently the split becomes approximate; the
  // stage latencies stay exact either way.)
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& dirty_counter = reg.GetCounter("timeline/nodes_dirty");
  obs::Counter& reused_counter = reg.GetCounter("timeline/nodes_reused");
  const uint64_t dirty_before = dirty_counter.Value();
  const uint64_t reused_before = reused_counter.Value();

  const uint64_t begin_us = ClockNowUs();
  if (windows_advanced_ == 0 || prev_graph_ == nullptr || force_prime_) {
    force_prime_ = false;
    obs::ScopedStageTimer timer(record, obs::PipelineStage::kDirtyRecompute);
    current_ = scheme_->IncrementalComputeAll(g, nodes_, nullptr, {}, state_);
    record.dirty_nodes = nodes_.size();  // a prime recomputes everyone
  } else {
    std::unique_ptr<GraphDelta> delta;
    {
      obs::ScopedStageTimer timer(record, obs::PipelineStage::kDeltaDiff);
      delta = std::make_unique<GraphDelta>(*prev_graph_, g);
    }
    {
      obs::ScopedStageTimer timer(record,
                                  obs::PipelineStage::kDirtyRecompute);
      current_ = scheme_->IncrementalComputeAll(g, nodes_, delta.get(),
                                                std::move(current_), state_);
    }
    record.dirty_nodes = dirty_counter.Value() - dirty_before;
    record.reused_nodes = reused_counter.Value() - reused_before;
  }
  obs::WindowStatsAggregator::Global().Record(record);
  ++windows_advanced_;

  // Poison-window budget: consecutive over-budget advances mean the
  // incremental path itself has gone pathological — bypass it by dropping
  // the warm state so the next window primes from scratch.
  if (budget_us_ > 0) {
    const uint64_t elapsed_us = ClockNowUs() - begin_us;
    if (elapsed_us > budget_us_) {
      ++strike_streak_;
      ++budget_strikes_total_;
      COMMSIG_COUNTER_ADD("core/incremental_budget_strikes", 1);
      obs::LogWarn("incremental_budget_strike")
          .U64("window_index", windows_advanced_ - 1)
          .U64("elapsed_us", elapsed_us)
          .U64("budget_us", budget_us_)
          .U64("streak", strike_streak_);
      if (strike_streak_ >= max_strikes_) {
        strike_streak_ = 0;
        ++scratch_rebuilds_;
        COMMSIG_COUNTER_ADD("core/incremental_scratch_rebuilds", 1);
        obs::LogWarn("incremental_scratch_fallback")
            .U64("window_index", windows_advanced_ - 1)
            .U64("strikes", max_strikes_);
        DropWarmState();
      }
    } else {
      strike_streak_ = 0;
    }
  }
  return current_;
}

uint64_t IncrementalSignatureEngine::ClockNowUs() const {
  return clock_ ? clock_() : obs::TraceCollector::Global().NowMicros();
}

void IncrementalSignatureEngine::DropWarmState() {
  state_.reset();
  force_prime_ = true;
}

void IncrementalSignatureEngine::SetOverBudgetPolicy(uint64_t budget_us,
                                                     uint32_t strikes) {
  budget_us_ = budget_us;
  max_strikes_ = strikes < 1 ? 1 : strikes;
  strike_streak_ = 0;
}

void IncrementalSignatureEngine::SetClockForTest(
    std::function<uint64_t()> clock) {
  clock_ = std::move(clock);
}

const std::vector<Signature>& IncrementalSignatureEngine::Advance(CommGraph g) {
  const std::vector<Signature>& out = AdvanceImpl(g);
  prev_owned_ = std::move(g);
  prev_graph_ = &prev_owned_;
  return out;
}

const std::vector<Signature>& IncrementalSignatureEngine::AdvanceBorrowed(
    const CommGraph& g) {
  const std::vector<Signature>& out = AdvanceImpl(g);
  prev_owned_ = CommGraph();  // release any previously owned window
  prev_graph_ = &g;
  return out;
}

void IncrementalSignatureEngine::Reset() {
  prev_owned_ = CommGraph();
  prev_graph_ = nullptr;
  current_.clear();
  state_.reset();
  windows_advanced_ = 0;
  strike_streak_ = 0;
  force_prime_ = false;
}

}  // namespace commsig
