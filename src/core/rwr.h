#ifndef COMMSIG_CORE_RWR_H_
#define COMMSIG_CORE_RWR_H_

#include <string>
#include <vector>

#include "core/scheme.h"

namespace commsig {

class TransitionCache;

/// Random Walk with Resets (paper Definition 5): the signature of `i` holds
/// the k nodes with the largest steady-state occupancy probability of a
/// random walk that follows edges with probability proportional to edge
/// weight and resets to `i` with probability c — i.e. personalized PageRank
/// rooted at `i`.
///
/// RWR^h truncates the power iteration at h steps, restricting influence to
/// the h-hop neighbourhood; `max_hops == 0` iterates to convergence (full
/// RWR). With c = 0 and h = 1 the scheme coincides exactly with Top Talkers.
///
/// The walk traverses edges symmetrically by default (see TraversalMode):
/// on one-way monitored traces, directed multi-hop walks die at sink nodes
/// after one step, while the symmetric walk recovers the paper's
/// local -> external -> local transitivity.
class RwrScheme final : public SignatureScheme {
 public:
  /// Outcome of one power iteration, including whether the unbounded walk
  /// actually met its tolerance. Callers that need trustworthy
  /// probabilities (anomaly scoring, drift bounds) must check `converged`
  /// rather than assume the cap was never hit.
  struct RwrSolve {
    std::vector<double> probabilities;  // sums to 1; index = node id
    bool converged = false;  // always true for truncated RWR^h walks
    double residual = 0.0;   // last L1 step change (unbounded walks only)
    size_t iterations = 0;
  };

  RwrScheme(SchemeOptions options, RwrOptions rwr_options)
      : SignatureScheme(options), rwr_(rwr_options) {}

  std::string name() const override;

  SchemeTraits traits() const override;

  /// Computes the signature. If the unbounded walk fails to converge within
  /// max_iterations, degrades to the truncated RWR^h walk with
  /// rwr_options().fallback_hops hops (counted under
  /// `robust/rwr_fallbacks`) instead of using the unconverged vector.
  Signature Compute(const CommGraph& g, NodeId v) const override;

  /// Batched override: windows `nodes` through the block power iteration of
  /// RwrBatchEngine (one graph scan amortized over a batch of sources,
  /// frontier-sparse truncated walks) instead of solving per node. Results
  /// are bit-identical to per-node Compute for RWR^h and match within
  /// solver tolerance for unbounded walks; the unconverged-column fallback
  /// ladder behaves exactly like Compute's.
  std::vector<Signature> ComputeAll(
      const CommGraph& g, std::span<const NodeId> nodes) const override;

  /// Drift-gated incremental sweep. Each focal node's warm state is the
  /// sparse support of its last solved stationary vector plus the drift
  /// accumulated since. Per transition the changed transition rows'
  /// normalized L1 drift is folded against each stored support (see
  /// DESIGN.md §11 for the bound); a node is then
  ///   - reused (signature copied) while accumulated drift stays <=
  ///     rwr_options().incremental_max_drift — exact 0 for any node whose
  ///     support touches no changed row, the common case at high overlap;
  ///   - warm-started (unbounded walks only) while drift <=
  ///     incremental_warm_drift: the power iteration is seeded with the
  ///     previous stationary vector and converges in the usual criterion;
  ///   - cold-solved through the batched engine + fallback ladder
  ///     otherwise, or when a warm start fails to converge (counted under
  ///     `timeline/rwr_warm_start_fallbacks`).
  /// Truncated RWR^h signatures are bit-identical to ComputeAll whenever
  /// drift is exactly 0 and exact re-solves otherwise; unbounded results
  /// stay within incremental_max_drift + solver tolerance in L1.
  std::vector<Signature> IncrementalComputeAll(
      const CommGraph& g, std::span<const NodeId> nodes,
      const GraphDelta* delta, std::vector<Signature> previous,
      std::unique_ptr<IncrementalState>& state) const override;

  /// Runs the power iteration and reports convergence explicitly.
  RwrSolve Solve(const CommGraph& g, NodeId v) const;

  /// Like Solve(g, v) but reuses a prebuilt TransitionCache (row
  /// normalizers + dangling partition) instead of re-deriving it — the
  /// amortized form for many solves on one window. `cache` must have been
  /// built from `g` with rwr_options().traversal.
  RwrSolve Solve(const CommGraph& g, NodeId v,
                 const TransitionCache& cache) const;

  /// Exposes the full occupancy-probability vector for node `v` (before
  /// top-k truncation). Probabilities sum to 1; index = node id. Used by
  /// tests and by ablation benches. Convenience over Solve() that discards
  /// the convergence report.
  std::vector<double> StationaryVector(const CommGraph& g, NodeId v) const;

  const RwrOptions& rwr_options() const { return rwr_; }

 private:
  /// Power iteration from an arbitrary initial distribution `r` (consumed).
  /// Solve seeds e_v through this, so cold and warm solves share one code
  /// path and identical convergence semantics.
  RwrSolve SolveFrom(const CommGraph& g, NodeId v, const TransitionCache& cache,
                     std::vector<double> r) const;

  /// Batched sweep core shared by ComputeAll and the incremental cold path:
  /// solves `nodes` through RwrBatchEngine (+ the truncated fallback
  /// ladder) against a prebuilt cache. When `supports` is non-null it is
  /// resized alongside the result and receives each node's sparse
  /// stationary support (the incremental warm state).
  std::vector<Signature> SolveManyBatched(
      const CommGraph& g, const TransitionCache& cache,
      std::span<const NodeId> nodes,
      std::vector<std::vector<Signature::Entry>>* supports) const;

  /// Top-k extraction from a dense occupancy vector: applies the
  /// Definition-1 candidate filter, then Signature::FromTopK.
  Signature SignatureFromVector(const CommGraph& g, NodeId v,
                                const std::vector<double>& r) const;

  /// Same extraction from a sparse support list (nonzero entries ascending
  /// by node id), as produced by RwrBatchEngine::SolveBatchSupport. Skips
  /// the O(n) rescan per focal node, which dominates all-hosts sweeps on
  /// windows whose walk support is far below n. Candidate order matches
  /// SignatureFromVector's ascending scan, so results are identical.
  Signature SignatureFromSupport(
      const CommGraph& g, NodeId v,
      std::span<const Signature::Entry> support) const;

  RwrOptions rwr_;
};

}  // namespace commsig

#endif  // COMMSIG_CORE_RWR_H_
