#include "core/distance.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "obs/obs.h"

namespace commsig {

std::span<const DistanceKind> AllDistanceKinds() {
  static constexpr std::array<DistanceKind, 4> kKinds = {
      DistanceKind::kJaccard, DistanceKind::kDice, DistanceKind::kScaledDice,
      DistanceKind::kScaledHellinger};
  return kKinds;
}

std::span<const DistanceKind> AllDistanceKindsExtended() {
  static constexpr std::array<DistanceKind, 6> kKinds = {
      DistanceKind::kJaccard,  DistanceKind::kDice,
      DistanceKind::kScaledDice, DistanceKind::kScaledHellinger,
      DistanceKind::kCosine,   DistanceKind::kOverlap};
  return kKinds;
}

std::string_view DistanceName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kJaccard:
      return "jac";
    case DistanceKind::kDice:
      return "dice";
    case DistanceKind::kScaledDice:
      return "sdice";
    case DistanceKind::kScaledHellinger:
      return "shel";
    case DistanceKind::kCosine:
      return "cos";
    case DistanceKind::kOverlap:
      return "overlap";
  }
  return "?";
}

Result<DistanceKind> ParseDistanceName(std::string_view name) {
  for (DistanceKind kind : AllDistanceKindsExtended()) {
    if (DistanceName(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown distance: " + std::string(name));
}

double Distance(DistanceKind kind, const Signature& a, const Signature& b) {
  // Striped relaxed increment: cheap enough for the O(n^2) scan hot loop.
  COMMSIG_COUNTER_ADD("distance/evaluations", 1);
  const auto ea = a.entries();
  const auto eb = b.entries();
  if (ea.empty() && eb.empty()) return 0.0;
  if (ea.empty() || eb.empty()) return 1.0;

  // Single merge over the id-sorted entries accumulates every statistic any
  // of the four distances needs.
  size_t inter_count = 0;
  size_t union_count = 0;
  double sum_both_inter = 0.0;  // Σ_{∩} (w1 + w2)
  double sum_all = 0.0;         // Σ_{∪} (w1 + w2), missing weight = 0
  double sum_min_inter = 0.0;   // Σ_{∩} min
  double sum_geo_inter = 0.0;   // Σ_{∩} sqrt(w1·w2)
  double sum_max_union = 0.0;   // Σ_{∪} max (exclusive j contributes w)
  double dot = 0.0;             // Σ_{∩} w1·w2
  double norm1 = 0.0, norm2 = 0.0;  // Σ w², per signature

  size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    ++union_count;
    if (j >= eb.size() || (i < ea.size() && ea[i].node < eb[j].node)) {
      sum_all += ea[i].weight;
      sum_max_union += ea[i].weight;
      norm1 += ea[i].weight * ea[i].weight;
      ++i;
    } else if (i >= ea.size() || eb[j].node < ea[i].node) {
      sum_all += eb[j].weight;
      sum_max_union += eb[j].weight;
      norm2 += eb[j].weight * eb[j].weight;
      ++j;
    } else {
      const double w1 = ea[i].weight;
      const double w2 = eb[j].weight;
      ++inter_count;
      sum_both_inter += w1 + w2;
      sum_all += w1 + w2;
      sum_min_inter += std::min(w1, w2);
      sum_geo_inter += std::sqrt(w1 * w2);
      sum_max_union += std::max(w1, w2);
      dot += w1 * w2;
      norm1 += w1 * w1;
      norm2 += w2 * w2;
      ++i;
      ++j;
    }
  }

  double similarity = 0.0;
  switch (kind) {
    case DistanceKind::kJaccard:
      similarity = static_cast<double>(inter_count) /
                   static_cast<double>(union_count);
      break;
    case DistanceKind::kDice:
      similarity = sum_both_inter / sum_all;
      break;
    case DistanceKind::kScaledDice:
      similarity = sum_min_inter / sum_max_union;
      break;
    case DistanceKind::kScaledHellinger:
      similarity = sum_geo_inter / sum_max_union;
      break;
    case DistanceKind::kCosine:
      similarity = dot / std::sqrt(norm1 * norm2);
      break;
    case DistanceKind::kOverlap:
      similarity = static_cast<double>(inter_count) /
                   static_cast<double>(std::min(ea.size(), eb.size()));
      break;
  }
  // Clamp against floating-point drift so callers can rely on [0, 1].
  return std::clamp(1.0 - similarity, 0.0, 1.0);
}

}  // namespace commsig
