#include "core/distance.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <vector>

#include "common/simd.h"
#include "obs/obs.h"

namespace commsig {

std::span<const DistanceKind> AllDistanceKinds() {
  static constexpr std::array<DistanceKind, 4> kKinds = {
      DistanceKind::kJaccard, DistanceKind::kDice, DistanceKind::kScaledDice,
      DistanceKind::kScaledHellinger};
  return kKinds;
}

std::span<const DistanceKind> AllDistanceKindsExtended() {
  static constexpr std::array<DistanceKind, 6> kKinds = {
      DistanceKind::kJaccard,  DistanceKind::kDice,
      DistanceKind::kScaledDice, DistanceKind::kScaledHellinger,
      DistanceKind::kCosine,   DistanceKind::kOverlap};
  return kKinds;
}

std::string_view DistanceName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kJaccard:
      return "jac";
    case DistanceKind::kDice:
      return "dice";
    case DistanceKind::kScaledDice:
      return "sdice";
    case DistanceKind::kScaledHellinger:
      return "shel";
    case DistanceKind::kCosine:
      return "cos";
    case DistanceKind::kOverlap:
      return "overlap";
  }
  return "?";
}

Result<DistanceKind> ParseDistanceName(std::string_view name) {
  for (DistanceKind kind : AllDistanceKindsExtended()) {
    if (DistanceName(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown distance: " + std::string(name));
}

double DistanceReference(DistanceKind kind, const Signature& a,
                         const Signature& b) {
  COMMSIG_COUNTER_ADD("distance/evaluations", 1);
  const auto ea = a.entries();
  const auto eb = b.entries();
  if (ea.empty() && eb.empty()) return 0.0;
  if (ea.empty() || eb.empty()) return 1.0;

  // Single merge over the id-sorted entries accumulates every statistic any
  // of the distances needs.
  size_t inter_count = 0;
  size_t union_count = 0;
  double sum_both_inter = 0.0;  // Σ_{∩} (w1 + w2)
  double sum_all = 0.0;         // Σ_{∪} (w1 + w2), missing weight = 0
  double sum_min_inter = 0.0;   // Σ_{∩} min
  double sum_geo_inter = 0.0;   // Σ_{∩} sqrt(w1·w2)
  double sum_max_union = 0.0;   // Σ_{∪} max (exclusive j contributes w)
  double dot = 0.0;             // Σ_{∩} w1·w2
  double norm1 = 0.0, norm2 = 0.0;  // Σ w², per signature

  size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    ++union_count;
    if (j >= eb.size() || (i < ea.size() && ea[i].node < eb[j].node)) {
      sum_all += ea[i].weight;
      sum_max_union += ea[i].weight;
      norm1 += ea[i].weight * ea[i].weight;
      ++i;
    } else if (i >= ea.size() || eb[j].node < ea[i].node) {
      sum_all += eb[j].weight;
      sum_max_union += eb[j].weight;
      norm2 += eb[j].weight * eb[j].weight;
      ++j;
    } else {
      const double w1 = ea[i].weight;
      const double w2 = eb[j].weight;
      ++inter_count;
      sum_both_inter += w1 + w2;
      sum_all += w1 + w2;
      sum_min_inter += std::min(w1, w2);
      sum_geo_inter += std::sqrt(w1 * w2);
      sum_max_union += std::max(w1, w2);
      dot += w1 * w2;
      norm1 += w1 * w1;
      norm2 += w2 * w2;
      ++i;
      ++j;
    }
  }

  double similarity = 0.0;
  switch (kind) {
    case DistanceKind::kJaccard:
      similarity = static_cast<double>(inter_count) /
                   static_cast<double>(union_count);
      break;
    case DistanceKind::kDice:
      similarity = sum_both_inter / sum_all;
      break;
    case DistanceKind::kScaledDice:
      similarity = sum_min_inter / sum_max_union;
      break;
    case DistanceKind::kScaledHellinger:
      similarity = sum_geo_inter / sum_max_union;
      break;
    case DistanceKind::kCosine:
      similarity = dot / std::sqrt(norm1 * norm2);
      break;
    case DistanceKind::kOverlap:
      similarity = static_cast<double>(inter_count) /
                   static_cast<double>(std::min(ea.size(), eb.size()));
      break;
  }
  // Clamp against floating-point drift so callers can rely on [0, 1].
  return std::clamp(1.0 - similarity, 0.0, 1.0);
}

// ===========================================================================
// Packed kernels. Design (DESIGN.md §14):
//
//  * Per-signature reductions (Σw, Σw²) are cached on the Signature, so a
//    kernel only accumulates over the *intersection* of the two id sets:
//      Σ_{∪}(w1+w2)  = totalA + totalB
//      Σ_{∪} max     = totalA + totalB − Σ_{∩} min
//      union count   = |A| + |B| − |A∩B|
//    Exclusive entries are never touched — the old single-merge walked and
//    branched over every union element for every pair.
//
//  * The intersection runs over the flat packed id arrays through one of
//    four tiers (auto-selected per pair, forceable for tests). Every tier
//    emits the same matches in the same ascending-id order, so downstream
//    sums are bit-identical no matter which tier ran.
//
//  * Matched weights are accumulated 4 lanes at a time via simd::VecD,
//    whose fixed logical width makes the result identical across
//    -DCOMMSIG_SIMD=off/avx2/neon builds.
//
// Duplicate ids: FromTopK does not coalesce duplicate candidate nodes, so a
// signature may (rarely, and only from adversarial inputs) contain repeated
// ids. The merge/gallop/block tiers all pair occurrences greedily exactly
// like the reference merge; the bitset tier cannot represent multiplicity,
// so it detects in-range duplicates while building its bitmaps and falls
// back to the merge tier.
// ===========================================================================

namespace {

using distance_internal::IntersectTier;

// --- tier selection thresholds ---------------------------------------------

// Below this (smaller-set) size the scalar merge wins on setup cost alone.
constexpr size_t kTinySize = 16;
// Size ratio at or above which galloping search beats any linear merge.
constexpr size_t kGallopRatio = 8;
// Bitset tier when the overlapping id range is at most this many bits per
// input element — the bitmap build is O(n) and the AND walk touches
// range/64 words, so a dense range makes it word-parallel.
constexpr size_t kBitsetRangeFactor = 8;

// --- sinks ------------------------------------------------------------------

struct CountSink {
  static constexpr bool kCountOnly = true;
  size_t matches = 0;
  void Match(size_t /*ia*/, size_t /*ib*/) { ++matches; }
  void Count(size_t n) { matches += n; }
};

/// Gathers matched weights into two flat arrays (ascending id order), the
/// input of the 4-lane accumulators below.
struct GatherSink {
  static constexpr bool kCountOnly = false;
  const double* wa;
  const double* wb;
  double* out_a;
  double* out_b;
  size_t matches = 0;
  void Match(size_t ia, size_t ib) {
    out_a[matches] = wa[ia];
    out_b[matches] = wb[ib];
    ++matches;
  }
  void Count(size_t) {}  // never called: count fast path is count-only
};

/// Adapter for tiers that iterate with the two sets exchanged.
template <typename Sink>
struct SwapSink {
  static constexpr bool kCountOnly = Sink::kCountOnly;
  Sink& inner;
  void Match(size_t ia, size_t ib) { inner.Match(ib, ia); }
  void Count(size_t n) { inner.Count(n); }
};

// --- intersection tiers ----------------------------------------------------
// All take (a, na, b, nb) with sink indices meaning (index-in-a,
// index-in-b), and emit matches in ascending id order.

template <typename Sink>
void IntersectMergeFrom(const NodeId* a, size_t na, const NodeId* b,
                        size_t nb, size_t ia, size_t ib, Sink& sink) {
  while (ia < na && ib < nb) {
    const NodeId x = a[ia];
    const NodeId y = b[ib];
    if (x < y) {
      ++ia;
    } else if (y < x) {
      ++ib;
    } else {
      sink.Match(ia, ib);
      ++ia;
      ++ib;
    }
  }
}

template <typename Sink>
void IntersectMerge(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                    Sink& sink) {
  IntersectMergeFrom(a, na, b, nb, 0, 0, sink);
}

/// Galloping search of the (smaller) a set in the (larger) b set: the b
/// cursor advances by doubling steps then binary search, so a 1:256 skew
/// costs O(na · log(nb/na)) instead of O(na + nb).
template <typename Sink>
void IntersectGallop(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                     Sink& sink) {
  size_t ib = 0;
  for (size_t ia = 0; ia < na && ib < nb; ++ia) {
    const NodeId key = a[ia];
    if (b[ib] < key) {
      // Exponential probe from the cursor: invariant b[lo] < key.
      size_t lo = ib;
      size_t step = 1;
      while (lo + step < nb && b[lo + step] < key) {
        lo += step;
        step <<= 1;
      }
      const size_t end = std::min(lo + step + 1, nb);
      ib = static_cast<size_t>(
          std::lower_bound(b + lo + 1, b + end, key) - b);
    }
    if (ib < nb && b[ib] == key) {
      sink.Match(ia, ib);
      ++ib;
    }
  }
}

/// Vectorized linear merge: each element of the (smaller) a side is
/// compared against 8 ids of b at once; whole blocks of b below the cursor
/// id are skipped per compare. Falls back to the scalar merge for the tail
/// and on backends without a wide-integer path.
template <typename Sink>
void IntersectBlockMerge(const NodeId* a, size_t na, const NodeId* b,
                         size_t nb, Sink& sink) {
  size_t ia = 0, ib = 0;
  if constexpr (simd::kHasU32Block) {
    constexpr uint32_t kAllLt = (1u << simd::kU32Lanes) - 1;
    while (ia < na && ib + simd::kU32Lanes <= nb) {
      const simd::VecU32 va = simd::BroadcastU32(a[ia]);
      const simd::VecU32 vb = simd::LoadU32(b + ib);
      const uint32_t lt = simd::LtMask(vb, va);  // b[ib+i] < a[ia]
      if (lt == kAllLt) {
        ib += simd::kU32Lanes;
        continue;
      }
      // b is sorted, so the lt mask is a run of low bits and its popcount
      // is the offset of the first element >= a[ia].
      const size_t skip = static_cast<size_t>(std::popcount(lt));
      if (simd::EqMask(va, vb) != 0) {
        sink.Match(ia, ib + skip);
        ib += skip + 1;
      } else {
        ib += skip;
      }
      ++ia;
    }
  }
  IntersectMergeFrom(a, na, b, nb, ia, ib, sink);
}

struct BitsetScratch {
  std::vector<uint64_t> bits_a;
  std::vector<uint64_t> bits_b;
};

/// Word-parallel bitmap intersection over the overlapping id range
/// [lo, hi]: build one bitmap per set, AND 64 ids at a time. Count-only
/// sinks take a pure popcount walk; gathering sinks advance two monotone
/// cursors to recover entry positions for each set bit. Returns false —
/// caller must fall back to the merge tier — when either set repeats an id
/// inside the range (a bitmap cannot represent multiplicity).
template <typename Sink>
bool IntersectBitset(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                     BitsetScratch& scratch, Sink& sink) {
  const NodeId lo = std::max(a[0], b[0]);
  const NodeId hi = std::min(a[na - 1], b[nb - 1]);
  if (lo > hi) return true;  // disjoint ranges: no matches
  const size_t words = static_cast<size_t>(hi - lo) / 64 + 1;
  scratch.bits_a.assign(words, 0);
  scratch.bits_b.assign(words, 0);

  auto fill = [lo, hi](const NodeId* ids, size_t n,
                       std::vector<uint64_t>& bits) {
    const NodeId* first = std::lower_bound(ids, ids + n, lo);
    for (const NodeId* p = first; p != ids + n && *p <= hi; ++p) {
      const size_t off = *p - lo;
      const uint64_t bit = uint64_t{1} << (off % 64);
      if (bits[off / 64] & bit) return false;  // in-range duplicate id
      bits[off / 64] |= bit;
    }
    return true;
  };
  if (!fill(a, na, scratch.bits_a) || !fill(b, nb, scratch.bits_b)) {
    return false;
  }

  if constexpr (Sink::kCountOnly) {
    size_t m = 0;
    for (size_t w = 0; w < words; ++w) {
      m += static_cast<size_t>(
          std::popcount(scratch.bits_a[w] & scratch.bits_b[w]));
    }
    sink.Count(m);
    return true;
  } else {
    size_t ia = static_cast<size_t>(std::lower_bound(a, a + na, lo) - a);
    size_t ib = static_cast<size_t>(std::lower_bound(b, b + nb, lo) - b);
    for (size_t w = 0; w < words; ++w) {
      uint64_t x = scratch.bits_a[w] & scratch.bits_b[w];
      while (x != 0) {
        const NodeId id =
            lo + static_cast<NodeId>(w * 64 +
                                     static_cast<size_t>(std::countr_zero(x)));
        x &= x - 1;
        // Matched ids exist in both arrays, so these cursors always land.
        while (a[ia] < id) ++ia;
        while (b[ib] < id) ++ib;
        sink.Match(ia, ib);
        ++ia;
        ++ib;
      }
    }
    return true;
  }
}

IntersectTier ChooseTier(const NodeId* a, size_t na, const NodeId* b,
                         size_t nb) {
  const size_t small = std::min(na, nb);
  const size_t big = std::max(na, nb);
  if (small < kTinySize) return IntersectTier::kMerge;
  if (big >= small * kGallopRatio) return IntersectTier::kGallop;
  const NodeId lo = std::max(a[0], b[0]);
  const NodeId hi = std::min(a[na - 1], b[nb - 1]);
  if (lo <= hi &&
      static_cast<size_t>(hi - lo) <= kBitsetRangeFactor * (na + nb)) {
    return IntersectTier::kBitset;
  }
  return simd::kHasU32Block ? IntersectTier::kBlockMerge
                            : IntersectTier::kMerge;
}

/// Runs the chosen tier with the smaller set in the "iterated" role (the
/// gallop and block tiers require it; merge and bitset don't care).
template <typename Sink>
void Intersect(const NodeId* a, size_t na, const NodeId* b, size_t nb,
               IntersectTier tier, Sink& sink) {
  if (na == 0 || nb == 0) return;
  if (tier == IntersectTier::kAuto) tier = ChooseTier(a, na, b, nb);
  if (tier == IntersectTier::kBitset) {
    thread_local BitsetScratch scratch;
    if (IntersectBitset(a, na, b, nb, scratch, sink)) return;
    tier = IntersectTier::kMerge;  // in-range duplicate ids
  }
  switch (tier) {
    case IntersectTier::kMerge:
      IntersectMerge(a, na, b, nb, sink);
      return;
    case IntersectTier::kGallop:
      if (na <= nb) {
        IntersectGallop(a, na, b, nb, sink);
      } else {
        SwapSink<Sink> swapped{sink};
        IntersectGallop(b, nb, a, na, swapped);
      }
      return;
    case IntersectTier::kBlockMerge:
      if (na <= nb) {
        IntersectBlockMerge(a, na, b, nb, sink);
      } else {
        SwapSink<Sink> swapped{sink};
        IntersectBlockMerge(b, nb, a, na, swapped);
      }
      return;
    case IntersectTier::kAuto:
    case IntersectTier::kBitset:
      break;  // unreachable: resolved above
  }
}

// --- matched-weight accumulation -------------------------------------------

struct MatchScratch {
  std::vector<double> wa;
  std::vector<double> wb;
};

MatchScratch& LocalMatchScratch() {
  thread_local MatchScratch scratch;
  return scratch;
}

size_t CountMatches(const Signature::PackedView& a,
                    const Signature::PackedView& b, IntersectTier tier) {
  CountSink sink;
  Intersect(a.ids, a.size, b.ids, b.size, tier, sink);
  return sink.matches;
}

/// Intersects and gathers matched weights into the thread-local scratch;
/// returns the match count. scratch.wa/wb hold the pairs afterwards.
size_t GatherMatches(const Signature::PackedView& a,
                     const Signature::PackedView& b, IntersectTier tier,
                     MatchScratch& scratch) {
  const size_t cap = std::min(a.size, b.size);
  if (scratch.wa.size() < cap) {
    scratch.wa.resize(cap);
    scratch.wb.resize(cap);
  }
  GatherSink sink{a.weights, b.weights, scratch.wa.data(), scratch.wb.data()};
  Intersect(a.ids, a.size, b.ids, b.size, tier, sink);
  return sink.matches;
}

/// Σ op(wa[i], wb[i]) with the canonical 4-lane accumulation pattern:
/// one VecD accumulator over the main body (reduced in ReduceAdd's fixed
/// order), then a left-to-right scalar tail. Identical on every backend.
template <typename LaneOp, typename ScalarOp>
double AccumulateMatches(const double* x, const double* y, size_t m,
                         LaneOp&& lane, ScalarOp&& scalar) {
  simd::VecD acc = simd::Zero();
  size_t i = 0;
  for (; i + simd::kLanes <= m; i += simd::kLanes) {
    acc = simd::Add(acc, lane(simd::LoadU(x + i), simd::LoadU(y + i)));
  }
  double total = simd::ReduceAdd(acc);
  for (; i < m; ++i) total += scalar(x[i], y[i]);
  return total;
}

// --- kernels ----------------------------------------------------------------

inline double ClampDistance(double similarity) {
  return std::clamp(1.0 - similarity, 0.0, 1.0);
}

/// Shared empty-signature contract of every kernel. Returns true when the
/// pair is decided without an intersection.
inline bool EmptyCase(const Signature::PackedView& a,
                      const Signature::PackedView& b, double* out) {
  if (a.size == 0 && b.size == 0) {
    *out = 0.0;
    return true;
  }
  if (a.size == 0 || b.size == 0) {
    *out = 1.0;
    return true;
  }
  return false;
}

double JaccardImpl(const Signature& a, const Signature& b,
                   IntersectTier tier) {
  const auto pa = a.packed();
  const auto pb = b.packed();
  double decided;
  if (EmptyCase(pa, pb, &decided)) return decided;
  const size_t m = CountMatches(pa, pb, tier);
  return ClampDistance(static_cast<double>(m) /
                       static_cast<double>(pa.size + pb.size - m));
}

double OverlapImpl(const Signature& a, const Signature& b,
                   IntersectTier tier) {
  const auto pa = a.packed();
  const auto pb = b.packed();
  double decided;
  if (EmptyCase(pa, pb, &decided)) return decided;
  const size_t m = CountMatches(pa, pb, tier);
  return ClampDistance(static_cast<double>(m) /
                       static_cast<double>(std::min(pa.size, pb.size)));
}

double DiceImpl(const Signature& a, const Signature& b, IntersectTier tier) {
  const auto pa = a.packed();
  const auto pb = b.packed();
  double decided;
  if (EmptyCase(pa, pb, &decided)) return decided;
  MatchScratch& scratch = LocalMatchScratch();
  const size_t m = GatherMatches(pa, pb, tier, scratch);
  const double num = AccumulateMatches(
      scratch.wa.data(), scratch.wb.data(), m,
      [](simd::VecD x, simd::VecD y) { return simd::Add(x, y); },
      [](double x, double y) { return x + y; });
  return ClampDistance(num / (pa.total_weight + pb.total_weight));
}

double ScaledDiceImpl(const Signature& a, const Signature& b,
                      IntersectTier tier) {
  const auto pa = a.packed();
  const auto pb = b.packed();
  double decided;
  if (EmptyCase(pa, pb, &decided)) return decided;
  MatchScratch& scratch = LocalMatchScratch();
  const size_t m = GatherMatches(pa, pb, tier, scratch);
  const double sum_min = AccumulateMatches(
      scratch.wa.data(), scratch.wb.data(), m,
      [](simd::VecD x, simd::VecD y) { return simd::Min(x, y); },
      [](double x, double y) { return x < y ? x : y; });
  // Σ_{∪} max = Σ_A w + Σ_B w − Σ_{∩} min.
  const double sum_max = pa.total_weight + pb.total_weight - sum_min;
  return ClampDistance(sum_min / sum_max);
}

double ScaledHellingerImpl(const Signature& a, const Signature& b,
                           IntersectTier tier) {
  const auto pa = a.packed();
  const auto pb = b.packed();
  double decided;
  if (EmptyCase(pa, pb, &decided)) return decided;
  MatchScratch& scratch = LocalMatchScratch();
  const size_t m = GatherMatches(pa, pb, tier, scratch);
  // One fused pass, two accumulators: the geometric-mean numerator and the
  // Σ min the denominator rewrite needs.
  const double* x = scratch.wa.data();
  const double* y = scratch.wb.data();
  simd::VecD geo_acc = simd::Zero();
  simd::VecD min_acc = simd::Zero();
  size_t i = 0;
  for (; i + simd::kLanes <= m; i += simd::kLanes) {
    const simd::VecD vx = simd::LoadU(x + i);
    const simd::VecD vy = simd::LoadU(y + i);
    geo_acc = simd::Add(geo_acc, simd::Sqrt(simd::Mul(vx, vy)));
    min_acc = simd::Add(min_acc, simd::Min(vx, vy));
  }
  double sum_geo = simd::ReduceAdd(geo_acc);
  double sum_min = simd::ReduceAdd(min_acc);
  for (; i < m; ++i) {
    sum_geo += std::sqrt(x[i] * y[i]);
    sum_min += x[i] < y[i] ? x[i] : y[i];
  }
  const double sum_max = pa.total_weight + pb.total_weight - sum_min;
  return ClampDistance(sum_geo / sum_max);
}

double CosineImpl(const Signature& a, const Signature& b,
                  IntersectTier tier) {
  const auto pa = a.packed();
  const auto pb = b.packed();
  double decided;
  if (EmptyCase(pa, pb, &decided)) return decided;
  MatchScratch& scratch = LocalMatchScratch();
  const size_t m = GatherMatches(pa, pb, tier, scratch);
  const double dot = AccumulateMatches(
      scratch.wa.data(), scratch.wb.data(), m,
      [](simd::VecD x, simd::VecD y) { return simd::Mul(x, y); },
      [](double x, double y) { return x * y; });
  return ClampDistance(dot / std::sqrt(pa.sum_squares * pb.sum_squares));
}

// Kernel entry points with the auto tier baked in (function pointers can't
// carry the tier argument).
double JaccardKernel(const Signature& a, const Signature& b) {
  return JaccardImpl(a, b, IntersectTier::kAuto);
}
double DiceKernel(const Signature& a, const Signature& b) {
  return DiceImpl(a, b, IntersectTier::kAuto);
}
double ScaledDiceKernel(const Signature& a, const Signature& b) {
  return ScaledDiceImpl(a, b, IntersectTier::kAuto);
}
double ScaledHellingerKernel(const Signature& a, const Signature& b) {
  return ScaledHellingerImpl(a, b, IntersectTier::kAuto);
}
double CosineKernel(const Signature& a, const Signature& b) {
  return CosineImpl(a, b, IntersectTier::kAuto);
}
double OverlapKernel(const Signature& a, const Signature& b) {
  return OverlapImpl(a, b, IntersectTier::kAuto);
}

}  // namespace

DistanceKernelFn DistanceKernel(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kJaccard:
      return &JaccardKernel;
    case DistanceKind::kDice:
      return &DiceKernel;
    case DistanceKind::kScaledDice:
      return &ScaledDiceKernel;
    case DistanceKind::kScaledHellinger:
      return &ScaledHellingerKernel;
    case DistanceKind::kCosine:
      return &CosineKernel;
    case DistanceKind::kOverlap:
      return &OverlapKernel;
  }
  return &JaccardKernel;  // unreachable for valid kinds
}

double Distance(DistanceKind kind, const Signature& a, const Signature& b) {
  // Striped relaxed increment: cheap enough for the O(n^2) scan hot loop.
  COMMSIG_COUNTER_ADD("distance/evaluations", 1);
  return DistanceKernel(kind)(a, b);
}

double SignatureDistance::operator()(const Signature& a,
                                     const Signature& b) const {
  COMMSIG_COUNTER_ADD("distance/evaluations", 1);
  return kernel_(a, b);
}

namespace distance_internal {

double DistanceWithTier(DistanceKind kind, const Signature& a,
                        const Signature& b, IntersectTier tier) {
  switch (kind) {
    case DistanceKind::kJaccard:
      return JaccardImpl(a, b, tier);
    case DistanceKind::kDice:
      return DiceImpl(a, b, tier);
    case DistanceKind::kScaledDice:
      return ScaledDiceImpl(a, b, tier);
    case DistanceKind::kScaledHellinger:
      return ScaledHellingerImpl(a, b, tier);
    case DistanceKind::kCosine:
      return CosineImpl(a, b, tier);
    case DistanceKind::kOverlap:
      return OverlapImpl(a, b, tier);
  }
  return 0.0;  // unreachable for valid kinds
}

}  // namespace distance_internal

}  // namespace commsig
