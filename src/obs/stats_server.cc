#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

#include "obs/health.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "obs/window_stats.h"

namespace commsig::obs {

namespace {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// /healthz body. Healthy until the pipeline has advanced at least one
/// window and then stalls past the threshold — a long initial parse/load
/// must not flap health, but a wedged steady-state loop must. Component
/// health (the degradation ladder) folds in: degraded stays 200 (the
/// service still answers, shedding load), critical joins stalled at 503.
std::string HealthzJson(const StatsServer::Options& options,
                        int& http_status) {
  WindowStatsAggregator& stats = WindowStatsAggregator::Global();
  const uint64_t windows = stats.windows_recorded();
  const uint64_t age_us = stats.LastAdvanceAgeUs();
  const bool stalled = options.stall_threshold_us > 0 && windows > 0 &&
                       age_us > options.stall_threshold_us;
  const HealthLevel worst = HealthRegistry::Global().Worst();
  http_status =
      stalled || worst == HealthLevel::kCritical ? 503 : 200;
  std::string out = "{\n  \"status\": \"";
  if (stalled) {
    out += "stalled";
  } else if (worst != HealthLevel::kOk) {
    out += HealthLevelName(worst);
  } else {
    out += windows == 0 ? "starting" : "ok";
  }
  out += "\",\n  \"uptime_us\": " +
         std::to_string(TraceCollector::Global().NowMicros());
  out += ",\n  \"windows_recorded\": " + std::to_string(windows);
  if (windows > 0) {
    out += ",\n  \"last_window_advance_age_us\": " + std::to_string(age_us);
  }
  out += ",\n  \"stall_threshold_us\": " +
         std::to_string(options.stall_threshold_us);
  out += ",\n  \"components\": " + HealthRegistry::Global().ToJson();
  out += "\n}\n";
  return out;
}

/// /varz body: one JSON snapshot of everything a human first asks for.
std::string VarzJson() {
  std::string out = "{\n\"uptime_us\": " +
                    std::to_string(TraceCollector::Global().NowMicros());
  out += ",\n\"pid\": " + std::to_string(static_cast<int64_t>(::getpid()));
  out += ",\n\"windows_recorded\": " +
         std::to_string(WindowStatsAggregator::Global().windows_recorded());
  out += ",\n\"log_lines_emitted\": " +
         std::to_string(LogSink::Global().lines_emitted());
  out += ",\n\"health\": " + HealthRegistry::Global().ToJson();
  out += ",\n\"metrics\": " + MetricsRegistry::Global().ToJson();
  out += "}\n";
  return out;
}

std::string NotFoundJson() {
  return "{\n  \"error\": \"not found\",\n  \"endpoints\": [\"/metrics\", "
         "\"/varz\", \"/healthz\", \"/tracez\", \"/pipelinez\"]\n}\n";
}

}  // namespace

std::string StatsServer::HandleRequest(const std::string& target,
                                       const Options& options,
                                       int& http_status,
                                       std::string& content_type) {
  // Ignore any query string; the endpoints take no parameters.
  std::string path = target.substr(0, target.find('?'));
  http_status = 200;
  content_type = "application/json";
  COMMSIG_COUNTER_ADD("stats_server/requests", 1);
  if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4";
    return MetricsRegistry::Global().ToPrometheus();
  }
  if (path == "/varz") return VarzJson();
  if (path == "/healthz") return HealthzJson(options, http_status);
  if (path == "/tracez") return TraceCollector::Global().RecentSpansJson();
  if (path == "/pipelinez") {
    return WindowStatsAggregator::Global().ToJson();
  }
  COMMSIG_COUNTER_ADD("stats_server/not_found", 1);
  http_status = 404;
  return NotFoundJson();
}

StatsServer::StatsServer(Options options) : options_(std::move(options)) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("stats server already running");
  }
  // Scrapers rely on stable keys from the very first /metrics response,
  // even for subsystems this process has not exercised yet.
  PreRegisterCoreMetrics();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::IOError("bind " + options_.bind_address + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status s = Status::IOError(std::string("listen: ") +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  TraceCollector::Global().SetRetainRecent(true);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&StatsServer::ServeLoop, this);
  LogInfo("stats_server_started")
      .Str("bind_address", options_.bind_address)
      .U64("port", port_)
      .U64("stall_threshold_us", options_.stall_threshold_us);
  return Status::OK();
}

void StatsServer::Stop() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    // Unblocks the accept loop; the fd itself is closed only after the
    // thread joined so the loop can never race a recycled descriptor.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_running) {
    TraceCollector::Global().SetRetainRecent(false);
    LogInfo("stats_server_stopped").U64("port", port_);
  }
}

void StatsServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int client_fd = ::accept(listen_fd_,
                             reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() from Stop() lands here; anything else while running is
      // transient (e.g. ECONNABORTED) and the loop keeps serving.
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    HandleConnection(client_fd);
    ::close(client_fd);
  }
}

void StatsServer::HandleConnection(int client_fd) {
  // A slow or stuck client must not wedge the single-threaded accept loop.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[2048];
  while (request.size() < 16384 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // timeout, reset, or EOF before a full request line
    request.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION. Everything after the first
  // line (headers) is irrelevant to routing and deliberately ignored.
  const size_t sp1 = request.find(' ');
  const size_t sp2 = sp1 == std::string::npos
                         ? std::string::npos
                         : request.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = request.substr(0, sp1);
  const std::string target = request.substr(sp1 + 1, sp2 - sp1 - 1);

  int http_status = 200;
  std::string content_type = "application/json";
  std::string body;
  if (method != "GET" && method != "HEAD") {
    http_status = 405;
    body = "{\n  \"error\": \"method not allowed\"\n}\n";
  } else {
    body = HandleRequest(target, options_, http_status, content_type);
  }

  std::string response = "HTTP/1.0 " + std::to_string(http_status) + " " +
                         HttpStatusText(http_status) + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  if (method != "HEAD") response += body;

  size_t sent = 0;
  while (sent < response.size()) {
    ssize_t n = ::send(client_fd, response.data() + sent,
                       response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace commsig::obs
