#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"

namespace commsig::obs {

namespace {
// Per-thread nesting depth for span events.
thread_local uint32_t span_depth = 0;
}  // namespace

TraceCollector& TraceCollector::Global() {
  // Leaked so spans in static destructors stay safe.
  static TraceCollector* collector =
      new TraceCollector();  // NOLINT(commsig-naked-new): leaked singleton
  return *collector;
}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t TraceCollector::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceCollector::Record(const SpanEvent& event) {
  MutexLock lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed)) {
    events_.push_back(event);
  }
  if (retain_recent_.load(std::memory_order_relaxed)) {
    if (recent_.size() < kRecentCapacity) {
      recent_.push_back(event);
      recent_head_ = recent_.size() % kRecentCapacity;
    } else {
      recent_[recent_head_] = event;
      recent_head_ = (recent_head_ + 1) % kRecentCapacity;
    }
  }
}

std::vector<SpanEvent> TraceCollector::Events() const {
  MutexLock lock(mutex_);
  return events_;
}

void TraceCollector::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
  recent_.clear();
  recent_head_ = 0;
}

std::vector<SpanEvent> TraceCollector::RecentSpans() const {
  MutexLock lock(mutex_);
  std::vector<SpanEvent> out;
  const size_t n = recent_.size();
  out.reserve(n);
  // Once the ring is full the head slot holds the oldest span.
  const size_t start = n < kRecentCapacity ? 0 : recent_head_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(recent_[(start + i) % n]);
  }
  return out;
}

std::string TraceCollector::RecentSpansJson() const {
  std::vector<SpanEvent> spans = RecentSpans();
  std::string out =
      "{\n  \"retained\": " + std::to_string(spans.size()) +
      ",\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanEvent& e = spans[i];
    out += i == 0 ? "\n" : ",\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ts_us\": %llu, \"dur_us\": %llu, "
                  "\"tid\": %u, \"depth\": %u}",
                  JsonEscape(e.name).c_str(),
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us), e.tid, e.depth);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::vector<SpanEvent> events = Events();
  std::string out =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"cat\": \"commsig\", \"ph\": \"X\", "
                  "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"depth\": %u}}",
                  JsonEscape(e.name).c_str(),
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us), e.tid, e.depth);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::WriteChromeTraceFile(const std::string& path) const {
  std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      start_us_(TraceCollector::Global().NowMicros()),
      depth_(span_depth++) {}

ScopedSpan::~ScopedSpan() {
  --span_depth;
  TraceCollector& collector = TraceCollector::Global();
  uint64_t dur = collector.NowMicros() - start_us_;
  MetricsRegistry::Global()
      .GetHistogram(std::string("span/") + name_ + "_us")
      .Observe(static_cast<double>(dur));
  if (collector.enabled() || collector.retain_recent()) {
    collector.Record({name_, start_us_, dur,
                      TraceCollector::CurrentThreadId(), depth_});
  }
}

}  // namespace commsig::obs
