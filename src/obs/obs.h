#ifndef COMMSIG_OBS_OBS_H_
#define COMMSIG_OBS_OBS_H_

// Umbrella header for instrumented code. Hot paths use only the macros
// below; defining COMMSIG_OBS_DISABLED (CMake: -DCOMMSIG_OBS_DISABLED=ON)
// compiles every call site to a no-op with zero runtime cost. The registry
// and collector classes themselves remain available either way, so code
// that consumes snapshots (CLI, benches, tests) builds in both modes.

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef COMMSIG_OBS_DISABLED

#define COMMSIG_OBS_CONCAT_INNER(a, b) a##b
#define COMMSIG_OBS_CONCAT(a, b) COMMSIG_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal). Duration feeds
/// the histogram "span/<name>_us" and, when trace collection is enabled, the
/// exported Chrome trace.
#define COMMSIG_SPAN(name)                                       \
  ::commsig::obs::ScopedSpan COMMSIG_OBS_CONCAT(commsig_span_,   \
                                                __COUNTER__)(name)

/// Adds `n` to the named counter. The registry lookup happens once per call
/// site (function-local static); the steady-state cost is one relaxed
/// striped fetch_add.
#define COMMSIG_COUNTER_ADD(name, n)                                    \
  do {                                                                  \
    static ::commsig::obs::Counter& commsig_obs_counter =               \
        ::commsig::obs::MetricsRegistry::Global().GetCounter(name);     \
    commsig_obs_counter.Add(static_cast<uint64_t>(n));                  \
  } while (0)

/// Sets the named gauge to `v`.
#define COMMSIG_GAUGE_SET(name, v)                                      \
  do {                                                                  \
    static ::commsig::obs::Gauge& commsig_obs_gauge =                   \
        ::commsig::obs::MetricsRegistry::Global().GetGauge(name);       \
    commsig_obs_gauge.Set(static_cast<double>(v));                      \
  } while (0)

/// Records `v` into the named log-scale histogram.
#define COMMSIG_HISTOGRAM_OBSERVE(name, v)                              \
  do {                                                                  \
    static ::commsig::obs::Histogram& commsig_obs_histogram =           \
        ::commsig::obs::MetricsRegistry::Global().GetHistogram(name);   \
    commsig_obs_histogram.Observe(static_cast<double>(v));              \
  } while (0)

#else  // COMMSIG_OBS_DISABLED

// The dead branch keeps the operands syntactically checked and counted as
// "used" (no -Wunused-but-set-variable on values computed only for
// metrics) while the optimizer removes the call site entirely. Each
// operand is discarded through its own void cast — a single
// `(void)(a, b)` leaves a comma expression whose left operand trips
// -Wunused-value on some GCC versions.
#define COMMSIG_OBS_NOOP1(a)                   \
  do {                                         \
    if (false) {                               \
      (void)(a);                               \
    }                                          \
  } while (0)
#define COMMSIG_OBS_NOOP2(a, b)                \
  do {                                         \
    if (false) {                               \
      (void)(a);                               \
      (void)(b);                               \
    }                                          \
  } while (0)

#define COMMSIG_SPAN(name) COMMSIG_OBS_NOOP1(name)
#define COMMSIG_COUNTER_ADD(name, n) COMMSIG_OBS_NOOP2((name), (n))
#define COMMSIG_GAUGE_SET(name, v) COMMSIG_OBS_NOOP2((name), (v))
#define COMMSIG_HISTOGRAM_OBSERVE(name, v) COMMSIG_OBS_NOOP2((name), (v))

#endif  // COMMSIG_OBS_DISABLED

#endif  // COMMSIG_OBS_OBS_H_
