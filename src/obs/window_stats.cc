#include "obs/window_stats.h"

#include <limits>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace commsig::obs {
namespace {

// Per-stage latency histograms, addressed by verbatim literals: the
// obs-schema registry (docs/obs_schema.json) is extracted from call-site
// string literals, so a name built by concatenation would never reach
// scrape configs or the round-trip gate.
Histogram& StageHistogram(MetricsRegistry& reg, PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kParse:
      return reg.GetHistogram("pipeline/parse_us");
    case PipelineStage::kWindowBuild:
      return reg.GetHistogram("pipeline/window_build_us");
    case PipelineStage::kDeltaDiff:
      return reg.GetHistogram("pipeline/delta_diff_us");
    case PipelineStage::kDirtyRecompute:
      return reg.GetHistogram("pipeline/dirty_recompute_us");
    case PipelineStage::kExtract:
      return reg.GetHistogram("pipeline/extract_us");
  }
  return reg.GetHistogram("pipeline/unknown_us");
}

}  // namespace

std::string_view PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kParse:
      return "parse";
    case PipelineStage::kWindowBuild:
      return "window_build";
    case PipelineStage::kDeltaDiff:
      return "delta_diff";
    case PipelineStage::kDirtyRecompute:
      return "dirty_recompute";
    case PipelineStage::kExtract:
      return "extract";
  }
  return "unknown";
}

WindowStatsAggregator& WindowStatsAggregator::Global() {
  // Leaked so late records in static destructors stay safe.
  static WindowStatsAggregator* aggregator =
      new WindowStatsAggregator();  // NOLINT(commsig-naked-new): leaked singleton
  return *aggregator;
}

void WindowStatsAggregator::Record(WindowRecord record) {
  if (record.total_us == 0) {
    for (uint64_t us : record.stage_us) record.total_us += us;
  }
  if (record.completed_at_us == 0) {
    // Clamped to >= 1: the collector epoch starts at process init, so a
    // record landing in the very first microsecond must not collide with
    // the "never advanced" sentinel 0.
    const uint64_t now = TraceCollector::Global().NowMicros();
    record.completed_at_us = now > 0 ? now : 1;
  }

  MetricsRegistry& reg = MetricsRegistry::Global();
  for (size_t i = 0; i < kNumPipelineStages; ++i) {
    if (record.stage_us[i] == 0) continue;
    StageHistogram(reg, static_cast<PipelineStage>(i))
        .Observe(static_cast<double>(record.stage_us[i]));
  }
  reg.GetHistogram("pipeline/window_total_us")
      .Observe(static_cast<double>(record.total_us));
  reg.GetCounter("pipeline/windows_recorded").Add(1);
  reg.GetCounter("pipeline/events_processed").Add(record.events);
  reg.GetGauge("pipeline/last_window_total_us")
      .Set(static_cast<double>(record.total_us));
  reg.GetGauge("pipeline/last_window_dirty_nodes")
      .Set(static_cast<double>(record.dirty_nodes));

  windows_recorded_.fetch_add(1, std::memory_order_relaxed);
  last_advance_us_.store(record.completed_at_us, std::memory_order_relaxed);

  const uint64_t budget = budget_us_.load(std::memory_order_relaxed);
  if (budget > 0 && record.total_us > budget) {
    reg.GetCounter("pipeline/slow_windows").Add(1);
    LogEvent event = LogWarn("slow_window");
    event.U64("window", record.window_index)
        .U64("total_us", record.total_us)
        .U64("budget_us", budget)
        .U64("events", record.events)
        .U64("dirty_nodes", record.dirty_nodes)
        .U64("reused_nodes", record.reused_nodes);
    for (size_t i = 0; i < kNumPipelineStages; ++i) {
      if (record.stage_us[i] == 0) continue;
      event.U64(std::string(PipelineStageName(static_cast<PipelineStage>(i))) +
                    "_us",
                record.stage_us[i]);
    }
  }

  MutexLock lock(mutex_);
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(record);
    ring_head_ = ring_.size() % kRingCapacity;
  } else {
    ring_[ring_head_] = record;
    ring_head_ = (ring_head_ + 1) % kRingCapacity;
  }
}

void WindowStatsAggregator::RecordSetupStage(PipelineStage stage,
                                             uint64_t dur_us) {
  setup_us_[static_cast<size_t>(stage)].fetch_add(dur_us,
                                                  std::memory_order_relaxed);
  StageHistogram(MetricsRegistry::Global(), stage)
      .Observe(static_cast<double>(dur_us));
}

void WindowStatsAggregator::RecordIngestRun(const IngestRunStats& run) {
  ingest_runs_.fetch_add(1, std::memory_order_relaxed);
  ingest_parse_workers_.store(run.parse_workers, std::memory_order_relaxed);
  ingest_chunks_framed_.fetch_add(run.chunks_framed,
                                  std::memory_order_relaxed);
  ingest_chunks_shed_.fetch_add(run.chunks_shed, std::memory_order_relaxed);
  ingest_batches_merged_.fetch_add(run.batches_merged,
                                   std::memory_order_relaxed);
  ingest_records_parsed_.fetch_add(run.records_parsed,
                                   std::memory_order_relaxed);
  ingest_producer_stalls_.fetch_add(run.producer_stalls,
                                    std::memory_order_relaxed);
  ingest_consumer_stalls_.fetch_add(run.consumer_stalls,
                                    std::memory_order_relaxed);
}

std::vector<WindowRecord> WindowStatsAggregator::Recent(
    size_t max_windows) const {
  std::vector<WindowRecord> out;
  MutexLock lock(mutex_);
  const size_t n = ring_.size();
  out.reserve(n);
  // Oldest-first: the ring head is the oldest slot once the ring is full.
  const size_t start = n < kRingCapacity ? 0 : ring_head_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % n]);
  }
  if (max_windows > 0 && out.size() > max_windows) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(max_windows));
  }
  return out;
}

uint64_t WindowStatsAggregator::LastAdvanceAgeUs() const {
  const uint64_t last = last_advance_us_.load(std::memory_order_relaxed);
  if (last == 0) return std::numeric_limits<uint64_t>::max();
  const uint64_t now = TraceCollector::Global().NowMicros();
  return now > last ? now - last : 0;
}

std::string WindowStatsAggregator::ToJson(size_t max_windows) const {
  std::vector<WindowRecord> windows = Recent(max_windows);
  std::string out = "{\n  \"windows_recorded\": " +
                    std::to_string(windows_recorded()) +
                    ",\n  \"latency_budget_us\": " +
                    std::to_string(latency_budget_us());
  out += ",\n  \"setup\": {";
  bool first = true;
  for (size_t i = 0; i < kNumPipelineStages; ++i) {
    const uint64_t us = setup_us_[i].load(std::memory_order_relaxed);
    if (us == 0) continue;
    out += first ? "" : ", ";
    first = false;
    // Operand-by-operand: `"lit" + std::string(...)` trips a GCC 12
    // -Wrestrict false positive at -O2.
    out += '"';
    out += PipelineStageName(static_cast<PipelineStage>(i));
    out += "_us\": ";
    out += std::to_string(us);
  }
  out += "},\n  \"ingest\": {";
  out += "\"runs\": ";
  out += std::to_string(ingest_runs_.load(std::memory_order_relaxed));
  out += ", \"parse_workers\": ";
  out +=
      std::to_string(ingest_parse_workers_.load(std::memory_order_relaxed));
  out += ", \"chunks_framed\": ";
  out +=
      std::to_string(ingest_chunks_framed_.load(std::memory_order_relaxed));
  out += ", \"chunks_shed\": ";
  out += std::to_string(ingest_chunks_shed_.load(std::memory_order_relaxed));
  out += ", \"batches_merged\": ";
  out +=
      std::to_string(ingest_batches_merged_.load(std::memory_order_relaxed));
  out += ", \"records_parsed\": ";
  out +=
      std::to_string(ingest_records_parsed_.load(std::memory_order_relaxed));
  out += ", \"producer_stalls\": ";
  out +=
      std::to_string(ingest_producer_stalls_.load(std::memory_order_relaxed));
  out += ", \"consumer_stalls\": ";
  out +=
      std::to_string(ingest_consumer_stalls_.load(std::memory_order_relaxed));
  out += "},\n  \"stage_names\": [";
  for (size_t i = 0; i < kNumPipelineStages; ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += PipelineStageName(static_cast<PipelineStage>(i));
    out += '"';
  }
  out += "],\n  \"windows\": [";
  for (size_t w = 0; w < windows.size(); ++w) {
    const WindowRecord& r = windows[w];
    out += w == 0 ? "\n" : ",\n";
    out += "    {\"window\": " + std::to_string(r.window_index);
    out += ", \"events\": " + std::to_string(r.events);
    out += ", \"focal_nodes\": " + std::to_string(r.focal_nodes);
    out += ", \"dirty_nodes\": " + std::to_string(r.dirty_nodes);
    out += ", \"reused_nodes\": " + std::to_string(r.reused_nodes);
    out += ", \"stages_us\": {";
    bool first_stage = true;
    for (size_t i = 0; i < kNumPipelineStages; ++i) {
      if (r.stage_us[i] == 0) continue;
      out += first_stage ? "" : ", ";
      first_stage = false;
      // Built up operand-by-operand: `"lit" + std::string(...)` trips a
      // GCC 12 -Wrestrict false positive at -O2.
      out += '"';
      out += PipelineStageName(static_cast<PipelineStage>(i));
      out += "\": ";
      out += std::to_string(r.stage_us[i]);
    }
    out += "}, \"total_us\": " + std::to_string(r.total_us);
    out += ", \"completed_at_us\": " + std::to_string(r.completed_at_us);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void WindowStatsAggregator::Reset() {
  windows_recorded_.store(0, std::memory_order_relaxed);
  last_advance_us_.store(0, std::memory_order_relaxed);
  budget_us_.store(0, std::memory_order_relaxed);
  for (std::atomic<uint64_t>& us : setup_us_) {
    us.store(0, std::memory_order_relaxed);
  }
  ingest_runs_.store(0, std::memory_order_relaxed);
  ingest_parse_workers_.store(0, std::memory_order_relaxed);
  ingest_chunks_framed_.store(0, std::memory_order_relaxed);
  ingest_chunks_shed_.store(0, std::memory_order_relaxed);
  ingest_batches_merged_.store(0, std::memory_order_relaxed);
  ingest_records_parsed_.store(0, std::memory_order_relaxed);
  ingest_producer_stalls_.store(0, std::memory_order_relaxed);
  ingest_consumer_stalls_.store(0, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  ring_.clear();
  ring_head_ = 0;
}

ScopedStageTimer::ScopedStageTimer(WindowRecord& record, PipelineStage stage)
    : record_(record),
      stage_(stage),
      start_us_(TraceCollector::Global().NowMicros()) {}

ScopedStageTimer::~ScopedStageTimer() {
  record_.stage_us[static_cast<size_t>(stage_)] +=
      TraceCollector::Global().NowMicros() - start_us_;
}

}  // namespace commsig::obs
