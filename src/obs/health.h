#ifndef COMMSIG_OBS_HEALTH_H_
#define COMMSIG_OBS_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace commsig::obs {

/// Coarse component health, ordered by severity. The degradation ladder
/// maps its tiers onto these levels; /healthz reports the worst across all
/// registered components.
enum class HealthLevel : int {
  kOk = 0,
  kDegraded = 1,
  kCritical = 2,
};

/// Stable lowercase name ("ok", "degraded", "critical").
std::string_view HealthLevelName(HealthLevel level);

/// Process-wide component health board. Producers (the stream supervisor's
/// degradation controller, future shard engines) push their state here;
/// /healthz and /varz read it. Deliberately tiny: a component name, a
/// level, and a human-readable detail string ("tier=widen_checkpoints
/// reason=checkpoint_save_failed").
///
/// Thread-safe. Components persist until Clear/Reset so a flapping
/// producer cannot make health reports racy-empty between updates.
class HealthRegistry {
 public:
  static HealthRegistry& Global();

  /// Sets (or updates) one component. Level transitions bump
  /// `transitions()`.
  void Set(const std::string& component, HealthLevel level,
           std::string detail) COMMSIG_EXCLUDES(mutex_);

  void Clear(const std::string& component) COMMSIG_EXCLUDES(mutex_);

  /// Worst level across all components; kOk when none registered.
  HealthLevel Worst() const COMMSIG_EXCLUDES(mutex_);

  /// Level of one component; kOk when unknown.
  HealthLevel LevelOf(const std::string& component) const
      COMMSIG_EXCLUDES(mutex_);

  /// {"stream": {"level": "degraded", "detail": "..."}} — object keyed by
  /// component, empty object when none registered.
  std::string ToJson() const COMMSIG_EXCLUDES(mutex_);

  /// Level changes observed across all Set calls since start/Reset.
  uint64_t transitions() const COMMSIG_EXCLUDES(mutex_);

  /// Drops all components and zeroes the transition counter (tests).
  void Reset() COMMSIG_EXCLUDES(mutex_);

 private:
  struct Entry {
    HealthLevel level = HealthLevel::kOk;
    std::string detail;
  };

  HealthRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, Entry, std::less<>> components_
      COMMSIG_GUARDED_BY(mutex_);
  uint64_t transitions_ COMMSIG_GUARDED_BY(mutex_) = 0;
};

}  // namespace commsig::obs

#endif  // COMMSIG_OBS_HEALTH_H_
