#ifndef COMMSIG_OBS_METRICS_H_
#define COMMSIG_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace commsig::obs {

/// Monotonic counter. Increments are relaxed atomics striped across cache
/// lines so the hottest call sites (one increment per distance evaluation in
/// the O(n^2) uniqueness scan, running on every pool worker) do not contend
/// on a single line.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    stripes_[StripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes the counter (bench/test isolation). Not atomic with respect to
  /// concurrent Add; callers quiesce writers first.
  void Reset() {
    for (Stripe& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 8;

  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  static size_t StripeIndex();

  Stripe stripes_[kStripes];
};

/// Last-write-wins instantaneous value (queue depth, utilization, error
/// bounds). Stored as the bit pattern of a double so reads and writes stay
/// lock-free.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Point-in-time view of one histogram: RunningStats summary plus the
/// occupied log-scale buckets.
struct HistogramSnapshot {
  struct Bucket {
    double upper_bound;  // values v satisfy lower <= v < upper_bound
    uint64_t count;
  };

  uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<Bucket> buckets;  // only non-empty buckets, ascending

  /// Bucket-interpolated quantile estimate for q in [0, 1]: walks the
  /// cumulative bucket counts to the target rank and interpolates linearly
  /// inside the covering bucket, clamped to the exact observed [min, max].
  /// The log-scale buckets bound the relative error by the bucket width
  /// (2x), which is plenty for latency dashboards. Returns 0 when empty.
  double Quantile(double q) const;
};

/// Log-scale (powers of two) histogram with a RunningStats summary. Bucket i
/// covers [2^(i-kOffset), 2^(i-kOffset+1)); values below the range land in
/// the first bucket, values above in the last. Observations take a mutex —
/// intended for per-call-site timings and sizes (thousands of observations),
/// not per-element inner loops (use Counter there).
class Histogram {
 public:
  void Observe(double v) COMMSIG_EXCLUDES(mutex_);

  HistogramSnapshot Snapshot() const COMMSIG_EXCLUDES(mutex_);

  void Reset() COMMSIG_EXCLUDES(mutex_);

 private:
  static constexpr int kNumBuckets = 64;
  static constexpr int kOffset = 31;  // bucket 31 covers [1, 2)

  static int BucketIndex(double v);

  mutable Mutex mutex_;
  RunningStats stats_ COMMSIG_GUARDED_BY(mutex_);
  uint64_t buckets_[kNumBuckets] COMMSIG_GUARDED_BY(mutex_) = {};
};

/// Full registry snapshot, serializable to JSON and Prometheus text.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  std::string ToJson() const;
  std::string ToPrometheus() const;
};

/// Process-wide, thread-safe registry of named metrics.
///
/// Metric objects are created on first use and live for the remainder of the
/// process, so returned references may be cached (the COMMSIG_* macros cache
/// them in function-local statics). Reset() zeroes values but never
/// invalidates references. Names use '/'-separated paths by convention
/// ("rwr/iterations"); Prometheus export sanitizes them.
/// Lock discipline: `mutex_` guards only the name → metric maps. Snapshot
/// reads metric values through each object's own synchronization (atomics,
/// or the Histogram's inner mutex, which nests inside `mutex_` and takes no
/// further locks), and the registry never calls back into client code, so
/// `mutex_` → Histogram::mutex_ is the only nesting and is acyclic.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name) COMMSIG_EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name) COMMSIG_EXCLUDES(mutex_);
  Histogram& GetHistogram(const std::string& name) COMMSIG_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const COMMSIG_EXCLUDES(mutex_);
  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToPrometheus() const { return Snapshot().ToPrometheus(); }

  /// Writes the JSON snapshot to `path` (overwrites).
  Status WriteJsonFile(const std::string& path) const;

  /// Zeroes every registered metric; registrations themselves persist.
  void Reset() COMMSIG_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      COMMSIG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      COMMSIG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      COMMSIG_GUARDED_BY(mutex_);
};

/// Registers the standard hot-path metric names (value 0) so every snapshot
/// contains them even when a run never exercises the corresponding path —
/// downstream trajectory tooling relies on stable keys.
void PreRegisterCoreMetrics();

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the trace exporter.
std::string JsonEscape(const std::string& s);

}  // namespace commsig::obs

#endif  // COMMSIG_OBS_METRICS_H_
