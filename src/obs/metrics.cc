#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <thread>

namespace commsig::obs {

size_t Counter::StripeIndex() {
  // A stable per-thread stripe keeps each worker on its own cache line; the
  // multiplicative hash spreads consecutive thread ids across stripes.
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      (next.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b9u) % kStripes;
  return stripe;
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = std::ilogb(v);  // floor(log2(v)) for finite positive v
  int idx = exp + kOffset;
  if (idx < 0) return 0;
  if (idx >= kNumBuckets) return kNumBuckets - 1;
  return idx;
}

void Histogram::Observe(double v) {
  MutexLock lock(mutex_);
  stats_.Add(v);
  ++buckets_[BucketIndex(v)];
}

HistogramSnapshot Histogram::Snapshot() const {
  MutexLock lock(mutex_);
  HistogramSnapshot snap;
  snap.count = stats_.count();
  snap.mean = stats_.Mean();
  snap.stddev = stats_.StdDev();
  snap.min = stats_.Min();
  snap.max = stats_.Max();
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    snap.buckets.push_back({std::ldexp(1.0, i - kOffset + 1), buckets_[i]});
  }
  return snap;
}

void Histogram::Reset() {
  MutexLock lock(mutex_);
  stats_ = RunningStats();
  for (uint64_t& b : buckets_) b = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so metrics outlive static destructors in instrumented code.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // NOLINT(commsig-naked-new): leaked singleton
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const Bucket& b : buckets) {
    const uint64_t next = cumulative + b.count;
    if (static_cast<double>(next) >= rank) {
      // Bucket i covers [upper/2, upper); interpolate by the rank's position
      // inside this bucket's count.
      const double lower = b.upper_bound / 2.0;
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(b.count);
      double v = lower + frac * (b.upper_bound - lower);
      if (v < min) v = min;
      if (v > max) v = max;
      return v;
    }
    cumulative = next;
  }
  return max;
}

namespace {

std::string FmtDouble(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "commsig_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + FmtDouble(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"mean\": " + FmtDouble(h.mean);
    out += ", \"stddev\": " + FmtDouble(h.stddev);
    out += ", \"min\": " + FmtDouble(h.min);
    out += ", \"max\": " + FmtDouble(h.max);
    out += ", \"p50\": " + FmtDouble(h.Quantile(0.50));
    out += ", \"p95\": " + FmtDouble(h.Quantile(0.95));
    out += ", \"p99\": " + FmtDouble(h.Quantile(0.99));
    out += ", \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": " + FmtDouble(h.buckets[i].upper_bound) +
             ", \"count\": " + std::to_string(h.buckets[i].count) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + FmtDouble(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& b : h.buckets) {
      cumulative += b.count;
      out += pname + "_bucket{le=\"" + FmtDouble(b.upper_bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + FmtDouble(h.mean * static_cast<double>(h.count)) +
           "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
    // Derived quantile gauges (readable without a bucket-aware scraper).
    // Separate metric names rather than {quantile=} labels: the base name
    // already has TYPE histogram, and one exposition may not mix types.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p95", 0.95},
          {"_p99", 0.99}}) {
      out += "# TYPE " + pname + suffix + " gauge\n";
      out += pname + suffix + " " + FmtDouble(h.Quantile(q)) + "\n";
    }
  }
  return out;
}

void PreRegisterCoreMetrics() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (const char* name :
       {"rwr/calls", "rwr/iterations", "rwr/batch_solves",
        "rwr/batch_dense_iterations", "rwr/batch_sparse_iterations",
        "rwr_push/calls", "rwr_push/pushes",
        "signature/built", "distance/evaluations", "distance/pairwise_pairs",
        "sketch/cm_updates",
        "sketch/cm_queries", "sketch/fm_updates", "sketch/fm_queries",
        "sketch/ss_updates",
        "sketch/ss_evictions", "sketch/signature_cache_hits",
        "threadpool/tasks_executed",
        "windower/windows_built", "robust/records_rejected",
        "robust/windower_dropped_events", "robust/rwr_fallbacks",
        "robust/faults_injected", "robust/checkpoints_saved",
        "robust/checkpoints_loaded", "robust/checkpoints_corrupt",
        "robust/quarantined_bad_field", "robust/quarantined_bad_magic",
        "robust/quarantined_bad_record_count",
        "robust/quarantined_non_finite_weight",
        "robust/quarantined_non_positive_weight",
        "robust/quarantined_poison_window",
        "robust/quarantined_timestamp_regression",
        "robust/quarantined_truncated", "robust/quarantined_zero_node",
        "timeline/nodes_dirty", "timeline/nodes_reused",
        "timeline/rwr_warm_start_fallbacks",
        "pipeline/windows_recorded", "pipeline/events_processed",
        "pipeline/slow_windows", "stats_server/requests",
        "stats_server/not_found", "robust/failpoints_fired",
        "robust/io_retries", "robust/io_retries_exhausted",
        "robust/epoch_failures",
        "robust/epoch_rebuilds", "robust/epochs_quarantined",
        "robust/checkpoint_restores", "robust/degradation_transitions",
        "robust/degradation_bad_signals", "robust/global_budget_exhausted",
        "core/incremental_budget_strikes",
        "core/incremental_scratch_rebuilds",
        "ingest/chunks_framed", "ingest/chunks_shed",
        "ingest/batches_merged", "ingest/records_parsed",
        "ingest/producer_stalls", "ingest/consumer_stalls"}) {
    reg.GetCounter(name);
  }
  reg.GetGauge("threadpool/queue_depth");
  reg.GetGauge("threadpool/utilization");
  reg.GetGauge("pipeline/last_window_total_us");
  reg.GetGauge("pipeline/last_window_dirty_nodes");
  reg.GetGauge("robust/degradation_tier");
  reg.GetGauge("obs/health_worst_level");
  reg.GetGauge("sketch/cm_error_bound");
  reg.GetGauge("ingest/parse_workers");
  // Histograms surface in /metrics and /varz exactly like counters; a
  // scraper must see the full schema before the first observation lands.
  for (const char* name :
       {"pipeline/window_total_us", "pipeline/parse_us",
        "pipeline/window_build_us", "pipeline/delta_diff_us",
        "pipeline/dirty_recompute_us", "pipeline/extract_us",
        "robust/checkpoint_bytes", "rwr/residual_at_convergence",
        "signature/candidates", "windower/window_events",
        "ingest/batch_records"}) {
    reg.GetHistogram(name);
  }
}

}  // namespace commsig::obs
