#ifndef COMMSIG_OBS_STATS_SERVER_H_
#define COMMSIG_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"

namespace commsig::obs {

/// Embedded HTTP introspection server — the live counterpart of the
/// dump-at-exit --metrics-out/--trace-out flags. No external dependencies:
/// a loopback TCP listener with a blocking accept loop on one dedicated
/// thread, serving one small GET at a time (introspection traffic is a
/// human or a scraper, not a firehose).
///
/// Endpoints:
///   /metrics     Prometheus text exposition of the MetricsRegistry
///   /varz        JSON process snapshot (uptime, pipeline, full metrics)
///   /healthz     liveness + last-window-advance watchdog (503 when the
///                pipeline stalls past the configured threshold)
///   /tracez      JSON ring of the most recent completed spans
///   /pipelinez   per-window stage-latency attribution table
///
/// All handlers read through the process-wide singletons' own
/// synchronization, so responses are consistent snapshots while writers
/// keep mutating — no global pause, no writer-side cost.
class StatsServer {
 public:
  struct Options {
    /// TCP port to bind; 0 picks an ephemeral port (read it back with
    /// port() after Start — the test hook).
    uint16_t port = 0;
    /// Bind address. The default keeps the introspection plane loopback-
    /// only; a fronting proxy should own external exposure.
    std::string bind_address = "127.0.0.1";
    /// /healthz flips to 503 when the last window advance is older than
    /// this; 0 disables the stall check (liveness only). Ignored until the
    /// first window is recorded, so a long initial load cannot fail health.
    uint64_t stall_threshold_us = 0;
  };

  explicit StatsServer(Options options);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds, listens, enables the trace recent-span ring, and spawns the
  /// serve thread. Returns the bind/listen failure otherwise.
  Status Start();

  /// Stops the accept loop and joins the thread. Idempotent; also run by
  /// the destructor.
  void Stop();

  /// Port actually bound (resolves port 0 after Start).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Dispatches `target` (an URL path, query string ignored) to the
  /// matching endpoint; sets `http_status` and `content_type`. Exposed so
  /// tests can exercise routing without sockets.
  static std::string HandleRequest(const std::string& target,
                                   const Options& options, int& http_status,
                                   std::string& content_type);

 private:
  void ServeLoop();
  void HandleConnection(int client_fd);

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace commsig::obs

#endif  // COMMSIG_OBS_STATS_SERVER_H_
