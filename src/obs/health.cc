#include "obs/health.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace commsig::obs {

std::string_view HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk:
      return "ok";
    case HealthLevel::kDegraded:
      return "degraded";
    case HealthLevel::kCritical:
      return "critical";
  }
  return "unknown";
}

HealthRegistry& HealthRegistry::Global() {
  static HealthRegistry* instance =
      new HealthRegistry();  // NOLINT(commsig-naked-new): leaked singleton
  return *instance;
}

void HealthRegistry::Set(const std::string& component, HealthLevel level,
                         std::string detail) {
  bool changed = false;
  {
    MutexLock lock(mutex_);
    Entry& entry = components_[component];
    changed = entry.level != level;
    if (changed) ++transitions_;
    entry.level = level;
    entry.detail = std::move(detail);
  }
  // Gauge update outside the lock: the metrics registry has its own mutex
  // and must stay outermost-independent of ours.
  if (changed) {
    COMMSIG_GAUGE_SET("obs/health_worst_level", static_cast<int>(Worst()));
  }
}

void HealthRegistry::Clear(const std::string& component) {
  MutexLock lock(mutex_);
  components_.erase(component);
}

HealthLevel HealthRegistry::Worst() const {
  MutexLock lock(mutex_);
  HealthLevel worst = HealthLevel::kOk;
  for (const auto& [name, entry] : components_) {
    if (static_cast<int>(entry.level) > static_cast<int>(worst)) {
      worst = entry.level;
    }
  }
  return worst;
}

HealthLevel HealthRegistry::LevelOf(const std::string& component) const {
  MutexLock lock(mutex_);
  auto it = components_.find(component);
  return it == components_.end() ? HealthLevel::kOk : it->second.level;
}

std::string HealthRegistry::ToJson() const {
  MutexLock lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : components_) {
    if (!first) out += ", ";
    first = false;
    // Built up operand-by-operand: `"lit" + std::string(...)` trips a GCC 12
    // -Wrestrict false positive at -O2.
    out += '"';
    out += JsonEscape(name);
    out += "\": {\"level\": \"";
    out += HealthLevelName(entry.level);
    out += "\", \"detail\": \"";
    out += JsonEscape(entry.detail);
    out += "\"}";
  }
  out += "}";
  return out;
}

uint64_t HealthRegistry::transitions() const {
  MutexLock lock(mutex_);
  return transitions_;
}

void HealthRegistry::Reset() {
  MutexLock lock(mutex_);
  components_.clear();
  transitions_ = 0;
}

}  // namespace commsig::obs
