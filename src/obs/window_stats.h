#ifndef COMMSIG_OBS_WINDOW_STATS_H_
#define COMMSIG_OBS_WINDOW_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace commsig::obs {

/// Stages of the per-window signature pipeline, in execution order. Parse
/// and window build run once per input (amortized over the window sequence);
/// the remaining stages run on every window advance.
enum class PipelineStage : int {
  kParse = 0,           // trace/NetFlow decode into TraceEvents
  kWindowBuild = 1,     // windower split / streaming ingest of the epoch
  kDeltaDiff = 2,       // GraphDelta digest diff against the previous window
  kDirtyRecompute = 3,  // dirty-node signature recompute (or full sweep)
  kExtract = 4,         // distance evaluation / signature extraction
};

inline constexpr size_t kNumPipelineStages = 5;

/// Stable snake_case stage name ("parse", "window_build", ...). Used in
/// metric names, /pipelinez JSON and slow-window log events.
std::string_view PipelineStageName(PipelineStage stage);

/// Attribution record for one completed window advance.
struct WindowRecord {
  uint64_t window_index = 0;
  /// Events consumed in this window (stream: events observed this epoch;
  /// timeline: edges in the window graph).
  uint64_t events = 0;
  uint64_t focal_nodes = 0;
  /// Incremental-engine dirty/reused split; both zero for full sweeps that
  /// never consulted a delta.
  uint64_t dirty_nodes = 0;
  uint64_t reused_nodes = 0;
  uint64_t stage_us[kNumPipelineStages] = {};
  /// Sum of the stage latencies; Record() fills it when left zero.
  uint64_t total_us = 0;
  /// Steady-clock completion time (microseconds since the trace collector
  /// epoch); Record() fills it when left zero.
  uint64_t completed_at_us = 0;
};

/// Process-wide per-window pipeline attribution: a ring of the most recent
/// completed windows plus aggregate metrics, serving /pipelinez and the
/// /healthz last-advance watchdog.
///
/// Recording a window also:
///  - feeds the registry histograms `pipeline/<stage>_us` (non-zero stages
///    only) and `pipeline/window_total_us`, counters
///    `pipeline/windows_recorded` / `pipeline/events_processed`, and the
///    last-window gauges, and
///  - when a latency budget is set and `total_us` exceeds it, emits one
///    structured "slow_window" warning with the full stage breakdown.
///
/// One-shot setup stages (parse, window build of a pre-split sequence) that
/// are not attributable to a single window advance are recorded separately
/// through RecordSetupStage and reported under "setup" in the JSON view.
class WindowStatsAggregator {
 public:
  static WindowStatsAggregator& Global();

  /// Windows retained for /pipelinez (compile-time ring capacity).
  static constexpr size_t kRingCapacity = 128;

  /// Slow-window watchdog budget; 0 disables the watchdog (default).
  void SetLatencyBudgetUs(uint64_t budget_us) {
    budget_us_.store(budget_us, std::memory_order_relaxed);
  }
  uint64_t latency_budget_us() const {
    return budget_us_.load(std::memory_order_relaxed);
  }

  void Record(WindowRecord record) COMMSIG_EXCLUDES(mutex_);

  /// Adds one-shot setup latency for `stage` (accumulates across calls).
  void RecordSetupStage(PipelineStage stage, uint64_t dur_us);

  /// One parallel-ingestion run's totals, surfaced as the "ingest" block
  /// of /pipelinez. obs deliberately knows only the numbers (no dependency
  /// on src/ingest); the pipeline reports after each run.
  struct IngestRunStats {
    uint64_t parse_workers = 0;
    uint64_t chunks_framed = 0;
    uint64_t chunks_shed = 0;
    uint64_t batches_merged = 0;
    uint64_t records_parsed = 0;
    uint64_t producer_stalls = 0;
    uint64_t consumer_stalls = 0;
  };

  /// Accumulates one ingestion run (counters add; parse_workers is the
  /// most recent run's value).
  void RecordIngestRun(const IngestRunStats& run);

  /// The most recent `max_windows` records, oldest first; 0 = all retained.
  std::vector<WindowRecord> Recent(size_t max_windows = 0) const
      COMMSIG_EXCLUDES(mutex_);

  uint64_t windows_recorded() const {
    return windows_recorded_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the last Record(), or UINT64_MAX before the first —
  /// the /healthz watchdog input.
  uint64_t LastAdvanceAgeUs() const;

  /// /pipelinez payload: {"windows_recorded":N, "latency_budget_us":B,
  ///  "setup":{...}, "stage_names":[...], "windows":[{...}, ...]} with
  /// windows oldest-first.
  std::string ToJson(size_t max_windows = 0) const COMMSIG_EXCLUDES(mutex_);

  /// Clears the ring, setup stages, counters and watchdog state (tests).
  void Reset() COMMSIG_EXCLUDES(mutex_);

 private:
  WindowStatsAggregator() = default;

  std::atomic<uint64_t> budget_us_{0};
  std::atomic<uint64_t> windows_recorded_{0};
  /// Steady-clock time of the last Record (collector-epoch microseconds),
  /// 0 = never.
  std::atomic<uint64_t> last_advance_us_{0};
  std::atomic<uint64_t> setup_us_[kNumPipelineStages] = {};

  // Parallel-ingestion totals (see RecordIngestRun).
  std::atomic<uint64_t> ingest_runs_{0};
  std::atomic<uint64_t> ingest_parse_workers_{0};
  std::atomic<uint64_t> ingest_chunks_framed_{0};
  std::atomic<uint64_t> ingest_chunks_shed_{0};
  std::atomic<uint64_t> ingest_batches_merged_{0};
  std::atomic<uint64_t> ingest_records_parsed_{0};
  std::atomic<uint64_t> ingest_producer_stalls_{0};
  std::atomic<uint64_t> ingest_consumer_stalls_{0};

  mutable Mutex mutex_;
  /// Fixed-capacity ring, `ring_head_` is the next write slot.
  std::vector<WindowRecord> ring_ COMMSIG_GUARDED_BY(mutex_);
  size_t ring_head_ COMMSIG_GUARDED_BY(mutex_) = 0;
};

/// RAII stage timer: adds the scope's wall time to `record.stage_us[stage]`
/// on destruction. The record must outlive the timer.
class ScopedStageTimer {
 public:
  ScopedStageTimer(WindowRecord& record, PipelineStage stage);
  ~ScopedStageTimer();

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  WindowRecord& record_;
  PipelineStage stage_;
  uint64_t start_us_;
};

}  // namespace commsig::obs

#endif  // COMMSIG_OBS_WINDOW_STATS_H_
