#ifndef COMMSIG_OBS_TRACE_H_
#define COMMSIG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace commsig::obs {

/// One completed span — a Chrome trace_event "X" (complete) event.
struct SpanEvent {
  const char* name;  // string literal supplied at the call site
  uint64_t ts_us;    // start, microseconds since the collector epoch
  uint64_t dur_us;
  uint32_t tid;    // small dense per-thread id
  uint32_t depth;  // nesting depth on that thread (0 = top level)
};

/// Process-wide span buffer. Collection is off by default: spans always feed
/// their duration histogram ("span/<name>_us" in the MetricsRegistry), but
/// events are buffered for trace export only while enabled — keeping the
/// steady-state cost of instrumentation to two clock reads per span.
///
/// Independently of full collection, a fixed-size ring of the most recent
/// completed spans can be retained for the stats server's /tracez endpoint
/// (SetRetainRecent); the ring never grows, so it is safe to leave on for
/// the lifetime of a daemon.
///
/// The exported file is the Chrome trace_event JSON format; open it at
/// chrome://tracing or https://ui.perfetto.dev.
class TraceCollector {
 public:
  /// Spans retained for /tracez when SetRetainRecent(true) is active.
  static constexpr size_t kRecentCapacity = 256;

  static TraceCollector& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Enables the bounded recent-span ring (on while a StatsServer runs).
  void SetRetainRecent(bool on) {
    retain_recent_.store(on, std::memory_order_relaxed);
  }
  bool retain_recent() const {
    return retain_recent_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the collector epoch (process start), steady clock.
  uint64_t NowMicros() const;

  /// Small dense id of the calling thread, stable for the thread's lifetime.
  static uint32_t CurrentThreadId();

  void Record(const SpanEvent& event) COMMSIG_EXCLUDES(mutex_);

  std::vector<SpanEvent> Events() const COMMSIG_EXCLUDES(mutex_);
  void Clear() COMMSIG_EXCLUDES(mutex_);

  /// The most recent completed spans (oldest first, at most
  /// kRecentCapacity). Empty unless SetRetainRecent(true) is active.
  std::vector<SpanEvent> RecentSpans() const COMMSIG_EXCLUDES(mutex_);

  /// /tracez payload: {"retained": N, "spans": [{...}, ...]} oldest first.
  std::string RecentSpansJson() const;

  std::string ToChromeTraceJson() const;
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled_{false};
  std::atomic<bool> retain_recent_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<SpanEvent> events_ COMMSIG_GUARDED_BY(mutex_);
  /// Fixed-capacity ring of recent spans; `recent_head_` is the next slot.
  std::vector<SpanEvent> recent_ COMMSIG_GUARDED_BY(mutex_);
  size_t recent_head_ COMMSIG_GUARDED_BY(mutex_) = 0;
};

/// RAII wall-time span. On destruction the duration is recorded into the
/// histogram "span/<name>_us" and, when the collector is enabled, appended
/// to the trace buffer. Use through COMMSIG_SPAN so the whole call site
/// compiles away under COMMSIG_OBS_DISABLED. `name` must outlive the span
/// (pass a string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_;
  uint32_t depth_;
};

}  // namespace commsig::obs

#endif  // COMMSIG_OBS_TRACE_H_
