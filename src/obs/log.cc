#include "obs/log.h"

#include <cmath>
#include <cstdlib>
#include <ctime>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace commsig::obs {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(std::string_view name, LogLevel& out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (lower == "debug") {
    out = LogLevel::kDebug;
  } else if (lower == "info") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    out = LogLevel::kWarn;
  } else if (lower == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogSink::LogSink() : min_level_(static_cast<int>(LogLevel::kInfo)) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any threads.
  const char* env = std::getenv("COMMSIG_LOG");
  if (env != nullptr) {
    LogLevel level = LogLevel::kInfo;
    if (ParseLogLevel(env, level)) {
      min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }
  }
}

LogSink& LogSink::Global() {
  // Leaked so events in static destructors stay safe.
  static LogSink* sink = new LogSink();  // NOLINT(commsig-naked-new): leaked singleton
  return *sink;
}

Status LogSink::OpenFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return Status::IOError("cannot open log file " + path);
  MutexLock lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  return Status::OK();
}

void LogSink::CloseFile() {
  MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void LogSink::Write(const std::string& line) {
  lines_emitted_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  if (stderr_enabled_.load(std::memory_order_relaxed)) {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    // Per-line flush: a crashed run keeps every line emitted before the
    // crash, which is the whole point of file-target logging for a daemon.
    std::fflush(file_);
  }
}

namespace {

/// Wall-clock timestamp "2026-08-08T12:34:56.789Z" (UTC, millisecond).
std::string IsoTimestamp() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000));
  return buf;
}

std::string FmtLogDouble(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

LogEvent::LogEvent(LogLevel level, std::string_view event)
    : enabled_(LogSink::Global().Enabled(level)) {
  if (!enabled_) return;
  line_ = "{\"ts\":\"" + IsoTimestamp() + "\",\"level\":\"";
  line_ += LogLevelName(level);
  line_ += "\",\"event\":\"";
  line_ += JsonEscape(std::string(event));
  line_ += "\",\"tid\":";
  line_ += std::to_string(TraceCollector::CurrentThreadId());
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_ += "}\n";
  LogSink::Global().Write(line_);
}

void LogEvent::Key(std::string_view key) {
  line_ += ",\"";
  line_ += JsonEscape(std::string(key));
  line_ += "\":";
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += "\"";
  line_ += JsonEscape(std::string(value));
  line_ += "\"";
  return *this;
}

LogEvent& LogEvent::U64(std::string_view key, uint64_t value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::I64(std::string_view key, int64_t value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Double(std::string_view key, double value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += FmtLogDouble(value);
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace commsig::obs
