#ifndef COMMSIG_OBS_LOG_H_
#define COMMSIG_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace commsig::obs {

/// Severity of a log event, ordered. Events below the sink's minimum level
/// are dropped before any field formatting happens.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Stable lowercase name ("debug", "info", "warn", "error").
std::string_view LogLevelName(LogLevel level);

/// Parses a level name (case-insensitive). Returns false on unknown names
/// and leaves `out` untouched.
bool ParseLogLevel(std::string_view name, LogLevel& out);

/// Process-wide structured-log sink. Every emitted line is one JSON object
/// ending in '\n':
///
///   {"ts":"2026-08-08T12:34:56.789Z","level":"info","event":"window_advanced",
///    "tid":0,"window":17,"dur_us":1234}
///
/// Lines go to stderr (default on) and/or an append-mode file. The full line
/// is built outside the lock and written with a single fwrite under it, so
/// concurrent writers never interleave within a line and every line stays
/// valid JSON.
///
/// The minimum level starts from the COMMSIG_LOG environment variable
/// ("debug" | "info" | "warn" | "error"; unset → "info") and can be
/// overridden at runtime (the CLI's --log-level flag).
class LogSink {
 public:
  static LogSink& Global();

  void SetMinLevel(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  /// Mirrors lines to stderr (on by default).
  void SetStderrEnabled(bool on) {
    stderr_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Opens `path` in append mode as an additional line target; replaces any
  /// previously opened file. Lines are flushed per write so a crashed run
  /// keeps everything emitted before the crash.
  Status OpenFile(const std::string& path) COMMSIG_EXCLUDES(mutex_);
  void CloseFile() COMMSIG_EXCLUDES(mutex_);

  /// Writes one already-formatted line (must include the trailing '\n').
  void Write(const std::string& line) COMMSIG_EXCLUDES(mutex_);

  /// Lines emitted since process start (all targets count once per line).
  uint64_t lines_emitted() const {
    return lines_emitted_.load(std::memory_order_relaxed);
  }

 private:
  LogSink();

  std::atomic<int> min_level_;
  std::atomic<bool> stderr_enabled_{true};
  std::atomic<uint64_t> lines_emitted_{0};
  mutable Mutex mutex_;
  std::FILE* file_ COMMSIG_GUARDED_BY(mutex_) = nullptr;
};

/// Builder for one structured log event. Construct via the Log() helper (or
/// the COMMSIG_LOG_* convenience wrappers), chain typed fields, and the
/// destructor emits the line:
///
///   obs::Log(obs::LogLevel::kWarn, "slow_window")
///       .U64("window", idx).U64("total_us", us).Str("scheme", name);
///
/// When the event's level is below the sink minimum the builder is inert:
/// field calls do no formatting and destruction writes nothing.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& U64(std::string_view key, uint64_t value);
  LogEvent& I64(std::string_view key, int64_t value);
  LogEvent& Double(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);

  bool enabled() const { return enabled_; }

 private:
  void Key(std::string_view key);

  bool enabled_;
  std::string line_;
};

/// Starts a structured event at `level`. `event` is the stable snake_case
/// event name operators grep and alert on.
inline LogEvent Log(LogLevel level, std::string_view event) {
  return LogEvent(level, event);
}

inline LogEvent LogDebug(std::string_view event) {
  return LogEvent(LogLevel::kDebug, event);
}
inline LogEvent LogInfo(std::string_view event) {
  return LogEvent(LogLevel::kInfo, event);
}
inline LogEvent LogWarn(std::string_view event) {
  return LogEvent(LogLevel::kWarn, event);
}
inline LogEvent LogError(std::string_view event) {
  return LogEvent(LogLevel::kError, event);
}

}  // namespace commsig::obs

#endif  // COMMSIG_OBS_LOG_H_
