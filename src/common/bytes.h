#ifndef COMMSIG_COMMON_BYTES_H_
#define COMMSIG_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace commsig {

/// Appends fixed-width little-endian primitives to a growing byte buffer.
/// The encoding is the wire format of commsig checkpoints (robust/checkpoint)
/// — explicit widths and byte order so checkpoints written on one host
/// restore on any other.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Doubles travel as the IEEE-754 bit pattern of the value.
  void PutDouble(double v);
  /// Length-prefixed (u64) raw bytes.
  void PutString(std::string_view s);

  const std::string& bytes() const { return buffer_; }
  std::string Take() && { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Cursor over a byte buffer, decoding what ByteWriter encoded. Every read
/// is bounds-checked and returns Corruption on overrun — checkpoint payloads
/// are untrusted input (they may be torn, truncated, or bit-flipped on
/// disk), so nothing here may index past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<double> Double();
  /// Length-prefixed bytes; rejects lengths past the end of the buffer.
  Result<std::string> String();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) of `data`.
/// Protects checkpoint payloads against torn writes and bit rot.
uint32_t Crc32(std::string_view data);

}  // namespace commsig

#endif  // COMMSIG_COMMON_BYTES_H_
