#ifndef COMMSIG_COMMON_TOP_K_H_
#define COMMSIG_COMMON_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace commsig {

/// Keeps the k largest items seen so far under `Compare` (a strict
/// greater-than ordering: Compare(a, b) == true means a outranks b).
///
/// Implemented as a size-bounded min-heap on the kept items, so inserting n
/// items costs O(n log k). `Take()` returns the kept items ranked best-first.
template <typename T, typename Compare>
class TopK {
 public:
  explicit TopK(size_t k, Compare cmp = Compare()) : k_(k), cmp_(cmp) {
    heap_.reserve(k);
  }

  /// Offers one item; keeps it iff it outranks the current worst kept item
  /// (or fewer than k items are kept).
  void Offer(const T& item) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(item);
      std::push_heap(heap_.begin(), heap_.end(), cmp_);
      return;
    }
    // heap_.front() is the *worst* kept item under cmp_ (min-heap via
    // greater-than comparator).
    if (cmp_(item, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp_);
      heap_.back() = item;
      std::push_heap(heap_.begin(), heap_.end(), cmp_);
    }
  }

  size_t size() const { return heap_.size(); }

  /// Extracts the kept items, best first. The selector is left empty.
  std::vector<T> Take() {
    std::sort(heap_.begin(), heap_.end(), cmp_);
    return std::move(heap_);
  }

 private:
  size_t k_;
  Compare cmp_;
  std::vector<T> heap_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_TOP_K_H_
