#include "common/csv.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iterator>

namespace commsig {

std::vector<std::string> SplitCsvLine(std::string_view line, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

CsvReader::CsvReader(const std::string& path, char delim)
    : in_(path), delim_(delim) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open " + path);
  }
}

bool CsvReader::Next(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++line_number_;
    fields = SplitCsvLine(line, delim_);
    return true;
  }
  return false;
}

CsvWriter::CsvWriter(const std::string& path, char delim)
    : out_(path), delim_(delim) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open " + path + " for writing");
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << fields[i];
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IOError("write failed");
  out_.close();
  return Status::OK();
}

namespace {

// Powers of ten that are exactly representable as doubles (all of these have
// mantissas within 53 bits). Index = decimal digits after the point.
constexpr double kExactPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,
                                  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
                                  1e12, 1e13, 1e14, 1e15};

// Exact strtod slow path, byte-compatible with the historical ParseDouble:
// errno-or-trailing-garbage rejects, everything else accepted. Short inputs
// use a stack buffer so the hot readers never heap-allocate on this path.
bool SlowParseDouble(std::string_view text, double& out) {
  char stack_buf[64];
  std::string heap_buf;
  const char* begin;
  if (text.size() < sizeof(stack_buf)) {
    std::memcpy(stack_buf, text.data(), text.size());
    stack_buf[text.size()] = '\0';
    begin = stack_buf;
  } else {
    heap_buf.assign(text);
    begin = heap_buf.c_str();
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (errno != 0 || end != begin + text.size()) return false;
  out = value;
  return true;
}

bool SlowParseUint(std::string_view text, uint64_t& out) {
  char stack_buf[64];
  std::string heap_buf;
  const char* begin;
  if (text.size() < sizeof(stack_buf)) {
    std::memcpy(stack_buf, text.data(), text.size());
    stack_buf[text.size()] = '\0';
    begin = stack_buf;
  } else {
    heap_buf.assign(text);
    begin = heap_buf.c_str();
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(begin, &end, 10);
  if (errno != 0 || end != begin + text.size()) return false;
  out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

bool TryParseDouble(std::string_view text, double& out) {
  if (text.empty()) return false;
  // Fast path: plain `digits[.digits]` with at most 15 significant digits.
  // Mantissa and divisor are then both exact, and one IEEE division rounds
  // correctly once (Clinger's fast-path theorem), so the result is bit
  // identical to strtod's. Signs, exponents, hex floats, whitespace and
  // overlong inputs fall through to the exact slow path.
  uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = 0;
  bool seen_dot = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      if (++digits > 15) return SlowParseDouble(text, out);
      mantissa = mantissa * 10 + static_cast<uint64_t>(c - '0');
      if (seen_dot) ++frac_digits;
    } else if (c == '.' && !seen_dot) {
      seen_dot = true;
    } else {
      return SlowParseDouble(text, out);
    }
  }
  if (digits == 0) return SlowParseDouble(text, out);
  out = static_cast<double>(mantissa) / kExactPow10[frac_digits];
  return true;
}

bool TryParseUint(std::string_view text, uint64_t& out) {
  if (text.empty()) return false;
  // Fast path: up to 18 plain digits cannot overflow uint64_t and match
  // strtoull exactly. Longer or non-digit inputs use the exact slow path.
  if (text.size() <= 18) {
    uint64_t value = 0;
    size_t i = 0;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (c < '0' || c > '9') break;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    if (i == text.size()) {
      out = value;
      return true;
    }
  }
  return SlowParseUint(text, out);
}

size_t SplitFields(std::string_view line, char delim, std::string_view* out,
                   size_t max_out) {
  // One SWAR pass instead of a memchr call per field: rows on the ingestion
  // hot path are short (tens of bytes, 3-4 fields), so per-call setup
  // dominated the split cost. The word trick marks the high bit of every
  // byte equal to `delim`; hits pop out in position order via ctz.
  const char* base = line.data();
  const size_t n = line.size();
  constexpr uint64_t kLow = 0x0101010101010101ull;
  constexpr uint64_t kSeven = 0x7f7f7f7f7f7f7f7full;
  const uint64_t pattern = kLow * static_cast<unsigned char>(delim);
  size_t count = 0;
  size_t start = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, base + i, 8);
    const uint64_t diff = word ^ pattern;
    // Exact zero-byte detector: the high bit of ((b&0x7f)+0x7f) | b is set
    // iff byte b != 0, and the add cannot carry across bytes. The shorter
    // (diff - kLow) & ~diff form is NOT exact — it also flags a byte equal
    // to 1 (i.e. the character delim^1) when the byte below it matched,
    // which for ',' would invent a delimiter out of ",-".
    uint64_t hits = ~(((diff & kSeven) + kSeven) | diff | kSeven);
    while (hits != 0) {
      const size_t pos =
          i + (static_cast<size_t>(__builtin_ctzll(hits)) >> 3);
      if (count < max_out) out[count] = line.substr(start, pos - start);
      ++count;
      start = pos + 1;
      hits &= hits - 1;
    }
  }
  for (; i < n; ++i) {
    if (base[i] == delim) {
      if (count < max_out) out[count] = line.substr(start, i - start);
      ++count;
      start = i + 1;
    }
  }
  if (count < max_out) out[count] = line.substr(start);
  return count + 1;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read error on " + path);
  return data;
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  double value = 0.0;
  if (!TryParseDouble(text, value)) {
    return Status::InvalidArgument("bad double: " + std::string(text));
  }
  return value;
}

Result<uint64_t> ParseUint(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  uint64_t value = 0;
  if (!TryParseUint(text, value)) {
    return Status::InvalidArgument("bad integer: " + std::string(text));
  }
  return value;
}

}  // namespace commsig
