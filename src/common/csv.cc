#include "common/csv.h"

#include <cerrno>
#include <cstdlib>

namespace commsig {

std::vector<std::string> SplitCsvLine(std::string_view line, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

CsvReader::CsvReader(const std::string& path, char delim)
    : in_(path), delim_(delim) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open " + path);
  }
}

bool CsvReader::Next(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++line_number_;
    fields = SplitCsvLine(line, delim_);
    return true;
  }
  return false;
}

CsvWriter::CsvWriter(const std::string& path, char delim)
    : out_(path), delim_(delim) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open " + path + " for writing");
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << fields[i];
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  out_.flush();
  if (!out_.good()) return Status::IOError("write failed");
  out_.close();
  return Status::OK();
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad double: " + buf);
  }
  return value;
}

Result<uint64_t> ParseUint(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad integer: " + buf);
  }
  return static_cast<uint64_t>(value);
}

}  // namespace commsig
