#ifndef COMMSIG_COMMON_RANDOM_H_
#define COMMSIG_COMMON_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace commsig {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used both for
/// seeding and as a cheap stateless hash of integer keys.
uint64_t SplitMix64(uint64_t x);

/// Deterministic, seedable PRNG (xoshiro256**). Every randomized component
/// of commsig takes an explicit seed so experiments are reproducible; this
/// generator is small, fast, and has no global state.
///
/// Satisfies the essentials of UniformRandomBitGenerator, but commsig code
/// uses the member helpers below rather than <random> distributions (whose
/// outputs differ across standard library implementations).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words by running SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit output.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed sample with mean `lambda >= 0`. Uses Knuth's
  /// algorithm for small lambda and a normal approximation above 64.
  uint64_t Poisson(double lambda);

  /// Standard normal sample (Box-Muller, one value per call).
  double Gaussian();

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Total weight must be positive. O(n) per call; use
  /// DiscreteSampler for repeated draws from the same distribution.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent via SplitMix64 on a fresh draw.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Walker alias table: O(1) sampling from a fixed discrete distribution
/// after O(n) preprocessing. Used by the trace generators, which draw
/// millions of destinations from heavy-tailed popularity distributions.
class DiscreteSampler {
 public:
  /// Builds the alias table for the given (unnormalized, non-negative)
  /// weights. At least one weight must be positive.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability weights[i] / sum.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_RANDOM_H_
