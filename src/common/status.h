#ifndef COMMSIG_COMMON_STATUS_H_
#define COMMSIG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace commsig {

/// A lightweight error-reporting type in the RocksDB/LevelDB tradition.
///
/// The commsig library does not throw exceptions; fallible operations return
/// a `Status` (or a `Result<T>`, see result.h). A default-constructed Status
/// is OK. Statuses are cheap to copy in the OK case (no allocation).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kIOError,
    kCorruption,
    kFailedPrecondition,
    kUnimplemented,
  };

  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(Code::kUnimplemented, msg);
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == Code::kOk; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }

  Code code() const { return code_; }

  /// Human-readable message attached at construction; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_STATUS_H_
