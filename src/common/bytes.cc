#include "common/bytes.h"

#include <array>
#include <bit>

namespace commsig {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ByteWriter::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::PutString(std::string_view s) {
  PutU64(s.size());
  buffer_.append(s);
}

Status ByteReader::Need(size_t n) const {
  if (remaining() < n) {
    return Status::Corruption("byte buffer truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::U8() {
  Status s = Need(1);
  if (!s.ok()) return s;
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::U32() {
  Status s = Need(4);
  if (!s.ok()) return s;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  Status s = Need(8);
  if (!s.ok()) return s;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> ByteReader::Double() {
  Result<uint64_t> bits = U64();
  if (!bits.ok()) return bits.status();
  return std::bit_cast<double>(*bits);
}

Result<std::string> ByteReader::String() {
  Result<uint64_t> len = U64();
  if (!len.ok()) return len.status();
  Status s = Need(*len);
  if (!s.ok()) return s;
  std::string out(data_.substr(pos_, *len));
  pos_ += *len;
  return out;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xffffffffu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace commsig
