#ifndef COMMSIG_COMMON_INTERNER_H_
#define COMMSIG_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace commsig {

/// Dense integer id of a graph node. Node ids index directly into the
/// adjacency arrays of CommGraph, so they must form a contiguous range
/// [0, num_nodes) — the Interner below provides that mapping from raw
/// observed labels (IP addresses, user names, table names, ...).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Bidirectional mapping between string labels and dense NodeIds.
///
/// Labels are interned in first-seen order, so id assignment is
/// deterministic for a fixed input trace. The interner is shared across all
/// time windows of a data set: every window graph indexes the same node
/// universe, which is what lets signatures from different windows be
/// compared entry-by-entry.
class Interner {
 public:
  Interner() = default;

  // Interned labels are referenced by string_view into storage owned here;
  // moving would be fine but copying is cheap enough and keeps usage simple.
  Interner(const Interner&) = default;
  Interner& operator=(const Interner&) = default;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the id for `label`, interning it if new.
  NodeId Intern(std::string_view label) {
    return InternPrehashed(label, HashOf(label));
  }

  /// Returns the id for `label`, or kInvalidNode if it was never interned.
  NodeId Find(std::string_view label) const {
    return FindPrehashed(label, HashOf(label));
  }

  /// Hash used by the index below. Exposed so batch decoders can hash labels
  /// once off the critical interning path (parse workers pre-hash per-chunk
  /// unique labels; the serial merge then calls InternPrehashed).
  static uint64_t HashOf(std::string_view label);

  /// Intern/Find with a caller-supplied HashOf(label) value.
  NodeId InternPrehashed(std::string_view label, uint64_t hash);
  NodeId FindPrehashed(std::string_view label, uint64_t hash) const;

  /// Warms the probe cache line for an upcoming InternPrehashed /
  /// FindPrehashed with this hash. The ingestion merge stage walks a
  /// batch's deduplicated label arena and prefetches a few entries ahead,
  /// hiding the dependent random slot load that otherwise dominates bulk
  /// interning. No-op on an empty table.
  void Prefetch(uint64_t hash) const {
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[static_cast<size_t>(hash) &
                                 (slots_.size() - 1)]);
    }
  }

  /// Label for a previously returned id. `id` must be < size().
  const std::string& LabelOf(NodeId id) const { return labels_[id]; }

  /// Number of distinct labels interned so far.
  size_t size() const { return labels_.size(); }

 private:
  /// Doubles the open-addressing table and reinserts every id.
  void Grow();

  /// One open-addressing index entry: the label's full hash lives next to
  /// its id so a probe rejects non-matching slots from the slot cache line
  /// alone — no dependent load into a side table or the label heap until
  /// the hash already agrees. `id == kInvalidNode` marks an empty slot.
  struct Slot {
    uint64_t hash = 0;
    NodeId id = kInvalidNode;
  };

  std::vector<std::string> labels_;
  /// Open-addressing index (power-of-two size, linear probing). The table
  /// layout depends only on insertion order, so id assignment stays
  /// deterministic.
  std::vector<Slot> slots_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_INTERNER_H_
