#ifndef COMMSIG_COMMON_INTERNER_H_
#define COMMSIG_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace commsig {

/// Dense integer id of a graph node. Node ids index directly into the
/// adjacency arrays of CommGraph, so they must form a contiguous range
/// [0, num_nodes) — the Interner below provides that mapping from raw
/// observed labels (IP addresses, user names, table names, ...).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Bidirectional mapping between string labels and dense NodeIds.
///
/// Labels are interned in first-seen order, so id assignment is
/// deterministic for a fixed input trace. The interner is shared across all
/// time windows of a data set: every window graph indexes the same node
/// universe, which is what lets signatures from different windows be
/// compared entry-by-entry.
class Interner {
 public:
  Interner() = default;

  // Interned labels are referenced by string_view into storage owned here;
  // moving would be fine but copying is cheap enough and keeps usage simple.
  Interner(const Interner&) = default;
  Interner& operator=(const Interner&) = default;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the id for `label`, interning it if new.
  NodeId Intern(std::string_view label);

  /// Returns the id for `label`, or kInvalidNode if it was never interned.
  NodeId Find(std::string_view label) const;

  /// Label for a previously returned id. `id` must be < size().
  const std::string& LabelOf(NodeId id) const { return labels_[id]; }

  /// Number of distinct labels interned so far.
  size_t size() const { return labels_.size(); }

 private:
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::string> labels_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_INTERNER_H_
