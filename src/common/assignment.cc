#include "common/assignment.h"

#include <cassert>
#include <limits>

namespace commsig {

std::vector<size_t> SolveAssignment(const std::vector<double>& costs,
                                    size_t rows, size_t cols,
                                    double* total_cost) {
  assert(rows <= cols);
  assert(costs.size() == rows * cols);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Classic JV shortest augmenting path with 1-based sentinel column 0.
  // u/v are the dual potentials; way[j] is the alternating-path parent.
  std::vector<double> u(rows + 1, 0.0), v(cols + 1, 0.0);
  std::vector<size_t> match(cols + 1, 0);  // column -> row (1-based, 0=free)
  std::vector<size_t> way(cols + 1, 0);

  for (size_t i = 1; i <= rows; ++i) {
    match[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(cols + 1, kInf);
    std::vector<bool> used(cols + 1, false);
    do {
      used[j0] = true;
      size_t i0 = match[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        double cur = costs[(i0 - 1) * cols + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<size_t> assignment(rows, 0);
  double cost = 0.0;
  for (size_t j = 1; j <= cols; ++j) {
    if (match[j] != 0) {
      assignment[match[j] - 1] = j - 1;
      cost += costs[(match[j] - 1) * cols + (j - 1)];
    }
  }
  if (total_cost != nullptr) *total_cost = cost;
  return assignment;
}

}  // namespace commsig
