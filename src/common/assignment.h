#ifndef COMMSIG_COMMON_ASSIGNMENT_H_
#define COMMSIG_COMMON_ASSIGNMENT_H_

#include <cstddef>
#include <vector>

namespace commsig {

/// Solves the rectangular linear assignment problem: given an n x m cost
/// matrix (row-major), find a one-to-one assignment of rows to columns
/// minimizing total cost. Requires n <= m (pad costs to transpose
/// otherwise). Implementation: the O(n²·m) shortest-augmenting-path
/// Hungarian algorithm (Jonker-Volgenant style with potentials).
///
/// Used by the de-anonymization attack, where greedy margin-ordered
/// matching is fast but suboptimal; the Hungarian assignment is the
/// strongest (distance-sum-minimizing) adversary.
///
/// Returns `assignment` with assignment[row] = column (always a valid
/// complete assignment), and the minimal total cost via `total_cost` if
/// non-null.
std::vector<size_t> SolveAssignment(const std::vector<double>& costs,
                                    size_t rows, size_t cols,
                                    double* total_cost = nullptr);

}  // namespace commsig

#endif  // COMMSIG_COMMON_ASSIGNMENT_H_
