#include "common/interner.h"

namespace commsig {

NodeId Interner::Intern(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), id);
  return id;
}

NodeId Interner::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  return it == index_.end() ? kInvalidNode : it->second;
}

}  // namespace commsig
