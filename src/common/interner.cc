#include "common/interner.h"

#include <cstring>

namespace commsig {

uint64_t Interner::HashOf(std::string_view label) {
  // Word-at-a-time multiply-xorshift mix with a 64-bit avalanche
  // finalizer. Two labels are hashed per record on the ingestion hot path,
  // where byte-at-a-time FNV's serial per-byte 64-bit multiply dominated
  // the parse profile, so blocks are read eight bytes at a time; the
  // finalizer keeps enough entropy in the low bits for the power-of-two
  // probe masks on short, similar labels (dotted-decimal IPs differing in
  // the last octet). Hash values never leave the process and id assignment
  // is insertion-order, so the exact mixing function is not part of any
  // output contract.
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(label.data());
  size_t n = label.size();
  uint64_t h = 0x9e3779b97f4a7c15ull ^
               (static_cast<uint64_t>(n) * 0xc2b2ae3d27d4eb4full);
  while (n >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k *= 0x9ddfea08eb382d69ull;
    k ^= k >> 32;
    h = (h ^ k) * 0xff51afd7ed558ccdull;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  if (n >= 4) {
    // Two possibly-overlapping 4-byte reads cover lengths 4..7.
    uint32_t head = 0;
    uint32_t back = 0;
    std::memcpy(&head, p, 4);
    std::memcpy(&back, p + n - 4, 4);
    tail = (static_cast<uint64_t>(head) << 32) | back;
  } else if (n > 0) {
    // First, middle, and last byte cover lengths 1..3.
    tail = (static_cast<uint64_t>(p[0]) << 16) |
           (static_cast<uint64_t>(p[n >> 1]) << 8) |
           static_cast<uint64_t>(p[n - 1]);
  }
  h ^= tail;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

NodeId Interner::InternPrehashed(std::string_view label, uint64_t hash) {
  if (slots_.empty()) Grow();
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id == kInvalidNode) break;
    if (slot.hash == hash && labels_[slot.id] == label) return slot.id;
    i = (i + 1) & mask;
  }
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.emplace_back(label);
  slots_[i] = Slot{hash, id};
  // Keep the load factor under ~0.7 so probe chains stay short.
  if ((labels_.size() + 1) * 10 >= slots_.size() * 7) Grow();
  return id;
}

NodeId Interner::FindPrehashed(std::string_view label, uint64_t hash) const {
  if (slots_.empty()) return kInvalidNode;
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id == kInvalidNode) return kInvalidNode;
    if (slot.hash == hash && labels_[slot.id] == label) return slot.id;
    i = (i + 1) & mask;
  }
}

void Interner::Grow() {
  const size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  const size_t mask = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.id == kInvalidNode) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (slots_[i].id != kInvalidNode) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

}  // namespace commsig
