#ifndef COMMSIG_COMMON_CSV_H_
#define COMMSIG_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace commsig {

/// Splits one CSV line on `delim`. Fields are not unescaped (commsig's trace
/// formats never quote fields); empty fields are preserved.
std::vector<std::string> SplitCsvLine(std::string_view line, char delim = ',');

/// Minimal line-oriented CSV reader for commsig's trace and edge-list files.
/// No quoting/escaping support — the on-disk formats are plain delimited
/// numbers and labels without embedded delimiters.
class CsvReader {
 public:
  /// Opens `path`; check `status()` before use.
  explicit CsvReader(const std::string& path, char delim = ',');

  /// OK if the file opened successfully.
  const Status& status() const { return status_; }

  /// Reads the next non-empty line into `fields`. Returns false at EOF.
  /// Lines starting with '#' are skipped as comments.
  bool Next(std::vector<std::string>& fields);

  /// Number of data lines consumed so far (for error messages).
  size_t line_number() const { return line_number_; }

 private:
  std::ifstream in_;
  char delim_;
  Status status_;
  size_t line_number_ = 0;
};

/// Minimal CSV writer matched to CsvReader.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path, char delim = ',');

  const Status& status() const { return status_; }

  /// Writes one row; fields must not contain the delimiter or newlines.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and reports any I/O error.
  Status Close();

 private:
  std::ofstream out_;
  char delim_;
  Status status_;
};

/// Parses a double, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// Parses a non-negative integer, rejecting trailing garbage.
Result<uint64_t> ParseUint(std::string_view text);

}  // namespace commsig

#endif  // COMMSIG_COMMON_CSV_H_
