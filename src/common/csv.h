#ifndef COMMSIG_COMMON_CSV_H_
#define COMMSIG_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace commsig {

/// Splits one CSV line on `delim`. Fields are not unescaped (commsig's trace
/// formats never quote fields); empty fields are preserved.
std::vector<std::string> SplitCsvLine(std::string_view line, char delim = ',');

/// Minimal line-oriented CSV reader for commsig's trace and edge-list files.
/// No quoting/escaping support — the on-disk formats are plain delimited
/// numbers and labels without embedded delimiters.
class CsvReader {
 public:
  /// Opens `path`; check `status()` before use.
  explicit CsvReader(const std::string& path, char delim = ',');

  /// OK if the file opened successfully.
  const Status& status() const { return status_; }

  /// Reads the next non-empty line into `fields`. Returns false at EOF.
  /// Lines starting with '#' are skipped as comments.
  bool Next(std::vector<std::string>& fields);

  /// Number of data lines consumed so far (for error messages).
  size_t line_number() const { return line_number_; }

 private:
  std::ifstream in_;
  char delim_;
  Status status_;
  size_t line_number_ = 0;
};

/// Minimal CSV writer matched to CsvReader.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path, char delim = ',');

  const Status& status() const { return status_; }

  /// Writes one row; fields must not contain the delimiter or newlines.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and reports any I/O error.
  Status Close();

 private:
  std::ofstream out_;
  char delim_;
  Status status_;
};

/// Parses a double, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// Parses a non-negative integer, rejecting trailing garbage.
Result<uint64_t> ParseUint(std::string_view text);

/// Allocation-free equivalents of ParseDouble/ParseUint for the ingestion
/// hot loops: same accept/reject decisions and the same parsed values,
/// bit for bit, but no Status construction on failure. The common all-digit
/// forms take an exact integer fast path; anything else (signs, whitespace,
/// exponents, hex floats, out-of-range values) goes through the identical
/// strtod/strtoull slow path the Result variants have always used, so the
/// corrupt-corpus behaviour of every reader is unchanged.
bool TryParseDouble(std::string_view text, double& out);
bool TryParseUint(std::string_view text, uint64_t& out);

/// Splits `line` on `delim` into string_views over `line`, storing at most
/// `max_out` of them in `out`. Returns the TOTAL field count (which may
/// exceed `max_out` — readers report that count in their error details).
/// Field semantics match SplitCsvLine: no unescaping, empties preserved.
size_t SplitFields(std::string_view line, char delim, std::string_view* out,
                   size_t max_out);

/// Reads an entire file into memory (binary mode). IOError "cannot open
/// <path>" when the file cannot be opened and "read error on <path>" on a
/// failed read — the same statuses the buffered readers have always used.
Result<std::string> ReadFileBytes(const std::string& path);

/// Zero-copy line scanner over an in-memory buffer with CsvReader's exact
/// skip semantics: lines split on '\n', one trailing '\r' stripped, blank
/// lines and '#' comments skipped, a final line without a newline still
/// returned, and line_number() counting data lines only. The buffer must
/// outlive every string_view the scanner hands out.
class LineScanner {
 public:
  explicit LineScanner(std::string_view data) : data_(data) {}

  /// Advances to the next data line. Returns false at end of buffer.
  bool Next(std::string_view& line) {
    while (pos_ < data_.size()) {
      size_t end = data_.find('\n', pos_);
      if (end == std::string_view::npos) end = data_.size();
      std::string_view candidate = data_.substr(pos_, end - pos_);
      pos_ = end + 1;
      if (!candidate.empty() && candidate.back() == '\r') {
        candidate.remove_suffix(1);
      }
      if (candidate.empty() || candidate.front() == '#') continue;
      ++line_number_;
      line = candidate;
      return true;
    }
    return false;
  }

  /// Number of data lines consumed so far (for error positions).
  uint64_t line_number() const { return line_number_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  uint64_t line_number_ = 0;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_CSV_H_
