#ifndef COMMSIG_COMMON_CHECK_H_
#define COMMSIG_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace commsig {
namespace internal {

/// Prints a fatal-check diagnostic and aborts. Out-of-line-ish (still inline
/// for header-only use) so the failure path stays cold at call sites.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "COMMSIG_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : ": ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace commsig

/// Aborts with a diagnostic when `cond` is false — in every build mode,
/// unlike assert(). For contract violations on paths fed by untrusted input
/// or by callers outside the module, where silently continuing would corrupt
/// state; internal invariants may keep using assert().
#define COMMSIG_CHECK(cond, message)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::commsig::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                       (message));                      \
    }                                                                    \
  } while (0)

#endif  // COMMSIG_COMMON_CHECK_H_
