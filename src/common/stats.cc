#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace commsig {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank > 0) --rank;  // nearest-rank, 0-based
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) return 0.0;
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace commsig
