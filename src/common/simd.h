#ifndef COMMSIG_COMMON_SIMD_H_
#define COMMSIG_COMMON_SIMD_H_

// Portable SIMD abstraction for the RWR and distance hot loops.
//
// One backend is selected at configure time via -DCOMMSIG_SIMD=auto|avx2|
// neon|off (see the resolution block in the top-level CMakeLists.txt):
// AVX2 on x86-64, NEON on aarch64, or a scalar fallback that compiles the
// same call sites to plain loops. Raw ISA intrinsics are confined to this
// header — tools/commsig_lint.py's simd-intrinsics rule fails any
// `_mm*`/`vld1q*` outside it — so kernel code in src/core/ only ever sees
// the wrapper types below.
//
// Bit-identity contract. Every operation on VecD is elementwise and maps
// to exactly one IEEE-754 double operation per lane (no FMA contraction,
// no reassociation), so a kernel built from VecD ops performs, per logical
// lane, the same rounded operations in the same order as its scalar
// transliteration. VecD is always kLanes = 4 doubles wide regardless of
// backend (NEON runs it as 2×2, the scalar fallback as 4 plain doubles),
// and ReduceAdd fixes one canonical reduction order, so accumulations
// built on VecD are bit-identical across -DCOMMSIG_SIMD=off/avx2/neon
// builds. sqrt is correctly rounded on every backend; Abs is a sign-bit
// mask; Min/Max assume no NaNs (signature weights are filtered finite).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(COMMSIG_SIMD_AVX2)
#include <immintrin.h>
#elif defined(COMMSIG_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace commsig {
namespace simd {

/// Logical vector width in doubles — fixed across backends so accumulation
/// patterns (and therefore results) do not depend on the ISA.
inline constexpr size_t kLanes = 4;

#if defined(COMMSIG_SIMD_AVX2) || defined(COMMSIG_SIMD_NEON)
inline constexpr bool kHasIsa = true;
#else
inline constexpr bool kHasIsa = false;
#endif

/// Name of the active backend, for logs and bench snapshots.
constexpr const char* IsaName() {
#if defined(COMMSIG_SIMD_AVX2)
  return "avx2";
#elif defined(COMMSIG_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace detail {
// Runtime kill-switch for the vectorized loop kernels (the VecD type
// itself is always available). Plain bool, not atomic: it is flipped only
// from single-threaded setup code (benchmarks measuring the scalar
// baseline, equivalence tests), never mid-computation.
extern bool g_runtime_enabled;

// The scalar reference loops double as the in-run benchmark baseline, so
// they must stay honestly scalar even at -O3: without this attribute the
// auto-vectorizer would turn the "scalar" path into SIMD and the measured
// speedup gauges would compare vector against vector.
#if defined(__GNUC__) && !defined(__clang__)
#define COMMSIG_SIMD_NOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define COMMSIG_SIMD_NOVEC
#endif
}  // namespace detail

/// True when the vectorized kernel paths are compiled in and enabled.
inline bool Enabled() { return kHasIsa && detail::g_runtime_enabled; }

/// Enables/disables the vectorized kernel paths at runtime. Call only from
/// single-threaded setup (tests and benches); results are bit-identical
/// either way, only the speed changes.
inline void SetEnabled(bool on) { detail::g_runtime_enabled = on; }

/// RAII guard forcing the scalar paths for one scope (bench baselines,
/// scalar-vs-SIMD equivalence tests).
class ScopedScalar {
 public:
  ScopedScalar() : prev_(detail::g_runtime_enabled) { SetEnabled(false); }
  ~ScopedScalar() { SetEnabled(prev_); }
  ScopedScalar(const ScopedScalar&) = delete;
  ScopedScalar& operator=(const ScopedScalar&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// VecD: four doubles, elementwise ops, one IEEE operation per lane.
// ---------------------------------------------------------------------------

#if defined(COMMSIG_SIMD_AVX2)

struct VecD {
  __m256d v;
};

inline VecD LoadU(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void StoreU(double* p, VecD x) { _mm256_storeu_pd(p, x.v); }
inline VecD Broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline VecD Zero() { return {_mm256_setzero_pd()}; }
inline VecD Add(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecD Sub(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecD Mul(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecD Min(VecD a, VecD b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VecD Max(VecD a, VecD b) { return {_mm256_max_pd(a.v, b.v)}; }
inline VecD Sqrt(VecD a) { return {_mm256_sqrt_pd(a.v)}; }
inline VecD Abs(VecD a) {
  const __m256d mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      static_cast<int64_t>(0x7fffffffffffffffULL)));
  return {_mm256_and_pd(a.v, mask)};
}

#elif defined(COMMSIG_SIMD_NEON)

struct VecD {
  float64x2_t lo;
  float64x2_t hi;
};

inline VecD LoadU(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
inline void StoreU(double* p, VecD x) {
  vst1q_f64(p, x.lo);
  vst1q_f64(p + 2, x.hi);
}
inline VecD Broadcast(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
inline VecD Zero() { return Broadcast(0.0); }
inline VecD Add(VecD a, VecD b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline VecD Sub(VecD a, VecD b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline VecD Mul(VecD a, VecD b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline VecD Min(VecD a, VecD b) {
  return {vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi)};
}
inline VecD Max(VecD a, VecD b) {
  return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
}
inline VecD Sqrt(VecD a) { return {vsqrtq_f64(a.lo), vsqrtq_f64(a.hi)}; }
inline VecD Abs(VecD a) { return {vabsq_f64(a.lo), vabsq_f64(a.hi)}; }

#else  // scalar fallback

struct VecD {
  double v[4];
};

inline VecD LoadU(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void StoreU(double* p, VecD x) {
  p[0] = x.v[0];
  p[1] = x.v[1];
  p[2] = x.v[2];
  p[3] = x.v[3];
}
inline VecD Broadcast(double x) { return {{x, x, x, x}}; }
inline VecD Zero() { return Broadcast(0.0); }
inline VecD Add(VecD a, VecD b) {
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
           a.v[3] + b.v[3]}};
}
inline VecD Sub(VecD a, VecD b) {
  return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
           a.v[3] - b.v[3]}};
}
inline VecD Mul(VecD a, VecD b) {
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
           a.v[3] * b.v[3]}};
}
inline VecD Min(VecD a, VecD b) {
  // (a < b ? a : b) per lane, matching the min-instruction semantics of
  // the vector backends for the NaN-free inputs the kernels feed in.
  return {{a.v[0] < b.v[0] ? a.v[0] : b.v[0],
           a.v[1] < b.v[1] ? a.v[1] : b.v[1],
           a.v[2] < b.v[2] ? a.v[2] : b.v[2],
           a.v[3] < b.v[3] ? a.v[3] : b.v[3]}};
}
inline VecD Max(VecD a, VecD b) {
  return {{a.v[0] > b.v[0] ? a.v[0] : b.v[0],
           a.v[1] > b.v[1] ? a.v[1] : b.v[1],
           a.v[2] > b.v[2] ? a.v[2] : b.v[2],
           a.v[3] > b.v[3] ? a.v[3] : b.v[3]}};
}
inline VecD Sqrt(VecD a) {
  return {{std::sqrt(a.v[0]), std::sqrt(a.v[1]), std::sqrt(a.v[2]),
           std::sqrt(a.v[3])}};
}
inline VecD Abs(VecD a) {
  return {{std::fabs(a.v[0]), std::fabs(a.v[1]), std::fabs(a.v[2]),
           std::fabs(a.v[3])}};
}

#endif

/// Canonical horizontal sum: (l0 + l1) + (l2 + l3). Fixed across backends
/// so reductions built on VecD are bit-identical everywhere; it runs once
/// per kernel call, so the scalar extract cost is irrelevant.
inline double ReduceAdd(VecD x) {
  double lanes[kLanes];
  StoreU(lanes, x);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

// ---------------------------------------------------------------------------
// VecU32: eight 32-bit ids, for the vectorized sorted-set merge. Only the
// AVX2 backend implements a wide integer path today; other backends expose
// kHasU32Block = false and the intersection tiers fall back to the scalar
// merge (identical output, just unaccelerated).
// ---------------------------------------------------------------------------

#if defined(COMMSIG_SIMD_AVX2)

inline constexpr bool kHasU32Block = true;
inline constexpr size_t kU32Lanes = 8;

struct VecU32 {
  __m256i v;
};

inline VecU32 LoadU32(const uint32_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
inline VecU32 BroadcastU32(uint32_t x) {
  return {_mm256_set1_epi32(static_cast<int>(x))};
}
/// Bit i of the result is set iff a[i] == b[i].
inline uint32_t EqMask(VecU32 a, VecU32 b) {
  return static_cast<uint32_t>(_mm256_movemask_ps(
      _mm256_castsi256_ps(_mm256_cmpeq_epi32(a.v, b.v))));
}
/// Bit i of the result is set iff a[i] < b[i], comparing as unsigned
/// 32-bit (the epi32 compare is signed; flipping the sign bit of both
/// operands maps unsigned order onto signed order).
inline uint32_t LtMask(VecU32 a, VecU32 b) {
  const __m256i flip = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i af = _mm256_xor_si256(a.v, flip);
  const __m256i bf = _mm256_xor_si256(b.v, flip);
  return static_cast<uint32_t>(_mm256_movemask_ps(
      _mm256_castsi256_ps(_mm256_cmpgt_epi32(bf, af))));
}

#else

inline constexpr bool kHasU32Block = false;
inline constexpr size_t kU32Lanes = 8;

// Stub with the same shape so call sites compile unguarded; tier selection
// never takes the blocked path when kHasU32Block is false.
struct VecU32 {
  uint32_t v[8];
};

inline VecU32 LoadU32(const uint32_t* p) {
  VecU32 r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
}
inline VecU32 BroadcastU32(uint32_t x) {
  return {{x, x, x, x, x, x, x, x}};
}
inline uint32_t EqMask(VecU32 a, VecU32 b) {
  uint32_t m = 0;
  for (size_t i = 0; i < 8; ++i) m |= (a.v[i] == b.v[i]) ? (1u << i) : 0u;
  return m;
}
inline uint32_t LtMask(VecU32 a, VecU32 b) {
  uint32_t m = 0;
  for (size_t i = 0; i < 8; ++i) m |= (a.v[i] < b.v[i]) ? (1u << i) : 0u;
  return m;
}

#endif

// ---------------------------------------------------------------------------
// Byte-equality masks for the ingestion chunk scanner. The parse workers
// locate every field delimiter and newline in a chunk with one structural
// pass instead of a memchr per line plus a re-scan per field; this primitive
// turns 64 input bytes into a position bitmask per needle byte. Output is a
// pure function of the bytes, identical on every backend, so the scanner
// built on it needs no runtime switch — only the speed differs.
// ---------------------------------------------------------------------------

#if defined(COMMSIG_SIMD_AVX2)

/// Fills `ma`/`mb`: bit i is set iff p[i] == a (resp. b). All 64 bytes at
/// `p` must be readable; callers handle buffer tails by copying into a
/// padded stack block and masking off the bits past the real length.
inline void ByteEq2Mask64(const char* p, char a, char b, uint64_t& ma,
                          uint64_t& mb) {
  const __m256i na = _mm256_set1_epi8(a);
  const __m256i nb = _mm256_set1_epi8(b);
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
  const uint32_t a_lo = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, na)));
  const uint32_t a_hi = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, na)));
  const uint32_t b_lo = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, nb)));
  const uint32_t b_hi = static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, nb)));
  ma = (static_cast<uint64_t>(a_hi) << 32) | a_lo;
  mb = (static_cast<uint64_t>(b_hi) << 32) | b_lo;
}

#else

/// SWAR fallback: an exact zero-byte detector marks matching bytes' high
/// bits — the high bit of ((x&0x7f)+0x7f) | x is set iff byte x != 0, with
/// no cross-byte carries, unlike the shorter (x-kLow)&~x form whose borrow
/// also flags a byte equal to 1 above a true match. The 0x0102040810204080
/// multiply then gathers one bit per byte into the top byte of the
/// product. Same output as the AVX2 path, bit for bit.
inline void ByteEq2Mask64(const char* p, char a, char b, uint64_t& ma,
                          uint64_t& mb) {
  constexpr uint64_t kLow = 0x0101010101010101ull;
  constexpr uint64_t kSeven = 0x7f7f7f7f7f7f7f7full;
  constexpr uint64_t kGather = 0x0102040810204080ull;
  const uint64_t pat_a = kLow * static_cast<unsigned char>(a);
  const uint64_t pat_b = kLow * static_cast<unsigned char>(b);
  ma = 0;
  mb = 0;
  for (int w = 0; w < 8; ++w) {
    uint64_t word;
    std::memcpy(&word, p + w * 8, 8);
    const uint64_t da = word ^ pat_a;
    const uint64_t db = word ^ pat_b;
    const uint64_t ha = ~(((da & kSeven) + kSeven) | da | kSeven);
    const uint64_t hb = ~(((db & kSeven) + kSeven) | db | kSeven);
    ma |= (((ha >> 7) * kGather) >> 56) << (8 * w);
    mb |= (((hb >> 7) * kGather) >> 56) << (8 * w);
  }
}

#endif

// ---------------------------------------------------------------------------
// Fused loop kernels for the RWR block power iteration. All are strictly
// elementwise (independent lanes, one mul and/or one add per element), so
// the vectorized and scalar paths — and therefore every backend — produce
// bit-identical results; the runtime Enabled() switch only selects speed.
// ---------------------------------------------------------------------------

namespace detail {

COMMSIG_SIMD_NOVEC inline void AxpyRowScalar(double* row, const double* scale,
                                             double w, size_t n) {
  for (size_t i = 0; i < n; ++i) row[i] += scale[i] * w;
}

COMMSIG_SIMD_NOVEC inline void AccumAddScalar(double* acc, const double* x,
                                              size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += x[i];
}

COMMSIG_SIMD_NOVEC inline void ScaleIntoScalar(double* dst, const double* src,
                                               double s, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[i] * s;
}

COMMSIG_SIMD_NOVEC inline void AccumAbsDiffScalar(double* acc, const double* a,
                                                  const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += std::fabs(a[i] - b[i]);
}

}  // namespace detail

/// row[i] += scale[i] * w — the per-edge scatter of the block power
/// iteration. Separate mul and add (never FMA): contracting would change
/// the rounding and break bit-identity with the serial solver.
inline void AxpyRow(double* row, const double* scale, double w, size_t n) {
  if (!Enabled()) {
    detail::AxpyRowScalar(row, scale, w, n);
    return;
  }
  const VecD vw = Broadcast(w);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(row + i, Add(LoadU(row + i), Mul(LoadU(scale + i), vw)));
  }
  for (; i < n; ++i) row[i] += scale[i] * w;
}

/// acc[i] += x[i].
inline void AccumAdd(double* acc, const double* x, size_t n) {
  if (!Enabled()) {
    detail::AccumAddScalar(acc, x, n);
    return;
  }
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(acc + i, Add(LoadU(acc + i), LoadU(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

/// dst[i] = src[i] * s.
inline void ScaleInto(double* dst, const double* src, double s, size_t n) {
  if (!Enabled()) {
    detail::ScaleIntoScalar(dst, src, s, n);
    return;
  }
  const VecD vs = Broadcast(s);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(dst + i, Mul(LoadU(src + i), vs));
  }
  for (; i < n; ++i) dst[i] = src[i] * s;
}

/// acc[i] += |a[i] - b[i]| — the per-column L1 convergence accumulation.
inline void AccumAbsDiff(double* acc, const double* a, const double* b,
                         size_t n) {
  if (!Enabled()) {
    detail::AccumAbsDiffScalar(acc, a, b, n);
    return;
  }
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    StoreU(acc + i, Add(LoadU(acc + i), Abs(Sub(LoadU(a + i), LoadU(b + i)))));
  }
  for (; i < n; ++i) acc[i] += std::fabs(a[i] - b[i]);
}

}  // namespace simd
}  // namespace commsig

#endif  // COMMSIG_COMMON_SIMD_H_
