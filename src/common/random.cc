#include "common/random.h"

#include <cmath>

namespace commsig {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding as recommended by the xoshiro authors; guards against
  // the all-zero state.
  uint64_t sm = seed;
  for (auto& word : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    uint64_t z = sm;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    word = z ^ (z >> 31);
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    uint64_t k = 0;
    double product = UniformDouble();
    while (product > limit) {
      ++k;
      product *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for trace
  // generation at large means.
  double sample = lambda + std::sqrt(lambda) * Gaussian() + 0.5;
  if (sample < 0.0) return 0;
  return static_cast<uint64_t>(sample);
}

double Rng::Gaussian() {
  // Box-Muller; discards the second value for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // floating-point slack
}

Rng Rng::Fork() { return Rng(SplitMix64(Next())); }

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  prob_.resize(n);
  alias_.resize(n);
  // Scaled probabilities; Vose's stable alias construction.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    alias_[large.back()] = large.back();
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;
    alias_[small.back()] = small.back();
    small.pop_back();
  }
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  size_t i = rng.UniformInt(prob_.size());
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace commsig
