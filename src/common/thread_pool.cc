#include "common/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"

namespace commsig {

ThreadPool::ThreadPool(size_t num_threads)
    : created_at_(std::chrono::steady_clock::now()) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return;  // documented no-op after shutdown begins
    queue_.push_back(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  // The gauge update takes the MetricsRegistry mutex (on the first call per
  // call site); it runs after `mutex_` is released so the pool lock stays
  // innermost and never nests around another subsystem's lock.
  COMMSIG_GAUGE_SET("threadpool/queue_depth", depth);
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  {
    MutexLock lock(mutex_);
    all_done_.Wait(mutex_,
                   [this]() COMMSIG_REQUIRES(mutex_) { return in_flight_ == 0; });
  }
  // A full wave just drained: refresh the lifetime-utilization gauge
  // (fraction of worker wall time spent running tasks). Outside the critical
  // section — it only reads atomics and immutable state.
  const double elapsed_us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - created_at_)
                              .count());
  if (elapsed_us > 0.0 && !workers_.empty()) {
    COMMSIG_GAUGE_SET(
        "threadpool/utilization",
        static_cast<double>(busy_micros_.load(std::memory_order_relaxed)) /
            (elapsed_us * static_cast<double>(workers_.size())));
  }
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    size_t depth;
    {
      MutexLock lock(mutex_);
      work_available_.Wait(mutex_, [this]() COMMSIG_REQUIRES(mutex_) {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    COMMSIG_GAUGE_SET("threadpool/queue_depth", depth);
    const auto task_start = std::chrono::steady_clock::now();
    task();
    busy_micros_.fetch_add(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - task_start)
            .count(),
        std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    COMMSIG_COUNTER_ADD("threadpool/tasks_executed", 1);
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t threads = pool.num_threads();
  // ~4 chunks per worker balances skewed per-item cost against overhead.
  const size_t chunks = std::min(count, std::max<size_t>(1, threads * 4));
  const size_t chunk_size = (count + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    pool.Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace commsig
