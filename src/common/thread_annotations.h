#ifndef COMMSIG_COMMON_THREAD_ANNOTATIONS_H_
#define COMMSIG_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (the abseil/LLVM set,
/// COMMSIG_-prefixed). Annotating a member with COMMSIG_GUARDED_BY(mu) and
/// locking functions with COMMSIG_ACQUIRE/RELEASE lets
/// `clang -Wthread-safety` prove at compile time that every access happens
/// under the right lock. The macros expand to nothing on compilers without
/// the attributes (GCC, MSVC), so annotated code stays portable.
///
/// Enable the analysis with -DCOMMSIG_THREAD_SAFETY=ON (Clang only); it is
/// promoted to an error there, so an unannotated access or a lock-discipline
/// violation fails the build.
///
/// These attributes only track capabilities the *library* declares —
/// libstdc++'s std::mutex is unannotated and invisible to the analysis —
/// so lock-protected state must use commsig::Mutex (common/mutex.h), the
/// annotated wrapper, rather than std::mutex directly.

#if defined(__clang__)
#define COMMSIG_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define COMMSIG_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a capability (lockable) type.
#define COMMSIG_CAPABILITY(x) COMMSIG_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability.
#define COMMSIG_SCOPED_CAPABILITY COMMSIG_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define COMMSIG_GUARDED_BY(x) COMMSIG_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define COMMSIG_PT_GUARDED_BY(x) COMMSIG_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the listed ones.
#define COMMSIG_ACQUIRED_BEFORE(...) \
  COMMSIG_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define COMMSIG_ACQUIRED_AFTER(...) \
  COMMSIG_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities to be held by the caller.
#define COMMSIG_REQUIRES(...) \
  COMMSIG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities (held on return /
/// must be held on entry, respectively).
#define COMMSIG_ACQUIRE(...) \
  COMMSIG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define COMMSIG_RELEASE(...) \
  COMMSIG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock
/// guard for public methods that take their own lock).
#define COMMSIG_EXCLUDES(...) \
  COMMSIG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define COMMSIG_RETURN_CAPABILITY(x) \
  COMMSIG_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the invariant holds anyway.
#define COMMSIG_NO_THREAD_SAFETY_ANALYSIS \
  COMMSIG_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // COMMSIG_COMMON_THREAD_ANNOTATIONS_H_
