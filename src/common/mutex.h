#ifndef COMMSIG_COMMON_MUTEX_H_
#define COMMSIG_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace commsig {

/// Annotated wrapper over std::mutex. libstdc++ ships std::mutex without
/// thread-safety capability attributes, which makes it invisible to Clang's
/// -Wthread-safety analysis; this wrapper declares the capability so
/// GUARDED_BY members and REQUIRES functions are actually checked. Zero
/// overhead: both methods are a single inlined call on the wrapped mutex.
class COMMSIG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COMMSIG_ACQUIRE() { mu_.lock(); }
  void Unlock() COMMSIG_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock for Mutex — the annotated equivalent of
/// std::lock_guard. Prefer this over manual Lock/Unlock pairs; the analysis
/// then proves the release on every path.
class COMMSIG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COMMSIG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() COMMSIG_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with commsig::Mutex. Wait() requires the mutex
/// to be held (checked by the analysis) and holds it again when the
/// predicate returns; notification methods need no lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until `pred()` is true, and
  /// reacquires `mu` before returning. `pred` runs with `mu` held — when
  /// it reads GUARDED_BY(mu) state, annotate the lambda itself with
  /// COMMSIG_REQUIRES(mu).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) COMMSIG_REQUIRES(mu) {
    // Adopt the already-held lock for the duration of the wait, then hand
    // ownership back so the caller's MutexLock remains the sole releaser.
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted, std::move(pred));
    adopted.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_MUTEX_H_
