#ifndef COMMSIG_COMMON_THREAD_POOL_H_
#define COMMSIG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace commsig {

/// Fixed-size worker pool for the embarrassingly parallel parts of the
/// pipeline — per-focal-node signature computation and pairwise distance
/// scans. Tasks are plain std::function<void()>; completion is awaited
/// with Wait(). No task may throw (the library is exception-free).
class ThreadPool {
 public:
  /// `num_threads` 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, count) across the pool and blocks until all
/// iterations complete. Iterations are batched into contiguous chunks to
/// amortize queue overhead.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace commsig

#endif  // COMMSIG_COMMON_THREAD_POOL_H_
