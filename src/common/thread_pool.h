#ifndef COMMSIG_COMMON_THREAD_POOL_H_
#define COMMSIG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace commsig {

/// Fixed-size worker pool for the embarrassingly parallel parts of the
/// pipeline — per-focal-node signature computation and pairwise distance
/// scans. Tasks are plain std::function<void()>; completion is awaited
/// with Wait(). No task may throw (the library is exception-free).
class ThreadPool {
 public:
  /// `num_threads` 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers. Tasks submitted
  /// while the drain is in progress are dropped (see Submit).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Once shutdown has begun (the destructor is
  /// running), Submit is a documented no-op: the task is dropped rather
  /// than enqueued, so a task that resubmits work during destruction
  /// cannot race the worker join.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Number of tasks currently enqueued and not yet picked up by a worker
  /// (excludes tasks being executed right now).
  size_t queue_depth() const;

  /// Total tasks completed over the pool's lifetime.
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> busy_micros_{0};
  std::chrono::steady_clock::time_point created_at_;
};

/// Runs fn(i) for i in [0, count) across the pool and blocks until all
/// iterations complete. Iterations are batched into contiguous chunks to
/// amortize queue overhead.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace commsig

#endif  // COMMSIG_COMMON_THREAD_POOL_H_
