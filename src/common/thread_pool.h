#ifndef COMMSIG_COMMON_THREAD_POOL_H_
#define COMMSIG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace commsig {

/// Fixed-size worker pool for the embarrassingly parallel parts of the
/// pipeline — per-focal-node signature computation and pairwise distance
/// scans. Tasks are plain std::function<void()>; completion is awaited
/// with Wait(). No task may throw (the library is exception-free).
///
/// Lock discipline: `mutex_` guards the queue and the in-flight/shutdown
/// state, and is never held across a task invocation or a call into another
/// locking subsystem (the obs registry updates happen outside the critical
/// sections), so `mutex_` is always innermost.
class ThreadPool {
 public:
  /// `num_threads` 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers. Tasks submitted
  /// while the drain is in progress are dropped (see Submit).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Once shutdown has begun (the destructor is
  /// running), Submit is a documented no-op: the task is dropped rather
  /// than enqueued, so a task that resubmits work during destruction
  /// cannot race the worker join.
  void Submit(std::function<void()> task) COMMSIG_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void Wait() COMMSIG_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Number of tasks currently enqueued and not yet picked up by a worker
  /// (excludes tasks being executed right now).
  size_t queue_depth() const COMMSIG_EXCLUDES(mutex_);

  /// Total tasks completed over the pool's lifetime.
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop() COMMSIG_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ COMMSIG_GUARDED_BY(mutex_);
  size_t in_flight_ COMMSIG_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ COMMSIG_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // written by the constructor only
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> busy_micros_{0};
  std::chrono::steady_clock::time_point created_at_;
};

/// Runs fn(i) for i in [0, count) across the pool and blocks until all
/// iterations complete. Iterations are batched into contiguous chunks to
/// amortize queue overhead.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace commsig

#endif  // COMMSIG_COMMON_THREAD_POOL_H_
