#ifndef COMMSIG_COMMON_STATS_H_
#define COMMSIG_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace commsig {

/// Streaming mean / variance accumulator (Welford). Used throughout the
/// evaluation layer to summarize per-node property values, e.g. the
/// persistence/uniqueness means and standard deviations behind the paper's
/// Figure 1 ellipses.
class RunningStats {
 public:
  RunningStats() = default;

  /// Incorporates one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford update).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  /// Mean of observations; 0 when empty.
  double Mean() const { return mean_; }
  /// Population variance; 0 with fewer than two observations.
  double Variance() const;
  /// Population standard deviation.
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of `values` (the vector is copied and partially sorted).
/// `q` in [0,1]; uses the nearest-rank definition. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Pearson correlation coefficient of two equal-length series. Returns 0 if
/// either series is constant or the lengths differ/are empty.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace commsig

#endif  // COMMSIG_COMMON_STATS_H_
