#ifndef COMMSIG_COMMON_RESULT_H_
#define COMMSIG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace commsig {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent — the usual `StatusOr` idiom.
///
/// Accessing the value of a failed Result aborts with the status message in
/// every build mode; callers must check `ok()` first. (An assert here would
/// compile out in Release and dereference an empty optional — UB on exactly
/// the corrupt-input paths where failed Results actually occur.)
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success: wraps a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure: wraps a non-OK status. Constructing from an OK status is a
  /// programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors. Only valid when `ok()`.
  const T& value() const& {
    COMMSIG_CHECK(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    COMMSIG_CHECK(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    COMMSIG_CHECK(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace commsig

#endif  // COMMSIG_COMMON_RESULT_H_
