#include "common/simd.h"

namespace commsig {
namespace simd {
namespace detail {

bool g_runtime_enabled = true;

}  // namespace detail
}  // namespace simd
}  // namespace commsig
