#include "eval/timeline.h"

#include <cassert>

#include "core/incremental.h"

namespace commsig {

std::vector<TransitionStats> PersistencePerTransition(
    const std::vector<std::vector<Signature>>& per_window,
    SignatureDistance dist) {
  std::vector<TransitionStats> out;
  for (size_t w = 0; w + 1 < per_window.size(); ++w) {
    assert(per_window[w].size() == per_window[w + 1].size());
    RunningStats stats;
    for (size_t i = 0; i < per_window[w].size(); ++i) {
      stats.Add(1.0 - dist(per_window[w][i], per_window[w + 1][i]));
    }
    out.push_back({w, stats.Mean(), stats.StdDev()});
  }
  return out;
}

std::vector<LagStats> PersistenceByLag(
    const std::vector<std::vector<Signature>>& per_window,
    SignatureDistance dist, size_t max_lag) {
  std::vector<LagStats> out;
  const size_t windows = per_window.size();
  for (size_t lag = 1; lag <= max_lag && lag < windows; ++lag) {
    RunningStats stats;
    for (size_t w = 0; w + lag < windows; ++w) {
      assert(per_window[w].size() == per_window[w + lag].size());
      for (size_t i = 0; i < per_window[w].size(); ++i) {
        stats.Add(1.0 - dist(per_window[w][i], per_window[w + lag][i]));
      }
    }
    out.push_back({lag, stats.Mean(), stats.StdDev(), stats.count()});
  }
  return out;
}

std::vector<std::vector<Signature>> ComputeSignatureTimeline(
    const SignatureScheme& scheme, std::span<const CommGraph> windows,
    std::span<const NodeId> nodes,
    const SignatureTimelineOptions& options) {
  std::vector<std::vector<Signature>> per_window;
  per_window.reserve(windows.size());
  if (options.incremental) {
    IncrementalSignatureEngine engine(
        scheme, std::vector<NodeId>(nodes.begin(), nodes.end()));
    // The windows span outlives the engine, so the zero-copy form applies.
    for (const CommGraph& g : windows) {
      per_window.push_back(engine.AdvanceBorrowed(g));
    }
  } else {
    for (const CommGraph& g : windows) {
      per_window.push_back(scheme.ComputeAll(g, nodes));
    }
  }
  return per_window;
}

}  // namespace commsig
