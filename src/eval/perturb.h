#ifndef COMMSIG_EVAL_PERTURB_H_
#define COMMSIG_EVAL_PERTURB_H_

#include <cstdint>

#include "graph/comm_graph.h"

namespace commsig {

/// Parameters of the paper's robustness perturbation (Section IV-C):
///  * insertion: α·|E| new/boosted edges. Source sampled ∝ out-degree,
///    destination sampled ∝ in-degree (within the opposite partition for
///    bipartite graphs); the added weight is drawn from the empirical
///    distribution of existing edge weights, independent of C[v,u].
///  * deletion: β·|E| unit decrements of existing edges, sampling an edge
///    ∝ its (current) weight each time; edges reaching weight 0 disappear.
struct PerturbOptions {
  double insert_fraction = 0.1;  // α
  double delete_fraction = 0.1;  // β
  uint64_t seed = 1;
};

/// Returns the perturbed graph G'_t. The input graph must have at least one
/// edge; node universe and bipartite metadata are preserved.
CommGraph Perturb(const CommGraph& g, const PerturbOptions& options);

}  // namespace commsig

#endif  // COMMSIG_EVAL_PERTURB_H_
