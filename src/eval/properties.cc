#include "eval/properties.h"

#include <cassert>

#include "common/random.h"

namespace commsig {

std::vector<double> PersistenceValues(std::span<const Signature> sigs_t,
                                      std::span<const Signature> sigs_t1,
                                      SignatureDistance dist) {
  assert(sigs_t.size() == sigs_t1.size());
  std::vector<double> values;
  values.reserve(sigs_t.size());
  for (size_t i = 0; i < sigs_t.size(); ++i) {
    values.push_back(1.0 - dist(sigs_t[i], sigs_t1[i]));
  }
  return values;
}

std::vector<double> UniquenessValues(std::span<const Signature> sigs,
                                     SignatureDistance dist, size_t max_pairs,
                                     uint64_t seed) {
  const size_t n = sigs.size();
  std::vector<double> values;
  if (n < 2) return values;
  const size_t total_pairs = n * (n - 1) / 2;

  if (max_pairs == 0 || total_pairs <= max_pairs) {
    values.reserve(total_pairs);
    for (size_t v = 0; v < n; ++v) {
      for (size_t u = v + 1; u < n; ++u) {
        values.push_back(dist(sigs[v], sigs[u]));
      }
    }
    return values;
  }

  // Sample pairs uniformly (with replacement across draws; duplicate pairs
  // are acceptable in a mean/stddev estimate).
  Rng rng(seed);
  values.reserve(max_pairs);
  for (size_t s = 0; s < max_pairs; ++s) {
    size_t v = rng.UniformInt(n);
    size_t u = rng.UniformInt(n - 1);
    if (u >= v) ++u;
    values.push_back(dist(sigs[v], sigs[u]));
  }
  return values;
}

PropertyEllipse SummarizeProperties(std::span<const Signature> sigs_t,
                                    std::span<const Signature> sigs_t1,
                                    SignatureDistance dist, size_t max_pairs,
                                    uint64_t seed) {
  PropertyEllipse e;
  RunningStats p_stats, u_stats;
  for (double p : PersistenceValues(sigs_t, sigs_t1, dist)) p_stats.Add(p);
  for (double u : UniquenessValues(sigs_t, dist, max_pairs, seed)) {
    u_stats.Add(u);
  }
  e.mean_persistence = p_stats.Mean();
  e.std_persistence = p_stats.StdDev();
  e.mean_uniqueness = u_stats.Mean();
  e.std_uniqueness = u_stats.StdDev();
  e.persistence_count = p_stats.count();
  e.uniqueness_count = u_stats.count();
  return e;
}

std::vector<RocResult> SelfMatchRoc(std::span<const Signature> sigs_t,
                                    std::span<const Signature> sigs_t1,
                                    SignatureDistance dist) {
  assert(sigs_t.size() == sigs_t1.size());
  const size_t n = sigs_t.size();
  std::vector<RocResult> results;
  results.reserve(n);
  std::vector<double> scores(n);
  std::vector<bool> relevant(n);
  for (size_t v = 0; v < n; ++v) {
    for (size_t u = 0; u < n; ++u) {
      scores[u] = dist(sigs_t[v], sigs_t1[u]);
      relevant[u] = (u == v);
    }
    results.push_back(ComputeRoc(scores, relevant));
  }
  return results;
}

std::vector<RocResult> SetMatchRoc(
    std::span<const Signature> queries,
    std::span<const size_t> query_indices,
    std::span<const Signature> candidates,
    const std::vector<std::vector<size_t>>& relevant_sets,
    SignatureDistance dist, bool exclude_self) {
  assert(queries.size() == query_indices.size());
  assert(queries.size() == relevant_sets.size());
  std::vector<RocResult> results;
  results.reserve(queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<double> scores;
    std::vector<bool> relevant;
    scores.reserve(candidates.size());
    relevant.reserve(candidates.size());
    std::vector<bool> is_relevant(candidates.size(), false);
    for (size_t idx : relevant_sets[q]) {
      assert(idx < candidates.size());
      is_relevant[idx] = true;
    }
    for (size_t u = 0; u < candidates.size(); ++u) {
      if (exclude_self && u == query_indices[q]) continue;
      scores.push_back(dist(queries[q], candidates[u]));
      relevant.push_back(is_relevant[u]);
    }
    results.push_back(ComputeRoc(scores, relevant));
  }
  return results;
}

}  // namespace commsig
