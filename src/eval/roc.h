#ifndef COMMSIG_EVAL_ROC_H_
#define COMMSIG_EVAL_ROC_H_

#include <cstddef>
#include <vector>

namespace commsig {

/// One point of an ROC curve.
struct RocPoint {
  double fpr = 0.0;  // false-positive rate (x axis)
  double tpr = 0.0;  // true-positive rate (y axis)
};

/// An ROC curve plus its area. Built from a ranked candidate list exactly as
/// in the paper (Section IV-C): traverse candidates best-first; a relevant
/// candidate steps the curve up by 1/|R|, an irrelevant one steps right by
/// 1/(N - |R|).
struct RocResult {
  std::vector<RocPoint> curve;  // starts at (0,0), ends at (1,1)
  double auc = 0.0;
};

/// Computes the ROC for one query. `scores[i]` is the distance of candidate
/// i to the query (smaller = ranked higher); `relevant[i]` marks the
/// candidates that should be ranked first. There must be at least one
/// relevant and one irrelevant candidate.
///
/// Tied scores are handled in the standard Mann-Whitney way: a
/// relevant/irrelevant pair with equal scores contributes 0.5 to the AUC,
/// and the curve moves diagonally through tie groups, so candidate order
/// never affects the result.
RocResult ComputeRoc(const std::vector<double>& scores,
                     const std::vector<bool>& relevant);

/// AUC only (same tie convention), without materializing the curve.
/// Returns 0.5 when either class is empty.
double ComputeAuc(const std::vector<double>& scores,
                  const std::vector<bool>& relevant);

/// Vertically averages per-query ROC curves onto a uniform FPR grid of
/// `grid_size` points — the form plotted in the paper's Figures 2 and 5.
/// TPR at each grid FPR is linearly interpolated per curve, then averaged.
std::vector<RocPoint> AverageRocCurves(const std::vector<RocResult>& curves,
                                       size_t grid_size = 101);

/// Mean AUC over queries; 0.5 if `curves` is empty.
double MeanAuc(const std::vector<RocResult>& curves);

}  // namespace commsig

#endif  // COMMSIG_EVAL_ROC_H_
