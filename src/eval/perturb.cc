#include "eval/perturb.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace commsig {

namespace {

/// Fenwick (binary indexed) tree over non-negative weights supporting
/// point updates and weighted sampling in O(log n). Drives the paper's
/// "sample existing edges proportional to their weights, decrement by one
/// unit, repeat" deletion process, where weights change between draws.
class FenwickSampler {
 public:
  explicit FenwickSampler(const std::vector<double>& weights)
      : n_(weights.size()), tree_(weights.size() + 1, 0.0) {
    for (size_t i = 0; i < n_; ++i) Update(i, weights[i]);
  }

  void Update(size_t i, double delta) {
    for (size_t x = i + 1; x <= n_; x += x & (~x + 1)) {
      tree_[x] += delta;
    }
  }

  double Total() const {
    double total = 0.0;
    for (size_t x = n_; x > 0; x -= x & (~x + 1)) total += tree_[x];
    return total;
  }

  /// Index i with probability weight[i]/Total(). Total() must be > 0.
  size_t Sample(Rng& rng) const {
    double target = rng.UniformDouble() * Total();
    size_t pos = 0;
    size_t mask = 1;
    while (mask * 2 <= n_) mask *= 2;
    for (; mask > 0; mask /= 2) {
      size_t next = pos + mask;
      if (next <= n_ && tree_[next] < target) {
        target -= tree_[next];
        pos = next;
      }
    }
    return pos;  // 0-based index
  }

 private:
  size_t n_;
  std::vector<double> tree_;
};

}  // namespace

CommGraph Perturb(const CommGraph& g, const PerturbOptions& options) {
  assert(g.NumEdges() > 0);
  Rng rng(options.seed);
  const size_t n = g.NumNodes();
  const bool bipartite = g.bipartite().IsBipartite();
  const NodeId left = g.bipartite().left_size;

  // Mutable edge list.
  std::vector<CommGraph::FlatEdge> edges = g.Edges();
  const size_t original_edges = edges.size();

  // --- Insertions ------------------------------------------------------
  // Sources ∝ out-degree; destinations ∝ in-degree. For bipartite graphs
  // this naturally keeps src in V1, dst in V2 (only V1 nodes have
  // out-degree). For general graphs any node may play either role.
  std::vector<double> out_deg(n, 0.0), in_deg(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    out_deg[v] = static_cast<double>(g.OutDegree(v));
    in_deg[v] = static_cast<double>(g.InDegree(v));
  }
  DiscreteSampler src_sampler(out_deg);
  DiscreteSampler dst_sampler(in_deg);

  // Empirical weight distribution for the weights of inserted edges.
  std::vector<double> weight_pool;
  weight_pool.reserve(original_edges);
  for (const auto& e : edges) weight_pool.push_back(e.weight);

  const size_t num_inserts = static_cast<size_t>(
      std::llround(options.insert_fraction * static_cast<double>(original_edges)));
  std::vector<CommGraph::FlatEdge> inserted;
  inserted.reserve(num_inserts);
  for (size_t s = 0; s < num_inserts; ++s) {
    NodeId src = static_cast<NodeId>(src_sampler.Sample(rng));
    NodeId dst = static_cast<NodeId>(dst_sampler.Sample(rng));
    if (src == dst) {
      // Re-draw the destination once; if it collides again, skip — the
      // paper's process never inserts self-loops on bipartite data, and a
      // rare skip does not bias the general-graph case measurably.
      dst = static_cast<NodeId>(dst_sampler.Sample(rng));
      if (src == dst) continue;
    }
    if (bipartite && g.InLeftPartition(src) == g.InLeftPartition(dst)) {
      // Degree-proportional draws already make this impossible when only V1
      // has out-edges; guard anyway for mixed inputs.
      continue;
    }
    const double w = weight_pool[rng.UniformInt(weight_pool.size())];
    inserted.push_back({src, dst, w});
  }
  (void)left;

  // --- Deletions --------------------------------------------------------
  // β|E| unit decrements, sampling ∝ current weight via a Fenwick tree.
  std::vector<double> weights(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) weights[i] = edges[i].weight;
  FenwickSampler sampler(weights);
  const size_t num_deletes = static_cast<size_t>(
      std::llround(options.delete_fraction * static_cast<double>(original_edges)));
  for (size_t s = 0; s < num_deletes; ++s) {
    if (sampler.Total() <= 0.5) break;  // everything deleted
    size_t idx = sampler.Sample(rng);
    double dec = std::min(1.0, weights[idx]);
    if (dec <= 0.0) continue;
    weights[idx] -= dec;
    sampler.Update(idx, -dec);
  }

  GraphBuilder builder(n);
  builder.SetBipartiteLeftSize(g.bipartite().left_size);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (weights[i] > 0.0) {
      builder.AddEdge(edges[i].src, edges[i].dst, weights[i]);
    }
  }
  for (const auto& e : inserted) builder.AddEdge(e.src, e.dst, e.weight);
  return std::move(builder).Build();
}

}  // namespace commsig
