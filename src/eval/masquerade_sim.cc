#include "eval/masquerade_sim.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace commsig {

bool MasqueradePlan::Contains(NodeId v, NodeId u) const {
  return std::find(mapping.begin(), mapping.end(), std::make_pair(v, u)) !=
         mapping.end();
}

std::vector<NodeId> MasqueradePlan::PerturbedNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(mapping.size());
  for (const auto& [v, u] : mapping) nodes.push_back(v);
  return nodes;
}

MasqueradePlan PlanMasquerade(std::span<const NodeId> pool, double fraction,
                              uint64_t seed) {
  MasqueradePlan plan;
  const size_t count = static_cast<size_t>(
      std::floor(fraction * static_cast<double>(pool.size())));
  if (count < 2) return plan;

  Rng rng(seed);
  std::vector<NodeId> selected(pool.begin(), pool.end());
  rng.Shuffle(selected);
  selected.resize(count);

  // A uniformly shuffled cyclic shift is a simple fixed-point-free
  // bijection: shuffle, then map each selected node to the next one.
  std::vector<NodeId> cycle = selected;
  rng.Shuffle(cycle);
  plan.mapping.reserve(count);
  for (size_t i = 0; i < cycle.size(); ++i) {
    plan.mapping.emplace_back(cycle[i], cycle[(i + 1) % cycle.size()]);
  }
  return plan;
}

CommGraph ApplyMasquerade(const CommGraph& g, const MasqueradePlan& plan) {
  std::vector<NodeId> relabel(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) relabel[v] = v;
  for (const auto& [v, u] : plan.mapping) relabel[v] = u;

  GraphBuilder builder(g.NumNodes());
  builder.SetBipartiteLeftSize(g.bipartite().left_size);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      builder.AddEdge(relabel[v], relabel[e.node], e.weight);
    }
  }
  return std::move(builder).Build();
}

}  // namespace commsig
