#include "eval/roc.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace commsig {

RocResult ComputeRoc(const std::vector<double>& scores,
                     const std::vector<bool>& relevant) {
  assert(scores.size() == relevant.size());
  const size_t n = scores.size();
  size_t num_relevant = 0;
  for (bool r : relevant) num_relevant += r ? 1 : 0;
  const size_t num_irrelevant = n - num_relevant;

  RocResult result;
  result.curve.push_back({0.0, 0.0});
  if (num_relevant == 0 || num_irrelevant == 0) {
    result.curve.push_back({1.0, 1.0});
    result.auc = 0.5;
    return result;
  }

  // Rank ascending by score; process tie groups as a single diagonal move
  // so the curve (and the trapezoid area) is order-independent.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  const double up = 1.0 / static_cast<double>(num_relevant);
  const double right = 1.0 / static_cast<double>(num_irrelevant);

  double tpr = 0.0, fpr = 0.0, auc = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    size_t group_rel = 0, group_irr = 0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      if (relevant[order[j]]) {
        ++group_rel;
      } else {
        ++group_irr;
      }
      ++j;
    }
    const double new_tpr = tpr + up * static_cast<double>(group_rel);
    const double new_fpr = fpr + right * static_cast<double>(group_irr);
    // Trapezoid under the diagonal segment.
    auc += (new_fpr - fpr) * (tpr + new_tpr) / 2.0;
    tpr = new_tpr;
    fpr = new_fpr;
    result.curve.push_back({fpr, tpr});
    i = j;
  }
  result.auc = auc;
  return result;
}

double ComputeAuc(const std::vector<double>& scores,
                  const std::vector<bool>& relevant) {
  return ComputeRoc(scores, relevant).auc;
}

std::vector<RocPoint> AverageRocCurves(const std::vector<RocResult>& curves,
                                       size_t grid_size) {
  std::vector<RocPoint> grid(grid_size);
  if (grid_size == 0) return grid;
  for (size_t g = 0; g < grid_size; ++g) {
    grid[g].fpr = static_cast<double>(g) / static_cast<double>(grid_size - 1);
  }
  if (curves.empty()) return grid;

  for (size_t g = 0; g < grid_size; ++g) {
    const double x = grid[g].fpr;
    double sum = 0.0;
    for (const RocResult& rc : curves) {
      // Linear interpolation of tpr at fpr = x. Curves may contain
      // vertical segments (several points at the same fpr); at an exact
      // hit we take the upper envelope — the tpr ultimately reached at
      // that fpr.
      const auto& c = rc.curve;
      double y = 1.0;
      for (size_t i = 1; i < c.size(); ++i) {
        if (c[i].fpr >= x) {
          if (c[i].fpr == x) {
            size_t j = i;
            while (j + 1 < c.size() && c[j + 1].fpr == x) ++j;
            y = c[j].tpr;
          } else {
            const double x0 = c[i - 1].fpr, y0 = c[i - 1].tpr;
            const double x1 = c[i].fpr, y1 = c[i].tpr;
            y = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
          }
          break;
        }
      }
      sum += y;
    }
    grid[g].tpr = sum / static_cast<double>(curves.size());
  }
  return grid;
}

double MeanAuc(const std::vector<RocResult>& curves) {
  if (curves.empty()) return 0.5;
  double sum = 0.0;
  for (const RocResult& rc : curves) sum += rc.auc;
  return sum / static_cast<double>(curves.size());
}

}  // namespace commsig
