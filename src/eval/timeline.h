#ifndef COMMSIG_EVAL_TIMELINE_H_
#define COMMSIG_EVAL_TIMELINE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/distance.h"
#include "core/scheme.h"
#include "core/signature.h"
#include "graph/comm_graph.h"

namespace commsig {

/// Multi-window evaluation helpers. The paper computes its properties on
/// one window transition and notes that "over all different time periods
/// we observed very similar results" and that "signatures that exhibit
/// higher persistence over a longer term will be more effective at
/// detecting anomalies" — these helpers make both statements measurable.

/// Mean/stddev of per-node persistence at each transition (t -> t+1)
/// across the horizon. `per_window[w][i]` is focal node i's signature in
/// window w; all windows must be index-aligned.
struct TransitionStats {
  size_t from_window = 0;
  double mean_persistence = 0.0;
  double std_persistence = 0.0;
};
std::vector<TransitionStats> PersistencePerTransition(
    const std::vector<std::vector<Signature>>& per_window,
    SignatureDistance dist);

/// Lag sweep: mean persistence 1 - Dist(σ_t(v), σ_{t+lag}(v)) pooled over
/// all valid t, for lag = 1 .. max_lag. Decaying slowly in lag = the
/// "long-term persistence" that anomaly detection wants.
struct LagStats {
  size_t lag = 0;
  double mean_persistence = 0.0;
  double std_persistence = 0.0;
  size_t samples = 0;
};
std::vector<LagStats> PersistenceByLag(
    const std::vector<std::vector<Signature>>& per_window,
    SignatureDistance dist, size_t max_lag);

/// Computes `per_window[w][i]` = signature of nodes[i] in windows[w] — the
/// input shape the persistence helpers above consume. By default the sweep
/// rides IncrementalSignatureEngine, so consecutive windows pay only for
/// their dirty nodes; incremental = false forces per-window ComputeAll
/// (the from-scratch reference the equivalence tests and the speedup bench
/// compare against).
struct SignatureTimelineOptions {
  bool incremental = true;
};
std::vector<std::vector<Signature>> ComputeSignatureTimeline(
    const SignatureScheme& scheme, std::span<const CommGraph> windows,
    std::span<const NodeId> nodes, const SignatureTimelineOptions& options = {});

}  // namespace commsig

#endif  // COMMSIG_EVAL_TIMELINE_H_
