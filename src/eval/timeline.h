#ifndef COMMSIG_EVAL_TIMELINE_H_
#define COMMSIG_EVAL_TIMELINE_H_

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "core/distance.h"
#include "core/signature.h"

namespace commsig {

/// Multi-window evaluation helpers. The paper computes its properties on
/// one window transition and notes that "over all different time periods
/// we observed very similar results" and that "signatures that exhibit
/// higher persistence over a longer term will be more effective at
/// detecting anomalies" — these helpers make both statements measurable.

/// Mean/stddev of per-node persistence at each transition (t -> t+1)
/// across the horizon. `per_window[w][i]` is focal node i's signature in
/// window w; all windows must be index-aligned.
struct TransitionStats {
  size_t from_window = 0;
  double mean_persistence = 0.0;
  double std_persistence = 0.0;
};
std::vector<TransitionStats> PersistencePerTransition(
    const std::vector<std::vector<Signature>>& per_window,
    SignatureDistance dist);

/// Lag sweep: mean persistence 1 - Dist(σ_t(v), σ_{t+lag}(v)) pooled over
/// all valid t, for lag = 1 .. max_lag. Decaying slowly in lag = the
/// "long-term persistence" that anomaly detection wants.
struct LagStats {
  size_t lag = 0;
  double mean_persistence = 0.0;
  double std_persistence = 0.0;
  size_t samples = 0;
};
std::vector<LagStats> PersistenceByLag(
    const std::vector<std::vector<Signature>>& per_window,
    SignatureDistance dist, size_t max_lag);

}  // namespace commsig

#endif  // COMMSIG_EVAL_TIMELINE_H_
