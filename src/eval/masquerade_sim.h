#ifndef COMMSIG_EVAL_MASQUERADE_SIM_H_
#define COMMSIG_EVAL_MASQUERADE_SIM_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/comm_graph.h"

namespace commsig {

/// A planned label masquerade: pairs (v, u) meaning "v's communications are
/// relabelled with u" in the perturbed window (the paper's E_P).
struct MasqueradePlan {
  std::vector<std::pair<NodeId, NodeId>> mapping;

  /// True iff (v, u) is in the plan.
  bool Contains(NodeId v, NodeId u) const;

  /// All perturbed labels (the paper's set P = sources ∪ targets; for a
  /// derangement these coincide).
  std::vector<NodeId> PerturbedNodes() const;
};

/// Selects ⌊fraction·|pool|⌋ nodes from `pool` and builds a random
/// *derangement* among them (a bijection with no fixed points — a fixed
/// point would be an unobservable "masquerade as oneself"). If fewer than 2
/// nodes are selected the plan is empty. Deterministic under `seed`.
MasqueradePlan PlanMasquerade(std::span<const NodeId> pool, double fraction,
                              uint64_t seed);

/// Applies the plan to `g`: every edge endpoint v with (v, u) in the plan
/// is rewritten to u. Node universe and bipartite metadata are preserved.
CommGraph ApplyMasquerade(const CommGraph& g, const MasqueradePlan& plan);

}  // namespace commsig

#endif  // COMMSIG_EVAL_MASQUERADE_SIM_H_
