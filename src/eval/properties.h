#ifndef COMMSIG_EVAL_PROPERTIES_H_
#define COMMSIG_EVAL_PROPERTIES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/distance.h"
#include "core/scheme.h"
#include "eval/roc.h"
#include "graph/comm_graph.h"

namespace commsig {

/// Per-node persistence values 1 - Dist(σ_t(v), σ_{t+1}(v)) for the focal
/// nodes, given their signatures in two consecutive windows (index-aligned
/// vectors).
std::vector<double> PersistenceValues(std::span<const Signature> sigs_t,
                                      std::span<const Signature> sigs_t1,
                                      SignatureDistance dist);

/// Pairwise uniqueness values Dist(σ_t(v), σ_t(u)) over unordered focal
/// pairs v != u within one window. If `max_pairs` > 0 and the number of
/// pairs exceeds it, a uniform random sample of that many pairs is used
/// (deterministic under `seed`).
std::vector<double> UniquenessValues(std::span<const Signature> sigs,
                                     SignatureDistance dist,
                                     size_t max_pairs = 0, uint64_t seed = 1);

/// Mean/stddev of persistence (x) and uniqueness (y) — the paper's Figure 1
/// plots these as an ellipse centred at (mean_p, mean_u) with diameters
/// (std_p, std_u).
struct PropertyEllipse {
  double mean_persistence = 0.0;
  double std_persistence = 0.0;
  double mean_uniqueness = 0.0;
  double std_uniqueness = 0.0;
  size_t persistence_count = 0;
  size_t uniqueness_count = 0;
};

PropertyEllipse SummarizeProperties(std::span<const Signature> sigs_t,
                                    std::span<const Signature> sigs_t1,
                                    SignatureDistance dist,
                                    size_t max_pairs = 0, uint64_t seed = 1);

/// The paper's persistence/uniqueness trade-off statistic (Section IV-C):
/// for each focal node v, rank every candidate u by
/// Dist(σ_t(v), σ_{t+1}(u)) and score how well v itself ranks first. Returns
/// one RocResult per query node, using the self node as the single relevant
/// candidate.
std::vector<RocResult> SelfMatchRoc(std::span<const Signature> sigs_t,
                                    std::span<const Signature> sigs_t1,
                                    SignatureDistance dist);

/// Cross-graph matching ROC used for robustness (Section IV-C, Fig. 4):
/// each query signature from `queries` is ranked against all `candidates`
/// (index-aligned node sets); relevant = same index. This is identical in
/// mechanics to SelfMatchRoc but reads better at call sites that compare a
/// graph against its perturbed twin.
inline std::vector<RocResult> MatchRoc(std::span<const Signature> queries,
                                       std::span<const Signature> candidates,
                                       SignatureDistance dist) {
  return SelfMatchRoc(queries, candidates, dist);
}

/// Set-relevance matching ROC used for multiusage detection (Section V,
/// Fig. 5): for each query index q (a node known to belong to a multi-node
/// user), ranks all candidates and marks as relevant the candidate indices
/// in `relevant_sets[q]` (the other nodes of the same user, including q
/// itself excluded or not per the caller). Candidates at the query's own
/// index can be excluded by listing only the *other* set members and
/// passing `exclude_self` = true.
std::vector<RocResult> SetMatchRoc(
    std::span<const Signature> queries,
    std::span<const size_t> query_indices,
    std::span<const Signature> candidates,
    const std::vector<std::vector<size_t>>& relevant_sets,
    SignatureDistance dist, bool exclude_self = true);

}  // namespace commsig

#endif  // COMMSIG_EVAL_PROPERTIES_H_
