#ifndef COMMSIG_INGEST_ROW_SCANNER_H_
#define COMMSIG_INGEST_ROW_SCANNER_H_

// Fused structural scanner for the parse workers' CSV decode loop.
//
// LineScanner + SplitFields walk every row twice: a memchr for the newline,
// then a second pass over the same bytes for the delimiters. FusedRowScanner
// makes one structural pass per 64-byte block — a pair of byte-equality
// masks from common/simd.h — and then touches only the separator positions,
// so a typical 4-field row costs a handful of bit operations instead of two
// byte scans.
//
// Semantics contract (checked by tests/ingest/row_scanner_test.cc): for any
// buffer, the sequence of (line, fields[0..min(count,max)), total count,
// line_number) produced here is identical to LineScanner::Next followed by
// SplitFields(line, delim, fields, max): lines split on '\n', one trailing
// '\r' stripped, blank lines and '#' comments skipped without counting,
// a final line without a newline still returned, and the TOTAL field count
// reported even when it exceeds `max_fields`.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/simd.h"

namespace commsig::ingest {

class FusedRowScanner {
 public:
  /// `data` must outlive every string_view handed out.
  FusedRowScanner(std::string_view data, char delim)
      : data_(data), delim_(delim) {}

  /// Advances to the next data line. On true, `line` is the line with any
  /// trailing '\r' stripped, fields[0..min(total, max_fields)) hold its
  /// split fields, and `total` is the full field count. False at end.
  bool Next(std::string_view& line, std::string_view* fields,
            size_t max_fields, size_t& total) {
    size_t line_start = pos_;
    size_t field_start = pos_;
    size_t nf = 0;
    while (true) {
      while (combined_ == 0) {
        if (!LoadBlock()) {
          // No separators left. A trailing unterminated line — if any
          // bytes remain — ends at the buffer end.
          if (line_start >= data_.size()) return false;
          return FinishLine(data_.size(), line_start, field_start, nf, line,
                            fields, max_fields, total);
        }
      }
      const uint64_t low = combined_ & (~combined_ + 1);
      const size_t pos = block_base_ + static_cast<size_t>(
                                           __builtin_ctzll(combined_));
      combined_ &= combined_ - 1;
      if ((nl_mask_ & low) == 0) {
        // Delimiter: record the field ending here.
        if (nf < max_fields) {
          fields[nf] = data_.substr(field_start, pos - field_start);
        }
        ++nf;
        field_start = pos + 1;
        continue;
      }
      // Newline: the candidate line is [line_start, pos).
      if (FinishLine(pos, line_start, field_start, nf, line, fields,
                     max_fields, total)) {
        return true;
      }
      // Blank or comment line: drop its fields and restart after it.
      line_start = pos_;
      field_start = pos_;
      nf = 0;
    }
  }

  /// Number of data lines consumed so far — LineScanner::line_number().
  uint64_t line_number() const { return line_number_; }

 private:
  /// Loads separator masks for the next 64-byte block. False when the
  /// buffer is exhausted.
  bool LoadBlock() {
    const size_t next = block_loaded_ ? block_base_ + 64 : 0;
    if (next >= data_.size()) return false;
    block_base_ = next;
    block_loaded_ = true;
    const size_t rem = data_.size() - next;
    uint64_t delim_mask;
    if (rem >= 64) {
      simd::ByteEq2Mask64(data_.data() + next, '\n', delim_, nl_mask_,
                          delim_mask);
    } else {
      char tail[64] = {0};
      std::memcpy(tail, data_.data() + next, rem);
      simd::ByteEq2Mask64(tail, '\n', delim_, nl_mask_, delim_mask);
      const uint64_t keep = (uint64_t{1} << rem) - 1;
      nl_mask_ &= keep;
      delim_mask &= keep;
    }
    combined_ = nl_mask_ | delim_mask;
    return true;
  }

  /// Completes the line ending (exclusive) at `end`. Returns false when the
  /// line is blank or a '#' comment — skipped without counting, with pos_
  /// already advanced past it.
  bool FinishLine(size_t end, size_t line_start, size_t field_start,
                  size_t nf, std::string_view& line, std::string_view* fields,
                  size_t max_fields, size_t& total) {
    pos_ = end + 1;
    if (end > line_start && data_[end - 1] == '\r') --end;
    if (end == line_start || data_[line_start] == '#') return false;
    ++line_number_;
    line = data_.substr(line_start, end - line_start);
    // Delimiters were all at positions < end (a stripped '\r' cannot be a
    // delimiter), so the final field runs from the last one to `end`; when
    // the '\r' immediately follows a delimiter the field is empty, exactly
    // as SplitFields sees after the strip.
    if (nf < max_fields) {
      fields[nf] = data_.substr(field_start, end - field_start);
    }
    total = nf + 1;
    return true;
  }

  std::string_view data_;
  char delim_;
  size_t pos_ = 0;
  uint64_t line_number_ = 0;
  // Current 64-byte block: base offset, newline-position mask, and the
  // remaining (newline | delimiter) bits still to visit in order.
  size_t block_base_ = 0;
  bool block_loaded_ = false;
  uint64_t nl_mask_ = 0;
  uint64_t combined_ = 0;
};

}  // namespace commsig::ingest

#endif  // COMMSIG_INGEST_ROW_SCANNER_H_
