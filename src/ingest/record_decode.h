#ifndef COMMSIG_INGEST_RECORD_DECODE_H_
#define COMMSIG_INGEST_RECORD_DECODE_H_

// Format-level record decoding shared between the serial readers
// (data/trace_io, data/netflow, graph/graph_io, core/signature_io) and the
// parallel ingestion pipeline (ingest/pipeline). Accept/reject decisions and
// rejection detail strings live in exactly one place, which is what makes
// the pipeline's bit-identical-to-serial guarantee checkable rather than
// aspirational: both paths cannot drift apart without this file changing.

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/interner.h"
#include "data/netflow.h"
#include "robust/record_errors.h"

namespace commsig::ingest {

/// A rejected row/record: the reason plus the exact detail string the
/// serial readers have always produced (HandleBadRecord takes both).
struct RowReject {
  RecordErrorReason reason = RecordErrorReason::kBadField;
  std::string detail;
};

/// One decoded trace CSV row. The monotonic-time check is the caller's —
/// it needs cross-row state — but `time_text` is retained so the caller can
/// build the historical "time <raw> precedes <last>" detail verbatim.
struct TraceRow {
  std::string_view src;
  std::string_view dst;
  std::string_view time_text;
  uint64_t time = 0;
  double weight = 0.0;
};

/// Validates one trace CSV row already split into `count` total fields, the
/// first min(count, 4) of which are stored in `fields`. Returns false and
/// fills `reject` on a malformed row. Check order (field count, empty
/// labels, time, weight, finiteness, positivity) matches the serial reader.
inline bool DecodeTraceRow(const std::string_view* fields, size_t count,
                           TraceRow& row, RowReject& reject) {
  if (count != 4) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "trace row needs 4 fields, got ";
    reject.detail += std::to_string(count);
    return false;
  }
  if (fields[0].empty() || fields[1].empty()) {
    reject.reason = RecordErrorReason::kZeroNode;
    reject.detail = "empty node label";
    return false;
  }
  if (fields[2].empty()) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "empty number";
    return false;
  }
  if (!TryParseUint(fields[2], row.time)) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "bad integer: ";
    reject.detail += fields[2];
    return false;
  }
  if (fields[3].empty()) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "empty number";
    return false;
  }
  if (!TryParseDouble(fields[3], row.weight)) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "bad double: ";
    reject.detail += fields[3];
    return false;
  }
  if (!std::isfinite(row.weight)) {
    reject.reason = RecordErrorReason::kNonFiniteWeight;
    reject.detail = "weight ";
    reject.detail += fields[3];
    return false;
  }
  if (row.weight <= 0.0) {
    reject.reason = RecordErrorReason::kNonPositiveWeight;
    reject.detail = "non-positive weight ";
    reject.detail += fields[3];
    return false;
  }
  row.src = fields[0];
  row.dst = fields[1];
  row.time_text = fields[2];
  return true;
}

/// One decoded edge-list CSV row.
struct EdgeRow {
  std::string_view src;
  std::string_view dst;
  double weight = 0.0;
};

inline bool DecodeEdgeRow(const std::string_view* fields, size_t count,
                          EdgeRow& row, RowReject& reject) {
  if (count != 3) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "edge row needs 3 fields, got ";
    reject.detail += std::to_string(count);
    return false;
  }
  if (fields[0].empty() || fields[1].empty()) {
    reject.reason = RecordErrorReason::kZeroNode;
    reject.detail = "empty node label";
    return false;
  }
  if (fields[2].empty()) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "empty number";
    return false;
  }
  if (!TryParseDouble(fields[2], row.weight)) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "bad double: ";
    reject.detail += fields[2];
    return false;
  }
  if (!std::isfinite(row.weight)) {
    reject.reason = RecordErrorReason::kNonFiniteWeight;
    reject.detail = "weight ";
    reject.detail += fields[2];
    return false;
  }
  if (row.weight <= 0.0) {
    reject.reason = RecordErrorReason::kNonPositiveWeight;
    reject.detail = "non-positive weight ";
    reject.detail += fields[2];
    return false;
  }
  row.src = fields[0];
  row.dst = fields[1];
  return true;
}

/// Signature-set rows come in two accepted shapes: a signature entry and the
/// `owner,,anything` empty-signature marker (the marker's weight field is
/// not validated — it never was).
enum class SignatureRowKind { kEntry, kMarker, kReject };

struct SignatureRow {
  std::string_view owner;
  std::string_view member;
  double weight = 0.0;
};

inline SignatureRowKind DecodeSignatureRow(const std::string_view* fields,
                                           size_t count, SignatureRow& row,
                                           RowReject& reject) {
  if (count != 3) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "signature row needs 3 fields, got ";
    reject.detail += std::to_string(count);
    return SignatureRowKind::kReject;
  }
  if (fields[0].empty()) {
    reject.reason = RecordErrorReason::kZeroNode;
    reject.detail = "empty owner label";
    return SignatureRowKind::kReject;
  }
  row.owner = fields[0];
  if (fields[1].empty()) return SignatureRowKind::kMarker;
  if (fields[2].empty()) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "empty number";
    return SignatureRowKind::kReject;
  }
  if (!TryParseDouble(fields[2], row.weight)) {
    reject.reason = RecordErrorReason::kBadField;
    reject.detail = "bad double: ";
    reject.detail += fields[2];
    return SignatureRowKind::kReject;
  }
  if (!std::isfinite(row.weight)) {
    reject.reason = RecordErrorReason::kNonFiniteWeight;
    reject.detail = "weight ";
    reject.detail += fields[2];
    return SignatureRowKind::kReject;
  }
  if (row.weight <= 0.0) {
    reject.reason = RecordErrorReason::kNonPositiveWeight;
    reject.detail = "non-positive weight ";
    reject.detail += fields[2];
    return SignatureRowKind::kReject;
  }
  row.member = fields[1];
  return SignatureRowKind::kEntry;
}

/// Big-endian (network order) field readers shared by the NetFlow reader
/// and the pipeline's packet framer.
inline uint16_t ReadU16Be(const unsigned char* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

inline uint32_t ReadU32Be(const unsigned char* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

/// Decodes one standard 48-byte NetFlow v5 record; `unix_secs` comes from
/// the enclosing packet header.
inline NetflowV5Record DecodeNetflowRecord(const unsigned char* rec,
                                           uint32_t unix_secs) {
  NetflowV5Record r;
  r.src_addr = ReadU32Be(rec);
  r.dst_addr = ReadU32Be(rec + 4);
  // rec+8: nexthop; rec+12: input/output ifindex.
  r.packets = ReadU32Be(rec + 16);
  r.octets = ReadU32Be(rec + 20);
  // rec+24: first; rec+28: last (sysuptime ms).
  r.src_port = ReadU16Be(rec + 32);
  r.dst_port = ReadU16Be(rec + 34);
  // rec+36: pad; rec+37: tcp_flags.
  r.protocol = rec[38];
  r.unix_secs = unix_secs;
  return r;
}

/// Applies NetflowReadOptions to one record. Returns false when the record
/// is silently skipped (protocol filter, non-positive weight); on true,
/// `weight` holds the event weight under the configured weighting.
inline bool NetflowEventWeight(const NetflowV5Record& r,
                               const NetflowReadOptions& options,
                               double& weight) {
  if (options.protocol_filter != 0 &&
      r.protocol != options.protocol_filter) {
    return false;
  }
  weight = 1.0;
  switch (options.weighting) {
    case NetflowWeighting::kFlows:
      weight = 1.0;
      break;
    case NetflowWeighting::kPackets:
      weight = static_cast<double>(r.packets);
      break;
    case NetflowWeighting::kOctets:
      weight = static_cast<double>(r.octets);
      break;
  }
  return weight > 0.0;
}

/// Formats an IPv4 address (host byte order) as dotted decimal into `buf`
/// (at least 16 bytes) and returns the length. Byte-identical output to
/// Ipv4ToString without the snprintf format-machinery cost.
inline size_t FormatIpv4(uint32_t addr, char* buf) {
  char* p = buf;
  for (int shift = 24;; shift -= 8) {
    const unsigned v = (addr >> shift) & 0xff;
    if (v >= 100) {
      *p++ = static_cast<char>('0' + v / 100);
      *p++ = static_cast<char>('0' + (v / 10) % 10);
      *p++ = static_cast<char>('0' + v % 10);
    } else if (v >= 10) {
      *p++ = static_cast<char>('0' + v / 10);
      *p++ = static_cast<char>('0' + v % 10);
    } else {
      *p++ = static_cast<char>('0' + v);
    }
    if (shift == 0) break;
    *p++ = '.';
  }
  return static_cast<size_t>(p - buf);
}

/// Memoizes dotted-decimal interning of IPv4 addresses: formatting, hashing
/// and the interner probe happen once per distinct address instead of once
/// per flow record. Open-addressed on the raw 32-bit address; a hot lookup
/// is one multiply-mix and usually one compare. Insertion order tracks the
/// record stream, so interner id assignment is unchanged.
class Ipv4LabelCache {
 public:
  NodeId Intern(uint32_t addr, Interner& interner) {
    if (table_.empty()) table_.resize(kInitialSlots);
    size_t mask = table_.size() - 1;
    size_t i = Mix(addr) & mask;
    while (true) {
      const Entry& e = table_[i];
      if (e.id == kInvalidNode) break;
      if (e.addr == addr) return e.id;
      i = (i + 1) & mask;
    }
    char buf[16];
    const std::string_view label(buf, FormatIpv4(addr, buf));
    const NodeId id = interner.InternPrehashed(label, Interner::HashOf(label));
    table_[i] = Entry{addr, id};
    if (++size_ * 10 >= table_.size() * 7) Grow();
    return id;
  }

 private:
  static constexpr size_t kInitialSlots = 1024;

  struct Entry {
    uint32_t addr = 0;
    NodeId id = kInvalidNode;  // kInvalidNode marks an empty slot
  };

  static size_t Mix(uint32_t addr) {
    uint64_t h = static_cast<uint64_t>(addr) * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(h >> 32);
  }

  void Grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{});
    const size_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.id == kInvalidNode) continue;
      size_t i = Mix(e.addr) & mask;
      while (table_[i].id != kInvalidNode) i = (i + 1) & mask;
      table_[i] = e;
    }
  }

  std::vector<Entry> table_;
  size_t size_ = 0;
};

}  // namespace commsig::ingest

#endif  // COMMSIG_INGEST_RECORD_DECODE_H_
