#ifndef COMMSIG_INGEST_RECORD_BATCH_H_
#define COMMSIG_INGEST_RECORD_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "robust/record_errors.h"

namespace commsig::ingest {

/// A label slice inside a batch's label arena, with its interner hash
/// precomputed by the parse worker so the serial merge stage only probes.
struct LabelRef {
  uint32_t offset = 0;
  uint32_t len = 0;
  uint64_t hash = 0;
};

/// "No label here" marker for ParsedRecord fields (the signature reader's
/// `owner,,anything` empty-signature rows have no member label).
inline constexpr uint32_t kNoLabel = 0xffffffffu;

/// One decoded, validated record. `src`/`dst` index into IngestBatch::labels
/// (chunk-deduplicated, first-reference order). CSV edge rows leave `time`
/// 0; signature marker rows leave `dst` kNoLabel. `rel_line` is the
/// chunk-relative data-line number (CSV formats), kept so merge-time
/// rejections (monotonic-time regressions) report the exact global line the
/// serial reader would have.
struct ParsedRecord {
  uint32_t src = kNoLabel;
  uint32_t dst = kNoLabel;
  uint32_t rel_line = 0;
  uint64_t time = 0;
  double weight = 0.0;
};

/// A row/packet the parse worker (or framer) decided is malformed. The
/// worker must not apply the error policy itself — kFail aborts and budget
/// exhaustion are decided in global stream order — so it records the
/// candidate and the merge stage replays robust_internal::HandleBadRecord
/// verbatim. `before_record` anchors the reject in stream order: it fires
/// after `before_record` accepted records of the same batch have been
/// merged. `position` is the chunk-relative data-line number for CSV
/// formats and the absolute byte offset for NetFlow.
struct RejectCandidate {
  uint32_t before_record = 0;
  RecordErrorReason reason = RecordErrorReason::kBadField;
  uint64_t position = 0;
  std::string detail;
};

/// One framed NetFlow packet inside RawChunk::data: `count` standard
/// 48-byte record bodies starting at `body_offset`, exported at
/// `unix_secs` (already validated by the framer's header walk).
struct PacketRef {
  uint32_t body_offset = 0;
  uint32_t count = 0;
  uint32_t unix_secs = 0;
};

/// A framing-level rejection (bad header, truncation, header timestamp
/// regression), anchored before the packet that would have followed it.
struct FramingReject {
  uint32_t before_packet = 0;
  RecordErrorReason reason = RecordErrorReason::kBadMagic;
  uint64_t position = 0;  // absolute byte offset
  std::string detail;
};

/// One framed unit of raw input, cut on record boundaries by the serial
/// framer stage: a run of whole CSV lines, or a run of whole NetFlow packet
/// bodies plus their descriptors. Buffers are reused across the pipeline
/// (Clear keeps capacity), so steady-state framing does no allocation.
struct RawChunk {
  uint64_t seq = 0;
  std::string data;
  std::vector<PacketRef> packets;          // NetFlow only
  std::vector<FramingReject> framing_rejects;  // NetFlow only

  void Clear() {
    data.clear();
    packets.clear();
    framing_rejects.clear();
  }
};

/// One parse worker's decoded output for one chunk, in chunk order:
/// validated records, reject candidates, and a deduplicated label arena.
/// Labels appear in first-reference order (the order the serial reader
/// would first intern them), each with its precomputed hash, so the merge
/// stage interns each distinct chunk label exactly once and translates
/// records through the per-batch id map. `time_text` (filled only when the
/// merge needs raw timestamp text for monotonic-regression details) slices
/// the label arena per accepted record.
struct IngestBatch {
  uint64_t seq = 0;
  std::vector<ParsedRecord> records;
  std::vector<RejectCandidate> rejects;
  std::string label_data;
  std::vector<LabelRef> labels;
  std::vector<LabelRef> time_text;
  uint64_t data_lines = 0;

  void Clear() {
    records.clear();
    rejects.clear();
    label_data.clear();
    labels.clear();
    time_text.clear();
    data_lines = 0;
  }
};

}  // namespace commsig::ingest

#endif  // COMMSIG_INGEST_RECORD_BATCH_H_
