#ifndef COMMSIG_INGEST_SPSC_QUEUE_H_
#define COMMSIG_INGEST_SPSC_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace commsig::ingest {

/// Bounded single-producer/single-consumer queue connecting two pipeline
/// stages, with blocking back-pressure as the default and a non-blocking
/// TryPush for the shed policy.
///
/// Items flow at batch granularity (a framed chunk or a decoded record
/// batch, thousands of records each), so a Mutex/CondVar ring is the right
/// tradeoff: the lock is taken a few thousand times per second, far below
/// contention territory, and in exchange the queue is trivially correct
/// under the thread-safety analysis and TSan. A lock-free ring would save
/// nanoseconds per *batch* while giving up both.
///
/// Stall counters record every time a stage had to sleep (producer: queue
/// full; consumer: queue empty). They are the pipeline's built-in
/// bottleneck profile — a hot parse stage shows up as producer stalls on
/// the framer and consumer stalls on the merge — and are exported as
/// ingest/producer_stalls and ingest/consumer_stalls.
template <typename T>
class BoundedSpscQueue {
 public:
  explicit BoundedSpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  BoundedSpscQueue(const BoundedSpscQueue&) = delete;
  BoundedSpscQueue& operator=(const BoundedSpscQueue&) = delete;

  /// Blocks until space is available, then enqueues. Returns false (and
  /// drops `item`) if the queue was closed before space appeared.
  bool Push(T item) COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (size_ == capacity_ && !closed_) {
      producer_stalls_.fetch_add(1, std::memory_order_relaxed);
      not_full_.Wait(mu_, [this]() COMMSIG_REQUIRES(mu_) {
        return size_ < capacity_ || closed_;
      });
    }
    if (closed_) return false;
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push for the shed policy. On a full (or closed) queue
  /// returns false and leaves `item` untouched, so the caller can count and
  /// recycle the dropped payload.
  bool TryPush(T& item) COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || size_ == capacity_) return false;
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained.
  /// Every item pushed before Close() is still delivered.
  bool Pop(T& out) COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (size_ == 0 && !closed_) {
      consumer_stalls_.fetch_add(1, std::memory_order_relaxed);
      not_empty_.Wait(
          mu_, [this]() COMMSIG_REQUIRES(mu_) { return size_ > 0 || closed_; });
    }
    if (size_ == 0) return false;  // closed and drained
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    not_full_.NotifyOne();
    return true;
  }

  /// Non-blocking pop; false when empty (even if more items are coming).
  bool TryPop(T& out) COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (size_ == 0) return false;
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    not_full_.NotifyOne();
    return true;
  }

  /// Marks the queue closed and wakes both sides. Pushes fail from here on;
  /// pops drain the remaining items then return false. Idempotent.
  void Close() COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  /// Racy size snapshot for stats endpoints; exact under the lock.
  size_t ApproxSize() const COMMSIG_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return size_;
  }

  size_t capacity() const { return capacity_; }

  /// Times the producer blocked on a full queue / the consumer on an empty
  /// one. Monotone; readable from any thread.
  uint64_t producer_stalls() const {
    return producer_stalls_.load(std::memory_order_relaxed);
  }
  uint64_t consumer_stalls() const {
    return consumer_stalls_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> ring_ COMMSIG_GUARDED_BY(mu_);
  size_t head_ COMMSIG_GUARDED_BY(mu_) = 0;
  size_t size_ COMMSIG_GUARDED_BY(mu_) = 0;
  bool closed_ COMMSIG_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> producer_stalls_{0};
  std::atomic<uint64_t> consumer_stalls_{0};
};

}  // namespace commsig::ingest

#endif  // COMMSIG_INGEST_SPSC_QUEUE_H_
