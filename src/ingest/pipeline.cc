#include "ingest/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "graph/graph_builder.h"
#include "ingest/chunker.h"
#include "ingest/record_batch.h"
#include "ingest/record_decode.h"
#include "ingest/row_scanner.h"
#include "ingest/spsc_queue.h"
#include "obs/obs.h"
#include "obs/window_stats.h"

namespace commsig::ingest {

namespace {

constexpr size_t kNetflowRecordBytes = 48;

/// Row grammar a parse worker applies to its chunks.
enum class RowFormat { kTrace, kEdge, kSignature, kNetflow };

// ---------------------------------------------------------------------------
// Worker-local scratch: chunk-level label deduplication.
// ---------------------------------------------------------------------------

/// Open-addressed map from label bytes to an index in the batch's label
/// arena. Lives in the worker and is reset per chunk; the arena itself is
/// in the batch so it travels to the merge stage. Labels enter the arena in
/// first-reference order — the order the serial reader would first intern
/// them — which is what lets the merge's bulk path intern arena-order.
class ChunkLabelTable {
 public:
  void Reset() {
    if (!slots_.empty()) std::fill(slots_.begin(), slots_.end(), Slot{});
    count_ = 0;
  }

  uint32_t Add(std::string_view label, IngestBatch& batch) {
    if (slots_.empty()) slots_.assign(kInitialSlots, Slot{});
    const uint64_t hash = Interner::HashOf(label);
    // Probe index uses the low hash bits, the in-slot tag the high bits, so
    // a tag hit carries real evidence beyond landing in the same bucket.
    const uint32_t tag = static_cast<uint32_t>(hash >> 32);
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.idx == kNoLabel) break;
      if (slot.tag == tag) {
        const LabelRef& ref = batch.labels[slot.idx];
        if (ref.hash == hash && ref.len == label.size() &&
            std::memcmp(batch.label_data.data() + ref.offset, label.data(),
                        label.size()) == 0) {
          return slot.idx;
        }
      }
      i = (i + 1) & mask;
    }
    const uint32_t idx = static_cast<uint32_t>(batch.labels.size());
    batch.labels.push_back({static_cast<uint32_t>(batch.label_data.size()),
                            static_cast<uint32_t>(label.size()), hash});
    batch.label_data.append(label);
    slots_[i] = Slot{tag, idx};
    if (++count_ * 10 >= slots_.size() * 7) Grow(batch);
    return idx;
  }

 private:
  static constexpr size_t kInitialSlots = 4096;

  /// One probe entry: hash tag + label-arena index. The tag rejects nearly
  /// every non-matching slot from the probe cache line alone, without the
  /// dependent load into batch.labels / label_data; `idx == kNoLabel`
  /// marks an empty slot.
  struct Slot {
    uint32_t tag = 0;
    uint32_t idx = kNoLabel;
  };

  void Grow(const IngestBatch& batch) {
    std::vector<Slot> fresh(slots_.size() * 2, Slot{});
    const size_t mask = fresh.size() - 1;
    for (const Slot& slot : slots_) {
      if (slot.idx == kNoLabel) continue;
      const uint64_t hash = batch.labels[slot.idx].hash;
      size_t i = static_cast<size_t>(hash) & mask;
      while (fresh[i].idx != kNoLabel) i = (i + 1) & mask;
      fresh[i] = slot;
    }
    slots_ = std::move(fresh);
  }

  std::vector<Slot> slots_;
  size_t count_ = 0;
};

/// Per-chunk memo of IPv4 address -> label-arena index: each distinct
/// address is formatted and hashed once per chunk.
class ChunkAddrMemo {
 public:
  void Reset() {
    if (!entries_.empty()) {
      std::fill(entries_.begin(), entries_.end(), Entry{});
    }
    count_ = 0;
  }

  uint32_t Add(uint32_t addr, IngestBatch& batch) {
    if (entries_.empty()) entries_.assign(kInitialSlots, Entry{});
    const size_t mask = entries_.size() - 1;
    size_t i = Mix(addr) & mask;
    while (true) {
      const Entry& e = entries_[i];
      if (e.idx == kNoLabel) break;
      if (e.addr == addr) return e.idx;
      i = (i + 1) & mask;
    }
    char buf[16];
    const std::string_view label(buf, FormatIpv4(addr, buf));
    const uint32_t idx = static_cast<uint32_t>(batch.labels.size());
    batch.labels.push_back({static_cast<uint32_t>(batch.label_data.size()),
                            static_cast<uint32_t>(label.size()),
                            Interner::HashOf(label)});
    batch.label_data.append(label);
    entries_[i] = Entry{addr, idx};
    if (++count_ * 10 >= entries_.size() * 7) Grow();
    return idx;
  }

 private:
  static constexpr size_t kInitialSlots = 2048;

  struct Entry {
    uint32_t addr = 0;
    uint32_t idx = kNoLabel;  // kNoLabel marks an empty slot (addr 0 valid)
  };

  static size_t Mix(uint32_t addr) {
    return static_cast<size_t>(
        (static_cast<uint64_t>(addr) * 0x9e3779b97f4a7c15ull) >> 32);
  }

  void Grow() {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.size() * 2, Entry{});
    const size_t mask = entries_.size() - 1;
    for (const Entry& e : old) {
      if (e.idx == kNoLabel) continue;
      size_t i = Mix(e.addr) & mask;
      while (entries_[i].idx != kNoLabel) i = (i + 1) & mask;
      entries_[i] = e;
    }
  }

  std::vector<Entry> entries_;
  size_t count_ = 0;
};

// ---------------------------------------------------------------------------
// Parse-worker decode: RawChunk -> IngestBatch.
// ---------------------------------------------------------------------------

void AppendTimeText(std::string_view text, IngestBatch& batch) {
  batch.time_text.push_back({static_cast<uint32_t>(batch.label_data.size()),
                             static_cast<uint32_t>(text.size()), 0});
  batch.label_data.append(text);
}

void DecodeCsvChunk(RowFormat format, bool capture_time_text,
                    const RawChunk& chunk, IngestBatch& batch,
                    ChunkLabelTable& table) {
  table.Reset();
  FusedRowScanner scanner(chunk.data, ',');
  std::string_view line;
  std::string_view fields[4];
  size_t count = 0;
  const size_t max_fields = format == RowFormat::kTrace ? 4 : 3;
  while (scanner.Next(line, fields, max_fields, count)) {
    RowReject reject;
    ParsedRecord rec;
    rec.rel_line = static_cast<uint32_t>(scanner.line_number());
    switch (format) {
      case RowFormat::kTrace: {
        TraceRow row;
        if (!DecodeTraceRow(fields, count, row, reject)) break;
        rec.src = table.Add(row.src, batch);
        rec.dst = table.Add(row.dst, batch);
        rec.time = row.time;
        rec.weight = row.weight;
        if (capture_time_text) AppendTimeText(row.time_text, batch);
        batch.records.push_back(rec);
        continue;
      }
      case RowFormat::kEdge: {
        EdgeRow row;
        if (!DecodeEdgeRow(fields, count, row, reject)) break;
        rec.src = table.Add(row.src, batch);
        rec.dst = table.Add(row.dst, batch);
        rec.weight = row.weight;
        batch.records.push_back(rec);
        continue;
      }
      case RowFormat::kSignature: {
        SignatureRow row;
        const SignatureRowKind kind =
            DecodeSignatureRow(fields, count, row, reject);
        if (kind == SignatureRowKind::kReject) break;
        rec.src = table.Add(row.owner, batch);
        if (kind == SignatureRowKind::kEntry) {
          rec.dst = table.Add(row.member, batch);
          rec.weight = row.weight;
        }
        batch.records.push_back(rec);
        continue;
      }
      case RowFormat::kNetflow:
        continue;  // unreachable: NetFlow chunks use DecodeNetflowChunk
    }
    batch.rejects.push_back({static_cast<uint32_t>(batch.records.size()),
                             reject.reason, scanner.line_number(),
                             std::move(reject.detail)});
  }
  batch.data_lines = scanner.line_number();
}

void DecodeNetflowChunk(const NetflowReadOptions& options, RawChunk& chunk,
                        IngestBatch& batch, ChunkAddrMemo& memo) {
  memo.Reset();
  size_t next_reject = 0;
  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(chunk.data.data());
  for (size_t p = 0; p <= chunk.packets.size(); ++p) {
    while (next_reject < chunk.framing_rejects.size() &&
           chunk.framing_rejects[next_reject].before_packet == p) {
      FramingReject& fr = chunk.framing_rejects[next_reject];
      batch.rejects.push_back({static_cast<uint32_t>(batch.records.size()),
                               fr.reason, fr.position,
                               std::move(fr.detail)});
      ++next_reject;
    }
    if (p == chunk.packets.size()) break;
    const PacketRef& pk = chunk.packets[p];
    const unsigned char* body = data + pk.body_offset;
    for (uint32_t i = 0; i < pk.count; ++i) {
      const NetflowV5Record r =
          DecodeNetflowRecord(body + i * kNetflowRecordBytes, pk.unix_secs);
      double weight = 0.0;
      if (!NetflowEventWeight(r, options, weight)) continue;
      ParsedRecord rec;
      rec.src = memo.Add(r.src_addr, batch);
      rec.dst = memo.Add(r.dst_addr, batch);
      rec.time = r.unix_secs;
      rec.weight = weight;
      batch.records.push_back(rec);
    }
  }
}

// ---------------------------------------------------------------------------
// Merge stage: in-order batch consumption, serial interning, error policy.
// ---------------------------------------------------------------------------

struct MergeContext {
  MergeContext(Interner& interner_in, const IngestOptions& ingest_in)
      : interner(interner_in), ingest(ingest_in) {}

  Interner& interner;
  const IngestOptions& ingest;
  /// True for NetFlow (byte offsets, Corruption on kFail); false for CSV
  /// (data-line numbers offset by line_base, InvalidArgument on kFail).
  bool absolute_positions = false;
  /// Trace-CSV monotonic-time enforcement happens here: it needs the
  /// cross-chunk last-accepted-time state.
  bool monotonic = false;

  uint64_t errors = 0;
  uint64_t line_base = 0;
  uint64_t last_time = 0;
  bool have_last_time = false;
  std::vector<NodeId> id_map;
};

std::string_view LabelView(const IngestBatch& batch, const LabelRef& ref) {
  return std::string_view(batch.label_data.data() + ref.offset, ref.len);
}

NodeId LazyIntern(MergeContext& ctx, const IngestBatch& batch, uint32_t idx) {
  NodeId& slot = ctx.id_map[idx];
  if (slot == kInvalidNode) {
    const LabelRef& ref = batch.labels[idx];
    slot = ctx.interner.InternPrehashed(LabelView(batch, ref), ref.hash);
  }
  return slot;
}

/// Merges one batch into the sink in exact stream order. The fast path
/// (no reject candidates, no merge-side monotonic check) bulk-interns the
/// deduplicated label arena and translates records through the id map. The
/// slow path replays HandleBadRecord interleaved with records and interns
/// lazily at record-accept time, so an abort (kFail, exhausted budget)
/// never interns labels past the abort point and a merge-rejected row's
/// labels are never interned — exactly the serial readers' behaviour.
template <typename Sink>
Status MergeBatch(MergeContext& ctx, IngestBatch& batch, Sink& sink) {
  if (batch.rejects.empty() && !ctx.monotonic) {
    constexpr size_t kPrefetchAhead = 8;
    ctx.id_map.resize(batch.labels.size());
    for (size_t i = 0; i < batch.labels.size(); ++i) {
      if (i + kPrefetchAhead < batch.labels.size()) {
        ctx.interner.Prefetch(batch.labels[i + kPrefetchAhead].hash);
      }
      ctx.id_map[i] = ctx.interner.InternPrehashed(
          LabelView(batch, batch.labels[i]), batch.labels[i].hash);
    }
    if constexpr (requires { sink.EmitBulk(batch.records, ctx.id_map); }) {
      sink.EmitBulk(batch.records, ctx.id_map);
    } else {
      for (const ParsedRecord& r : batch.records) {
        sink.Emit(ctx.id_map[r.src],
                  r.dst == kNoLabel ? kInvalidNode : ctx.id_map[r.dst],
                  r.time, r.weight);
      }
    }
    ctx.line_base += batch.data_lines;
    return Status::OK();
  }

  ctx.id_map.assign(batch.labels.size(), kInvalidNode);
  size_t next_reject = 0;
  for (size_t i = 0; i <= batch.records.size(); ++i) {
    while (next_reject < batch.rejects.size() &&
           batch.rejects[next_reject].before_record == i) {
      RejectCandidate& rc = batch.rejects[next_reject];
      const uint64_t position =
          ctx.absolute_positions ? rc.position : ctx.line_base + rc.position;
      Status s = robust_internal::HandleBadRecord(
          ctx.ingest, &ctx.errors, rc.reason, position, std::move(rc.detail),
          /*invalid_argument_on_fail=*/!ctx.absolute_positions);
      if (!s.ok()) return s;
      ++next_reject;
    }
    if (i == batch.records.size()) break;
    const ParsedRecord& r = batch.records[i];
    if (ctx.monotonic && ctx.have_last_time && r.time < ctx.last_time) {
      const LabelRef& tt = batch.time_text[i];
      std::string detail = "time ";
      detail.append(LabelView(batch, tt));
      detail += " precedes ";
      detail += std::to_string(ctx.last_time);
      Status s = robust_internal::HandleBadRecord(
          ctx.ingest, &ctx.errors, RecordErrorReason::kTimestampRegression,
          ctx.line_base + r.rel_line, std::move(detail),
          /*invalid_argument_on_fail=*/true);
      if (!s.ok()) return s;
      continue;
    }
    if (ctx.monotonic) {
      ctx.last_time = r.time;
      ctx.have_last_time = true;
    }
    const NodeId src = LazyIntern(ctx, batch, r.src);
    const NodeId dst =
        r.dst == kNoLabel ? kInvalidNode : LazyIntern(ctx, batch, r.dst);
    sink.Emit(src, dst, r.time, r.weight);
  }
  ctx.line_base += batch.data_lines;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The pipeline runner.
// ---------------------------------------------------------------------------

/// One parse worker's queue set and buffer pools. Every queue is SPSC:
/// framer -> worker (chunks), worker -> framer (chunk recycling),
/// worker -> merge (batches), merge -> worker (batch recycling).
struct WorkerLane {
  std::unique_ptr<BoundedSpscQueue<RawChunk*>> chunk_q;
  std::unique_ptr<BoundedSpscQueue<RawChunk*>> free_chunk_q;
  std::unique_ptr<BoundedSpscQueue<IngestBatch*>> batch_q;
  std::unique_ptr<BoundedSpscQueue<IngestBatch*>> free_batch_q;
  std::vector<std::unique_ptr<RawChunk>> chunk_pool;
  std::vector<std::unique_ptr<IngestBatch>> batch_pool;
};

/// Runs the staged pipeline over `path` and feeds merged records to `sink`
/// (devirtualized: one instantiation per sink type). Stage layout:
///
///   framer thread ──chunk_q[w]──► parse worker w ──batch_q[w]──► merge
///        ▲                                                         │
///        └───────── free queues recycle chunk/batch buffers ◄──────┘
///
/// Chunk `seq % workers` picks the lane, so each lane carries a monotone
/// subsequence of chunk seqs and the merge recovers global order with a
/// k-way minimum over lane heads — no reorder buffer. The merge thread is
/// the only one touching the interner, the error policy, budgets and the
/// sink; workers only decode into private batches. That split is what
/// makes the result bit-identical to the serial readers at any worker
/// count (under kBlock).
template <typename Sink>
Status RunPipeline(const std::string& path, RowFormat format,
                   Interner& interner, const PipelineOptions& options,
                   Sink& sink, PipelineStats* stats_out) {
  COMMSIG_SPAN("ingest/pipeline_read");
  const size_t workers =
      static_cast<size_t>(std::max(options.parse_workers, 1));
  const bool netflow = format == RowFormat::kNetflow;
  const bool monotonic_merge =
      options.ingest.require_monotonic_time && format == RowFormat::kTrace;

  Chunker chunker(path,
                  netflow ? ChunkFormat::kNetflowV5 : ChunkFormat::kCsvLines,
                  options.chunk_bytes,
                  netflow && options.ingest.require_monotonic_time);
  if (!chunker.status().ok()) return chunker.status();

  const size_t cap = std::max<size_t>(options.queue_capacity, 1);
  const size_t pool = cap + 2;
  std::vector<WorkerLane> lanes(workers);
  for (WorkerLane& lane : lanes) {
    lane.chunk_q = std::make_unique<BoundedSpscQueue<RawChunk*>>(cap);
    lane.free_chunk_q = std::make_unique<BoundedSpscQueue<RawChunk*>>(pool);
    lane.batch_q = std::make_unique<BoundedSpscQueue<IngestBatch*>>(cap);
    lane.free_batch_q = std::make_unique<BoundedSpscQueue<IngestBatch*>>(pool);
    for (size_t i = 0; i < pool; ++i) {
      lane.chunk_pool.push_back(std::make_unique<RawChunk>());
      RawChunk* chunk = lane.chunk_pool.back().get();
      lane.free_chunk_q->Push(chunk);
      lane.batch_pool.push_back(std::make_unique<IngestBatch>());
      IngestBatch* batch = lane.batch_pool.back().get();
      lane.free_batch_q->Push(batch);
    }
  }

  std::atomic<bool> abort{false};
  Status framer_status;  // written by the framer thread, read after join
  uint64_t chunks_framed = 0;
  uint64_t chunks_shed = 0;
  const bool shed = options.backpressure == BackpressurePolicy::kShed;

  std::thread framer([&] {
    RawChunk scratch;
    while (!abort.load(std::memory_order_relaxed)) {
      Result<bool> framed = chunker.Next(scratch);
      if (!framed.ok()) {
        framer_status = framed.status();
        break;
      }
      if (!*framed) break;
      WorkerLane& lane = lanes[scratch.seq % workers];
      if (!shed) {
        RawChunk* slot = nullptr;
        if (!lane.free_chunk_q->Pop(slot)) break;  // closed: aborting
        std::swap(*slot, scratch);
        if (!lane.chunk_q->Push(slot)) break;
        ++chunks_framed;
        continue;
      }
      // Shed policy: never block the IO stage. A full lane drops the whole
      // chunk (counted, reported as overload) — the stream stays live at
      // the cost of losing the serial-equivalence guarantee.
      RawChunk* slot = nullptr;
      bool delivered = false;
      if (lane.free_chunk_q->TryPop(slot)) {
        std::swap(*slot, scratch);
        if (lane.chunk_q->TryPush(slot)) {
          delivered = true;
        } else {
          // Lane full: reclaim the buffer (the free queue always has room
          // for every pooled chunk) and drop the payload.
          lane.free_chunk_q->Push(slot);
        }
      }
      if (delivered) {
        ++chunks_framed;
      } else {
        ++chunks_shed;
        if (options.degradation != nullptr) {
          options.degradation->ReportOverload("ingest queue full");
        }
      }
    }
    for (WorkerLane& lane : lanes) lane.chunk_q->Close();
  });

  std::vector<std::thread> worker_threads;
  worker_threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    worker_threads.emplace_back([&, w] {
      WorkerLane& lane = lanes[w];
      ChunkLabelTable table;
      ChunkAddrMemo memo;
      RawChunk* chunk = nullptr;
      while (lane.chunk_q->Pop(chunk)) {
        IngestBatch* batch = nullptr;
        if (!lane.free_batch_q->Pop(batch)) break;  // closed: aborting
        batch->Clear();
        batch->seq = chunk->seq;
        if (netflow) {
          DecodeNetflowChunk(options.netflow, *chunk, *batch, memo);
        } else {
          DecodeCsvChunk(format, monotonic_merge, *chunk, *batch, table);
        }
        lane.free_chunk_q->Push(chunk);  // room guaranteed (pool-sized)
        if (!lane.batch_q->Push(batch)) break;
      }
      lane.batch_q->Close();
    });
  }

  // Merge on the calling thread: k-way minimum-seq over lane heads. Each
  // lane yields a monotonically increasing subsequence of seqs, so the
  // smallest head is always the globally next batch (shed chunks leave
  // holes, which this handles for free).
  MergeContext ctx{interner, options.ingest};
  ctx.absolute_positions = netflow;
  ctx.monotonic = monotonic_merge;
  std::vector<IngestBatch*> heads(workers, nullptr);
  for (size_t w = 0; w < workers; ++w) {
    if (!lanes[w].batch_q->Pop(heads[w])) heads[w] = nullptr;
  }
  Status merge_status;
  uint64_t batches_merged = 0;
  uint64_t records_parsed = 0;
  while (true) {
    size_t best = workers;
    for (size_t w = 0; w < workers; ++w) {
      if (heads[w] != nullptr &&
          (best == workers || heads[w]->seq < heads[best]->seq)) {
        best = w;
      }
    }
    if (best == workers) break;
    IngestBatch* batch = heads[best];
    Status s = MergeBatch(ctx, *batch, sink);
    ++batches_merged;
    records_parsed += batch->records.size();
    COMMSIG_HISTOGRAM_OBSERVE("ingest/batch_records", batch->records.size());
    lanes[best].free_batch_q->Push(batch);  // room guaranteed
    if (!s.ok()) {
      merge_status = s;
      break;
    }
    if (!lanes[best].batch_q->Pop(heads[best])) heads[best] = nullptr;
  }

  if (!merge_status.ok()) {
    // Unwind the upstream stages: closing every queue fails their blocking
    // operations, so framer and workers exit promptly.
    abort.store(true, std::memory_order_relaxed);
    for (WorkerLane& lane : lanes) {
      lane.chunk_q->Close();
      lane.free_chunk_q->Close();
      lane.batch_q->Close();
      lane.free_batch_q->Close();
    }
  }
  framer.join();
  for (std::thread& t : worker_threads) t.join();

  PipelineStats stats;
  stats.chunks_framed = chunks_framed;
  stats.chunks_shed = chunks_shed;
  stats.batches_merged = batches_merged;
  stats.records_parsed = records_parsed;
  for (WorkerLane& lane : lanes) {
    stats.producer_stalls +=
        lane.chunk_q->producer_stalls() + lane.batch_q->producer_stalls();
    stats.consumer_stalls +=
        lane.chunk_q->consumer_stalls() + lane.batch_q->consumer_stalls();
  }
  COMMSIG_COUNTER_ADD("ingest/chunks_framed", stats.chunks_framed);
  if (stats.chunks_shed > 0) {
    COMMSIG_COUNTER_ADD("ingest/chunks_shed", stats.chunks_shed);
  }
  COMMSIG_COUNTER_ADD("ingest/batches_merged", stats.batches_merged);
  COMMSIG_COUNTER_ADD("ingest/records_parsed", stats.records_parsed);
  if (stats.producer_stalls > 0) {
    COMMSIG_COUNTER_ADD("ingest/producer_stalls", stats.producer_stalls);
  }
  if (stats.consumer_stalls > 0) {
    COMMSIG_COUNTER_ADD("ingest/consumer_stalls", stats.consumer_stalls);
  }
  COMMSIG_GAUGE_SET("ingest/parse_workers", static_cast<double>(workers));
  obs::WindowStatsAggregator::IngestRunStats run;
  run.parse_workers = workers;
  run.chunks_framed = stats.chunks_framed;
  run.chunks_shed = stats.chunks_shed;
  run.batches_merged = stats.batches_merged;
  run.records_parsed = stats.records_parsed;
  run.producer_stalls = stats.producer_stalls;
  run.consumer_stalls = stats.consumer_stalls;
  obs::WindowStatsAggregator::Global().RecordIngestRun(run);
  if (stats_out != nullptr) *stats_out = stats;

  if (!merge_status.ok()) return merge_status;
  return framer_status;
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

struct EventsSink {
  std::vector<TraceEvent>& out;
  void Emit(NodeId src, NodeId dst, uint64_t time, double weight) {
    out.push_back({src, dst, time, weight});
  }
  /// Merge fast path: one resize per batch, then straight-line stores —
  /// the per-record capacity check and growth branch of push_back are
  /// measurable at millions of events per second.
  void EmitBulk(const std::vector<ParsedRecord>& records,
                const std::vector<NodeId>& id_map) {
    const size_t old = out.size();
    out.resize(old + records.size());
    TraceEvent* next = out.data() + old;
    for (const ParsedRecord& r : records) {
      *next++ = {id_map[r.src],
                 r.dst == kNoLabel ? kInvalidNode : id_map[r.dst], r.time,
                 r.weight};
    }
  }
};

struct EdgeRowsSink {
  std::vector<CommGraph::FlatEdge> rows;
  void Emit(NodeId src, NodeId dst, uint64_t /*time*/, double weight) {
    rows.push_back({src, dst, weight});
  }
};

struct SignatureRowsSink {
  std::vector<NodeId> order;
  std::unordered_map<NodeId, std::vector<Signature::Entry>> entries;
  void Emit(NodeId owner, NodeId member, uint64_t /*time*/, double weight) {
    if (!entries.contains(owner)) {
      order.push_back(owner);
      entries.emplace(owner, std::vector<Signature::Entry>{});
    }
    if (member == kInvalidNode) return;  // empty-signature marker row
    entries[owner].push_back({member, weight});
  }
};

// ---------------------------------------------------------------------------
// Sharded windower stage.
// ---------------------------------------------------------------------------

/// A block of merged events in flight to one window shard.
struct EventBlock {
  std::vector<TraceEvent> events;
};

/// The merge-side sink that routes accepted events into per-shard windower
/// stages through bounded SPSC queues. Sharding is by `src % shards`: every
/// observation of a (src, dst) pair lands in one shard in stream order, so
/// per-shard aggregation sums each edge's weights in exactly the serial
/// order and the final per-window graphs are bit-identical to
/// TraceWindower::Split on the serially read events.
///
/// While ingestion runs, shard threads pre-bucket window counts and store
/// their events. Validation and aggregation need the final node-universe
/// size, so they run in FinishAndBuild after the merge completes.
class ShardedWindowSink {
 public:
  ShardedWindowSink(size_t shards, size_t queue_capacity,
                    uint64_t window_length, uint64_t start_time)
      : shards_(std::max<size_t>(shards, 1)),
        window_length_(std::max<uint64_t>(window_length, 1)),
        start_time_(start_time),
        states_(shards_) {
    const size_t pool = queue_capacity + 2;
    for (size_t s = 0; s < shards_; ++s) {
      ShardState& st = states_[s];
      st.queue =
          std::make_unique<BoundedSpscQueue<EventBlock*>>(queue_capacity);
      st.free_queue = std::make_unique<BoundedSpscQueue<EventBlock*>>(pool);
      for (size_t i = 0; i < pool; ++i) {
        st.pool.push_back(std::make_unique<EventBlock>());
        EventBlock* block = st.pool.back().get();
        st.free_queue->Push(block);
      }
      if (!st.free_queue->Pop(st.filling)) st.filling = nullptr;
      st.thread = std::thread([this, s] { ShardLoop(s); });
    }
  }

  ~ShardedWindowSink() { Shutdown(); }

  void Emit(NodeId src, NodeId dst, uint64_t time, double weight) {
    ShardState& st = states_[src % shards_];
    st.filling->events.push_back({src, dst, time, weight});
    if (st.filling->events.size() >= kBlockEvents) Flush(st);
  }

  /// Flushes remainders, stops the shard threads, and assembles the final
  /// window graphs (parallelized over shards, then over windows).
  std::vector<CommGraph> FinishAndBuild(size_t num_nodes,
                                        NodeId bipartite_left_size) {
    num_nodes_.store(num_nodes, std::memory_order_release);
    Shutdown();

    size_t num_windows = 0;
    for (ShardState& st : states_) {
      num_windows = std::max(num_windows, st.num_windows);
    }

    // Per-shard validation + aggregation (the per-pair weight sums), then
    // per-window assembly from the disjoint shard aggregates.
    ThreadPool pool(std::min(shards_, static_cast<size_t>(8)));
    ParallelFor(pool, shards_, [&](size_t s) { AggregateShard(s); });

    uint64_t dropped = 0;
    std::vector<uint64_t> window_events(num_windows, 0);
    for (ShardState& st : states_) {
      dropped += st.dropped;
      for (size_t w = 0; w < st.events_per_window.size(); ++w) {
        window_events[w] += st.events_per_window[w];
      }
    }

    std::vector<CommGraph> graphs(num_windows);
    ParallelFor(pool, num_windows, [&](size_t w) {
      GraphBuilder builder(num_nodes);
      builder.SetBipartiteLeftSize(bipartite_left_size);
      size_t total = 0;
      for (ShardState& st : states_) {
        if (w < st.aggregated.size()) total += st.aggregated[w].size();
      }
      builder.Reserve(total);
      for (ShardState& st : states_) {
        if (w >= st.aggregated.size()) continue;
        for (const CommGraph::FlatEdge& e : st.aggregated[w]) {
          builder.AddEdge(e.src, e.dst, e.weight);
        }
      }
      graphs[w] = std::move(builder).Build();
    });

    // Same accounting the serial windower emits, so dashboards can't tell
    // the paths apart.
    if (dropped > 0) {
      COMMSIG_COUNTER_ADD("robust/windower_dropped_events", dropped);
    }
    COMMSIG_COUNTER_ADD("windower/windows_built", num_windows);
    for (size_t w = 0; w < num_windows; ++w) {
      COMMSIG_HISTOGRAM_OBSERVE("windower/window_events", window_events[w]);
    }
    return graphs;
  }

  uint64_t producer_stalls() const {
    uint64_t total = 0;
    for (const ShardState& st : states_) total += st.queue->producer_stalls();
    return total;
  }
  uint64_t consumer_stalls() const {
    uint64_t total = 0;
    for (const ShardState& st : states_) total += st.queue->consumer_stalls();
    return total;
  }

 private:
  static constexpr size_t kBlockEvents = 4096;

  struct ShardState {
    std::unique_ptr<BoundedSpscQueue<EventBlock*>> queue;
    std::unique_ptr<BoundedSpscQueue<EventBlock*>> free_queue;
    std::vector<std::unique_ptr<EventBlock>> pool;
    EventBlock* filling = nullptr;
    std::thread thread;

    // Shard-thread state (owned by the shard thread until join).
    std::vector<TraceEvent> events;
    std::vector<size_t> window_counts;
    size_t num_windows = 0;

    // Finish-stage results.
    uint64_t dropped = 0;
    std::vector<uint64_t> events_per_window;
    std::vector<std::vector<CommGraph::FlatEdge>> aggregated;
  };

  size_t WindowOf(uint64_t time) const {
    if (time < start_time_) return static_cast<size_t>(-1);
    return static_cast<size_t>((time - start_time_) / window_length_);
  }

  void Flush(ShardState& st) {
    if (st.filling == nullptr || st.filling->events.empty()) return;
    st.queue->Push(st.filling);
    if (!st.free_queue->Pop(st.filling)) st.filling = nullptr;
  }

  void ShardLoop(size_t s) {
    ShardState& st = states_[s];
    EventBlock* block = nullptr;
    while (st.queue->Pop(block)) {
      for (const TraceEvent& e : block->events) {
        const size_t w = WindowOf(e.time);
        if (w != static_cast<size_t>(-1)) {
          if (w + 1 > st.num_windows) {
            st.num_windows = w + 1;
            st.window_counts.resize(st.num_windows, 0);
          }
          ++st.window_counts[w];
          st.events.push_back(e);
        }
      }
      block->events.clear();
      st.free_queue->Push(block);
    }
  }

  /// Validation (TryAddEdge's exact predicate) + per-window, per-pair
  /// aggregation for one shard. Weights of one pair sum in stream order —
  /// the stable sort preserves it — which is the bit-identity argument.
  void AggregateShard(size_t s) {
    ShardState& st = states_[s];
    const size_t num_nodes = num_nodes_.load(std::memory_order_acquire);
    st.events_per_window.assign(st.num_windows, 0);
    std::vector<std::vector<CommGraph::FlatEdge>> staged(st.num_windows);
    for (size_t w = 0; w < st.num_windows; ++w) {
      staged[w].reserve(st.window_counts[w]);
    }
    for (const TraceEvent& e : st.events) {
      const size_t w = WindowOf(e.time);
      if (e.src >= num_nodes || e.dst >= num_nodes ||
          !std::isfinite(e.weight) || e.weight <= 0.0) {
        ++st.dropped;
        continue;
      }
      staged[w].push_back({e.src, e.dst, e.weight});
      ++st.events_per_window[w];
    }
    st.events.clear();
    st.events.shrink_to_fit();

    st.aggregated.assign(st.num_windows, {});
    for (size_t w = 0; w < st.num_windows; ++w) {
      std::vector<CommGraph::FlatEdge>& edges = staged[w];
      std::stable_sort(edges.begin(), edges.end(),
                       [](const CommGraph::FlatEdge& a,
                          const CommGraph::FlatEdge& b) {
                         return a.src != b.src ? a.src < b.src
                                               : a.dst < b.dst;
                       });
      std::vector<CommGraph::FlatEdge>& out = st.aggregated[w];
      for (size_t i = 0; i < edges.size();) {
        const NodeId src = edges[i].src;
        const NodeId dst = edges[i].dst;
        double weight = 0.0;
        for (; i < edges.size() && edges[i].src == src && edges[i].dst == dst;
             ++i) {
          weight += edges[i].weight;
        }
        out.push_back({src, dst, weight});
      }
    }
  }

  void Shutdown() {
    if (shut_down_) return;
    shut_down_ = true;
    for (ShardState& st : states_) Flush(st);
    for (ShardState& st : states_) st.queue->Close();
    for (ShardState& st : states_) {
      if (st.thread.joinable()) st.thread.join();
      st.free_queue->Close();
    }
  }

  size_t shards_;
  uint64_t window_length_;
  uint64_t start_time_;
  std::atomic<size_t> num_nodes_{0};
  std::vector<ShardState> states_;
  bool shut_down_ = false;
};

RowFormat ToRowFormat(PipelineFormat format) {
  return format == PipelineFormat::kNetflowV5 ? RowFormat::kNetflow
                                              : RowFormat::kTrace;
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

Result<std::vector<TraceEvent>> ReadTraceEventsPipelined(
    const std::string& path, PipelineFormat format, Interner& interner,
    const PipelineOptions& options, PipelineStats* stats) {
  std::vector<TraceEvent> events;
  EventsSink sink{events};
  Status s =
      RunPipeline(path, ToRowFormat(format), interner, options, sink, stats);
  if (!s.ok()) return s;
  return events;
}

Result<CommGraph> ReadEdgeListPipelined(const std::string& path,
                                        Interner& interner,
                                        NodeId bipartite_left_size,
                                        const PipelineOptions& options,
                                        PipelineStats* stats) {
  EdgeRowsSink sink;
  Status s =
      RunPipeline(path, RowFormat::kEdge, interner, options, sink, stats);
  if (!s.ok()) return s;
  GraphBuilder builder(interner.size());
  builder.SetBipartiteLeftSize(bipartite_left_size);
  builder.Reserve(sink.rows.size());
  for (const CommGraph::FlatEdge& r : sink.rows) {
    builder.AddEdge(r.src, r.dst, r.weight);
  }
  return std::move(builder).Build();
}

Result<SignatureSet> ReadSignatureSetPipelined(const std::string& path,
                                               Interner& interner,
                                               const PipelineOptions& options,
                                               PipelineStats* stats) {
  SignatureRowsSink sink;
  Status s =
      RunPipeline(path, RowFormat::kSignature, interner, options, sink, stats);
  if (!s.ok()) return s;
  SignatureSet set;
  for (NodeId owner : sink.order) {
    set.owners.push_back(owner);
    auto& e = sink.entries[owner];
    const size_t k = e.size();
    set.signatures.push_back(Signature::FromTopK(std::move(e), k));
  }
  return set;
}

Result<std::vector<CommGraph>> ReadWindowsPipelined(
    const std::string& path, PipelineFormat format, Interner& interner,
    const WindowedReadOptions& window_options, const PipelineOptions& options,
    PipelineStats* stats) {
  const size_t shards =
      window_options.shards > 0
          ? window_options.shards
          : static_cast<size_t>(std::max(options.parse_workers, 1));
  ShardedWindowSink sink(shards, std::max<size_t>(options.queue_capacity, 1),
                         window_options.window_length,
                         window_options.start_time);
  Status s =
      RunPipeline(path, ToRowFormat(format), interner, options, sink, stats);
  if (!s.ok()) return s;  // the sink destructor unwinds the shard stage
  std::vector<CommGraph> graphs = sink.FinishAndBuild(
      interner.size(), window_options.bipartite_left_size);
  if (stats != nullptr) {
    stats->producer_stalls += sink.producer_stalls();
    stats->consumer_stalls += sink.consumer_stalls();
  }
  return graphs;
}

}  // namespace commsig::ingest
