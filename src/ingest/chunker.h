#ifndef COMMSIG_INGEST_CHUNKER_H_
#define COMMSIG_INGEST_CHUNKER_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/result.h"
#include "ingest/record_batch.h"

namespace commsig::ingest {

/// Input framing for the pipeline's IO stage.
enum class ChunkFormat {
  kCsvLines,   // cut on line boundaries (trace / edge-list / signature CSV)
  kNetflowV5,  // cut on packet boundaries, validating headers while framing
};

/// The pipeline's serial IO/framing stage: reads the input in large blocks
/// and cuts it into RawChunks on record boundaries, so parse workers never
/// see a record split across chunks.
///
/// CSV framing cuts at the last newline inside ~chunk_bytes (extending past
/// the target when a single line is longer). NetFlow framing replays the
/// serial reader's exact packet walk — header validation, forward resync
/// after a corrupt header, truncated-final-packet salvage, and (under
/// require_monotonic_time) header-timestamp regression checks — because
/// those decisions need the inter-packet stream state that only a serial
/// stage has. Rejections are not *applied* here (policy and budgets are
/// stream-ordered, merge-stage decisions); they are recorded as
/// FramingRejects for the merge stage to replay.
///
/// Each buffer refill evaluates the "ingest/frame" fail-point, so chaos
/// tests can kill the IO stage mid-stream.
class Chunker {
 public:
  /// Opens `path`. Check status() before calling Next. `monotonic_time`
  /// only affects kNetflowV5 (CSV monotonicity is a merge-stage check).
  Chunker(const std::string& path, ChunkFormat format, size_t chunk_bytes,
          bool monotonic_time);

  /// OK if the file opened ("cannot open <path>" IOError otherwise —
  /// byte-identical to the serial readers).
  const Status& status() const { return status_; }

  /// Frames the next chunk into `chunk` (Clear()ed first; `seq` assigned
  /// monotonically from 0). Returns false at end of input, or an IO /
  /// fail-point error.
  Result<bool> Next(RawChunk& chunk);

 private:
  Result<bool> NextCsv(RawChunk& chunk);
  Result<bool> NextNetflow(RawChunk& chunk);

  /// Reads one block from the file into buf_, compacting the consumed
  /// prefix first. Sets eof_ when the input is exhausted.
  Status Refill();

  size_t Avail() const { return buf_.size() - pos_; }
  const unsigned char* Cur() const {
    return reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  }
  /// Absolute byte offset of the next unconsumed byte.
  uint64_t AbsPos() const { return consumed_ + pos_; }

  std::ifstream in_;
  std::string path_;
  Status status_;
  ChunkFormat format_;
  size_t chunk_bytes_;
  bool monotonic_time_;

  std::string buf_;
  size_t pos_ = 0;         // consumed prefix of buf_
  uint64_t consumed_ = 0;  // absolute offset of buf_[0]
  bool eof_ = false;
  uint64_t next_seq_ = 0;

  // NetFlow stream state (mirrors the serial reader's locals).
  uint64_t skip_bytes_ = 0;  // remainder of a rejected packet body
  bool resyncing_ = false;   // scanning forward for a plausible header
  uint32_t last_secs_ = 0;
  bool have_last_secs_ = false;
};

}  // namespace commsig::ingest

#endif  // COMMSIG_INGEST_CHUNKER_H_
