#include "ingest/chunker.h"

#include <algorithm>
#include <cstring>

#include "ingest/record_decode.h"
#include "robust/failpoints.h"

namespace commsig::ingest {

namespace {

constexpr size_t kHeaderBytes = 24;
constexpr size_t kRecordBytes = 48;
constexpr size_t kMaxRecordsPerPacket = 30;

// A header candidate during resync needs version 5 and a plausible count —
// the same predicate the serial reader's resync lambda uses.
bool PlausibleHeader(const unsigned char* p) {
  if (ReadU16Be(p) != 5) return false;
  const uint16_t count = ReadU16Be(p + 2);
  return count >= 1 && count <= kMaxRecordsPerPacket;
}

}  // namespace

Chunker::Chunker(const std::string& path, ChunkFormat format,
                 size_t chunk_bytes, bool monotonic_time)
    : in_(path, std::ios::binary),
      path_(path),
      format_(format),
      // Tiny chunk sizes are allowed (tests use them to force many chunk
      // boundaries); only 0 is meaningless.
      chunk_bytes_(std::max<size_t>(chunk_bytes, 64)),
      monotonic_time_(monotonic_time) {
  if (!in_.is_open()) status_ = Status::IOError("cannot open " + path);
}

Status Chunker::Refill() {
  if (eof_) return Status::OK();
  Status injected = failpoints::Inject("ingest/frame");
  if (!injected.ok()) return injected;
  // Compact the consumed prefix so the buffer never grows past one read
  // block plus carry.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    consumed_ += pos_;
    pos_ = 0;
  }
  const size_t old_size = buf_.size();
  buf_.resize(old_size + chunk_bytes_);
  in_.read(buf_.data() + old_size, static_cast<std::streamsize>(chunk_bytes_));
  const size_t got = static_cast<size_t>(in_.gcount());
  buf_.resize(old_size + got);
  if (in_.bad()) return Status::IOError("read error on " + path_);
  if (got < chunk_bytes_) eof_ = true;
  return Status::OK();
}

Result<bool> Chunker::Next(RawChunk& chunk) {
  chunk.Clear();
  Result<bool> produced = format_ == ChunkFormat::kCsvLines
                              ? NextCsv(chunk)
                              : NextNetflow(chunk);
  if (produced.ok() && *produced) chunk.seq = next_seq_++;
  return produced;
}

Result<bool> Chunker::NextCsv(RawChunk& chunk) {
  // Buffer at least one target-sized block (or everything, at EOF).
  while (!eof_ && Avail() < chunk_bytes_) {
    Status s = Refill();
    if (!s.ok()) return s;
  }
  if (Avail() == 0) return false;

  const size_t window = std::min(Avail(), chunk_bytes_);
  std::string_view view(buf_.data() + pos_, Avail());
  size_t cut = view.substr(0, window).rfind('\n');
  if (cut != std::string_view::npos) {
    cut += 1;  // include the newline
  } else {
    // One line longer than the chunk target: extend to its newline (or
    // end of input), refilling as needed.
    while (true) {
      view = std::string_view(buf_.data() + pos_, Avail());
      const size_t nl = view.find('\n');
      if (nl != std::string_view::npos) {
        cut = nl + 1;
        break;
      }
      if (eof_) {
        cut = Avail();
        break;
      }
      Status s = Refill();
      if (!s.ok()) return s;
    }
  }
  chunk.data.assign(buf_.data() + pos_, cut);
  pos_ += cut;
  return true;
}

Result<bool> Chunker::NextNetflow(RawChunk& chunk) {
  while (true) {
    // A rejected packet's body is skipped without inspection (the serial
    // reader jumps straight over it).
    if (skip_bytes_ > 0) {
      const size_t take = std::min<uint64_t>(skip_bytes_, Avail());
      pos_ += take;
      skip_bytes_ -= take;
      if (skip_bytes_ > 0) {
        if (eof_) {
          skip_bytes_ = 0;  // input ended inside the skipped body
          break;
        }
        Status s = Refill();
        if (!s.ok()) return s;
        continue;
      }
    }

    // Resync: scan forward for the next plausible v5 header. A candidate
    // needs a full header's bytes in view; the unsearchable tail is carried
    // into the next refill (a header can straddle the block edge).
    if (resyncing_) {
      bool found = false;
      while (Avail() >= kHeaderBytes) {
        if (PlausibleHeader(Cur())) {
          found = true;
          break;
        }
        ++pos_;
      }
      if (!found) {
        if (eof_) {
          // No further header anywhere: the serial resync returns `size`
          // and the loop exits with no extra rejection.
          pos_ = buf_.size();
          break;
        }
        Status s = Refill();
        if (!s.ok()) return s;
        continue;
      }
      resyncing_ = false;
    }

    if (Avail() < kHeaderBytes) {
      if (!eof_) {
        Status s = Refill();
        if (!s.ok()) return s;
        continue;
      }
      if (Avail() > 0) {
        chunk.framing_rejects.push_back(
            {static_cast<uint32_t>(chunk.packets.size()),
             RecordErrorReason::kTruncated, AbsPos(),
             "trailing partial header"});
        pos_ = buf_.size();
      }
      break;
    }

    const unsigned char* hdr = Cur();
    const uint16_t version = ReadU16Be(hdr);
    const uint16_t count = ReadU16Be(hdr + 2);
    const uint32_t unix_secs = ReadU32Be(hdr + 8);
    if (version != 5) {
      std::string detail = "not a NetFlow v5 header (version ";
      detail += std::to_string(version);
      detail += ")";
      chunk.framing_rejects.push_back(
          {static_cast<uint32_t>(chunk.packets.size()),
           RecordErrorReason::kBadMagic, AbsPos(), std::move(detail)});
      pos_ += 1;
      resyncing_ = true;
      continue;
    }
    if (count == 0 || count > kMaxRecordsPerPacket) {
      std::string detail = "invalid record count ";
      detail += std::to_string(count);
      chunk.framing_rejects.push_back(
          {static_cast<uint32_t>(chunk.packets.size()),
           RecordErrorReason::kBadRecordCount, AbsPos(), std::move(detail)});
      pos_ += 1;
      resyncing_ = true;
      continue;
    }
    if (monotonic_time_ && have_last_secs_ && unix_secs < last_secs_) {
      std::string detail = "export time ";
      detail += std::to_string(unix_secs);
      detail += " precedes ";
      detail += std::to_string(last_secs_);
      chunk.framing_rejects.push_back(
          {static_cast<uint32_t>(chunk.packets.size()),
           RecordErrorReason::kTimestampRegression, AbsPos(),
           std::move(detail)});
      pos_ += kHeaderBytes;
      skip_bytes_ = static_cast<uint64_t>(count) * kRecordBytes;
      continue;
    }

    const size_t body_bytes = static_cast<size_t>(count) * kRecordBytes;
    if (Avail() < kHeaderBytes + body_bytes) {
      if (!eof_) {
        Status s = Refill();
        if (!s.ok()) return s;
        continue;
      }
      // Truncated final packet: salvage the whole records, then report the
      // cut — records first, rejection after, exactly like the serial
      // reader's push-then-HandleBadRecord order.
      const size_t whole = (Avail() - kHeaderBytes) / kRecordBytes;
      const uint64_t body_abs = AbsPos() + kHeaderBytes;
      if (whole > 0) {
        const size_t body_offset = chunk.data.size();
        chunk.data.append(buf_.data() + pos_ + kHeaderBytes,
                          whole * kRecordBytes);
        chunk.packets.push_back({static_cast<uint32_t>(body_offset),
                                 static_cast<uint32_t>(whole), unix_secs});
      }
      chunk.framing_rejects.push_back(
          {static_cast<uint32_t>(chunk.packets.size()),
           RecordErrorReason::kTruncated, body_abs + whole * kRecordBytes,
           "truncated NetFlow packet"});
      pos_ = buf_.size();
      break;
    }

    const size_t body_offset = chunk.data.size();
    chunk.data.append(buf_.data() + pos_ + kHeaderBytes, body_bytes);
    chunk.packets.push_back(
        {static_cast<uint32_t>(body_offset), count, unix_secs});
    have_last_secs_ = true;
    last_secs_ = unix_secs;
    pos_ += kHeaderBytes + body_bytes;

    if (chunk.data.size() >= chunk_bytes_) return true;
    if (Avail() == 0 && eof_) break;
  }
  return !chunk.packets.empty() || !chunk.framing_rejects.empty();
}

}  // namespace commsig::ingest
