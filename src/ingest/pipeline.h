#ifndef COMMSIG_INGEST_PIPELINE_H_
#define COMMSIG_INGEST_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "core/signature_io.h"
#include "data/netflow.h"
#include "graph/comm_graph.h"
#include "graph/windower.h"
#include "robust/degradation.h"
#include "robust/record_errors.h"

namespace commsig::ingest {

/// What the framer does when a parse worker's input queue is full.
enum class BackpressurePolicy {
  /// Block the IO stage until the worker catches up (lossless; default).
  kBlock,
  /// Drop the framed chunk, count it under ingest/chunks_shed and report
  /// overload to the degradation controller. Sheds whole chunks, so the
  /// output is NOT equivalent to the serial reader — reserved for live
  /// sources where falling behind is worse than sampling.
  kShed,
};

/// Input format for the event-producing entry points.
enum class PipelineFormat {
  kTraceCsv,   // src,dst,time,weight rows (data/trace_io)
  kNetflowV5,  // concatenated v5 export packets (data/netflow)
};

struct PipelineOptions {
  /// Parse worker threads (clamped to >= 1). The framer and the merge run
  /// on their own serial stages regardless.
  int parse_workers = 1;
  /// Target raw bytes per framed chunk.
  size_t chunk_bytes = 256 * 1024;
  /// Bounded queue capacity (in chunks/batches) between each stage pair.
  size_t queue_capacity = 8;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Error policy / budgets / quarantine sink, applied by the merge stage
  /// in exact stream order (byte-identical to the serial readers).
  IngestOptions ingest;
  /// Record filtering/weighting for kNetflowV5.
  NetflowReadOptions netflow;
  /// Optional: kShed drops report overload here (not owned; may be null).
  DegradationController* degradation = nullptr;
};

/// Counters for one pipeline run, also published to the obs registry under
/// ingest/*.
struct PipelineStats {
  uint64_t chunks_framed = 0;
  uint64_t chunks_shed = 0;
  uint64_t batches_merged = 0;
  uint64_t records_parsed = 0;  // accepted records entering the merge
  uint64_t producer_stalls = 0;
  uint64_t consumer_stalls = 0;
};

/// Parallel counterpart of ReadTraceCsv / (ReadNetflowV5File +
/// NetflowToEvents): framer -> parse workers -> in-order merge. Under
/// kBlock back-pressure the result — events, interner contents and id
/// assignment, error-log entries, budgets, and failure status — is
/// bit-identical to the serial path at every worker count.
Result<std::vector<TraceEvent>> ReadTraceEventsPipelined(
    const std::string& path, PipelineFormat format, Interner& interner,
    const PipelineOptions& options, PipelineStats* stats = nullptr);

/// Parallel counterpart of ReadEdgeListCsv (same equivalence guarantee).
Result<CommGraph> ReadEdgeListPipelined(const std::string& path,
                                        Interner& interner,
                                        NodeId bipartite_left_size,
                                        const PipelineOptions& options,
                                        PipelineStats* stats = nullptr);

/// Parallel counterpart of ReadSignatureSetCsv (same equivalence
/// guarantee).
Result<SignatureSet> ReadSignatureSetPipelined(const std::string& path,
                                               Interner& interner,
                                               const PipelineOptions& options,
                                               PipelineStats* stats = nullptr);

/// Windowing configuration for ReadWindowsPipelined, mirroring
/// TraceWindower's constructor.
struct WindowedReadOptions {
  uint64_t window_length = 1;
  uint64_t start_time = 0;
  NodeId bipartite_left_size = 0;
  /// Window shard stages fed by the merge through bounded queues; 0 picks
  /// parse_workers. Events are sharded by src id, which keeps every
  /// observation of one (src, dst) pair in a single shard in stream order
  /// — the property that makes the sharded aggregation bit-identical to
  /// TraceWindower::Split.
  size_t shards = 0;
};

/// Parallel counterpart of reading events then TraceWindower::Split: the
/// merge stage routes accepted events into per-shard windower stages
/// through bounded SPSC queues, shards pre-bucket and aggregate while
/// ingestion is still running, and final per-window graphs are assembled
/// from the shard aggregates. Window graphs are bit-identical to
/// `TraceWindower(interner.size(), ...).Split(events)` on the serial
/// reader's events, at every worker/shard count (kBlock only).
Result<std::vector<CommGraph>> ReadWindowsPipelined(
    const std::string& path, PipelineFormat format, Interner& interner,
    const WindowedReadOptions& window_options, const PipelineOptions& options,
    PipelineStats* stats = nullptr);

}  // namespace commsig::ingest

#endif  // COMMSIG_INGEST_PIPELINE_H_
