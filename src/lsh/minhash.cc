#include "lsh/minhash.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/random.h"

namespace commsig {

MinHasher::MinHasher(size_t num_hashes, uint64_t seed)
    : num_hashes_(num_hashes), seed_(seed) {
  assert(num_hashes > 0);
}

std::vector<uint64_t> MinHasher::Sketch(const Signature& sig) const {
  std::vector<uint64_t> sketch(num_hashes_,
                               std::numeric_limits<uint64_t>::max());
  // Fold the seed through SplitMix64 first: XORing a small seed directly
  // into small node ids would merely permute the input set, leaving the
  // per-component minima unchanged across seeds.
  const uint64_t seed_offset = SplitMix64(seed_);
  for (const Signature::Entry& e : sig.entries()) {
    // One base hash per node, then cheap per-component mixing.
    uint64_t base = SplitMix64(static_cast<uint64_t>(e.node) + seed_offset);
    for (size_t h = 0; h < num_hashes_; ++h) {
      uint64_t value = SplitMix64(base + h * 0x9e3779b97f4a7c15ULL);
      sketch[h] = std::min(sketch[h], value);
    }
  }
  return sketch;
}

double MinHasher::EstimateJaccardSimilarity(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  assert(a.size() == b.size() && !a.empty());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace commsig
