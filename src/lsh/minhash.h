#ifndef COMMSIG_LSH_MINHASH_H_
#define COMMSIG_LSH_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/signature.h"

namespace commsig {

/// MinHash sketching of a signature's node *set* (weights are ignored —
/// the underlying similarity is Jaccard, matching Dist_Jac). With `m`
/// hash functions, the fraction of agreeing components is an unbiased
/// estimator of the Jaccard similarity with standard error ≈ 1/√m.
///
/// Section VI proposes exactly this (Indyk-Motwani LSH) for approximate
/// nearest-neighbour signature matching at scale.
class MinHasher {
 public:
  /// `num_hashes` components per sketch.
  explicit MinHasher(size_t num_hashes = 128, uint64_t seed = 0x315);

  /// Sketches a signature. Empty signatures map to the all-max sketch,
  /// which never collides with non-empty ones.
  std::vector<uint64_t> Sketch(const Signature& sig) const;

  /// Fraction of agreeing components in [0, 1]. Sketches must come from
  /// the same MinHasher.
  static double EstimateJaccardSimilarity(const std::vector<uint64_t>& a,
                                          const std::vector<uint64_t>& b);

  size_t num_hashes() const { return num_hashes_; }
  uint64_t seed() const { return seed_; }

 private:
  size_t num_hashes_;
  uint64_t seed_;
};

}  // namespace commsig

#endif  // COMMSIG_LSH_MINHASH_H_
