#ifndef COMMSIG_LSH_LSH_INDEX_H_
#define COMMSIG_LSH_LSH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "core/signature.h"
#include "lsh/minhash.h"

namespace commsig {

/// Banded MinHash LSH index over signatures (Section VI, "scalable
/// signature comparison"). Sketches are split into `bands` groups of
/// `rows_per_band` components; two signatures collide in a band iff that
/// whole group matches, so a pair with Jaccard similarity s is retrieved
/// with probability 1 − (1 − s^rows)^bands — the classic S-curve. The
/// default 32 bands × 4 rows puts the 50% threshold near s ≈ 0.4.
///
/// Typical use: index all focal signatures of a window, then Query each
/// one (or call SimilarPairs) to cut multiusage detection from O(n²)
/// distance evaluations to near-linear candidate generation.
class LshIndex {
 public:
  struct Options {
    size_t bands = 32;
    size_t rows_per_band = 4;
    uint64_t seed = 0x15b;
  };

  LshIndex() : LshIndex(Options()) {}
  explicit LshIndex(Options options);

  /// Sketches and indexes `sig` under `id`. Ids should be unique.
  void Insert(NodeId id, const Signature& sig);

  /// Candidate ids colliding with `sig` in at least one band (excluding
  /// exact id self-matches is the caller's concern). Deduplicated,
  /// ascending.
  std::vector<NodeId> Query(const Signature& sig) const;

  /// All distinct indexed pairs colliding in at least one band, each with
  /// its MinHash-estimated Jaccard similarity. Pairs are returned with
  /// a < b, sorted by descending similarity.
  struct Pair {
    NodeId a;
    NodeId b;
    double estimated_similarity;
  };
  std::vector<Pair> SimilarPairs(double min_similarity = 0.0) const;

  size_t size() const { return sketches_.size(); }
  const MinHasher& hasher() const { return hasher_; }

 private:
  uint64_t BandKey(const std::vector<uint64_t>& sketch, size_t band) const;

  Options options_;
  MinHasher hasher_;
  std::vector<std::pair<NodeId, std::vector<uint64_t>>> sketches_;
  // band -> bucket hash -> indices into sketches_.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> buckets_;
};

}  // namespace commsig

#endif  // COMMSIG_LSH_LSH_INDEX_H_
