#include "lsh/lsh_index.h"

#include <algorithm>
#include <set>

#include "common/random.h"

namespace commsig {

LshIndex::LshIndex(Options options)
    : options_(options),
      hasher_(options.bands * options.rows_per_band, options.seed),
      buckets_(options.bands) {}

uint64_t LshIndex::BandKey(const std::vector<uint64_t>& sketch,
                           size_t band) const {
  uint64_t key = SplitMix64(band + 1);
  const size_t begin = band * options_.rows_per_band;
  for (size_t r = 0; r < options_.rows_per_band; ++r) {
    key = SplitMix64(key ^ sketch[begin + r]);
  }
  return key;
}

void LshIndex::Insert(NodeId id, const Signature& sig) {
  std::vector<uint64_t> sketch = hasher_.Sketch(sig);
  uint32_t index = static_cast<uint32_t>(sketches_.size());
  for (size_t band = 0; band < options_.bands; ++band) {
    buckets_[band][BandKey(sketch, band)].push_back(index);
  }
  sketches_.emplace_back(id, std::move(sketch));
}

std::vector<NodeId> LshIndex::Query(const Signature& sig) const {
  std::vector<uint64_t> sketch = hasher_.Sketch(sig);
  std::set<NodeId> candidates;
  for (size_t band = 0; band < options_.bands; ++band) {
    auto it = buckets_[band].find(BandKey(sketch, band));
    if (it == buckets_[band].end()) continue;
    for (uint32_t index : it->second) {
      candidates.insert(sketches_[index].first);
    }
  }
  return {candidates.begin(), candidates.end()};
}

std::vector<LshIndex::Pair> LshIndex::SimilarPairs(
    double min_similarity) const {
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const auto& band_buckets : buckets_) {
    for (const auto& [key, members] : band_buckets) {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          uint32_t a = std::min(members[i], members[j]);
          uint32_t b = std::max(members[i], members[j]);
          if (a != b) seen.emplace(a, b);
        }
      }
    }
  }

  std::vector<Pair> pairs;
  pairs.reserve(seen.size());
  for (const auto& [i, j] : seen) {
    double sim = MinHasher::EstimateJaccardSimilarity(sketches_[i].second,
                                                      sketches_[j].second);
    if (sim < min_similarity) continue;
    NodeId a = sketches_[i].first;
    NodeId b = sketches_[j].first;
    pairs.push_back({std::min(a, b), std::max(a, b), sim});
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    if (x.estimated_similarity != y.estimated_similarity) {
      return x.estimated_similarity > y.estimated_similarity;
    }
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return pairs;
}

}  // namespace commsig
