#ifndef COMMSIG_APPS_ANOMALY_H_
#define COMMSIG_APPS_ANOMALY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/stats.h"
#include "core/distance.h"
#include "core/signature.h"

namespace commsig {

/// One flagged behaviour change.
struct Anomaly {
  NodeId node = kInvalidNode;
  /// Self-persistence 1 − Dist(σ_t(v), σ_{t+1}(v)) at the flagged
  /// transition.
  double persistence = 0.0;
  /// How many population standard deviations below the mean persistence
  /// this transition sits (positive = below mean).
  double deviations_below_mean = 0.0;
};

/// Anomaly detection (Section II-D): report nodes whose behaviour changed
/// abruptly between consecutive windows, i.e. whose self-persistence is
/// unusually small. Per Table I the task needs persistence + robustness,
/// which is why RWR-family schemes suit it best.
///
/// One-shot form: compare one window transition against the population of
/// focal persistences.
std::vector<Anomaly> DetectAnomalies(std::span<const NodeId> nodes,
                                     std::span<const Signature> sigs_t,
                                     std::span<const Signature> sigs_t1,
                                     SignatureDistance dist,
                                     double deviation_threshold = 2.0);

/// Stateful monitor for streams of windows: feed each window's focal
/// signatures in order; after the second window every Observe call reports
/// the nodes whose latest transition persistence falls far below that
/// node's own historical mean (population statistics are used until a node
/// has enough history).
class AnomalyMonitor {
 public:
  struct Options {
    /// Flag when persistence < node-mean − threshold·node-stddev.
    double deviation_threshold = 2.0;
    /// Transitions required before a node's own history is trusted.
    size_t min_history = 3;
    /// Floor on the stddev used in the test, so long-stable nodes do not
    /// alert on microscopic wobbles.
    double min_stddev = 0.02;
  };

  AnomalyMonitor(std::span<const NodeId> nodes, SignatureDistance dist)
      : AnomalyMonitor(nodes, dist, Options()) {}
  AnomalyMonitor(std::span<const NodeId> nodes, SignatureDistance dist,
                 Options options);

  /// Consumes the next window's signatures (index-aligned with the node
  /// list given at construction). Returns anomalies for the transition
  /// from the previous window; empty on the first call.
  std::vector<Anomaly> Observe(std::vector<Signature> sigs);

  /// Number of windows consumed.
  size_t windows_seen() const { return windows_seen_; }

 private:
  std::vector<NodeId> nodes_;
  SignatureDistance dist_;
  Options options_;
  std::vector<Signature> previous_;
  std::vector<RunningStats> history_;
  size_t windows_seen_ = 0;
};

}  // namespace commsig

#endif  // COMMSIG_APPS_ANOMALY_H_
