#include "apps/anomaly.h"

#include <algorithm>
#include <cassert>

namespace commsig {

std::vector<Anomaly> DetectAnomalies(std::span<const NodeId> nodes,
                                     std::span<const Signature> sigs_t,
                                     std::span<const Signature> sigs_t1,
                                     SignatureDistance dist,
                                     double deviation_threshold) {
  assert(nodes.size() == sigs_t.size());
  assert(nodes.size() == sigs_t1.size());
  const size_t n = nodes.size();

  std::vector<double> persistence(n);
  RunningStats stats;
  for (size_t v = 0; v < n; ++v) {
    persistence[v] = 1.0 - dist(sigs_t[v], sigs_t1[v]);
    stats.Add(persistence[v]);
  }
  const double mean = stats.Mean();
  const double sd = std::max(stats.StdDev(), 1e-12);

  std::vector<Anomaly> anomalies;
  for (size_t v = 0; v < n; ++v) {
    const double below = (mean - persistence[v]) / sd;
    if (below >= deviation_threshold) {
      anomalies.push_back({nodes[v], persistence[v], below});
    }
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const Anomaly& a, const Anomaly& b) {
              if (a.deviations_below_mean != b.deviations_below_mean) {
                return a.deviations_below_mean > b.deviations_below_mean;
              }
              return a.node < b.node;
            });
  return anomalies;
}

AnomalyMonitor::AnomalyMonitor(std::span<const NodeId> nodes,
                               SignatureDistance dist, Options options)
    : nodes_(nodes.begin(), nodes.end()),
      dist_(dist),
      options_(options),
      history_(nodes.size()) {}

std::vector<Anomaly> AnomalyMonitor::Observe(std::vector<Signature> sigs) {
  assert(sigs.size() == nodes_.size());
  std::vector<Anomaly> anomalies;
  ++windows_seen_;
  if (windows_seen_ == 1) {
    previous_ = std::move(sigs);
    return anomalies;
  }

  const size_t n = nodes_.size();
  std::vector<double> persistence(n);
  RunningStats population;
  for (size_t v = 0; v < n; ++v) {
    persistence[v] = 1.0 - dist_(previous_[v], sigs[v]);
    population.Add(persistence[v]);
  }

  for (size_t v = 0; v < n; ++v) {
    // Use the node's own history once it is deep enough; otherwise fall
    // back to this transition's population statistics.
    double mean, sd;
    if (history_[v].count() >= options_.min_history) {
      mean = history_[v].Mean();
      sd = history_[v].StdDev();
    } else {
      mean = population.Mean();
      sd = population.StdDev();
    }
    sd = std::max(sd, options_.min_stddev);
    const double below = (mean - persistence[v]) / sd;
    if (below >= options_.deviation_threshold) {
      anomalies.push_back({nodes_[v], persistence[v], below});
    }
  }
  // Anomalous transitions are *not* folded into a node's history: a real
  // behaviour change should keep standing out until behaviour re-stabilizes
  // under the new regime (history only absorbs values that looked normal).
  for (size_t v = 0; v < n; ++v) {
    bool flagged = std::any_of(
        anomalies.begin(), anomalies.end(),
        [&](const Anomaly& a) { return a.node == nodes_[v]; });
    if (!flagged) history_[v].Add(persistence[v]);
  }

  std::sort(anomalies.begin(), anomalies.end(),
            [](const Anomaly& a, const Anomaly& b) {
              if (a.deviations_below_mean != b.deviations_below_mean) {
                return a.deviations_below_mean > b.deviations_below_mean;
              }
              return a.node < b.node;
            });
  previous_ = std::move(sigs);
  return anomalies;
}

}  // namespace commsig
