#include "apps/deanonymizer.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/assignment.h"
#include "common/random.h"
#include "graph/graph_builder.h"

namespace commsig {

NodeId AnonymizationPlan::OriginalOf(NodeId pseudonym) const {
  for (size_t i = 0; i < pool.size(); ++i) {
    if (pseudonym_of[i] == pseudonym) return pool[i];
  }
  return kInvalidNode;
}

AnonymizationPlan PlanAnonymization(std::span<const NodeId> pool,
                                    uint64_t seed) {
  AnonymizationPlan plan;
  plan.pool.assign(pool.begin(), pool.end());
  plan.pseudonym_of = plan.pool;
  Rng rng(seed);
  rng.Shuffle(plan.pseudonym_of);
  return plan;
}

CommGraph Anonymize(const CommGraph& g, const AnonymizationPlan& plan) {
  std::vector<NodeId> relabel(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) relabel[v] = v;
  for (size_t i = 0; i < plan.pool.size(); ++i) {
    relabel[plan.pool[i]] = plan.pseudonym_of[i];
  }
  GraphBuilder builder(g.NumNodes());
  builder.SetBipartiteLeftSize(g.bipartite().left_size);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      builder.AddEdge(relabel[v], relabel[e.node], e.weight);
    }
  }
  return std::move(builder).Build();
}

std::vector<Identification> Deanonymizer::Identify(
    std::span<const NodeId> originals, std::span<const Signature> reference,
    std::span<const NodeId> pseudonyms,
    std::span<const Signature> anonymous) const {
  assert(originals.size() == reference.size());
  assert(pseudonyms.size() == anonymous.size());
  const size_t n = originals.size();
  const size_t m = pseudonyms.size();
  std::vector<Identification> out;
  if (n == 0 || m == 0) return out;

  // Best and runner-up candidate per reference node.
  struct Candidate {
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    double second_dist = std::numeric_limits<double>::infinity();
  };
  std::vector<Candidate> candidates(n);
  // Full distance matrix, kept for the one-to-one pass.
  std::vector<double> matrix(n * m);
  for (size_t i = 0; i < n; ++i) {
    Candidate& c = candidates[i];
    for (size_t j = 0; j < m; ++j) {
      double d = dist_(reference[i], anonymous[j]);
      matrix[i * m + j] = d;
      if (d < c.best_dist) {
        c.second_dist = c.best_dist;
        c.best_dist = d;
        c.best = j;
      } else if (d < c.second_dist) {
        c.second_dist = d;
      }
    }
  }

  if (!options_.one_to_one) {
    for (size_t i = 0; i < n; ++i) {
      const Candidate& c = candidates[i];
      if (c.best_dist > options_.max_distance) continue;
      double margin = (m > 1) ? c.second_dist - c.best_dist : 1.0;
      out.push_back({originals[i], pseudonyms[c.best], c.best_dist, margin});
    }
    std::sort(out.begin(), out.end(),
              [](const Identification& a, const Identification& b) {
                return a.margin > b.margin;
              });
    return out;
  }

  if (options_.assignment == AssignmentMode::kOptimal && n <= m) {
    // Hungarian optimum over the full distance matrix.
    auto assignment = SolveAssignment(matrix, n, m);
    for (size_t i = 0; i < n; ++i) {
      const size_t j = assignment[i];
      const double d = matrix[i * m + j];
      if (d > options_.max_distance) continue;
      // Margin relative to the row's runner-up (for ranking only).
      double margin =
          (m > 1) ? candidates[i].second_dist - d : 1.0;
      out.push_back({originals[i], pseudonyms[j], d, margin});
    }
    std::sort(out.begin(), out.end(),
              [](const Identification& a, const Identification& b) {
                return a.margin > b.margin;
              });
    return out;
  }

  // Greedy one-to-one assignment in order of confidence margin: nodes with
  // an unambiguous nearest pseudonym claim it first; later nodes re-rank
  // over the pseudonyms still available.
  std::vector<bool> reference_done(n, false), pseudonym_taken(m, false);
  size_t assigned = 0;
  const size_t max_assignments = std::min(n, m);
  while (assigned < max_assignments) {
    // Pick the unassigned reference node with the largest current margin.
    double best_margin = -1.0;
    size_t pick = n;
    for (size_t i = 0; i < n; ++i) {
      if (reference_done[i]) continue;
      const Candidate& c = candidates[i];
      double margin = c.second_dist - c.best_dist;
      if (margin > best_margin) {
        best_margin = margin;
        pick = i;
      }
    }
    if (pick == n) break;
    const Candidate& c = candidates[pick];
    reference_done[pick] = true;
    if (c.best_dist <= options_.max_distance &&
        c.best_dist != std::numeric_limits<double>::infinity()) {
      pseudonym_taken[c.best] = true;
      out.push_back({originals[pick], pseudonyms[c.best], c.best_dist,
                     best_margin});
      ++assigned;
    }
    // Refresh candidates that pointed at a now-taken pseudonym.
    for (size_t i = 0; i < n; ++i) {
      if (reference_done[i]) continue;
      Candidate& ci = candidates[i];
      if (!pseudonym_taken[ci.best]) continue;
      ci.best_dist = std::numeric_limits<double>::infinity();
      ci.second_dist = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < m; ++j) {
        if (pseudonym_taken[j]) continue;
        double d = matrix[i * m + j];
        if (d < ci.best_dist) {
          ci.second_dist = ci.best_dist;
          ci.best_dist = d;
          ci.best = j;
        } else if (d < ci.second_dist) {
          ci.second_dist = d;
        }
      }
      if (ci.best_dist == std::numeric_limits<double>::infinity()) {
        reference_done[i] = true;  // nothing left to claim
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Identification& a, const Identification& b) {
              return a.margin > b.margin;
            });
  return out;
}

double DeanonymizationAccuracy(std::span<const Identification> ids,
                               const AnonymizationPlan& plan) {
  if (plan.pool.empty()) return 0.0;
  size_t correct = 0;
  for (const Identification& id : ids) {
    for (size_t i = 0; i < plan.pool.size(); ++i) {
      if (plan.pool[i] == id.original &&
          plan.pseudonym_of[i] == id.pseudonym) {
        ++correct;
        break;
      }
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(plan.pool.size());
}

}  // namespace commsig
