#ifndef COMMSIG_APPS_MASQUERADE_DETECTOR_H_
#define COMMSIG_APPS_MASQUERADE_DETECTOR_H_

#include <span>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "core/distance.h"
#include "core/signature.h"
#include "eval/masquerade_sim.h"

namespace commsig {

/// Output of the label-masquerading detector.
struct MasqueradeDetection {
  /// M: focal nodes classified "not a masquerader".
  std::vector<NodeId> non_suspects;
  /// O_P: detected (v, u) pairs — v in window t is believed to reappear
  /// under label u in window t+1.
  std::vector<std::pair<NodeId, NodeId>> detected;
  /// The persistence threshold δ actually used.
  double delta = 0.0;
};

/// Label-masquerading detection — the paper's Algorithm 1.
///
/// Inputs are the focal nodes with their signatures in two consecutive
/// windows (index-aligned). A node v whose self-persistence
/// A[v,v] = 1 − Dist(σ_t(v), σ_{t+1}(v)) exceeds δ is cleared; otherwise v
/// is matched against every u: if some u ≠ v ranks among v's top-ℓ by cross
/// persistence A[v,u] and u itself also looks non-persistent (A[u,u] ≤ δ),
/// the pair (v, u) is reported.
///
/// δ defaults to the paper's choice: the mean self-persistence divided by
/// `delta_divisor` (the paper's c, evaluated at 3, 5, 7).
class MasqueradeDetector {
 public:
  struct Options {
    /// ℓ: how deep in v's cross-persistence ranking a partner may sit.
    size_t top_ell = 1;
    /// c: δ = mean self-persistence / c. Ignored if `fixed_delta` >= 0.
    double delta_divisor = 5.0;
    /// If >= 0, use this δ directly instead of deriving it.
    double fixed_delta = -1.0;
  };

  explicit MasqueradeDetector(SignatureDistance dist)
      : MasqueradeDetector(dist, Options()) {}
  MasqueradeDetector(SignatureDistance dist, Options options)
      : dist_(dist), options_(options) {}

  MasqueradeDetection Detect(std::span<const NodeId> nodes,
                             std::span<const Signature> sigs_t,
                             std::span<const Signature> sigs_t1) const;

 private:
  SignatureDistance dist_;
  Options options_;
};

/// The paper's accuracy criterion:
///   ( |M ∩ (V − P)| + |O_P ∩ E_P| ) / |V|
/// where V is the focal node set, P the truly perturbed labels and E_P the
/// true mapping. Correct classifications are non-suspects that really were
/// untouched, plus detected pairs matching the plan exactly.
double MasqueradeAccuracy(const MasqueradeDetection& detection,
                          const MasqueradePlan& plan,
                          std::span<const NodeId> focal_nodes);

}  // namespace commsig

#endif  // COMMSIG_APPS_MASQUERADE_DETECTOR_H_
