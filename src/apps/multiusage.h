#ifndef COMMSIG_APPS_MULTIUSAGE_H_
#define COMMSIG_APPS_MULTIUSAGE_H_

#include <span>
#include <vector>

#include "common/interner.h"
#include "core/distance.h"
#include "core/signature.h"

namespace commsig {

/// A candidate multiusage pair: two labels whose signatures in the same
/// window are unusually similar, suggesting one individual behind both.
struct MultiusagePair {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double distance = 1.0;
};

/// Multiusage ("anti-aliasing") detection, Section II-D / V: within one
/// time window, compute Dist(σ_t(v), σ_t(u)) for focal pairs and report
/// those with high similarity (low distance). Per Table I this task leans
/// on uniqueness + robustness, which is why TT is the scheme of choice.
class MultiusageDetector {
 public:
  struct Options {
    /// Report pairs with distance <= threshold.
    double threshold = 0.5;
    /// Cap on reported pairs (0 = no cap). Pairs are reported most-similar
    /// first, so the cap keeps the strongest evidence.
    size_t max_pairs = 0;
  };

  explicit MultiusageDetector(SignatureDistance dist)
      : MultiusageDetector(dist, Options()) {}
  MultiusageDetector(SignatureDistance dist, Options options)
      : dist_(dist), options_(options) {}

  /// `nodes[i]` is the label whose signature is `sigs[i]`. O(n²) pairwise;
  /// for large candidate sets use the LSH-accelerated path in
  /// lsh/lsh_index.h to pre-filter pairs.
  std::vector<MultiusagePair> Detect(std::span<const NodeId> nodes,
                                     std::span<const Signature> sigs) const;

 private:
  SignatureDistance dist_;
  Options options_;
};

}  // namespace commsig

#endif  // COMMSIG_APPS_MULTIUSAGE_H_
