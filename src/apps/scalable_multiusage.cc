#include "apps/scalable_multiusage.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace commsig {

ScalableMultiusageDetector::Detection ScalableMultiusageDetector::Detect(
    std::span<const NodeId> nodes, std::span<const Signature> sigs) const {
  assert(nodes.size() == sigs.size());
  Detection out;

  LshIndex index(options_.lsh);
  std::unordered_map<NodeId, size_t> position;
  position.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    index.Insert(nodes[i], sigs[i]);
    position.emplace(nodes[i], i);
  }

  for (const LshIndex::Pair& candidate :
       index.SimilarPairs(options_.min_candidate_similarity)) {
    size_t i = position.at(candidate.a);
    size_t j = position.at(candidate.b);
    ++out.exact_evaluations;
    double d = dist_(sigs[i], sigs[j]);
    if (d <= options_.threshold) {
      out.pairs.push_back({candidate.a, candidate.b, d});
    }
  }

  std::sort(out.pairs.begin(), out.pairs.end(),
            [](const MultiusagePair& x, const MultiusagePair& y) {
              if (x.distance != y.distance) return x.distance < y.distance;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (options_.max_pairs > 0 && out.pairs.size() > options_.max_pairs) {
    out.pairs.resize(options_.max_pairs);
  }
  return out;
}

}  // namespace commsig
