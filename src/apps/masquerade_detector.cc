#include "apps/masquerade_detector.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace commsig {

MasqueradeDetection MasqueradeDetector::Detect(
    std::span<const NodeId> nodes, std::span<const Signature> sigs_t,
    std::span<const Signature> sigs_t1) const {
  assert(nodes.size() == sigs_t.size());
  assert(nodes.size() == sigs_t1.size());
  const size_t n = nodes.size();
  MasqueradeDetection out;

  // Self-persistence A[v,v] for every focal node, and δ.
  std::vector<double> self_persistence(n);
  double sum = 0.0;
  for (size_t v = 0; v < n; ++v) {
    self_persistence[v] = 1.0 - dist_(sigs_t[v], sigs_t1[v]);
    sum += self_persistence[v];
  }
  out.delta = options_.fixed_delta >= 0.0
                  ? options_.fixed_delta
                  : sum / (options_.delta_divisor * static_cast<double>(n));

  for (size_t v = 0; v < n; ++v) {
    if (self_persistence[v] > out.delta) {
      out.non_suspects.push_back(nodes[v]);  // Step 3-4
      continue;
    }
    // Step 6: cross persistences A[v,u] = 1 − Dist(σ_t(v), σ_{t+1}(u)).
    std::vector<std::pair<double, size_t>> ranked;  // (A[v,u], u index)
    ranked.reserve(n - 1);
    for (size_t u = 0; u < n; ++u) {
      if (u == v) continue;
      ranked.emplace_back(1.0 - dist_(sigs_t[v], sigs_t1[u]), u);
    }
    const size_t ell = std::min(options_.top_ell, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + ell, ranked.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    // Step 7: the best-ranked u within the top-ℓ that is itself
    // non-persistent (its label changed hands too).
    bool found = false;
    for (size_t r = 0; r < ell; ++r) {
      size_t u = ranked[r].second;
      if (self_persistence[u] <= out.delta) {
        out.detected.emplace_back(nodes[v], nodes[u]);
        found = true;
        break;
      }
    }
    if (!found) out.non_suspects.push_back(nodes[v]);  // Step 9
  }
  return out;
}

double MasqueradeAccuracy(const MasqueradeDetection& detection,
                          const MasqueradePlan& plan,
                          std::span<const NodeId> focal_nodes) {
  if (focal_nodes.empty()) return 0.0;
  std::unordered_set<NodeId> perturbed;
  for (const auto& [v, u] : plan.mapping) perturbed.insert(v);

  size_t correct = 0;
  for (NodeId v : detection.non_suspects) {
    if (!perturbed.contains(v)) ++correct;  // |M ∩ (V − P)|
  }
  for (const auto& [v, u] : detection.detected) {
    if (plan.Contains(v, u)) ++correct;  // |O_P ∩ E_P|
  }
  return static_cast<double>(correct) /
         static_cast<double>(focal_nodes.size());
}

}  // namespace commsig
