#include "apps/multiusage.h"

#include <algorithm>
#include <cassert>

namespace commsig {

std::vector<MultiusagePair> MultiusageDetector::Detect(
    std::span<const NodeId> nodes, std::span<const Signature> sigs) const {
  assert(nodes.size() == sigs.size());
  std::vector<MultiusagePair> pairs;
  for (size_t i = 0; i < sigs.size(); ++i) {
    for (size_t j = i + 1; j < sigs.size(); ++j) {
      double d = dist_(sigs[i], sigs[j]);
      if (d <= options_.threshold) {
        pairs.push_back({nodes[i], nodes[j], d});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const MultiusagePair& x, const MultiusagePair& y) {
              if (x.distance != y.distance) return x.distance < y.distance;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (options_.max_pairs > 0 && pairs.size() > options_.max_pairs) {
    pairs.resize(options_.max_pairs);
  }
  return pairs;
}

}  // namespace commsig
