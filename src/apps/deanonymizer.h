#ifndef COMMSIG_APPS_DEANONYMIZER_H_
#define COMMSIG_APPS_DEANONYMIZER_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/signature.h"
#include "graph/comm_graph.h"

namespace commsig {

/// A full anonymization of a node pool: position i of `pseudonym_of` holds
/// the pseudonym label assigned to pool node i. Unlike a masquerade (which
/// relabels a small fraction), anonymization re-labels *every* node.
struct AnonymizationPlan {
  std::vector<NodeId> pool;          // original labels
  std::vector<NodeId> pseudonym_of;  // pool[i] -> pseudonym_of[i]

  /// Original label behind a pseudonym, or kInvalidNode.
  NodeId OriginalOf(NodeId pseudonym) const;
};

/// Draws a uniform random bijection from `pool` onto itself (pseudonyms
/// are modelled as a permutation of the existing id space, which keeps the
/// graph universe unchanged). Deterministic under `seed`.
AnonymizationPlan PlanAnonymization(std::span<const NodeId> pool,
                                    uint64_t seed);

/// Applies the plan to `g`: every edge endpoint in the pool is rewritten
/// to its pseudonym.
CommGraph Anonymize(const CommGraph& g, const AnonymizationPlan& plan);

/// One proposed re-identification.
struct Identification {
  NodeId original = kInvalidNode;   // node in the reference window
  NodeId pseudonym = kInvalidNode;  // matched node in the anonymized window
  double distance = 1.0;            // signature distance of the match
  /// Gap to the runner-up candidate; larger = more confident.
  double margin = 0.0;
};

/// Signature-based graph de-anonymization — the paper's third motivating
/// application ("can we identify nodes from an anonymized graph given
/// outside information about known communication patterns per
/// individual?"). Given reference signatures with known labels (an earlier
/// observation window) and the signatures extracted from an anonymized
/// window, it proposes a one-to-one matching.
///
/// Two modes:
///  * independent: each reference node is matched to its nearest
///    anonymized signature (pseudonyms may be claimed more than once);
///  * one-to-one (default): matches are assigned greedily in order of
///    confidence margin, so each pseudonym is used at most once — the
///    standard attack when the adversary knows the populations coincide.
class Deanonymizer {
 public:
  /// How one-to-one matches are assigned.
  enum class AssignmentMode {
    /// Greedy by confidence margin: fast (O(n²) after the distance
    /// matrix) and usually near-optimal.
    kGreedy,
    /// Hungarian optimum minimizing the total matched distance — the
    /// strongest adversary; O(n²·m).
    kOptimal,
  };

  struct Options {
    bool one_to_one = true;
    AssignmentMode assignment = AssignmentMode::kGreedy;
    /// Matches with distance above this are withheld (the adversary
    /// abstains rather than guessing). 1.0 = always guess.
    double max_distance = 1.0;
  };

  explicit Deanonymizer(SignatureDistance dist)
      : Deanonymizer(dist, Options()) {}
  Deanonymizer(SignatureDistance dist, Options options)
      : dist_(dist), options_(options) {}

  /// `reference[i]` is the known-label signature of `originals[i]`;
  /// `anonymous[j]` is the signature of `pseudonyms[j]` in the anonymized
  /// window. Returns proposed identifications, most confident first.
  std::vector<Identification> Identify(
      std::span<const NodeId> originals,
      std::span<const Signature> reference,
      std::span<const NodeId> pseudonyms,
      std::span<const Signature> anonymous) const;

 private:
  SignatureDistance dist_;
  Options options_;
};

/// Fraction of pool nodes whose pseudonym was correctly recovered.
double DeanonymizationAccuracy(std::span<const Identification> ids,
                               const AnonymizationPlan& plan);

}  // namespace commsig

#endif  // COMMSIG_APPS_DEANONYMIZER_H_
