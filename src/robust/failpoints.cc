#include "robust/failpoints.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/log.h"
#include "obs/obs.h"

namespace commsig {

std::string_view FailPointKindName(FailPointKind kind) {
  switch (kind) {
    case FailPointKind::kOff:
      return "off";
    case FailPointKind::kEio:
      return "eio";
    case FailPointKind::kEnospc:
      return "enospc";
    case FailPointKind::kShortWrite:
      return "short_write";
    case FailPointKind::kTornRename:
      return "torn_rename";
    case FailPointKind::kFsyncFail:
      return "fsync_fail";
  }
  return "unknown";
}

bool ParseFailPointKind(std::string_view name, FailPointKind& out) {
  for (FailPointKind kind :
       {FailPointKind::kEio, FailPointKind::kEnospc,
        FailPointKind::kShortWrite, FailPointKind::kTornRename,
        FailPointKind::kFsyncFail}) {
    if (name == FailPointKindName(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* instance =
      new FailPointRegistry();  // NOLINT(commsig-naked-new): leaked singleton
  return *instance;
}

void FailPointRegistry::Arm(const std::string& site, FailPointSpec spec) {
  MutexLock lock(mutex_);
  Entry& entry = sites_[site];
  if (!entry.armed) armed_count_.fetch_add(1);
  entry.spec = spec;
  entry.stats = FailPointStats{};
  entry.armed = true;
  obs::LogInfo("failpoint_armed")
      .Str("site", site)
      .Str("kind", FailPointKindName(spec.kind))
      .U64("after", spec.after)
      .U64("count", spec.count);
}

void FailPointRegistry::Disarm(const std::string& site) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1);
}

void FailPointRegistry::Reset() {
  MutexLock lock(mutex_);
  sites_.clear();
  armed_count_.store(0);
}

Status FailPointRegistry::ArmFromSpec(std::string_view spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;

    const size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("failpoint clause '" +
                                     std::string(clause) +
                                     "' is not site=kind[@after][xcount]");
    }
    std::string site(clause.substr(0, eq));
    std::string_view rest = clause.substr(eq + 1);

    FailPointSpec parsed;
    // kind, then optional @after, then optional xcount (in that order).
    const size_t at = rest.find('@');
    const size_t x = rest.find('x', at == std::string_view::npos ? 0 : at);
    std::string_view kind_name =
        rest.substr(0, std::min(at, x) == std::string_view::npos
                           ? rest.size()
                           : std::min(at, x));
    if (!ParseFailPointKind(kind_name, parsed.kind)) {
      return Status::InvalidArgument("unknown failpoint kind '" +
                                     std::string(kind_name) + "'");
    }
    auto parse_u64 = [](std::string_view digits, uint64_t& out) {
      if (digits.empty()) return false;
      uint64_t v = 0;
      for (char c : digits) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<uint64_t>(c - '0');
      }
      out = v;
      return true;
    };
    if (at != std::string_view::npos) {
      const size_t stop = x == std::string_view::npos ? rest.size() : x;
      if (!parse_u64(rest.substr(at + 1, stop - at - 1), parsed.after)) {
        return Status::InvalidArgument("bad @after in failpoint clause '" +
                                       std::string(clause) + "'");
      }
    }
    if (x != std::string_view::npos) {
      if (!parse_u64(rest.substr(x + 1), parsed.count)) {
        return Status::InvalidArgument("bad xcount in failpoint clause '" +
                                       std::string(clause) + "'");
      }
    }
    Arm(site, parsed);
  }
  return Status::OK();
}

FailPointKind FailPointRegistry::Evaluate(std::string_view site) {
  if (armed_count_.load() == 0) return FailPointKind::kOff;
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return FailPointKind::kOff;
  Entry& entry = it->second;
  const uint64_t hit = ++entry.stats.hits;
  const bool in_range =
      hit > entry.spec.after &&
      (entry.spec.count == 0 || hit <= entry.spec.after + entry.spec.count);
  if (!in_range) return FailPointKind::kOff;
  ++entry.stats.fires;
  COMMSIG_COUNTER_ADD("robust/failpoints_fired", 1);
  obs::LogWarn("failpoint_fired")
      .Str("site", site)
      .Str("kind", FailPointKindName(entry.spec.kind))
      .U64("hit", hit);
  return entry.spec.kind;
}

FailPointStats FailPointRegistry::stats(const std::string& site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? FailPointStats{} : it->second.stats;
}

std::vector<std::string> FailPointRegistry::ArmedSites() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [site, entry] : sites_) {
    if (entry.armed) out.push_back(site);
  }
  return out;
}

namespace failpoints {

namespace {

/// Maps a firing fail-point to the Status the equivalent real failure
/// would carry. Site name included so retry logs and dead letters point
/// at the injection site, not a mystery disk.
Status InjectedStatus(std::string_view site, FailPointKind kind) {
  switch (kind) {
    case FailPointKind::kEnospc:
      return Status::IOError("injected ENOSPC at " + std::string(site));
    case FailPointKind::kFsyncFail:
      return Status::IOError("injected fsync failure at " +
                             std::string(site));
    default:
      return Status::IOError("injected EIO at " + std::string(site));
  }
}

FailPointKind Eval(std::string_view site) {
#ifdef COMMSIG_FAILPOINTS
  return FailPointRegistry::Global().Evaluate(site);
#else
  (void)site;
  return FailPointKind::kOff;
#endif
}

}  // namespace

bool Enabled() {
#ifdef COMMSIG_FAILPOINTS
  return true;
#else
  return false;
#endif
}

Status Inject(std::string_view site) {
  const FailPointKind kind = Eval(site);
  if (kind == FailPointKind::kOff) return Status::OK();
  return InjectedStatus(site, kind);
}

Result<int> OpenForWrite(std::string_view site, const std::string& path) {
  const FailPointKind kind = Eval(site);
  if (kind != FailPointKind::kOff) return InjectedStatus(site, kind);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  return fd;
}

Status WriteAll(std::string_view site, int fd, const char* data,
                size_t size) {
  const FailPointKind kind = Eval(site);
  if (kind == FailPointKind::kEio || kind == FailPointKind::kEnospc ||
      kind == FailPointKind::kFsyncFail) {
    return InjectedStatus(site, kind);
  }
  // A short write persists a prefix — the torn state a real ENOSPC or
  // signal-interrupted writer leaves behind — and then reports failure.
  const size_t to_write =
      kind == FailPointKind::kShortWrite ? size / 2 : size;
  size_t written = 0;
  while (written < to_write) {
    const ssize_t n = ::write(fd, data + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (kind == FailPointKind::kShortWrite) {
    return Status::IOError("injected short write at " + std::string(site) +
                           " (" + std::to_string(to_write) + "/" +
                           std::to_string(size) + " bytes)");
  }
  return Status::OK();
}

Status FsyncFd(std::string_view site, int fd) {
  const FailPointKind kind = Eval(site);
  if (kind != FailPointKind::kOff) return InjectedStatus(site, kind);
  if (::fsync(fd) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status RenameFile(std::string_view site, const std::string& from,
                  const std::string& to) {
  const FailPointKind kind = Eval(site);
  if (kind == FailPointKind::kTornRename) {
    // Tear the frame, then let the rename land: the live name now holds a
    // half-written checkpoint, exactly what a non-atomic filesystem can
    // leave after a crash. The CRC-validating reader must fall back.
    struct stat st{};
    if (::stat(from.c_str(), &st) == 0 && st.st_size > 0) {
      if (::truncate(from.c_str(), st.st_size / 2) != 0) {
        return Status::IOError(std::string("truncate: ") +
                               std::strerror(errno));
      }
    }
  } else if (kind != FailPointKind::kOff) {
    return InjectedStatus(site, kind);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncDir(std::string_view site, const std::string& dir) {
  const FailPointKind kind = Eval(site);
  if (kind != FailPointKind::kOff) return InjectedStatus(site, kind);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  Status s = Status::OK();
  if (::fsync(fd) != 0) {
    s = Status::IOError("fsync dir " + dir + ": " + std::strerror(errno));
  }
  ::close(fd);
  return s;
}

}  // namespace failpoints

}  // namespace commsig
