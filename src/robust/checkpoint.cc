#include "robust/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <vector>

#include "obs/log.h"
#include "obs/obs.h"
#include "robust/failpoints.h"

namespace commsig {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kMagic = 0x43534350;  // "PCSC" little-endian: CSCP
constexpr uint32_t kFormatVersion = 1;

/// Extracts the sequence number from `<stem>.<seq>.ckpt`, or returns false.
bool ParseSequence(const std::string& name, const std::string& stem,
                   uint64_t* sequence) {
  const std::string prefix = stem + ".";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  *sequence = seq;
  return true;
}

Result<CheckpointData> ParseCheckpointFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path.string());
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read error on " + path.string());

  ByteReader reader(bytes);
  Result<uint32_t> magic = reader.U32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return Status::Corruption("bad checkpoint magic in " + path.string());
  }
  Result<uint32_t> version = reader.U32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(*version));
  }
  Result<uint64_t> sequence = reader.U64();
  if (!sequence.ok()) return sequence.status();
  Result<uint64_t> length = reader.U64();
  if (!length.ok()) return length.status();
  Result<uint32_t> crc = reader.U32();
  if (!crc.ok()) return crc.status();
  if (*length != reader.remaining()) {
    return Status::Corruption("checkpoint payload truncated in " +
                              path.string());
  }
  std::string payload = bytes.substr(bytes.size() - *length);
  if (Crc32(payload) != *crc) {
    return Status::Corruption("checkpoint CRC mismatch in " + path.string());
  }
  CheckpointData data;
  data.sequence = *sequence;
  data.payload = std::move(payload);
  return data;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, Options options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  options_.keep = std::max<size_t>(options_.keep, 2);
}

std::string CheckpointManager::FileName(uint64_t sequence) const {
  // Zero-padded so lexicographic and numeric order agree in `ls`.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(sequence));
  return options_.stem + "." + buf + ".ckpt";
}

Status CheckpointManager::Save(uint64_t sequence, std::string_view payload) {
  MutexLock lock(io_mutex_);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir " + dir_ + ": " +
                           ec.message());
  }

  ByteWriter frame;
  frame.PutU32(kMagic);
  frame.PutU32(kFormatVersion);
  frame.PutU64(sequence);
  frame.PutU64(payload.size());
  frame.PutU32(Crc32(payload));

  // The durable-write dance, each step through the fail-point layer:
  // write tmp, fsync tmp (the bytes), rename into place, fsync the
  // directory (the name). Skipping either fsync leaves a window where a
  // power cut after a "successful" Save loses the checkpoint — the rename
  // orders the metadata but pins neither it nor the data to the platter.
  const fs::path final_path = fs::path(dir_) / FileName(sequence);
  const fs::path tmp_path = fs::path(dir_) / (options_.stem + ".tmp");
  Result<int> fd = failpoints::OpenForWrite("checkpoint/open",
                                            tmp_path.string());
  if (!fd.ok()) return fd.status();
  Status io = failpoints::WriteAll("checkpoint/write", *fd,
                                   frame.bytes().data(), frame.size());
  if (io.ok()) {
    io = failpoints::WriteAll("checkpoint/write", *fd, payload.data(),
                              payload.size());
  }
  if (io.ok()) io = failpoints::FsyncFd("checkpoint/fsync", *fd);
  ::close(*fd);
  if (io.ok()) {
    io = failpoints::RenameFile("checkpoint/rename", tmp_path.string(),
                                final_path.string());
  }
  if (io.ok()) io = failpoints::FsyncDir("checkpoint/dirsync", dir_);
  if (!io.ok()) {
    // Best-effort scrub so a failed Save never leaves a stray .tmp for the
    // next writer to trip over (rename failures leave it behind).
    fs::remove(tmp_path, ec);
    return io;
  }
  COMMSIG_COUNTER_ADD("robust/checkpoints_saved", 1);
  COMMSIG_HISTOGRAM_OBSERVE("robust/checkpoint_bytes",
                            frame.size() + payload.size());

  // Prune: keep the newest `keep` checkpoints.
  std::vector<uint64_t> sequences;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t seq = 0;
    if (ParseSequence(entry.path().filename().string(), options_.stem,
                      &seq)) {
      sequences.push_back(seq);
    }
  }
  std::sort(sequences.begin(), sequences.end());
  while (sequences.size() > options_.keep) {
    fs::remove(fs::path(dir_) / FileName(sequences.front()), ec);
    sequences.erase(sequences.begin());
  }
  return Status::OK();
}

Result<CheckpointData> CheckpointManager::LoadLatest() const {
  std::error_code ec;
  std::vector<uint64_t> sequences;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t seq = 0;
    if (ParseSequence(entry.path().filename().string(), options_.stem,
                      &seq)) {
      sequences.push_back(seq);
    }
  }
  if (ec || sequences.empty()) {
    return Status::NotFound("no checkpoints under " + dir_);
  }
  std::sort(sequences.begin(), sequences.end(),
            [](uint64_t a, uint64_t b) { return a > b; });

  size_t corrupt_skipped = 0;
  for (uint64_t seq : sequences) {
    Result<CheckpointData> data =
        ParseCheckpointFile(fs::path(dir_) / FileName(seq));
    if (data.ok()) {
      CheckpointData out = std::move(*data);
      out.recovered_from_fallback = corrupt_skipped > 0;
      out.corrupt_skipped = corrupt_skipped;
      COMMSIG_COUNTER_ADD("robust/checkpoints_loaded", 1);
      COMMSIG_COUNTER_ADD("robust/checkpoints_corrupt", corrupt_skipped);
      if (corrupt_skipped > 0) {
        obs::LogWarn("checkpoint_fallback")
            .Str("dir", dir_)
            .U64("sequence", seq)
            .U64("corrupt_skipped", corrupt_skipped);
      }
      return out;
    }
    obs::LogWarn("checkpoint_corrupt")
        .Str("dir", dir_)
        .U64("sequence", seq)
        .Str("status", data.status().ToString());
    ++corrupt_skipped;
  }
  COMMSIG_COUNTER_ADD("robust/checkpoints_corrupt", corrupt_skipped);
  return Status::Corruption("all " + std::to_string(corrupt_skipped) +
                            " checkpoint(s) under " + dir_ +
                            " failed validation");
}

}  // namespace commsig
