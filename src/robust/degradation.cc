#include "robust/degradation.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/obs.h"

namespace commsig {

std::string_view DegradationTierName(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kOk:
      return "ok";
    case DegradationTier::kShedTracing:
      return "shed_tracing";
    case DegradationTier::kWidenCheckpoints:
      return "widen_checkpoints";
    case DegradationTier::kSketchOnly:
      return "sketch_only";
  }
  return "unknown";
}

DegradationController::DegradationController()
    : DegradationController(Options()) {}

DegradationController::DegradationController(Options options)
    : options_(std::move(options)) {
  options_.escalate_after = std::max<uint32_t>(options_.escalate_after, 1);
  options_.recover_after = std::max<uint32_t>(options_.recover_after, 1);
  options_.checkpoint_stretch =
      std::max<uint64_t>(options_.checkpoint_stretch, 1);
  // Publish the initial ok state so /healthz names the component from the
  // first scrape, not only after the first incident.
  obs::HealthRegistry::Global().Set(options_.component, health(),
                                    "tier=" +
                                        std::string(DegradationTierName(
                                            tier_)));
  COMMSIG_GAUGE_SET("robust/degradation_tier", static_cast<int>(tier_));
}

obs::HealthLevel DegradationController::health() const {
  if (tier_ == DegradationTier::kOk) return obs::HealthLevel::kOk;
  if (tier_ == DegradationTier::kSketchOnly) {
    return obs::HealthLevel::kCritical;
  }
  return obs::HealthLevel::kDegraded;
}

void DegradationController::ReportFailure(std::string_view reason) {
  ReportBad("failure", reason);
}

void DegradationController::ReportOverload(std::string_view reason) {
  ReportBad("overload", reason);
}

void DegradationController::ReportBad(std::string_view kind,
                                      std::string_view reason) {
  healthy_streak_ = 0;
  ++bad_streak_;
  COMMSIG_COUNTER_ADD("robust/degradation_bad_signals", 1);
  if (bad_streak_ < options_.escalate_after ||
      tier_ == DegradationTier::kSketchOnly) {
    return;
  }
  bad_streak_ = 0;
  Transition(static_cast<DegradationTier>(static_cast<int>(tier_) + 1),
             std::string(kind) + ":" + std::string(reason));
}

void DegradationController::ReportHealthy() {
  bad_streak_ = 0;
  if (tier_ == DegradationTier::kOk) return;
  ++healthy_streak_;
  if (healthy_streak_ < options_.recover_after) return;
  healthy_streak_ = 0;
  Transition(static_cast<DegradationTier>(static_cast<int>(tier_) - 1),
             "recovered");
}

void DegradationController::Transition(DegradationTier to,
                                       std::string_view reason) {
  const DegradationTier from = tier_;
  tier_ = to;
  ++transitions_;
  COMMSIG_GAUGE_SET("robust/degradation_tier", static_cast<int>(tier_));
  COMMSIG_COUNTER_ADD("robust/degradation_transitions", 1);
  obs::LogWarn("degradation_transition")
      .Str("component", options_.component)
      .Str("from", DegradationTierName(from))
      .Str("to", DegradationTierName(to))
      .Str("reason", reason);
  obs::HealthRegistry::Global().Set(
      options_.component, health(),
      "tier=" + std::string(DegradationTierName(tier_)) +
          " reason=" + std::string(reason));
}

}  // namespace commsig
