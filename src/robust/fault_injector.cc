#include "robust/fault_injector.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include "obs/obs.h"

namespace commsig {

std::string FaultInjector::Report::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "dropped=%llu duplicated=%llu weights_corrupted=%llu "
                "times_corrupted=%llu swapped=%llu",
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(duplicated),
                static_cast<unsigned long long>(weights_corrupted),
                static_cast<unsigned long long>(times_corrupted),
                static_cast<unsigned long long>(swapped));
  return buf;
}

FaultInjector::FaultInjector(Options options)
    : options_(options), rng_(SplitMix64(options.seed ^ 0xfa017)) {}

std::vector<TraceEvent> FaultInjector::PerturbEvents(
    const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    TraceEvent e = events[i];
    if (rng_.Bernoulli(options_.p_drop)) {
      ++report_.dropped;
      continue;
    }
    if (rng_.Bernoulli(options_.p_duplicate)) {
      ++report_.duplicated;
      out.push_back(e);
      out.push_back(e);
      continue;
    }
    if (rng_.Bernoulli(options_.p_corrupt_weight)) {
      ++report_.weights_corrupted;
      // Rotate through the ways a weight field goes bad in practice.
      switch (rng_.UniformInt(4)) {
        case 0: e.weight = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: e.weight = std::numeric_limits<double>::infinity(); break;
        case 2: e.weight = -e.weight; break;
        default: e.weight *= 1e12; break;
      }
      out.push_back(e);
      continue;
    }
    if (rng_.Bernoulli(options_.p_corrupt_time)) {
      ++report_.times_corrupted;
      if (rng_.Bernoulli(0.5) && e.time > 0) {
        // Regression: jump backwards by up to the full current timestamp.
        e.time -= rng_.UniformInt(e.time) + 1;
      } else {
        e.time += rng_.UniformInt(1u << 20) + 1;
      }
      out.push_back(e);
      continue;
    }
    if (rng_.Bernoulli(options_.p_swap) && i + 1 < events.size()) {
      ++report_.swapped;
      out.push_back(events[i + 1]);
      out.push_back(e);
      ++i;
      continue;
    }
    out.push_back(e);
  }
  COMMSIG_COUNTER_ADD("robust/faults_injected", report_.Total());
  return out;
}

Status FaultInjector::CorruptFileBits(const std::string& path,
                                      size_t num_flips) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("stat " + path + ": " + ec.message());
  if (size == 0) return Status::InvalidArgument("cannot corrupt empty file");

  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return Status::IOError("open " + path);
  for (size_t i = 0; i < num_flips; ++i) {
    const uint64_t offset = rng_.UniformInt(size);
    const int bit = static_cast<int>(rng_.UniformInt(8));
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    if (!file.read(&byte, 1)) return Status::IOError("read " + path);
    byte = static_cast<char>(byte ^ (1 << bit));
    file.seekp(static_cast<std::streamoff>(offset));
    if (!file.write(&byte, 1)) return Status::IOError("write " + path);
  }
  file.flush();
  if (!file) return Status::IOError("flush " + path);
  return Status::OK();
}

Status FaultInjector::TruncateFileRandomly(const std::string& path,
                                           uint64_t* new_size) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("stat " + path + ": " + ec.message());
  const uint64_t keep = size == 0 ? 0 : rng_.UniformInt(size);
  std::filesystem::resize_file(path, keep, ec);
  if (ec) return Status::IOError("truncate " + path + ": " + ec.message());
  if (new_size != nullptr) *new_size = keep;
  return Status::OK();
}

}  // namespace commsig
