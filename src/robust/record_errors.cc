#include "robust/record_errors.h"

#include "common/csv.h"
#include "obs/log.h"
#include "obs/obs.h"

namespace commsig {

std::string_view RecordErrorReasonName(RecordErrorReason reason) {
  switch (reason) {
    case RecordErrorReason::kTruncated:
      return "truncated";
    case RecordErrorReason::kBadMagic:
      return "bad_magic";
    case RecordErrorReason::kBadRecordCount:
      return "bad_record_count";
    case RecordErrorReason::kBadField:
      return "bad_field";
    case RecordErrorReason::kZeroNode:
      return "zero_node";
    case RecordErrorReason::kNonPositiveWeight:
      return "non_positive_weight";
    case RecordErrorReason::kNonFiniteWeight:
      return "non_finite_weight";
    case RecordErrorReason::kTimestampRegression:
      return "timestamp_regression";
    case RecordErrorReason::kPoisonWindow:
      return "poison_window";
  }
  return "unknown";
}

namespace {

void BumpReasonCounter(RecordErrorReason reason) {
  // One switch per rejection keeps the macro's string literals (and their
  // cached registry lookups) per call site.
  switch (reason) {
    case RecordErrorReason::kTruncated:
      COMMSIG_COUNTER_ADD("robust/quarantined_truncated", 1);
      break;
    case RecordErrorReason::kBadMagic:
      COMMSIG_COUNTER_ADD("robust/quarantined_bad_magic", 1);
      break;
    case RecordErrorReason::kBadRecordCount:
      COMMSIG_COUNTER_ADD("robust/quarantined_bad_record_count", 1);
      break;
    case RecordErrorReason::kBadField:
      COMMSIG_COUNTER_ADD("robust/quarantined_bad_field", 1);
      break;
    case RecordErrorReason::kZeroNode:
      COMMSIG_COUNTER_ADD("robust/quarantined_zero_node", 1);
      break;
    case RecordErrorReason::kNonPositiveWeight:
      COMMSIG_COUNTER_ADD("robust/quarantined_non_positive_weight", 1);
      break;
    case RecordErrorReason::kNonFiniteWeight:
      COMMSIG_COUNTER_ADD("robust/quarantined_non_finite_weight", 1);
      break;
    case RecordErrorReason::kTimestampRegression:
      COMMSIG_COUNTER_ADD("robust/quarantined_timestamp_regression", 1);
      break;
    case RecordErrorReason::kPoisonWindow:
      COMMSIG_COUNTER_ADD("robust/quarantined_poison_window", 1);
      break;
  }
}

}  // namespace

void RecordErrorLog::Record(RecordErrorReason reason, uint64_t position,
                            std::string detail) {
  ++total_;
  ++per_reason_[static_cast<size_t>(reason)];
  if (entries_.size() < max_retained_) {
    entries_.push_back({reason, position, std::move(detail)});
  }
}

uint64_t RecordErrorLog::count(RecordErrorReason reason) const {
  return per_reason_[static_cast<size_t>(reason)];
}

Status RecordErrorLog::WriteCsv(const std::string& path) const {
  CsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  writer.WriteRow({"# commsig-dead-letter reason,position,detail"});
  for (const RecordError& e : entries_) {
    writer.WriteRow({std::string(RecordErrorReasonName(e.reason)),
                     std::to_string(e.position), e.detail});
  }
  return writer.Close();
}

void RecordErrorLog::Clear() {
  total_ = 0;
  for (uint64_t& c : per_reason_) c = 0;
  entries_.clear();
}

namespace robust_internal {

Status HandleBadRecord(const IngestOptions& options, uint64_t* errors_so_far,
                       RecordErrorReason reason, uint64_t position,
                       std::string detail, bool invalid_argument_on_fail) {
  if (options.policy == ErrorPolicy::kFail) {
    std::string msg = std::string(RecordErrorReasonName(reason)) + " at " +
                      std::to_string(position) + ": " + detail;
    return invalid_argument_on_fail ? Status::InvalidArgument(msg)
                                    : Status::Corruption(msg);
  }
  ++*errors_so_far;
  BumpReasonCounter(reason);
  COMMSIG_COUNTER_ADD("robust/records_rejected", 1);
  // Debug level: per-record detail is for forensics, not steady-state
  // operation (the readers' callers log one summary per ingest).
  obs::LogDebug("record_rejected")
      .Str("reason", RecordErrorReasonName(reason))
      .U64("position", position)
      .Str("detail", detail);
  if (options.policy == ErrorPolicy::kQuarantine &&
      options.error_log != nullptr) {
    options.error_log->Record(reason, position, std::move(detail));
  }
  if (options.max_errors > 0 && *errors_so_far > options.max_errors) {
    return Status::Corruption(
        "error budget exhausted: more than " +
        std::to_string(options.max_errors) +
        " malformed records (last: " +
        std::string(RecordErrorReasonName(reason)) + " at " +
        std::to_string(position) + ")");
  }
  if (options.global_budget != nullptr) {
    ++options.global_budget->total;
    if (options.global_budget->exhausted()) {
      obs::LogError("budget_exhausted")
          .Str("budget", "global")
          .U64("max_total_errors", options.global_budget->max_total_errors)
          .U64("total_rejected", options.global_budget->total)
          .Str("last_reason", RecordErrorReasonName(reason))
          .U64("last_position", position);
      COMMSIG_COUNTER_ADD("robust/global_budget_exhausted", 1);
      return Status::Corruption(
          "global error budget exhausted: more than " +
          std::to_string(options.global_budget->max_total_errors) +
          " malformed records across all inputs (last: " +
          std::string(RecordErrorReasonName(reason)) + " at " +
          std::to_string(position) + ")");
    }
  }
  return Status::OK();
}

}  // namespace robust_internal

}  // namespace commsig
