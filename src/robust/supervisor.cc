#include "robust/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/random.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/failpoints.h"

namespace commsig {

namespace {

/// Serialized builder state — the in-memory "last good checkpoint" the
/// epoch transaction rolls back to.
std::string SnapshotBuilder(const StreamingSignatureBuilder& builder) {
  ByteWriter out;
  builder.AppendTo(out);
  return std::move(out).Take();
}

}  // namespace

uint64_t StreamSupervisor::FingerprintEvents(
    const std::vector<TraceEvent>& events) {
  uint64_t h = SplitMix64(0x5160 ^ events.size());
  for (const TraceEvent& e : events) {
    h = SplitMix64(h ^ e.src);
    h = SplitMix64(h ^ e.dst);
    h = SplitMix64(h ^ e.time);
    uint64_t w = 0;
    std::memcpy(&w, &e.weight, sizeof(w));
    h = SplitMix64(h ^ w);
  }
  return h;
}

StreamSupervisor::StreamSupervisor(std::vector<NodeId> focal, Options options)
    : focal_(std::move(focal)),
      options_(std::move(options)),
      retrier_(options_.retry),
      degradation_(options_.degrade) {
  options_.max_epoch_attempts =
      std::max<uint32_t>(options_.max_epoch_attempts, 1);
  if (!options_.checkpoint_dir.empty()) {
    manager_ = std::make_unique<CheckpointManager>(options_.checkpoint_dir);
  }
  tracing_baseline_ = obs::TraceCollector::Global().enabled();
  tracing_current_ = tracing_baseline_;
}

uint64_t StreamSupervisor::RestoreOrFresh(uint64_t fingerprint,
                                          size_t total_events,
                                          StreamRunReport& report) {
  uint64_t start = 0;
  if (manager_ != nullptr) {
    auto loaded = manager_->LoadLatest();
    if (loaded.ok()) {
      if (loaded->corrupt_skipped > 0) {
        obs::LogWarn("checkpoint_corrupt_skipped")
            .U64("skipped", loaded->corrupt_skipped)
            .U64("sequence", loaded->sequence);
      }
      ByteReader in(loaded->payload);
      auto ckpt_fp = in.U64();
      auto consumed = in.U64();
      if (!ckpt_fp.ok() || !consumed.ok()) {
        obs::LogWarn("checkpoint_unreadable").Str("action", "starting fresh");
      } else if (*ckpt_fp != fingerprint || *consumed > total_events) {
        obs::LogWarn("checkpoint_stale")
            .Str("reason", "input changed")
            .Str("action", "starting fresh");
      } else {
        auto restored = StreamingSignatureBuilder::FromBytes(in);
        if (restored.ok() && in.AtEnd()) {
          builder_ = std::make_unique<StreamingSignatureBuilder>(
              *std::move(restored));
          start = *consumed;
          report.restored_from_checkpoint = true;
          report.restored_from_fallback = loaded->recovered_from_fallback;
          COMMSIG_COUNTER_ADD("robust/checkpoint_restores", 1);
          obs::LogInfo("checkpoint_restored")
              .U64("resume_event", start)
              .U64("total_events", total_events)
              .Bool("fallback", loaded->recovered_from_fallback);
        } else {
          obs::LogWarn("checkpoint_invalid")
              .Str("detail", restored.ok() ? "trailing bytes"
                                           : restored.status().ToString())
              .Str("action", "starting fresh");
        }
      }
    } else if (!loaded.status().IsNotFound()) {
      obs::LogWarn("checkpoint_restore_failed")
          .Str("status", loaded.status().ToString())
          .Str("action", "starting fresh");
    }
  }
  if (builder_ == nullptr) {
    builder_ = std::make_unique<StreamingSignatureBuilder>(focal_,
                                                           options_.builder);
  }
  return start;
}

Status StreamSupervisor::ObserveSlice(const std::vector<TraceEvent>& events,
                                      uint64_t begin, uint64_t end,
                                      obs::WindowRecord& epoch,
                                      std::string_view site) {
  for (uint64_t i = begin; i < end; ++i) {
    {
      obs::ScopedStageTimer timer(epoch, obs::PipelineStage::kWindowBuild);
      builder_->Observe(events[i]);
    }
    ++epoch.events;
    // Replay pacing for demos and smoke tests: stretches the run so the
    // introspection endpoints can be probed while the stream is live.
    if (options_.replay_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.replay_delay_us));
    }
    if (options_.replay_rate > 0.0) PaceReplay(events[i].time);
  }
  // Evaluated after the observes so a firing epoch fault always exercises
  // the rollback path against genuinely mutated state.
  return failpoints::Inject(site);
}

void StreamSupervisor::PaceReplay(uint64_t event_time) {
  const uint64_t now_us = obs::TraceCollector::Global().NowMicros();
  if (!replay_anchored_) {
    replay_anchored_ = true;
    replay_wall_start_us_ = now_us;
    replay_time_base_ = event_time;
    return;
  }
  if (event_time <= replay_time_base_) return;
  const double offset_us =
      static_cast<double>(event_time - replay_time_base_) * 1e6 /
      options_.replay_rate;
  const uint64_t due_us =
      replay_wall_start_us_ + static_cast<uint64_t>(offset_us);
  if (due_us <= now_us) return;
  // Cap each sleep so kill-after crashes, epoch faults and test shutdowns
  // stay responsive even at very slow replay rates; the schedule is
  // absolute, so successive events resume the wait where this one left it.
  constexpr uint64_t kMaxSleepUs = 50000;
  const uint64_t wait_us = std::min<uint64_t>(due_us - now_us, kMaxSleepUs);
  std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
}

void StreamSupervisor::RunEpoch(const std::vector<TraceEvent>& events,
                                uint64_t begin, uint64_t end,
                                obs::WindowRecord& epoch,
                                StreamRunReport& report) {
  // Faults can only originate from armed fail-points (Observe does no IO),
  // so the fault-free fast path skips the snapshot entirely.
  const bool transactional =
      failpoints::Enabled() && FailPointRegistry::Global().any_armed();
  const uint64_t begin_us = obs::TraceCollector::Global().NowMicros();
  if (!transactional) {
    // No armed fail-points: the slice cannot fail.
    Status s = ObserveSlice(events, begin, end, epoch, "stream/epoch");
    (void)s;
    report.events_processed += end - begin;
    degradation_.ReportHealthy();
    ApplyTierEffects();
    return;
  }

  const std::string snapshot = SnapshotBuilder(*builder_);
  const obs::WindowRecord epoch_snapshot = epoch;
  auto rollback = [&]() {
    ByteReader in(snapshot);
    auto restored = StreamingSignatureBuilder::FromBytes(in);
    // The snapshot is bytes we just serialized ourselves; a decode failure
    // here would be a programming error, not an input fault.
    builder_ = std::make_unique<StreamingSignatureBuilder>(
        *std::move(restored));
    epoch = epoch_snapshot;
  };

  for (uint32_t attempt = 1;; ++attempt) {
    Status s = ObserveSlice(events, begin, end, epoch, "stream/epoch");
    if (s.ok()) {
      report.events_processed += end - begin;
      if (options_.epoch_budget_us > 0 &&
          obs::TraceCollector::Global().NowMicros() - begin_us >
              options_.epoch_budget_us) {
        degradation_.ReportOverload("epoch_budget");
      } else {
        degradation_.ReportHealthy();
      }
      ApplyTierEffects();
      return;
    }
    rollback();
    ++report.epoch_retries;
    COMMSIG_COUNTER_ADD("robust/epoch_failures", 1);
    obs::LogWarn("epoch_failed")
        .U64("begin", begin)
        .U64("end", end)
        .U64("attempt", attempt)
        .Str("status", s.ToString());
    degradation_.ReportFailure("epoch_failed");
    ApplyTierEffects();
    if (attempt >= options_.max_epoch_attempts) break;
  }

  // In-place retries exhausted: rebuild from scratch, bypassing the
  // incremental resume path (and with it the "stream/epoch" fault site) —
  // a fresh builder replaying the stream from event zero is bit-identical
  // to the incremental state when it succeeds.
  auto fresh = std::make_unique<StreamingSignatureBuilder>(focal_,
                                                           options_.builder);
  obs::WindowRecord rebuild_epoch = epoch_snapshot;
  std::swap(builder_, fresh);
  for (uint64_t i = 0; i < begin; ++i) {
    builder_->Observe(events[i]);
  }
  Status rebuilt =
      ObserveSlice(events, begin, end, rebuild_epoch, "stream/rebuild");
  if (rebuilt.ok()) {
    epoch = rebuild_epoch;
    ++report.epochs_rebuilt;
    report.events_processed += end - begin;
    COMMSIG_COUNTER_ADD("robust/epoch_rebuilds", 1);
    obs::LogWarn("epoch_rebuilt_from_scratch")
        .U64("begin", begin)
        .U64("end", end)
        .U64("replayed_events", end);
    degradation_.ReportHealthy();
    ApplyTierEffects();
    return;
  }

  // Scratch rebuild failed too: this epoch is poison. Skip its events and
  // leave a typed dead-letter record so the operator can replay them. The
  // old builder is already at the pre-epoch snapshot state from the last
  // rollback, so swapping it back is the whole recovery.
  std::swap(builder_, fresh);
  ++report.epochs_quarantined;
  report.events_quarantined += end - begin;
  COMMSIG_COUNTER_ADD("robust/epochs_quarantined", 1);
  obs::LogError("epoch_quarantined")
      .U64("begin", begin)
      .U64("end", end)
      .U64("events_skipped", end - begin)
      .U64("attempts", options_.max_epoch_attempts)
      .Str("status", rebuilt.ToString());
  if (options_.dead_letters != nullptr) {
    options_.dead_letters->Record(
        RecordErrorReason::kPoisonWindow, begin,
        "epoch [" + std::to_string(begin) + ", " + std::to_string(end) +
            ") skipped after " + std::to_string(options_.max_epoch_attempts) +
            " attempts + scratch rebuild: " + rebuilt.ToString());
  }
  degradation_.ReportFailure("epoch_quarantined");
  ApplyTierEffects();
}

void StreamSupervisor::SaveCheckpoint(uint64_t consumed, uint64_t fingerprint,
                                      StreamRunReport& report) {
  ByteWriter out;
  out.PutU64(fingerprint);
  out.PutU64(consumed);
  builder_->AppendTo(out);
  const std::string& payload = out.bytes();
  Status s = retrier_.Run("checkpoint_save", [&]() {
    return manager_->Save(consumed, payload);
  });
  if (s.ok()) {
    ++report.checkpoints_saved;
    return;
  }
  ++report.checkpoint_save_failures;
  obs::LogError("checkpoint_save_failed")
      .U64("consumed", consumed)
      .Str("status", s.ToString());
  degradation_.ReportFailure("checkpoint_save_failed");
  ApplyTierEffects();
}

void StreamSupervisor::Emit(uint64_t position, obs::WindowRecord& epoch) {
  // Periodic re-emission. The builder memoizes extractions per focal node,
  // so between two emissions only the nodes that actually talked pay for a
  // re-extraction; everyone else is a cache hit. At the sketch-only tier
  // the UT extraction — whose cache is invalidated globally by any novelty
  // change — is shed, keeping only the per-node TT signatures.
  const bool sketch_only = degradation_.sketch_only();
  size_t active = 0;
  {
    COMMSIG_SPAN("stream/emit");
    obs::ScopedStageTimer timer(epoch, obs::PipelineStage::kExtract);
    for (NodeId v : focal_) {
      if (!builder_->TopTalkers(v, options_.k).empty()) ++active;
      if (!sketch_only) builder_->UnexpectedTalkers(v, options_.k);
    }
  }
  epoch.dirty_nodes = active;
  epoch.reused_nodes = focal_.size() - active;
  obs::LogInfo("stream_emit")
      .U64("position", position)
      .U64("active", active)
      .U64("focal", focal_.size());
}

void StreamSupervisor::ApplyTierEffects() {
  if (!options_.manage_tracing) return;
  const bool want = degradation_.shed_tracing() ? false : tracing_baseline_;
  if (want != tracing_current_) {
    obs::TraceCollector::Global().SetEnabled(want);
    tracing_current_ = want;
  }
}

StreamRunReport StreamSupervisor::Run(const std::vector<TraceEvent>& events) {
  StreamRunReport report;
  const uint64_t n = events.size();
  const uint64_t fingerprint = FingerprintEvents(events);
  const uint64_t start = RestoreOrFresh(fingerprint, n, report);
  report.start_event = start;
  report.final_position = start;

  // Stream attribution: the builder is cumulative (no discrete graph
  // windows), so each epoch — the emit cadence when set, else the
  // checkpoint cadence — is reported as one pipeline window.
  const uint64_t window_len = options_.emit_every > 0
                                  ? options_.emit_every
                                  : options_.checkpoint_every;
  obs::WindowRecord epoch;
  uint64_t epoch_index = 0;
  auto begin_window = [&]() {
    epoch = obs::WindowRecord{};
    epoch.window_index = epoch_index;
    epoch.focal_nodes = focal_.size();
  };
  auto finish_window = [&]() {
    obs::WindowStatsAggregator::Global().Record(epoch);
    ++epoch_index;
    begin_window();
  };
  begin_window();

  const uint64_t kill_pos = options_.kill_after > 0
                                ? start + options_.kill_after
                                : UINT64_MAX;
  uint64_t pos = start;
  while (pos < n) {
    // The next epoch boundary: the earliest of the emit cadence, the
    // (possibly degradation-stretched) checkpoint cadence, the simulated
    // crash position, and end of stream. Cadences are keyed to the
    // absolute stream position, so a restored run checkpoints and emits at
    // the same offsets as an uninterrupted one.
    const uint64_t every_eff =
        options_.checkpoint_every * degradation_.checkpoint_stretch();
    uint64_t end = n;
    auto align = [&](uint64_t cadence) {
      if (cadence == 0) return;
      end = std::min(end, (pos / cadence + 1) * cadence);
    };
    align(options_.emit_every);
    align(every_eff);
    align(window_len);
    if (kill_pos > pos) end = std::min(end, kill_pos);

    RunEpoch(events, pos, end, epoch, report);
    pos = end;
    report.final_position = pos;
    ++report.epochs;

    if (every_eff > 0 && pos % every_eff == 0) {
      if (manager_ != nullptr) SaveCheckpoint(pos, fingerprint, report);
      // In-run telemetry flush, keyed to the checkpoint cadence so a
      // watcher tailing --metrics-out sees progress before the run ends.
      // A flush that fails even after retries is dropped (the next cadence
      // rewrites the full snapshot anyway); the Retrier already logged it.
      if (options_.flush_telemetry) {
        Status flushed = retrier_.Run("telemetry_flush",
                                      options_.flush_telemetry);
        (void)flushed;
      }
    }
    if (options_.emit_every > 0 && pos % options_.emit_every == 0) {
      Emit(pos, epoch);
    }
    if (window_len > 0 && pos % window_len == 0) finish_window();
    if (pos == kill_pos && pos < n) {
      obs::LogWarn("stream_simulated_crash")
          .U64("position", pos)
          .U64("total_events", n);
      report.killed = true;
      report.io_retries = retrier_.retries();
      report.final_tier = degradation_.tier();
      return report;
    }
  }
  if (epoch.events > 0) finish_window();
  if (manager_ != nullptr && start < n) {
    SaveCheckpoint(n, fingerprint, report);
  }
  report.io_retries = retrier_.retries();
  report.final_tier = degradation_.tier();
  obs::LogInfo("stream_done")
      .U64("events_this_run", report.events_processed)
      .U64("events_total", builder_->events_observed());
  return report;
}

}  // namespace commsig
