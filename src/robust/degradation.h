#ifndef COMMSIG_ROBUST_DEGRADATION_H_
#define COMMSIG_ROBUST_DEGRADATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/health.h"

namespace commsig {

/// Load-shedding tiers, ordered from healthy to maximally degraded. Each
/// tier includes every cheaper tier's shedding:
///
///   0 kOk                full service
///   1 kShedTracing       tracing spans dropped (observability pays first)
///   2 kWidenCheckpoints  checkpoint/telemetry cadence stretched
///   3 kSketchOnly        RWR warm-starts abandoned; sketch-backed TT/UT
///                        schemes only (the cheapest defined approximation)
enum class DegradationTier : int {
  kOk = 0,
  kShedTracing = 1,
  kWidenCheckpoints = 2,
  kSketchOnly = 3,
};

/// Stable snake_case name ("ok", "shed_tracing", "widen_checkpoints",
/// "sketch_only") — used in /healthz details, log events and metrics.
std::string_view DegradationTierName(DegradationTier tier);

/// Overload/fault controller for the stream runtime. Consumers report a
/// signal per epoch — failure (epoch retry, IO retry exhaustion), overload
/// (window budget blown), or healthy — and the controller walks the tier
/// ladder: `escalate_after` consecutive bad signals step one tier up,
/// `recover_after` consecutive healthy signals step one tier down. Every
/// transition emits a structured `degradation_transition` log event, sets
/// the `robust/degradation_tier` gauge, and publishes the tier into the
/// obs HealthRegistry under `component` (tiers 1-2 map to degraded, tier 3
/// to critical), which /healthz serves live.
///
/// Not thread-safe: one controller per single-threaded supervisor loop.
class DegradationController {
 public:
  struct Options {
    /// Consecutive bad signals that step the ladder one tier up.
    uint32_t escalate_after = 3;
    /// Consecutive healthy signals that step it one tier back down.
    uint32_t recover_after = 8;
    /// Checkpoint/telemetry cadence multiplier at tier >= 2.
    uint64_t checkpoint_stretch = 4;
    /// HealthRegistry component name.
    std::string component = "stream";
  };

  // Two overloads instead of one defaulted argument: GCC rejects `= {}`
  // here because Options' member initializers aren't complete yet at this
  // point of the enclosing class.
  DegradationController();
  explicit DegradationController(Options options);

  /// A hard failure signal (failed epoch, exhausted IO retries).
  void ReportFailure(std::string_view reason);
  /// An overload signal (window budget blown, queue saturated).
  void ReportOverload(std::string_view reason);
  /// A clean epoch.
  void ReportHealthy();

  DegradationTier tier() const { return tier_; }
  obs::HealthLevel health() const;

  /// Tier effects, read by the supervisor each epoch.
  bool shed_tracing() const { return tier_ >= DegradationTier::kShedTracing; }
  uint64_t checkpoint_stretch() const {
    return tier_ >= DegradationTier::kWidenCheckpoints
               ? options_.checkpoint_stretch
               : 1;
  }
  bool sketch_only() const { return tier_ >= DegradationTier::kSketchOnly; }

  uint64_t transitions() const { return transitions_; }

 private:
  void ReportBad(std::string_view kind, std::string_view reason);
  void Transition(DegradationTier to, std::string_view reason);

  Options options_;
  DegradationTier tier_ = DegradationTier::kOk;
  uint32_t bad_streak_ = 0;
  uint32_t healthy_streak_ = 0;
  uint64_t transitions_ = 0;
};

}  // namespace commsig

#endif  // COMMSIG_ROBUST_DEGRADATION_H_
