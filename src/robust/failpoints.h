#ifndef COMMSIG_ROBUST_FAILPOINTS_H_
#define COMMSIG_ROBUST_FAILPOINTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace commsig {

/// Deterministic IO fail-points: the filesystem-level counterpart of
/// FaultInjector's record corruption. Every fallible IO site in the
/// runtime (checkpoint write/fsync/rename, telemetry flush, log-file sink,
/// reader open, the stream epoch itself) evaluates a named fail-point
/// before doing real work; an armed site injects the configured fault on a
/// chosen hit, so every recovery path — retry, checkpoint fallback, epoch
/// quarantine — is exactly reproducible in tests and `commsig chaoscheck`.
///
/// The hooks are compiled in only under -DCOMMSIG_FAILPOINTS (a CMake
/// option, default ON; production embedders turn it off and every
/// Evaluate/Inject call collapses to a constant).
enum class FailPointKind {
  kOff = 0,      // not armed / not firing on this hit
  kEio,          // the operation fails with a generic IO error
  kEnospc,       // the operation fails with "no space left on device"
  kShortWrite,   // only a prefix of the buffer is written, then EIO
  kTornRename,   // the file is truncated mid-frame before the rename lands
  kFsyncFail,    // fsync reports failure (data may or may not be durable)
};

/// Stable lowercase name ("eio", "short_write", ...). Inverse of
/// ParseFailPointKind.
std::string_view FailPointKindName(FailPointKind kind);
bool ParseFailPointKind(std::string_view name, FailPointKind& out);

/// When an armed site fires. Hits are counted per site from Arm/Reset;
/// the fault fires on hits [after + 1, after + count] (count 0 = forever).
struct FailPointSpec {
  FailPointKind kind = FailPointKind::kOff;
  /// Hits skipped before the first fire (0 = fire on the very first hit).
  uint64_t after = 0;
  /// Consecutive firing hits; 0 = every hit from `after` on.
  uint64_t count = 1;
};

/// Per-site observability for assertions and the chaoscheck report.
struct FailPointStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Process-wide registry of armed fail-points, keyed by site name
/// ("checkpoint/write", "stream/epoch", ...). Thread-safe; sites are
/// armed by tests / the --failpoints flag and evaluated by the IO helpers
/// below. Unarmed sites cost one mutex-free atomic load.
class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  void Arm(const std::string& site, FailPointSpec spec)
      COMMSIG_EXCLUDES(mutex_);
  void Disarm(const std::string& site) COMMSIG_EXCLUDES(mutex_);
  /// Disarms every site and zeroes all hit/fire counters.
  void Reset() COMMSIG_EXCLUDES(mutex_);

  /// Arms sites from a compact spec string:
  ///
  ///   site=kind[@after][xcount][;site=kind...]
  ///
  /// e.g. "checkpoint/write=enospc@2" (fail the 3rd write),
  /// "stream/epoch=eio@1x2;checkpoint/fsync=fsync_fail" — the format the
  /// CLI's --failpoints flag and the chaos harness share.
  Status ArmFromSpec(std::string_view spec);

  /// Counts a hit on `site` and returns the fault to inject now (kOff when
  /// the site is unarmed or out of its firing range). Fires bump the
  /// `robust/failpoints_fired` counter and log a structured event.
  FailPointKind Evaluate(std::string_view site) COMMSIG_EXCLUDES(mutex_);

  FailPointStats stats(const std::string& site) const
      COMMSIG_EXCLUDES(mutex_);
  std::vector<std::string> ArmedSites() const COMMSIG_EXCLUDES(mutex_);
  bool any_armed() const { return armed_count_.load() > 0; }

 private:
  struct Entry {
    FailPointSpec spec;
    FailPointStats stats;
    bool armed = false;
  };

  FailPointRegistry() = default;

  std::atomic<int> armed_count_{0};
  mutable Mutex mutex_;
  std::map<std::string, Entry, std::less<>> sites_ COMMSIG_GUARDED_BY(mutex_);
};

namespace failpoints {

/// True when the injection hooks are compiled in (COMMSIG_FAILPOINTS).
bool Enabled();

/// Evaluates `site` and maps a firing fault to the Status the real IO
/// failure would produce (kShortWrite/kTornRename degrade to kEio here —
/// they only make sense inside the write/rename helpers). OK when the
/// hooks are compiled out, the site is unarmed, or it is not firing.
Status Inject(std::string_view site);

/// Fail-point-aware durable-IO primitives (POSIX fd based, so fsync is
/// real — std::ofstream cannot express durability). Each evaluates its
/// site first and injects the armed fault deterministically; otherwise it
/// performs the operation and reports real errors with the same codes.

/// open(O_WRONLY|O_CREAT|O_TRUNC, 0644). kEio/kEnospc fail the open.
Result<int> OpenForWrite(std::string_view site, const std::string& path);

/// Loops write(2) to completion. kShortWrite persists only a prefix and
/// returns IOError; kEio/kEnospc fail before writing anything.
Status WriteAll(std::string_view site, int fd, const char* data, size_t size);

/// fsync(2). kFsyncFail (or kEio/kEnospc) reports failure.
Status FsyncFd(std::string_view site, int fd);

/// rename(2). kTornRename truncates `from` to half its length first and
/// then renames *successfully* — simulating a tear that lands under the
/// live name, which the caller's CRC-validated reader must catch later.
/// kEio/kEnospc fail without renaming.
Status RenameFile(std::string_view site, const std::string& from,
                  const std::string& to);

/// Opens the directory and fsyncs it, making a preceding rename durable
/// against power loss. kFsyncFail/kEio/kEnospc report failure.
Status FsyncDir(std::string_view site, const std::string& dir);

}  // namespace failpoints

}  // namespace commsig

#endif  // COMMSIG_ROBUST_FAILPOINTS_H_
