#ifndef COMMSIG_ROBUST_FAULT_INJECTOR_H_
#define COMMSIG_ROBUST_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/windower.h"

namespace commsig {

/// Seeded, deterministic fault injection for robustness testing: perturbs
/// event streams and on-disk files the way a lossy collector, a flaky NIC,
/// or a corrupted spool directory would. The same seed always produces the
/// same faults, so `commsig faultcheck` runs and the fault-injection tests
/// are exactly reproducible.
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Per-event probabilities; each event suffers at most one fault
    /// (checked in the order listed, first hit wins).
    double p_drop = 0.0;            // event silently lost
    double p_duplicate = 0.0;       // event delivered twice
    double p_corrupt_weight = 0.0;  // weight replaced (NaN/Inf/negative/huge)
    double p_corrupt_time = 0.0;    // timestamp perturbed (incl. regression)
    double p_swap = 0.0;            // event swapped with its successor
  };

  /// Per-run tally of injected faults, for reporting and assertions.
  struct Report {
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t weights_corrupted = 0;
    uint64_t times_corrupted = 0;
    uint64_t swapped = 0;

    uint64_t Total() const {
      return dropped + duplicated + weights_corrupted + times_corrupted +
             swapped;
    }
    std::string ToString() const;
  };

  explicit FaultInjector(Options options);

  /// Returns a perturbed copy of `events`. The input is untouched; the
  /// report accumulates across calls.
  std::vector<TraceEvent> PerturbEvents(const std::vector<TraceEvent>& events);

  /// Flips `num_flips` random bits in the file at `path`, in place.
  /// Used to simulate storage corruption of checkpoints and spool files.
  Status CorruptFileBits(const std::string& path, size_t num_flips);

  /// Truncates the file at `path` to a random length in [0, current size).
  /// Returns the new length via `*new_size` if non-null.
  Status TruncateFileRandomly(const std::string& path,
                              uint64_t* new_size = nullptr);

  const Report& report() const { return report_; }

 private:
  Options options_;
  Rng rng_;
  Report report_;
};

}  // namespace commsig

#endif  // COMMSIG_ROBUST_FAULT_INJECTOR_H_
