#ifndef COMMSIG_ROBUST_RECORD_ERRORS_H_
#define COMMSIG_ROBUST_RECORD_ERRORS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace commsig {

/// What an ingestion reader does with a record it cannot decode.
///
/// The paper's target inputs — router NetFlow exports, query logs — arrive
/// truncated, corrupt and out of order; a single bad record must not abandon
/// gigabytes of good ones unless the caller asked for exactly that.
enum class ErrorPolicy {
  /// Abort the whole read on the first malformed record (the historical
  /// behaviour; right for curated test fixtures and round-trip checks).
  kFail,
  /// Drop malformed records, keep per-reason counters only.
  kSkip,
  /// Drop malformed records and retain them (reason, position, detail) in a
  /// RecordErrorLog dead-letter sink for later inspection or replay.
  kQuarantine,
};

/// Why a record was rejected. One stable code per failure class so operators
/// can alert on, e.g., a spike of kTruncated separately from kBadField.
enum class RecordErrorReason {
  kTruncated,            // input ended inside a record/packet
  kBadMagic,             // wrong version/magic in a binary header
  kBadRecordCount,       // packet header announces an impossible count
  kBadField,             // unparseable CSV field / wrong field count
  kZeroNode,             // empty node label (no identity to attach flows to)
  kNonPositiveWeight,    // weight <= 0
  kNonFiniteWeight,      // NaN / Inf weight
  kTimestampRegression,  // time ran backwards under require_monotonic_time
  kPoisonWindow,         // a stream epoch was quarantined by the supervisor
                         // after exhausting its retry + rebuild budget
};

/// Short stable name for a reason ("truncated", "bad_field", ...). Used in
/// metric names and dead-letter dumps.
std::string_view RecordErrorReasonName(RecordErrorReason reason);

/// One quarantined record.
struct RecordError {
  RecordErrorReason reason;
  /// Line number (CSV) or byte offset (binary) of the offending record.
  uint64_t position = 0;
  std::string detail;
};

/// Dead-letter sink for rejected records.
///
/// Counts every rejection per reason and retains up to `max_retained`
/// detailed entries (the counters keep counting after the cap so budgets and
/// metrics stay exact). Also feeds the obs registry: each rejection bumps
/// `robust/quarantined_<reason>`.
class RecordErrorLog {
 public:
  explicit RecordErrorLog(size_t max_retained = 1024)
      : max_retained_(max_retained) {}

  void Record(RecordErrorReason reason, uint64_t position,
              std::string detail);

  /// Total rejections recorded (including beyond the retention cap).
  uint64_t total() const { return total_; }
  uint64_t count(RecordErrorReason reason) const;

  /// Retained entries, oldest first (at most `max_retained`).
  const std::vector<RecordError>& entries() const { return entries_; }

  /// Dumps the retained entries as CSV rows `reason,position,detail` —
  /// the dead-letter file an operator replays after fixing the producer.
  Status WriteCsv(const std::string& path) const;

  void Clear();

 private:
  static constexpr size_t kNumReasons = 9;

  size_t max_retained_;
  uint64_t total_ = 0;
  uint64_t per_reason_[kNumReasons] = {};
  std::vector<RecordError> entries_;
};

/// Run-wide rejection budget shared across every reader of an ingest (the
/// --max-total-errors flag). The per-file budget in IngestOptions protects
/// one file from dissolving into garbage; this one caps the whole run, so
/// a directory of mostly-rotten inputs fails loudly instead of each file
/// staying just under its own limit. Not thread-safe: one per ingest.
struct GlobalErrorBudget {
  /// Total rejected records allowed across all inputs; 0 disables.
  uint64_t max_total_errors = 0;
  /// Rejections charged so far (across files).
  uint64_t total = 0;

  bool exhausted() const {
    return max_total_errors > 0 && total > max_total_errors;
  }
};

/// Knobs shared by every lenient reader.
struct IngestOptions {
  ErrorPolicy policy = ErrorPolicy::kFail;

  /// Per-file error budget for kSkip/kQuarantine: after this many rejected
  /// records the read fails with Corruption anyway — a file that is mostly
  /// garbage should not silently dissolve into an empty trace. 0 disables
  /// the budget.
  uint64_t max_errors = 100000;

  /// Optional run-wide budget shared across readers (not owned; may be
  /// null). Charged once per rejection in addition to the per-file count;
  /// exhausting it fails the read with Corruption and emits one typed
  /// `budget_exhausted` log event.
  GlobalErrorBudget* global_budget = nullptr;

  /// When true, a record whose timestamp precedes the previous accepted
  /// record's is rejected with kTimestampRegression. Off by default: the
  /// windower tolerates arbitrary order, but exports that promise
  /// monotonicity can enforce it here.
  bool require_monotonic_time = false;

  /// Dead-letter sink for kQuarantine (may be null, in which case
  /// kQuarantine degrades to kSkip). Not owned.
  RecordErrorLog* error_log = nullptr;
};

namespace robust_internal {

/// Shared reader-side bookkeeping: applies the policy for one bad record.
/// Returns OK when the caller should skip the record and continue, or the
/// error to propagate when the policy (or exhausted budget) says stop.
/// `invalid_argument_on_fail` preserves each reader's historical kFail
/// status code (CSV readers report InvalidArgument, binary ones Corruption).
Status HandleBadRecord(const IngestOptions& options, uint64_t* errors_so_far,
                       RecordErrorReason reason, uint64_t position,
                       std::string detail,
                       bool invalid_argument_on_fail = false);

}  // namespace robust_internal

}  // namespace commsig

#endif  // COMMSIG_ROBUST_RECORD_ERRORS_H_
