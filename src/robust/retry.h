#ifndef COMMSIG_ROBUST_RETRY_H_
#define COMMSIG_ROBUST_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"

namespace commsig {

/// Exponential backoff with jitter, bounded by attempt and wall-clock caps.
/// Applied to every retryable IO in the self-healing runtime: checkpoint
/// save, metrics/trace re-flush, log-file sink open, reader open.
struct RetryPolicy {
  /// Total attempts including the first; minimum 1.
  uint32_t max_attempts = 4;
  /// Backoff before the first retry.
  uint64_t initial_backoff_ms = 5;
  /// Growth factor per retry (clamped >= 1.0).
  double multiplier = 2.0;
  /// Ceiling on any single backoff.
  uint64_t max_backoff_ms = 200;
  /// Uniform jitter as a fraction of the delay: the actual sleep is
  /// delay * [1 - jitter, 1 + jitter]. Clamped to [0, 1].
  double jitter = 0.25;
  /// Total wall-clock budget across attempts; once the accumulated backoff
  /// would exceed it, retrying stops. 0 = no deadline.
  uint64_t deadline_ms = 0;
};

/// Whether a failed operation is worth retrying at all. Transient IO
/// errors are; corruption, bad arguments, and not-found are determinate —
/// retrying them only delays the real recovery path (checkpoint fallback,
/// quarantine).
bool IsRetryableIo(const Status& status);

/// The backoff before retry number `retry_index` (0-based), jittered by
/// `rng`. Pure given the rng state — the unit-testable core of the policy.
uint64_t BackoffDelayMs(const RetryPolicy& policy, uint32_t retry_index,
                        Rng& rng);

/// Runs operations under a RetryPolicy. One Retrier per logical actor
/// (supervisor, CLI); it accumulates attempt/retry counters across Run
/// calls for the run report, and its sleep can be replaced so tests cover
/// the whole schedule without waiting for it.
class Retrier {
 public:
  explicit Retrier(RetryPolicy policy, uint64_t seed = 0x5e7);

  /// Invokes `op` up to policy.max_attempts times, sleeping the jittered
  /// backoff between attempts, while the failure stays retryable and the
  /// deadline allows. Returns the first success, or the last failure.
  /// Each retry logs a structured `io_retry` warning; exhaustion logs
  /// `io_retries_exhausted`.
  Status Run(std::string_view op_name, const std::function<Status()>& op);

  /// Replaces the real sleep (tests pass a collector).
  void SetSleepFnForTest(std::function<void(uint64_t delay_ms)> sleep_fn);

  const RetryPolicy& policy() const { return policy_; }
  uint64_t retries() const { return retries_; }
  uint64_t exhausted() const { return exhausted_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  std::function<void(uint64_t)> sleep_fn_;
  uint64_t retries_ = 0;
  uint64_t exhausted_ = 0;
};

}  // namespace commsig

#endif  // COMMSIG_ROBUST_RETRY_H_
