#ifndef COMMSIG_ROBUST_CHECKPOINT_H_
#define COMMSIG_ROBUST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace commsig {

/// A checkpoint recovered from disk.
struct CheckpointData {
  uint64_t sequence = 0;
  std::string payload;
  /// True when the newest on-disk checkpoint failed validation and an older
  /// one was used instead.
  bool recovered_from_fallback = false;
  /// Number of corrupt/unreadable checkpoint files skipped over.
  size_t corrupt_skipped = 0;
};

/// Durable checkpoint store for streaming pipelines.
///
/// Files are framed as  magic | format version | sequence | payload length |
/// CRC32(payload) | payload  (all little-endian, see ByteWriter), written to
/// a temporary name, fsynced, atomically renamed into place, and made
/// durable with a directory fsync — a crash mid-write leaves at most a
/// stray .tmp, never a half-written checkpoint under the live name, and a
/// power cut after a successful Save cannot lose the frame. Every IO step
/// runs through the robust/failpoints layer so tests and `commsig
/// chaoscheck` can tear any of them deterministically. LoadLatest walks
/// checkpoints newest-first and returns the first that passes framing +
/// CRC validation, so a torn or bit-flipped newest file falls back to the
/// previous good one instead of killing the restore.
///
/// The payload is opaque application state (for the `commsig stream`
/// pipeline: the serialized StreamingSignatureBuilder plus stream cursor).
///
/// Thread safety: Save is internally serialized by `io_mutex_` — concurrent
/// Save calls share one `<stem>.tmp` scratch file, and unserialized writers
/// could interleave writes into it and rename a torn frame into place.
/// LoadLatest is safe concurrently with Save without the lock: checkpoints
/// become visible only via the atomic rename, and a file pruned mid-scan
/// just registers as a skip on the fallback walk.
class CheckpointManager {
 public:
  struct Options {
    /// Filename stem: checkpoints are `<stem>.<seq>.ckpt`.
    std::string stem = "ckpt";
    /// Good checkpoints retained on disk; older ones are pruned after each
    /// Save. Minimum 2 — the fallback guarantee needs a predecessor.
    size_t keep = 2;
  };

  explicit CheckpointManager(std::string dir) : CheckpointManager(std::move(dir), Options()) {}
  CheckpointManager(std::string dir, Options options);

  /// Atomically persists `payload` as checkpoint `sequence` (monotonically
  /// increasing, caller-chosen; the event count works well). Creates the
  /// directory if needed and prunes checkpoints beyond `keep`.
  Status Save(uint64_t sequence, std::string_view payload)
      COMMSIG_EXCLUDES(io_mutex_);

  /// Newest checkpoint that validates, or NotFound when the directory holds
  /// none (including the fresh-start case of a missing directory).
  Result<CheckpointData> LoadLatest() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string FileName(uint64_t sequence) const;

  std::string dir_;
  Options options_;
  /// Serializes writers: guards the shared .tmp scratch file and the prune
  /// pass. Innermost apart from the obs-registry mutex (counter updates),
  /// which never calls back into this class.
  Mutex io_mutex_;
};

}  // namespace commsig

#endif  // COMMSIG_ROBUST_CHECKPOINT_H_
