#ifndef COMMSIG_ROBUST_SUPERVISOR_H_
#define COMMSIG_ROBUST_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/windower.h"
#include "obs/window_stats.h"
#include "robust/checkpoint.h"
#include "robust/degradation.h"
#include "robust/record_errors.h"
#include "robust/retry.h"
#include "sketch/streaming_signatures.h"

namespace commsig {

/// What one supervised run did — the `commsig stream` / `chaoscheck`
/// run report, and the assertion surface for recovery tests.
struct StreamRunReport {
  /// --kill-after triggered a simulated crash; the run is incomplete and
  /// the CLI maps this to exit code 3 (restartable).
  bool killed = false;
  /// Resume position chosen at startup (0 = fresh start).
  uint64_t start_event = 0;
  /// Events observed by the builder this run (excludes quarantined ones).
  uint64_t events_processed = 0;
  /// Stream cursor when the run ended (== total events unless killed).
  uint64_t final_position = 0;
  uint64_t epochs = 0;
  /// Failed epoch attempts that were rolled back and retried in place.
  uint64_t epoch_retries = 0;
  /// Epochs recovered by a from-scratch rebuild after in-place retries
  /// were exhausted.
  uint64_t epochs_rebuilt = 0;
  /// Poison epochs skipped with a dead-letter record. Their events are
  /// counted in `events_quarantined`, not `events_processed`.
  uint64_t epochs_quarantined = 0;
  uint64_t events_quarantined = 0;
  uint64_t checkpoints_saved = 0;
  /// Saves that still failed after the retry policy was exhausted.
  uint64_t checkpoint_save_failures = 0;
  /// IO retries across all retried operations (checkpoint saves and
  /// telemetry flushes) this run.
  uint64_t io_retries = 0;
  bool restored_from_checkpoint = false;
  /// The newest on-disk checkpoint was torn/corrupt and an older
  /// generation was used instead.
  bool restored_from_fallback = false;
  DegradationTier final_tier = DegradationTier::kOk;
};

/// Owns the `commsig stream` epoch loop and keeps it alive through faults.
///
/// The stream is processed in epochs (the emit cadence when set, else the
/// checkpoint cadence). Each epoch is transactional: when fail-points are
/// armed, the supervisor snapshots the builder before the epoch and, on a
/// failed attempt, rolls back to that snapshot and retries in place. An
/// epoch that fails `max_epoch_attempts` times is rebuilt from scratch —
/// a fresh builder replaying the stream from event zero, bypassing the
/// incremental resume path entirely — and if even that fails, the epoch is
/// quarantined: its events are skipped and a typed kPoisonWindow
/// dead-letter record lands in `dead_letters`.
///
/// All durable IO (checkpoint saves, telemetry flushes) runs under one
/// RetryPolicy with exponential backoff + jitter. Epoch outcomes feed a
/// DegradationController whose tier ladder sheds load under sustained
/// faults (drop tracing spans, stretch the checkpoint cadence, drop the
/// expensive UT extraction) and surfaces through /healthz.
///
/// Startup restores the newest valid checkpoint when `checkpoint_dir` is
/// set, with the input-fingerprint staleness check and corrupt-newest
/// fallback; `--kill-after` crashes mid-run so a following invocation
/// proves the restore path end to end.
class StreamSupervisor {
 public:
  struct Options {
    /// Signature length for periodic emissions.
    size_t k = 10;
    /// Checkpoint + telemetry-flush cadence in events (0 = never).
    uint64_t checkpoint_every = 10000;
    /// Signature re-emission cadence in events (0 = never).
    uint64_t emit_every = 0;
    /// Simulated crash after this many events processed this run (0 = off).
    uint64_t kill_after = 0;
    /// Per-event pacing for demos/smoke tests.
    uint64_t replay_delay_us = 0;
    /// Timestamp-paced replay speed: trace-time seconds elapse
    /// `replay_rate` times faster than wall-clock (1.0 = real time,
    /// 100.0 = 100x). Sleeps are scheduled against the stream's first
    /// timestamp so pacing never drifts with per-event processing cost.
    /// 0 disables; composes with replay_delay_us (both sleeps apply).
    double replay_rate = 0.0;
    /// Durable checkpoint directory (empty = no checkpoints).
    std::string checkpoint_dir;
    /// Attempts per epoch before the from-scratch rebuild (minimum 1).
    uint32_t max_epoch_attempts = 3;
    /// Soft wall-clock budget per epoch; exceeding it reports an overload
    /// signal to the degradation ladder (0 = off).
    uint64_t epoch_budget_us = 0;
    RetryPolicy retry;
    DegradationController::Options degrade;
    StreamingSignatureBuilder::Options builder;
    /// Dead-letter sink for quarantined poison epochs (not owned; may be
    /// null, in which case quarantine only logs and counts).
    RecordErrorLog* dead_letters = nullptr;
    /// In-run telemetry flush (the CLI's --metrics-out/--trace-out write),
    /// invoked at the checkpoint cadence under the retry policy. Null
    /// disables in-run flushes.
    std::function<Status()> flush_telemetry;
    /// When true, the shed_tracing tier toggles TraceCollector off and
    /// restores the enabled state captured at construction on recovery.
    bool manage_tracing = false;
  };

  StreamSupervisor(std::vector<NodeId> focal, Options options);

  /// Runs the stream to completion (or simulated crash). `events` is the
  /// full input stream; the resume position comes from the restored
  /// checkpoint. Call once per supervisor.
  StreamRunReport Run(const std::vector<TraceEvent>& events);

  /// Final builder state (null only before Run). Valid after Run for
  /// signature extraction by the CLI / chaos harness.
  const StreamingSignatureBuilder* builder() const { return builder_.get(); }
  const std::vector<NodeId>& focal() const { return focal_; }
  DegradationController& degradation() { return degradation_; }
  Retrier& retrier() { return retrier_; }

  /// Order-sensitive digest of the event stream, stored in every
  /// checkpoint so a restore against a different (edited, re-generated)
  /// input is detected as stale instead of silently resuming mid-stream.
  static uint64_t FingerprintEvents(const std::vector<TraceEvent>& events);

 private:
  /// Restores the newest valid checkpoint (staleness-checked against
  /// `fingerprint`) or builds fresh state. Returns the resume position.
  uint64_t RestoreOrFresh(uint64_t fingerprint, size_t total_events,
                          StreamRunReport& report);
  /// Observes events [begin, end) and evaluates the epoch fail-point
  /// `site`. On failure the builder is NOT rolled back — the caller owns
  /// the snapshot.
  Status ObserveSlice(const std::vector<TraceEvent>& events, uint64_t begin,
                      uint64_t end, obs::WindowRecord& epoch,
                      std::string_view site);
  /// One transactional epoch [begin, end): snapshot, attempt loop, scratch
  /// rebuild, quarantine. Updates `report` and the degradation ladder.
  void RunEpoch(const std::vector<TraceEvent>& events, uint64_t begin,
                uint64_t end, obs::WindowRecord& epoch,
                StreamRunReport& report);
  void SaveCheckpoint(uint64_t consumed, uint64_t fingerprint,
                      StreamRunReport& report);
  void Emit(uint64_t position, obs::WindowRecord& epoch);
  /// Applies the current tier's sheds (tracing on/off).
  void ApplyTierEffects();
  /// Sleeps until `event_time` is due on the replay schedule
  /// (options_.replay_rate > 0). The first paced event anchors the
  /// schedule; regressions and re-observed events replay immediately.
  void PaceReplay(uint64_t event_time);

  std::vector<NodeId> focal_;
  Options options_;
  std::unique_ptr<CheckpointManager> manager_;
  std::unique_ptr<StreamingSignatureBuilder> builder_;
  Retrier retrier_;
  DegradationController degradation_;
  bool tracing_baseline_ = false;
  bool tracing_current_ = false;

  // Replay-schedule anchor (lazily set by the first paced event).
  bool replay_anchored_ = false;
  uint64_t replay_wall_start_us_ = 0;
  uint64_t replay_time_base_ = 0;
};

}  // namespace commsig

#endif  // COMMSIG_ROBUST_SUPERVISOR_H_
