#include "robust/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "obs/log.h"
#include "obs/obs.h"

namespace commsig {

bool IsRetryableIo(const Status& status) {
  // IOError covers the transient family (EIO, ENOSPC clearing, a flaky
  // NFS mount); everything else either cannot succeed on retry or is a
  // programming error.
  return status.IsIOError();
}

uint64_t BackoffDelayMs(const RetryPolicy& policy, uint32_t retry_index,
                        Rng& rng) {
  const double multiplier = std::max(policy.multiplier, 1.0);
  double delay = static_cast<double>(policy.initial_backoff_ms) *
                 std::pow(multiplier, static_cast<double>(retry_index));
  delay = std::min(delay, static_cast<double>(policy.max_backoff_ms));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  // Uniform in [1 - jitter, 1 + jitter]; decorrelates a fleet of retriers
  // hammering the same recovered disk.
  const double factor = 1.0 + jitter * (2.0 * rng.UniformDouble() - 1.0);
  delay *= factor;
  return delay <= 0.0 ? 0 : static_cast<uint64_t>(delay);
}

Retrier::Retrier(RetryPolicy policy, uint64_t seed)
    : policy_(policy), rng_(seed) {
  policy_.max_attempts = std::max<uint32_t>(policy_.max_attempts, 1);
  sleep_fn_ = [](uint64_t delay_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  };
}

void Retrier::SetSleepFnForTest(
    std::function<void(uint64_t delay_ms)> sleep_fn) {
  sleep_fn_ = std::move(sleep_fn);
}

Status Retrier::Run(std::string_view op_name,
                    const std::function<Status()>& op) {
  uint64_t slept_ms = 0;
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = op();
    if (s.ok()) {
      if (attempt > 0) {
        obs::LogInfo("io_retry_recovered")
            .Str("op", op_name)
            .U64("attempts", attempt + 1);
      }
      return s;
    }
    const bool out_of_attempts = attempt + 1 >= policy_.max_attempts;
    if (!IsRetryableIo(s) || out_of_attempts) {
      if (out_of_attempts && IsRetryableIo(s)) {
        ++exhausted_;
        COMMSIG_COUNTER_ADD("robust/io_retries_exhausted", 1);
        obs::LogError("io_retries_exhausted")
            .Str("op", op_name)
            .U64("attempts", attempt + 1)
            .Str("status", s.ToString());
      }
      return s;
    }
    uint64_t delay_ms = BackoffDelayMs(policy_, attempt, rng_);
    if (policy_.deadline_ms > 0) {
      if (slept_ms + delay_ms > policy_.deadline_ms) {
        ++exhausted_;
        COMMSIG_COUNTER_ADD("robust/io_retries_exhausted", 1);
        obs::LogError("io_retries_exhausted")
            .Str("op", op_name)
            .U64("attempts", attempt + 1)
            .Str("reason", "deadline")
            .U64("deadline_ms", policy_.deadline_ms)
            .Str("status", s.ToString());
        return s;
      }
      slept_ms += delay_ms;
    }
    ++retries_;
    COMMSIG_COUNTER_ADD("robust/io_retries", 1);
    obs::LogWarn("io_retry")
        .Str("op", op_name)
        .U64("attempt", attempt + 1)
        .U64("delay_ms", delay_ms)
        .Str("status", s.ToString());
    sleep_fn_(delay_ms);
  }
}

}  // namespace commsig
