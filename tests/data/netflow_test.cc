#include "data/netflow.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace commsig {
namespace {

class NetflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_netflow_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

NetflowV5Record MakeRecord(uint32_t src, uint32_t dst, uint32_t secs,
                           uint8_t proto = 6) {
  NetflowV5Record r;
  r.src_addr = src;
  r.dst_addr = dst;
  r.packets = 10;
  r.octets = 4000;
  r.unix_secs = secs;
  r.src_port = 40000;
  r.dst_port = 443;
  r.protocol = proto;
  return r;
}

TEST(Ipv4ToStringTest, FormatsDottedDecimal) {
  EXPECT_EQ(Ipv4ToString(0x0A000001), "10.0.0.1");
  EXPECT_EQ(Ipv4ToString(0xC0A80164), "192.168.1.100");
  EXPECT_EQ(Ipv4ToString(0), "0.0.0.0");
  EXPECT_EQ(Ipv4ToString(0xFFFFFFFF), "255.255.255.255");
}

TEST_F(NetflowTest, RoundTripSinglePacket) {
  std::vector<NetflowV5Record> records = {
      MakeRecord(0x0A000001, 0x08080808, 1000),
      MakeRecord(0x0A000002, 0x08080404, 1000),
  };
  ASSERT_TRUE(WriteNetflowV5File(records, path_.string()).ok());
  auto loaded = ReadNetflowV5File(path_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, records);
}

TEST_F(NetflowTest, RoundTripMultiplePackets) {
  // 75 records -> 3 packets (30 + 30 + 15).
  std::vector<NetflowV5Record> records;
  for (uint32_t i = 0; i < 75; ++i) {
    records.push_back(MakeRecord(0x0A000000 + i, 0x08080808, 2000 + i));
  }
  ASSERT_TRUE(WriteNetflowV5File(records, path_.string()).ok());
  auto loaded = ReadNetflowV5File(path_.string());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 75u);
  // unix_secs is a per-packet header field: records in one packet share
  // the first record's timestamp.
  EXPECT_EQ((*loaded)[0].unix_secs, 2000u);
  EXPECT_EQ((*loaded)[29].unix_secs, 2000u);
  EXPECT_EQ((*loaded)[30].unix_secs, 2030u);
  EXPECT_EQ((*loaded)[0].src_addr, records[0].src_addr);
  EXPECT_EQ((*loaded)[74].src_addr, records[74].src_addr);
}

TEST_F(NetflowTest, EmptyFileYieldsNoRecords) {
  std::ofstream(path_).close();
  auto loaded = ReadNetflowV5File(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(NetflowTest, RejectsWrongVersion) {
  std::vector<NetflowV5Record> records = {MakeRecord(1, 2, 3)};
  ASSERT_TRUE(WriteNetflowV5File(records, path_.string()).ok());
  // Corrupt the version field.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  char bad[2] = {0, 9};
  f.write(bad, 2);
  f.close();
  auto loaded = ReadNetflowV5File(path_.string());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(NetflowTest, RejectsTruncatedPacket) {
  std::vector<NetflowV5Record> records = {MakeRecord(1, 2, 3),
                                          MakeRecord(4, 5, 6)};
  ASSERT_TRUE(WriteNetflowV5File(records, path_.string()).ok());
  // Chop the last 10 bytes.
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 10);
  auto loaded = ReadNetflowV5File(path_.string());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(NetflowTest, MissingFileIsIOError) {
  auto loaded = ReadNetflowV5File("/no/such/flows.bin");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(NetflowToEventsTest, InternsDottedLabels) {
  std::vector<NetflowV5Record> records = {
      MakeRecord(0x0A000001, 0x08080808, 100)};
  Interner interner;
  auto events = NetflowToEvents(records, interner);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(interner.LabelOf(events[0].src), "10.0.0.1");
  EXPECT_EQ(interner.LabelOf(events[0].dst), "8.8.8.8");
  EXPECT_EQ(events[0].time, 100u);
  EXPECT_DOUBLE_EQ(events[0].weight, 1.0);  // kFlows default
}

TEST(NetflowToEventsTest, WeightingModes) {
  std::vector<NetflowV5Record> records = {MakeRecord(1, 2, 3)};
  Interner interner;
  auto by_packets = NetflowToEvents(
      records, interner, {.weighting = NetflowWeighting::kPackets});
  EXPECT_DOUBLE_EQ(by_packets[0].weight, 10.0);
  auto by_octets = NetflowToEvents(
      records, interner, {.weighting = NetflowWeighting::kOctets});
  EXPECT_DOUBLE_EQ(by_octets[0].weight, 4000.0);
}

TEST(NetflowToEventsTest, ProtocolFilter) {
  std::vector<NetflowV5Record> records = {
      MakeRecord(1, 2, 3, /*proto=*/6),    // TCP
      MakeRecord(4, 5, 6, /*proto=*/17)};  // UDP
  Interner interner;
  auto tcp_only = NetflowToEvents(records, interner,
                                  {.protocol_filter = 6});
  EXPECT_EQ(tcp_only.size(), 1u);
  auto all = NetflowToEvents(records, interner);
  EXPECT_EQ(all.size(), 2u);
}

TEST(NetflowToEventsTest, DropsZeroWeightRecords) {
  NetflowV5Record r = MakeRecord(1, 2, 3);
  r.packets = 0;
  Interner interner;
  auto events = NetflowToEvents({r}, interner,
                                {.weighting = NetflowWeighting::kPackets});
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace commsig
