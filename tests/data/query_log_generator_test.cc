#include "data/query_log_generator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace commsig {
namespace {

QueryLogConfig SmallConfig() {
  QueryLogConfig cfg;
  cfg.num_users = 60;
  cfg.num_tables = 120;
  cfg.num_windows = 4;
  cfg.seed = 21;
  return cfg;
}

TEST(QueryLogGeneratorTest, Deterministic) {
  QueryLogGenerator gen(SmallConfig());
  QueryLogDataset a = gen.Generate();
  QueryLogDataset b = gen.Generate();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
}

TEST(QueryLogGeneratorTest, UsersAreLeftPartition) {
  QueryLogDataset ds = QueryLogGenerator(SmallConfig()).Generate();
  ASSERT_EQ(ds.users.size(), 60u);
  for (const TraceEvent& e : ds.events) {
    EXPECT_LT(e.src, 60u);   // user
    EXPECT_GE(e.dst, 60u);   // table
  }
}

TEST(QueryLogGeneratorTest, WindowsAreBipartite) {
  QueryLogDataset ds = QueryLogGenerator(SmallConfig()).Generate();
  auto windows = ds.Windows();
  ASSERT_EQ(windows.size(), 4u);
  for (const auto& g : windows) {
    EXPECT_EQ(g.bipartite().left_size, 60u);
  }
}

TEST(QueryLogGeneratorTest, WorkingSetSizeNearConfig) {
  QueryLogConfig cfg = SmallConfig();
  cfg.mean_tables_per_user = 6.0;
  QueryLogDataset ds = QueryLogGenerator(cfg).Generate();
  auto windows = ds.Windows();
  GraphSummary s = Summarize(windows[0]);
  EXPECT_GT(s.mean_out_degree_active, 3.0);
  EXPECT_LT(s.mean_out_degree_active, 12.0);
}

TEST(QueryLogGeneratorTest, WorkingSetsArePersistent) {
  QueryLogDataset ds = QueryLogGenerator(SmallConfig()).Generate();
  auto windows = ds.Windows();
  double overlap_sum = 0.0;
  size_t count = 0;
  for (NodeId user : ds.users) {
    std::unordered_set<NodeId> d0, d1;
    for (const Edge& e : windows[0].OutEdges(user)) d0.insert(e.node);
    for (const Edge& e : windows[1].OutEdges(user)) d1.insert(e.node);
    if (d0.empty() || d1.empty()) continue;
    size_t inter = 0;
    for (NodeId d : d0) inter += d1.contains(d) ? 1 : 0;
    overlap_sum += static_cast<double>(inter) / static_cast<double>(d0.size());
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_GT(overlap_sum / count, 0.7);  // churn is low by default
}

TEST(QueryLogGeneratorTest, WorkingSetsAreDiscriminative) {
  // Most user pairs should share few tables (Fig. 3(b) precondition).
  QueryLogDataset ds = QueryLogGenerator(SmallConfig()).Generate();
  auto windows = ds.Windows();
  const CommGraph& g = windows[0];
  size_t identical_pairs = 0, pairs = 0;
  for (NodeId u = 0; u < 60; ++u) {
    std::unordered_set<NodeId> su;
    for (const Edge& e : g.OutEdges(u)) su.insert(e.node);
    for (NodeId v = u + 1; v < 60; ++v) {
      std::unordered_set<NodeId> sv;
      for (const Edge& e : g.OutEdges(v)) sv.insert(e.node);
      if (su == sv && !su.empty()) ++identical_pairs;
      ++pairs;
    }
  }
  EXPECT_LT(identical_pairs, pairs / 100);
}

TEST(QueryLogGeneratorTest, PaperScaleEventVolume) {
  // At paper scale (851 users x ~6 tables x 5 windows) the tuple count
  // lands in the hundreds of thousands like the original 820K log.
  QueryLogConfig cfg;  // defaults = paper scale
  QueryLogDataset ds = QueryLogGenerator(cfg).Generate();
  double total_accesses = 0.0;
  for (const TraceEvent& e : ds.events) total_accesses += e.weight;
  EXPECT_GT(total_accesses, 300000.0);
  EXPECT_LT(total_accesses, 3000000.0);
}

}  // namespace
}  // namespace commsig
