#include "data/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(ZipfWeightsTest, ExponentZeroIsUniform) {
  auto w = ZipfWeights(5, 0.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(ZipfWeightsTest, ClassicHarmonicWeights) {
  auto w = ZipfWeights(4, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[3], 0.25);
}

TEST(ZipfSamplerTest, RankZeroMostFrequent) {
  ZipfSampler sampler(100, 1.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[90] - 5);  // tail noise tolerance
}

TEST(ZipfSamplerTest, FrequenciesMatchTheory) {
  const size_t n = 10;
  ZipfSampler sampler(n, 1.0);
  Rng rng(2);
  const int kDraws = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) counts[sampler.Sample(rng)]++;
  double harmonic = 0.0;
  for (size_t r = 1; r <= n; ++r) harmonic += 1.0 / static_cast<double>(r);
  for (size_t r = 0; r < n; ++r) {
    double expected = (1.0 / static_cast<double>(r + 1)) / harmonic;
    EXPECT_NEAR(counts[r] / static_cast<double>(kDraws), expected,
                0.01)
        << "rank " << r;
  }
}

TEST(ZipfSamplerTest, HigherExponentIsMoreSkewed) {
  ZipfSampler mild(50, 0.5), steep(50, 2.0);
  Rng rng1(3), rng2(3);
  int mild_head = 0, steep_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild.Sample(rng1) == 0) ++mild_head;
    if (steep.Sample(rng2) == 0) ++steep_head;
  }
  EXPECT_GT(steep_head, mild_head);
}

TEST(ZipfSamplerTest, WeightOfRankMatchesFormula) {
  ZipfSampler sampler(10, 1.5);
  EXPECT_DOUBLE_EQ(sampler.WeightOfRank(0), 1.0);
  EXPECT_NEAR(sampler.WeightOfRank(3), 1.0 / std::pow(4.0, 1.5), 1e-12);
}

TEST(ZipfSamplerTest, SizeReported) {
  ZipfSampler sampler(42, 1.0);
  EXPECT_EQ(sampler.size(), 42u);
}

}  // namespace
}  // namespace commsig
