#include "data/trace_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace commsig {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_trace_io_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(TraceIoTest, RoundTrip) {
  Interner interner;
  NodeId a = interner.Intern("host-a");
  NodeId b = interner.Intern("ext-b");
  std::vector<TraceEvent> events = {{a, b, 100, 2.0}, {a, b, 250, 1.0}};
  ASSERT_TRUE(WriteTraceCsv(events, interner, path_.string()).ok());

  Interner interner2;
  auto loaded = ReadTraceCsv(path_.string(), interner2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].time, 100u);
  EXPECT_DOUBLE_EQ((*loaded)[0].weight, 2.0);
  EXPECT_EQ(interner2.LabelOf((*loaded)[0].src), "host-a");
  EXPECT_EQ(interner2.LabelOf((*loaded)[0].dst), "ext-b");
}

TEST_F(TraceIoTest, RejectsShortRows) {
  {
    std::ofstream out(path_);
    out << "a,b,5\n";
  }
  Interner interner;
  EXPECT_FALSE(ReadTraceCsv(path_.string(), interner).ok());
}

TEST_F(TraceIoTest, RejectsBadTime) {
  {
    std::ofstream out(path_);
    out << "a,b,yesterday,1\n";
  }
  Interner interner;
  EXPECT_FALSE(ReadTraceCsv(path_.string(), interner).ok());
}

TEST_F(TraceIoTest, RejectsNonPositiveWeight) {
  {
    std::ofstream out(path_);
    out << "a,b,5,0\n";
  }
  Interner interner;
  EXPECT_FALSE(ReadTraceCsv(path_.string(), interner).ok());
}

TEST_F(TraceIoTest, MissingFileIsIOError) {
  Interner interner;
  auto r = ReadTraceCsv("/no/such/trace.csv", interner);
  EXPECT_TRUE(r.status().IsIOError());
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Interner interner;
  ASSERT_TRUE(WriteTraceCsv({}, interner, path_.string()).ok());
  Interner interner2;
  auto loaded = ReadTraceCsv(path_.string(), interner2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace commsig
