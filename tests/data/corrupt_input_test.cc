// Exercises every lenient reader against the committed corrupt-input corpus
// under tests/data/corpus/, in all three ErrorPolicy modes. The corpus files
// are real bytes on disk (not strings built in the test) so the fixtures
// also pin the on-disk formats against accidental format drift.

#include <string>

#include <gtest/gtest.h>

#include "core/signature_io.h"
#include "data/netflow.h"
#include "data/trace_io.h"
#include "graph/graph_io.h"
#include "robust/record_errors.h"

namespace commsig {
namespace {

std::string Corpus(const std::string& name) {
  return std::string(COMMSIG_TEST_DATA_DIR) + "/" + name;
}

IngestOptions Policy(ErrorPolicy policy, RecordErrorLog* log = nullptr) {
  IngestOptions opts;
  opts.policy = policy;
  opts.error_log = log;
  return opts;
}

// --- NetFlow -------------------------------------------------------------

TEST(CorruptNetflow, TruncatedFailsUnderFailPolicy) {
  auto r = ReadNetflowV5File(Corpus("truncated.nf"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(CorruptNetflow, TruncatedSalvagesWholeRecordsUnderSkip) {
  auto r = ReadNetflowV5File(Corpus("truncated.nf"),
                             Policy(ErrorPolicy::kSkip));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Header claims 3 records; the third is cut mid-record.
  EXPECT_EQ(r->size(), 2u);
}

TEST(CorruptNetflow, TruncatedQuarantinesTheCut) {
  RecordErrorLog log;
  auto r = ReadNetflowV5File(Corpus("truncated.nf"),
                             Policy(ErrorPolicy::kQuarantine, &log));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(log.count(RecordErrorReason::kTruncated), 1u);
  ASSERT_EQ(log.entries().size(), 1u);
  // Position is the byte offset where the truncated record begins.
  EXPECT_EQ(log.entries()[0].position, 24u + 2 * 48u);
}

TEST(CorruptNetflow, BadMagicResynchronizesToNextPacket) {
  RecordErrorLog log;
  auto r = ReadNetflowV5File(Corpus("bad_magic.nf"),
                             Policy(ErrorPolicy::kQuarantine, &log));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Garbage prefix rejected, valid 2-record packet after it recovered.
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(log.count(RecordErrorReason::kBadMagic), 1u);
  EXPECT_FALSE(ReadNetflowV5File(Corpus("bad_magic.nf")).ok());
}

TEST(CorruptNetflow, ZeroCountHeaderRejectedAndRecovered) {
  RecordErrorLog log;
  auto r = ReadNetflowV5File(Corpus("zero_count.nf"),
                             Policy(ErrorPolicy::kQuarantine, &log));
  ASSERT_TRUE(r.ok());
  // The packet after the count=0 header still loads; the record body of
  // the bad packet is skipped by resynchronization.
  EXPECT_EQ(r->size(), 1u);
  EXPECT_GE(log.count(RecordErrorReason::kBadRecordCount), 1u);
}

TEST(CorruptNetflow, TimestampRegressionOnlyWhenMonotonicRequired) {
  // Default: out-of-order export times are legal.
  auto relaxed = ReadNetflowV5File(Corpus("time_regression.nf"),
                                   Policy(ErrorPolicy::kSkip));
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->size(), 3u);

  RecordErrorLog log;
  IngestOptions strict = Policy(ErrorPolicy::kQuarantine, &log);
  strict.require_monotonic_time = true;
  auto r = ReadNetflowV5File(Corpus("time_regression.nf"), strict);
  ASSERT_TRUE(r.ok());
  // The regressed middle packet (secs 200 -> 100) is dropped whole; the
  // third (secs 300) still loads.
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(log.count(RecordErrorReason::kTimestampRegression), 1u);
}

TEST(CorruptNetflow, ErrorBudgetBoundsGarbageTolerance) {
  IngestOptions opts = Policy(ErrorPolicy::kSkip);
  opts.max_errors = 0;  // 0 disables the budget: any amount of junk is OK
  EXPECT_TRUE(ReadNetflowV5File(Corpus("bad_magic.nf"), opts).ok());
}

// --- Trace CSV -----------------------------------------------------------

TEST(CorruptTraceCsv, FailPolicyStopsAtFirstBadRow) {
  Interner interner;
  auto r = ReadTraceCsv(Corpus("trace_bad_rows.csv"), interner);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST(CorruptTraceCsv, SkipKeepsOnlyValidRows) {
  Interner interner;
  auto r = ReadTraceCsv(Corpus("trace_bad_rows.csv"), interner,
                        Policy(ErrorPolicy::kSkip));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Valid rows: a->b@100, a->b@90 (order violations are legal by default),
  // e->f@200.
  EXPECT_EQ(r->size(), 3u);
}

TEST(CorruptTraceCsv, QuarantineRecordsEveryRejectionClass) {
  Interner interner;
  RecordErrorLog log;
  IngestOptions opts = Policy(ErrorPolicy::kQuarantine, &log);
  opts.require_monotonic_time = true;
  auto r = ReadTraceCsv(Corpus("trace_bad_rows.csv"), interner, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // the a->b@90 row now regresses
  EXPECT_EQ(log.count(RecordErrorReason::kBadField), 2u);  // short + bad time
  EXPECT_EQ(log.count(RecordErrorReason::kZeroNode), 1u);
  EXPECT_EQ(log.count(RecordErrorReason::kNonFiniteWeight), 2u);  // nan, inf
  EXPECT_EQ(log.count(RecordErrorReason::kNonPositiveWeight), 2u);  // -3.5, 0
  EXPECT_EQ(log.count(RecordErrorReason::kTimestampRegression), 1u);
  EXPECT_EQ(log.total(), 8u);
}

TEST(CorruptTraceCsv, QuarantinePositionsAreLineNumbers) {
  Interner interner;
  RecordErrorLog log;
  auto r = ReadTraceCsv(Corpus("trace_bad_rows.csv"), interner,
                        Policy(ErrorPolicy::kQuarantine, &log));
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(log.entries().empty());
  EXPECT_EQ(log.entries()[0].position, 2u);  // "only,three,fields" is line 2
}

TEST(CorruptTraceCsv, GarbageFileYieldsNothingButDoesNotCrash) {
  Interner interner;
  RecordErrorLog log;
  auto r = ReadTraceCsv(Corpus("garbage.csv"), interner,
                        Policy(ErrorPolicy::kQuarantine, &log));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_GT(log.total(), 0u);
}

TEST(CorruptTraceCsv, EmptyFileIsValidAndEmpty) {
  Interner interner;
  for (ErrorPolicy policy : {ErrorPolicy::kFail, ErrorPolicy::kSkip,
                             ErrorPolicy::kQuarantine}) {
    auto r = ReadTraceCsv(Corpus("empty.csv"), interner, Policy(policy));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty());
  }
}

TEST(CorruptTraceCsv, ExhaustedBudgetFailsTheRead) {
  Interner interner;
  IngestOptions opts = Policy(ErrorPolicy::kSkip);
  opts.max_errors = 2;
  auto r = ReadTraceCsv(Corpus("trace_bad_rows.csv"), interner, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

// --- Edge-list CSV -------------------------------------------------------

TEST(CorruptEdgeListCsv, AllThreePolicies) {
  {
    Interner interner;
    EXPECT_FALSE(ReadEdgeListCsv(Corpus("edges_bad_rows.csv"), interner, 0)
                     .ok());
  }
  {
    Interner interner;
    auto r = ReadEdgeListCsv(Corpus("edges_bad_rows.csv"), interner, 0,
                             Policy(ErrorPolicy::kSkip));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Good rows: a->b 2.0 and c->d 3.0.
    EXPECT_DOUBLE_EQ(r->TotalWeight(), 5.0);
  }
  {
    Interner interner;
    RecordErrorLog log;
    auto r = ReadEdgeListCsv(Corpus("edges_bad_rows.csv"), interner, 0,
                             Policy(ErrorPolicy::kQuarantine, &log));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(log.count(RecordErrorReason::kBadField), 1u);
    EXPECT_EQ(log.count(RecordErrorReason::kZeroNode), 1u);
    EXPECT_EQ(log.count(RecordErrorReason::kNonFiniteWeight), 1u);
    EXPECT_EQ(log.count(RecordErrorReason::kNonPositiveWeight), 1u);
  }
}

// --- Signature-set CSV ---------------------------------------------------

TEST(CorruptSignatureSetCsv, AllThreePolicies) {
  {
    Interner interner;
    EXPECT_FALSE(
        ReadSignatureSetCsv(Corpus("sigset_bad_rows.csv"), interner).ok());
  }
  {
    Interner interner;
    RecordErrorLog log;
    auto r = ReadSignatureSetCsv(Corpus("sigset_bad_rows.csv"), interner,
                                 Policy(ErrorPolicy::kQuarantine, &log));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // o1 {m1,m2}, o2 {m4} (nan and negative rows rejected), o3 empty marker.
    ASSERT_EQ(r->size(), 3u);
    EXPECT_EQ(r->signatures[0].size(), 2u);
    EXPECT_EQ(r->signatures[1].size(), 1u);
    EXPECT_TRUE(r->signatures[2].empty());
    EXPECT_EQ(log.count(RecordErrorReason::kBadField), 1u);
    EXPECT_EQ(log.count(RecordErrorReason::kNonFiniteWeight), 1u);
    EXPECT_EQ(log.count(RecordErrorReason::kNonPositiveWeight), 1u);
    EXPECT_EQ(log.count(RecordErrorReason::kZeroNode), 1u);
  }
  {
    Interner interner;
    auto r = ReadSignatureSetCsv(Corpus("sigset_bad_rows.csv"), interner,
                                 Policy(ErrorPolicy::kSkip));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 3u);
  }
}

}  // namespace
}  // namespace commsig
