#include "data/flow_generator.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace commsig {
namespace {

FlowGeneratorConfig SmallConfig() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 40;
  cfg.num_external_hosts = 800;
  cfg.num_windows = 3;
  cfg.seed = 99;
  return cfg;
}

TEST(FlowGeneratorTest, DeterministicForSeed) {
  FlowTraceGenerator gen(SmallConfig());
  FlowDataset a = gen.Generate();
  FlowDataset b = gen.Generate();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
}

TEST(FlowGeneratorTest, SeededTraceFingerprintIsPinned) {
  // Two in-process runs agreeing (DeterministicForSeed) cannot catch
  // hash-order dependence: unordered-container layout is stable within one
  // standard library but differs across them. The generator once built
  // per-user group lists straight from unordered_set iteration, so the
  // same seed produced different datasets under libstdc++ and libc++.
  // This golden pins the byte-exact stream; it must only change with a
  // deliberate generator change, never with a toolchain bump.
  FlowDataset d = FlowTraceGenerator(SmallConfig()).Generate();
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
    }
  };
  for (const TraceEvent& e : d.events) {
    mix(e.src);
    mix(e.dst);
    mix(e.time);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.weight));
    std::memcpy(&bits, &e.weight, sizeof(bits));
    mix(bits);
  }
  EXPECT_EQ(h, 6424934747906682522ull) << "seeded trace fingerprint changed";
}

TEST(FlowGeneratorTest, DifferentSeedsProduceDifferentTraces) {
  FlowGeneratorConfig cfg = SmallConfig();
  FlowDataset a = FlowTraceGenerator(cfg).Generate();
  cfg.seed = 100;
  FlowDataset b = FlowTraceGenerator(cfg).Generate();
  EXPECT_NE(a.events.size(), b.events.size());
}

TEST(FlowGeneratorTest, LocalHostsAreLowIds) {
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  ASSERT_EQ(ds.local_hosts.size(), 40u);
  for (size_t i = 0; i < ds.local_hosts.size(); ++i) {
    EXPECT_EQ(ds.local_hosts[i], static_cast<NodeId>(i));
  }
}

TEST(FlowGeneratorTest, EventsFlowLocalToExternalOnly) {
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  for (const TraceEvent& e : ds.events) {
    EXPECT_LT(e.src, 40u);
    EXPECT_GE(e.dst, 40u);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(FlowGeneratorTest, EveryHostHasAUser) {
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  ASSERT_EQ(ds.user_of_host.size(), 40u);
  for (NodeId host : ds.local_hosts) {
    uint32_t user = ds.user_of_host[host];
    const auto& hosts = ds.hosts_of_user.at(user);
    EXPECT_NE(std::find(hosts.begin(), hosts.end(), host), hosts.end());
  }
}

TEST(FlowGeneratorTest, UserHostPartitionIsConsistent) {
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  std::set<NodeId> covered;
  for (const auto& [user, hosts] : ds.hosts_of_user) {
    for (NodeId h : hosts) {
      EXPECT_TRUE(covered.insert(h).second) << "host in two users";
      EXPECT_EQ(ds.user_of_host[h], user);
    }
  }
  EXPECT_EQ(covered.size(), ds.local_hosts.size());
}

TEST(FlowGeneratorTest, SomeUsersHaveMultipleHosts) {
  FlowGeneratorConfig cfg = SmallConfig();
  cfg.num_local_hosts = 100;
  cfg.multi_ip_user_fraction = 0.3;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  size_t multi = 0;
  for (const auto& [user, hosts] : ds.hosts_of_user) {
    if (hosts.size() > 1) ++multi;
    EXPECT_LE(hosts.size(), cfg.max_ips_per_user);
  }
  EXPECT_GT(multi, 0u);
}

TEST(FlowGeneratorTest, WindowsAreBipartiteAndCoverConfig) {
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  auto windows = ds.Windows();
  ASSERT_EQ(windows.size(), 3u);
  for (const auto& g : windows) {
    EXPECT_TRUE(g.bipartite().IsBipartite());
    EXPECT_EQ(g.bipartite().left_size, 40u);
    EXPECT_GT(g.NumEdges(), 0u);
  }
}

TEST(FlowGeneratorTest, MeanOutDegreeNearProfileSize) {
  FlowGeneratorConfig cfg = SmallConfig();
  cfg.mean_profile_size = 20.0;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  auto windows = ds.Windows();
  GraphSummary s = Summarize(windows[0]);
  // Profile (~20) + noise (~6 one-offs): out-degree should land well above
  // k = 10 and below, say, 2x the sum.
  EXPECT_GT(s.mean_out_degree_active, 15.0);
  EXPECT_LT(s.mean_out_degree_active, 50.0);
}

TEST(FlowGeneratorTest, PopularServicesHaveHighInDegree) {
  FlowGeneratorConfig cfg = SmallConfig();
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  auto windows = ds.Windows();
  const CommGraph& g = windows[0];
  // Mean in-degree of the popular head (the external ids right after the
  // local hosts) must dominate the tail's.
  const NodeId first_ext = static_cast<NodeId>(cfg.num_local_hosts);
  const NodeId head_end =
      first_ext + static_cast<NodeId>(cfg.num_popular_services);
  double head_sum = 0.0;
  for (NodeId v = first_ext; v < head_end; ++v) head_sum += g.InDegree(v);
  double tail_sum = 0.0;
  const size_t tail_n = g.NumNodes() - head_end;
  for (NodeId v = head_end; v < g.NumNodes(); ++v) tail_sum += g.InDegree(v);
  EXPECT_GT(head_sum / static_cast<double>(cfg.num_popular_services),
            3.0 * (tail_sum / static_cast<double>(tail_n)));
}

TEST(FlowGeneratorTest, ConsecutiveWindowsOverlapInTheChallengingBand) {
  // The workload is tuned to the paper's regime: enough cross-window
  // destination overlap for signatures to work at all, but far from total
  // (churn + per-window visibility), so one-hop self-matching is genuinely
  // hard (Figure 3(a) lands near AUC 0.9, not 1.0).
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  auto windows = ds.Windows();
  double overlap_sum = 0.0;
  size_t count = 0;
  for (NodeId host : ds.local_hosts) {
    std::unordered_set<NodeId> d0, d1;
    for (const Edge& e : windows[0].OutEdges(host)) d0.insert(e.node);
    for (const Edge& e : windows[1].OutEdges(host)) d1.insert(e.node);
    if (d0.empty() || d1.empty()) continue;
    size_t inter = 0;
    for (NodeId d : d0) inter += d1.contains(d) ? 1 : 0;
    overlap_sum += static_cast<double>(inter) / static_cast<double>(d0.size());
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_GT(overlap_sum / count, 0.1);
  EXPECT_LT(overlap_sum / count, 0.6);
}

TEST(FlowGeneratorTest, TimestampsFallInsideDeclaredWindows) {
  FlowDataset ds = FlowTraceGenerator(SmallConfig()).Generate();
  for (const TraceEvent& e : ds.events) {
    EXPECT_LT(e.time, ds.num_windows * ds.window_length);
  }
}

TEST(FlowGeneratorTest, InternerCoversAllNodes) {
  FlowGeneratorConfig cfg = SmallConfig();
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  EXPECT_EQ(ds.interner.size(),
            cfg.num_local_hosts + cfg.num_external_hosts);
  EXPECT_EQ(ds.interner.LabelOf(0), "10.0.0.0");
  EXPECT_EQ(ds.interner.LabelOf(40), "ext-0");
}

}  // namespace
}  // namespace commsig
