#include "graph/windower.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(TraceWindowerTest, WindowOfBoundaries) {
  TraceWindower w(4, /*window_length=*/10, /*start_time=*/100);
  EXPECT_EQ(w.WindowOf(100), 0u);
  EXPECT_EQ(w.WindowOf(109), 0u);
  EXPECT_EQ(w.WindowOf(110), 1u);
  EXPECT_EQ(w.WindowOf(99), static_cast<size_t>(-1));
}

TEST(TraceWindowerTest, SplitsEventsIntoWindows) {
  TraceWindower w(3, 10);
  std::vector<TraceEvent> events = {
      {0, 1, 0, 1.0},   // window 0
      {0, 1, 5, 2.0},   // window 0 (aggregates)
      {1, 2, 12, 4.0},  // window 1
      {0, 2, 25, 8.0},  // window 2
  };
  auto graphs = w.Split(events);
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_DOUBLE_EQ(graphs[0].EdgeWeight(0, 1), 3.0);
  EXPECT_EQ(graphs[0].NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(graphs[1].EdgeWeight(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(graphs[2].EdgeWeight(0, 2), 8.0);
}

TEST(TraceWindowerTest, AllWindowsShareNodeUniverse) {
  TraceWindower w(5, 10);
  std::vector<TraceEvent> events = {{0, 1, 0, 1.0}, {3, 4, 15, 1.0}};
  auto graphs = w.Split(events);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].NumNodes(), 5u);
  EXPECT_EQ(graphs[1].NumNodes(), 5u);
}

TEST(TraceWindowerTest, GapWindowsAreEmpty) {
  TraceWindower w(2, 10);
  std::vector<TraceEvent> events = {{0, 1, 0, 1.0}, {0, 1, 35, 1.0}};
  auto graphs = w.Split(events);
  ASSERT_EQ(graphs.size(), 4u);
  EXPECT_EQ(graphs[1].NumEdges(), 0u);
  EXPECT_EQ(graphs[2].NumEdges(), 0u);
  EXPECT_EQ(graphs[3].NumEdges(), 1u);
}

TEST(TraceWindowerTest, EventsBeforeStartDropped) {
  TraceWindower w(2, 10, /*start_time=*/50);
  std::vector<TraceEvent> events = {{0, 1, 10, 1.0}, {0, 1, 55, 2.0}};
  auto graphs = w.Split(events);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_DOUBLE_EQ(graphs[0].EdgeWeight(0, 1), 2.0);
}

TEST(TraceWindowerTest, EmptyTraceYieldsNoWindows) {
  TraceWindower w(2, 10);
  EXPECT_TRUE(w.Split({}).empty());
}

TEST(TraceWindowerTest, UnorderedEventsBucketCorrectly) {
  TraceWindower w(2, 10);
  std::vector<TraceEvent> events = {
      {0, 1, 15, 1.0}, {0, 1, 3, 2.0}, {1, 0, 11, 4.0}};
  auto graphs = w.Split(events);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_DOUBLE_EQ(graphs[0].EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(graphs[1].EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(graphs[1].EdgeWeight(1, 0), 4.0);
}

TEST(TraceWindowerTest, SlidingWithStrideEqualToLengthMatchesSplit) {
  TraceWindower w(3, 10);
  std::vector<TraceEvent> events = {
      {0, 1, 0, 1.0}, {1, 2, 12, 4.0}, {0, 2, 25, 8.0}};
  auto tumbling = w.Split(events);
  auto sliding = w.SplitSliding(events, 10);
  ASSERT_EQ(sliding.size(), tumbling.size());
  for (size_t i = 0; i < sliding.size(); ++i) {
    EXPECT_DOUBLE_EQ(sliding[i].EdgeWeight(0, 1), tumbling[i].EdgeWeight(0, 1));
    EXPECT_DOUBLE_EQ(sliding[i].EdgeWeight(1, 2), tumbling[i].EdgeWeight(1, 2));
    EXPECT_DOUBLE_EQ(sliding[i].EdgeWeight(0, 2), tumbling[i].EdgeWeight(0, 2));
  }
}

TEST(TraceWindowerTest, SlidingWindowsOverlap) {
  TraceWindower w(2, /*window_length=*/10);
  // One event at t=12: covered by window 0 ([0,10)? no), window 1 ([5,15)?
  // yes) ... with stride 5 the windows are [0,10), [5,15), [10,20).
  std::vector<TraceEvent> events = {{0, 1, 12, 2.0}};
  auto graphs = w.SplitSliding(events, 5);
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_EQ(graphs[0].NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(graphs[1].EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(graphs[2].EdgeWeight(0, 1), 2.0);
}

TEST(TraceWindowerTest, SlidingAggregatesOnlyCoveredEvents) {
  TraceWindower w(2, 10);
  // Window 1 covers [5,15): sees only the t=7 and t=12 events.
  std::vector<TraceEvent> events = {
      {0, 1, 2, 1.0}, {0, 1, 7, 2.0}, {0, 1, 12, 4.0}, {0, 1, 17, 8.0}};
  auto graphs = w.SplitSliding(events, 5);
  ASSERT_GE(graphs.size(), 2u);
  EXPECT_DOUBLE_EQ(graphs[0].EdgeWeight(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(graphs[1].EdgeWeight(0, 1), 6.0);
}

TEST(TraceWindowerTest, SlidingClampsZeroStride) {
  TraceWindower w(2, 10);
  std::vector<TraceEvent> events = {{0, 1, 3, 1.0}};
  // stride 0 would never terminate; it is clamped to 1.
  auto graphs = w.SplitSliding(events, 0);
  ASSERT_EQ(graphs.size(), 4u);  // windows starting at 0..3 contain t=3
  for (const auto& g : graphs) EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);
}

TEST(TraceWindowerTest, BipartitePropagatesToEveryWindow) {
  TraceWindower w(4, 10, 0, /*bipartite_left_size=*/2);
  std::vector<TraceEvent> events = {{0, 2, 0, 1.0}, {1, 3, 12, 1.0}};
  auto graphs = w.Split(events);
  for (const auto& g : graphs) {
    EXPECT_TRUE(g.bipartite().IsBipartite());
    EXPECT_EQ(g.bipartite().left_size, 2u);
  }
}

}  // namespace
}  // namespace commsig
