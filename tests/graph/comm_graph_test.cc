#include "graph/comm_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakeTriangle() {
  // 0 -> 1 (2.0), 1 -> 2 (3.0), 2 -> 0 (4.0), 0 -> 2 (1.0)
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 2, 3.0);
  b.AddEdge(2, 0, 4.0);
  b.AddEdge(0, 2, 1.0);
  return std::move(b).Build();
}

TEST(CommGraphTest, EmptyGraph) {
  GraphBuilder b(5);
  CommGraph g = std::move(b).Build();
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.TotalWeight(), 0.0);
  EXPECT_TRUE(g.OutEdges(0).empty());
  EXPECT_TRUE(g.InEdges(4).empty());
}

TEST(CommGraphTest, DefaultConstructedHasNoNodes) {
  CommGraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(CommGraphTest, BasicCounts) {
  CommGraph g = MakeTriangle();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 10.0);
}

TEST(CommGraphTest, OutEdgesSortedByNode) {
  CommGraph g = MakeTriangle();
  auto edges = g.OutEdges(0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].node, 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 2.0);
  EXPECT_EQ(edges[1].node, 2u);
  EXPECT_DOUBLE_EQ(edges[1].weight, 1.0);
}

TEST(CommGraphTest, InEdgesMatchOutEdges) {
  CommGraph g = MakeTriangle();
  auto in2 = g.InEdges(2);
  ASSERT_EQ(in2.size(), 2u);
  // In-edges of 2 come from 0 (1.0) and 1 (3.0), sorted by source.
  EXPECT_EQ(in2[0].node, 0u);
  EXPECT_DOUBLE_EQ(in2[0].weight, 1.0);
  EXPECT_EQ(in2[1].node, 1u);
  EXPECT_DOUBLE_EQ(in2[1].weight, 3.0);
}

TEST(CommGraphTest, Degrees) {
  CommGraph g = MakeTriangle();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InDegree(2), 2u);
}

TEST(CommGraphTest, OutInWeights) {
  CommGraph g = MakeTriangle();
  EXPECT_DOUBLE_EQ(g.OutWeight(0), 3.0);
  EXPECT_DOUBLE_EQ(g.InWeight(2), 4.0);
  EXPECT_DOUBLE_EQ(g.InWeight(0), 4.0);
}

TEST(CommGraphTest, EdgeWeightLookup) {
  CommGraph g = MakeTriangle();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.0);  // absent
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, RepeatedEdgesAggregate) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 1, 2.5);
  b.AddEdge(0, 1, 0.5);
  CommGraph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 4.0);
}

TEST(GraphBuilderTest, SelfLoopAllowed) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 1.0);
  CommGraph g = std::move(b).Build();
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(CommGraphTest, BipartiteMetadata) {
  GraphBuilder b(4);
  b.SetBipartiteLeftSize(2);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 3, 1.0);
  CommGraph g = std::move(b).Build();
  EXPECT_TRUE(g.bipartite().IsBipartite());
  EXPECT_TRUE(g.InLeftPartition(0));
  EXPECT_TRUE(g.InLeftPartition(1));
  EXPECT_FALSE(g.InLeftPartition(2));
  EXPECT_FALSE(g.InLeftPartition(3));
}

TEST(CommGraphTest, NonBipartiteByDefault) {
  CommGraph g = MakeTriangle();
  EXPECT_FALSE(g.bipartite().IsBipartite());
}

TEST(CommGraphTest, FlatEdgesGroupedBySource) {
  CommGraph g = MakeTriangle();
  auto flat = g.Edges();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0].src, 0u);
  EXPECT_EQ(flat[0].dst, 1u);
  EXPECT_EQ(flat[1].src, 0u);
  EXPECT_EQ(flat[1].dst, 2u);
  EXPECT_EQ(flat[2].src, 1u);
  EXPECT_EQ(flat[3].src, 2u);
}

TEST(CommGraphTest, TotalWeightEqualsSumOfOutWeights) {
  CommGraph g = MakeTriangle();
  double sum = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) sum += g.OutWeight(v);
  EXPECT_DOUBLE_EQ(sum, g.TotalWeight());
}

TEST(CommGraphTest, InWeightSumEqualsTotal) {
  CommGraph g = MakeTriangle();
  double sum = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) sum += g.InWeight(v);
  EXPECT_DOUBLE_EQ(sum, g.TotalWeight());
}

TEST(GraphBuilderTest, LargerGraphCsrConsistency) {
  // Random-ish graph; verify in-edges are the transpose of out-edges.
  const size_t n = 50;
  GraphBuilder b(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if ((i * 31 + j * 17) % 7 == 0 && i != j) {
        b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                  static_cast<double>(1 + (i + j) % 5));
      }
    }
  }
  CommGraph g = std::move(b).Build();
  size_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
    for (const Edge& e : g.OutEdges(v)) {
      // The reverse entry must exist in e.node's in-edges.
      bool found = false;
      for (const Edge& r : g.InEdges(e.node)) {
        if (r.node == v) {
          EXPECT_DOUBLE_EQ(r.weight, e.weight);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(out_total, in_total);
  EXPECT_EQ(out_total, g.NumEdges());
}

}  // namespace
}  // namespace commsig
