#include "graph/decayed_accumulator.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph SingleEdge(size_t n, NodeId src, NodeId dst, double w) {
  GraphBuilder b(n);
  b.AddEdge(src, dst, w);
  return std::move(b).Build();
}

TEST(DecayedAccumulatorTest, EmptyBeforeAnyWindow) {
  DecayedGraphAccumulator acc(4, 0.5);
  EXPECT_EQ(acc.windows_seen(), 0u);
  EXPECT_EQ(acc.Current().NumEdges(), 0u);
}

TEST(DecayedAccumulatorTest, SingleWindowPassesThrough) {
  DecayedGraphAccumulator acc(4, 0.5);
  acc.AddWindow(SingleEdge(4, 0, 1, 8.0));
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(acc.Current().EdgeWeight(0, 1), 8.0);
}

TEST(DecayedAccumulatorTest, DecayHalvesOldWeight) {
  DecayedGraphAccumulator acc(4, 0.5);
  acc.AddWindow(SingleEdge(4, 0, 1, 8.0));
  acc.AddWindow(SingleEdge(4, 0, 2, 4.0));
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 1), 4.0);  // 8 * 0.5
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 2), 4.0);  // fresh
}

TEST(DecayedAccumulatorTest, RepeatedEdgeIsGeometricSeries) {
  DecayedGraphAccumulator acc(2, 0.5);
  for (int w = 0; w < 4; ++w) acc.AddWindow(SingleEdge(2, 0, 1, 1.0));
  // 1 + 0.5 + 0.25 + 0.125
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 1), 1.875);
  EXPECT_EQ(acc.windows_seen(), 4u);
}

TEST(DecayedAccumulatorTest, ZeroDecayKeepsOnlyLatestWindow) {
  DecayedGraphAccumulator acc(4, 0.0);
  acc.AddWindow(SingleEdge(4, 0, 1, 8.0));
  acc.AddWindow(SingleEdge(4, 0, 2, 4.0));
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 2), 4.0);
  EXPECT_EQ(acc.Current().NumEdges(), 1u);
}

TEST(DecayedAccumulatorTest, PruningDropsStaleEdges) {
  DecayedGraphAccumulator acc(2, 0.5, 0, /*prune_threshold=*/0.3);
  acc.AddWindow(SingleEdge(2, 0, 1, 1.0));
  // After two decays: 0.25 < 0.3 -> pruned.
  GraphBuilder empty1(2), empty2(2);
  acc.AddWindow(std::move(empty1).Build());
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 1), 0.5);
  acc.AddWindow(std::move(empty2).Build());
  EXPECT_DOUBLE_EQ(acc.EdgeWeight(0, 1), 0.0);
  EXPECT_EQ(acc.Current().NumEdges(), 0u);
}

TEST(DecayedAccumulatorTest, BipartiteMetadataPropagates) {
  DecayedGraphAccumulator acc(4, 0.5, /*bipartite_left_size=*/2);
  acc.AddWindow(SingleEdge(4, 0, 2, 1.0));
  CommGraph g = acc.Current();
  EXPECT_TRUE(g.bipartite().IsBipartite());
  EXPECT_EQ(g.bipartite().left_size, 2u);
}

TEST(DecayedAccumulatorTest, AggregatesMultipleEdgesPerWindow) {
  DecayedGraphAccumulator acc(3, 0.9);
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(0, 2, 3.0);
  b.AddEdge(1, 2, 4.0);
  acc.AddWindow(std::move(b).Build());
  CommGraph g = acc.Current();
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 9.0);
}

}  // namespace
}  // namespace commsig
