#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakePath(size_t n) {
  // 0 -> 1 -> 2 -> ... -> n-1
  GraphBuilder b(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1.0);
  }
  return std::move(b).Build();
}

TEST(GraphStatsTest, SummaryOfPath) {
  CommGraph g = MakePath(5);
  GraphSummary s = Summarize(g);
  EXPECT_EQ(s.num_nodes, 5u);
  EXPECT_EQ(s.num_active_nodes, 5u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_DOUBLE_EQ(s.total_weight, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_out_degree_active, 1.0);
  EXPECT_DOUBLE_EQ(s.max_out_degree, 1.0);
  EXPECT_DOUBLE_EQ(s.max_in_degree, 1.0);
}

TEST(GraphStatsTest, SummaryCountsInactiveNodes) {
  GraphBuilder b(10);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  GraphSummary s = Summarize(g);
  EXPECT_EQ(s.num_active_nodes, 2u);
}

TEST(GraphStatsTest, DegreeHistograms) {
  // Star: 0 -> {1,2,3}
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(0, 3, 1.0);
  CommGraph g = std::move(b).Build();
  auto out_hist = OutDegreeHistogram(g);
  ASSERT_EQ(out_hist.size(), 4u);
  EXPECT_EQ(out_hist[0], 3u);  // leaves have out-degree 0
  EXPECT_EQ(out_hist[3], 1u);  // hub
  auto in_hist = InDegreeHistogram(g);
  EXPECT_EQ(in_hist[1], 3u);
  EXPECT_EQ(in_hist[0], 1u);
}

TEST(GraphStatsTest, HopDistancesTreatEdgesUndirected) {
  CommGraph g = MakePath(4);
  auto dist = UndirectedHopDistances(g, 3);  // last node, only in-edges
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[0], 3u);
}

TEST(GraphStatsTest, DisconnectedNodesUnreachable) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  auto dist = UndirectedHopDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(GraphStatsTest, EccentricityOfPathEnd) {
  CommGraph g = MakePath(6);
  EXPECT_EQ(UndirectedEccentricity(g, 0), 5u);
  EXPECT_EQ(UndirectedEccentricity(g, 2), 3u);
}

TEST(GraphStatsTest, DiameterOfPathIsExact) {
  CommGraph g = MakePath(7);
  // Double sweep is exact on trees.
  EXPECT_EQ(EstimateDiameter(g, 3), 6u);
}

TEST(GraphStatsTest, DiameterOfEmptyGraphIsZero) {
  GraphBuilder b(3);
  CommGraph g = std::move(b).Build();
  EXPECT_EQ(EstimateDiameter(g), 0u);
}

TEST(GraphStatsTest, DiameterOfStarIsTwo) {
  GraphBuilder b(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) b.AddEdge(0, leaf, 1.0);
  CommGraph g = std::move(b).Build();
  EXPECT_EQ(EstimateDiameter(g), 2u);
}

TEST(GraphStatsTest, BipartiteDoubleStarDiameter) {
  // Two hubs sharing one destination: diameter 0-h-x-h'-y = 4.
  GraphBuilder b(7);
  b.SetBipartiteLeftSize(2);
  // hub 0 -> {2,3,4}; hub 1 -> {4,5,6}
  for (NodeId d : {2, 3, 4}) b.AddEdge(0, d, 1.0);
  for (NodeId d : {4, 5, 6}) b.AddEdge(1, d, 1.0);
  CommGraph g = std::move(b).Build();
  EXPECT_EQ(EstimateDiameter(g), 4u);
}

}  // namespace
}  // namespace commsig
