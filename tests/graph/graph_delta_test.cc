#include "graph/graph_delta.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

struct WeightedEdge {
  NodeId src;
  NodeId dst;
  double weight;
};

CommGraph MakeGraph(size_t num_nodes, const std::vector<WeightedEdge>& edges) {
  GraphBuilder b(num_nodes);
  for (const auto& e : edges) b.AddEdge(e.src, e.dst, e.weight);
  return std::move(b).Build();
}

TEST(GraphDeltaTest, IdenticalGraphsAreEmpty) {
  CommGraph a = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 1.0}, {3, 0, 5.0}});
  CommGraph b = MakeGraph(4, {{0, 1, 2.0}, {1, 2, 1.0}, {3, 0, 5.0}});
  GraphDelta delta(a, b);
  EXPECT_TRUE(delta.Empty());
  EXPECT_EQ(delta.num_out_changed(), 0u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(delta.OutChanged(v));
    EXPECT_FALSE(delta.InChanged(v));
    EXPECT_FALSE(delta.InDegreeChanged(v));
    EXPECT_FALSE(delta.LocalDirty(v));
  }
  EXPECT_DOUBLE_EQ(delta.EdgeWeightL1(), 0.0);
  EXPECT_EQ(delta.NumChangedEdges(), 0u);
}

TEST(GraphDeltaTest, AggregationOrderDoesNotMatter) {
  // Same multiset of observations added in different orders must aggregate
  // to identical rows (and identical row digests), so the delta is empty.
  CommGraph a = MakeGraph(3, {{0, 1, 1.0}, {0, 2, 3.0}, {0, 1, 2.0}});
  CommGraph b = MakeGraph(3, {{0, 2, 3.0}, {0, 1, 2.0}, {0, 1, 1.0}});
  GraphDelta delta(a, b);
  EXPECT_TRUE(delta.Empty());
  EXPECT_EQ(a.OutRowDigest(0), b.OutRowDigest(0));
  EXPECT_EQ(a.InRowDigest(1), b.InRowDigest(1));
}

TEST(GraphDeltaTest, WeightChangeFlagsOutAndInRows) {
  CommGraph a = MakeGraph(4, {{0, 1, 2.0}, {2, 3, 1.0}});
  CommGraph b = MakeGraph(4, {{0, 1, 7.0}, {2, 3, 1.0}});
  GraphDelta delta(a, b);
  EXPECT_TRUE(delta.OutChanged(0));
  EXPECT_TRUE(delta.InChanged(1));
  // Same neighbour set, so no in-degree moved anywhere.
  for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(delta.InDegreeChanged(v));
  EXPECT_FALSE(delta.OutChanged(2));
  EXPECT_FALSE(delta.LocalDirty(2));
  ASSERT_EQ(delta.changed_out_nodes().size(), 1u);
  EXPECT_EQ(delta.changed_out_nodes()[0], 0u);
  EXPECT_DOUBLE_EQ(delta.EdgeWeightL1(), 5.0);
  EXPECT_EQ(delta.NumChangedEdges(), 1u);
}

TEST(GraphDeltaTest, VanishedEdgeCountsFullWeight) {
  CommGraph a = MakeGraph(3, {{0, 1, 4.0}, {0, 2, 1.0}});
  CommGraph b = MakeGraph(3, {{0, 2, 1.0}});
  GraphDelta delta(a, b);
  EXPECT_TRUE(delta.OutChanged(0));
  EXPECT_TRUE(delta.InChanged(1));
  EXPECT_TRUE(delta.InDegreeChanged(1));
  EXPECT_DOUBLE_EQ(delta.EdgeWeightL1(), 4.0);
  EXPECT_EQ(delta.NumChangedEdges(), 1u);
}

TEST(GraphDeltaTest, LocalDirtyPropagatesFromEndpointInDegree) {
  // Node 0's out-row is identical in both windows, but its target (node 2)
  // gains a new in-neighbour, so |I(2)| moves and UT's weights for node 0
  // change: 0 must be LocalDirty without being OutChanged.
  CommGraph a = MakeGraph(4, {{0, 2, 1.0}});
  CommGraph b = MakeGraph(4, {{0, 2, 1.0}, {3, 2, 5.0}});
  GraphDelta delta(a, b);
  EXPECT_FALSE(delta.OutChanged(0));
  EXPECT_TRUE(delta.LocalDirty(0));
  EXPECT_TRUE(delta.OutChanged(3));
  EXPECT_TRUE(delta.LocalDirty(3));
  EXPECT_TRUE(delta.InDegreeChanged(2));
  EXPECT_FALSE(delta.LocalDirty(1));
}

TEST(GraphDeltaTest, StableInDegreeKeepsBystandersClean) {
  // The changed edge re-weights an existing pair: in-degree *sets* are
  // stable, so other talkers to the same service stay clean for UT.
  CommGraph a = MakeGraph(4, {{0, 2, 1.0}, {1, 2, 1.0}});
  CommGraph b = MakeGraph(4, {{0, 2, 9.0}, {1, 2, 1.0}});
  GraphDelta delta(a, b);
  EXPECT_TRUE(delta.LocalDirty(0));
  EXPECT_FALSE(delta.LocalDirty(1));
}

TEST(GraphDeltaTest, RowChangedHonoursTraversalMode) {
  // Node 1 only *receives* differently; its out-row is unchanged. An
  // asymmetric RWR transition row is untouched, a symmetric one moved.
  CommGraph a = MakeGraph(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  CommGraph b = MakeGraph(3, {{0, 1, 3.0}, {1, 2, 1.0}});
  GraphDelta delta(a, b);
  EXPECT_FALSE(delta.RowChanged(1, /*symmetric=*/false));
  EXPECT_TRUE(delta.RowChanged(1, /*symmetric=*/true));
  // changed_row_nodes is the union of out- and in-row changes, ascending.
  std::vector<NodeId> rows(delta.changed_row_nodes().begin(),
                           delta.changed_row_nodes().end());
  EXPECT_EQ(rows, (std::vector<NodeId>{0, 1}));
}

TEST(GraphDeltaTest, RowDigestsDifferForDifferentRows) {
  CommGraph a = MakeGraph(3, {{0, 1, 1.0}});
  CommGraph b = MakeGraph(3, {{0, 1, 2.0}});
  CommGraph c = MakeGraph(3, {{0, 2, 1.0}});
  EXPECT_NE(a.OutRowDigest(0), b.OutRowDigest(0));  // weight differs
  EXPECT_NE(a.OutRowDigest(0), c.OutRowDigest(0));  // neighbour differs
  EXPECT_EQ(a.OutRowDigest(1), b.OutRowDigest(1));  // both empty... equal
  EXPECT_NE(a.InRowDigest(1), c.InRowDigest(1));
}

}  // namespace
}  // namespace commsig
