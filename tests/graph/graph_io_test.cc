#include "graph/graph_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_graph_io_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(GraphIoTest, RoundTrip) {
  Interner interner;
  NodeId a = interner.Intern("alpha");
  NodeId b = interner.Intern("beta");
  NodeId c = interner.Intern("gamma");
  GraphBuilder builder(3);
  builder.AddEdge(a, b, 2.5);
  builder.AddEdge(b, c, 1.0);
  builder.AddEdge(a, c, 4.0);
  CommGraph g = std::move(builder).Build();

  ASSERT_TRUE(WriteEdgeListCsv(g, interner, path_.string()).ok());

  Interner interner2;
  auto loaded = ReadEdgeListCsv(path_.string(), interner2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumEdges(), 3u);
  NodeId a2 = interner2.Find("alpha");
  NodeId b2 = interner2.Find("beta");
  NodeId c2 = interner2.Find("gamma");
  ASSERT_NE(a2, kInvalidNode);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(a2, b2), 2.5);
  EXPECT_DOUBLE_EQ(loaded->EdgeWeight(a2, c2), 4.0);
  EXPECT_DOUBLE_EQ(loaded->TotalWeight(), g.TotalWeight());
}

TEST_F(GraphIoTest, ReadAggregatesDuplicateRows) {
  {
    std::ofstream out(path_);
    out << "x,y,1.5\nx,y,2.5\n";
  }
  Interner interner;
  auto g = ReadEdgeListCsv(path_.string(), interner);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(interner.Find("x"), interner.Find("y")),
                   4.0);
}

TEST_F(GraphIoTest, ReadRejectsBadFieldCount) {
  {
    std::ofstream out(path_);
    out << "x,y\n";
  }
  Interner interner;
  auto g = ReadEdgeListCsv(path_.string(), interner);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST_F(GraphIoTest, ReadRejectsNonPositiveWeight) {
  {
    std::ofstream out(path_);
    out << "x,y,0\n";
  }
  Interner interner;
  auto g = ReadEdgeListCsv(path_.string(), interner);
  EXPECT_FALSE(g.ok());
}

TEST_F(GraphIoTest, ReadRejectsUnparsableWeight) {
  {
    std::ofstream out(path_);
    out << "x,y,heavy\n";
  }
  Interner interner;
  auto g = ReadEdgeListCsv(path_.string(), interner);
  EXPECT_FALSE(g.ok());
}

TEST_F(GraphIoTest, BipartiteLeftSizeApplied) {
  {
    std::ofstream out(path_);
    out << "u,t,1\n";
  }
  Interner interner;
  auto g = ReadEdgeListCsv(path_.string(), interner, /*left=*/1);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->bipartite().IsBipartite());
  EXPECT_TRUE(g->InLeftPartition(interner.Find("u")));
  EXPECT_FALSE(g->InLeftPartition(interner.Find("t")));
}

TEST(GraphIoErrorTest, MissingFile) {
  Interner interner;
  auto g = ReadEdgeListCsv("/no/such/file.csv", interner);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

}  // namespace
}  // namespace commsig
