#include "apps/masquerade_detector.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

// Four nodes with distinctive signatures; nodes 2 and 3 swap in window t+1.
struct SwapScenario {
  std::vector<NodeId> nodes = {100, 101, 102, 103};
  std::vector<Signature> sigs_t = {
      Sig({{1, 1.0}, {2, 1.0}}), Sig({{3, 1.0}, {4, 1.0}}),
      Sig({{5, 1.0}, {6, 1.0}}), Sig({{7, 1.0}, {8, 1.0}})};
  std::vector<Signature> sigs_t1 = {
      Sig({{1, 1.0}, {2, 1.0}}), Sig({{3, 1.0}, {4, 1.0}}),
      Sig({{7, 1.0}, {8, 1.0}}),  // node 102 now carries 103's behaviour
      Sig({{5, 1.0}, {6, 1.0}})};  // and vice versa
};

TEST(MasqueradeDetectorTest, DetectsSwappedPair) {
  SwapScenario s;
  MasqueradeDetector detector(kJac, {.top_ell = 1, .delta_divisor = 5.0});
  MasqueradeDetection result = detector.Detect(s.nodes, s.sigs_t, s.sigs_t1);
  // Nodes 100, 101 persist; 102 matches 103's new signature and vice versa.
  // The detected pair (v, u) means: v's behaviour reappears under label u,
  // i.e. 102's old behaviour now lives at 103.
  ASSERT_EQ(result.detected.size(), 2u);
  EXPECT_TRUE((result.detected[0] == std::make_pair(NodeId{102}, NodeId{103})) ||
              (result.detected[1] == std::make_pair(NodeId{102}, NodeId{103})));
  EXPECT_TRUE((result.detected[0] == std::make_pair(NodeId{103}, NodeId{102})) ||
              (result.detected[1] == std::make_pair(NodeId{103}, NodeId{102})));
  EXPECT_EQ(result.non_suspects.size(), 2u);
}

TEST(MasqueradeDetectorTest, PerfectAccuracyOnSwap) {
  SwapScenario s;
  MasqueradeDetector detector(kJac, {.top_ell = 1, .delta_divisor = 5.0});
  MasqueradeDetection result = detector.Detect(s.nodes, s.sigs_t, s.sigs_t1);
  MasqueradePlan plan;
  plan.mapping = {{102, 103}, {103, 102}};
  EXPECT_DOUBLE_EQ(MasqueradeAccuracy(result, plan, s.nodes), 1.0);
}

TEST(MasqueradeDetectorTest, NoMasqueradesMeansAllCleared) {
  SwapScenario s;
  MasqueradeDetector detector(kJac, {.top_ell = 1, .delta_divisor = 5.0});
  MasqueradeDetection result = detector.Detect(s.nodes, s.sigs_t, s.sigs_t);
  EXPECT_TRUE(result.detected.empty());
  EXPECT_EQ(result.non_suspects.size(), 4u);
  EXPECT_DOUBLE_EQ(MasqueradeAccuracy(result, MasqueradePlan{}, s.nodes),
                   1.0);
}

TEST(MasqueradeDetectorTest, FixedDeltaOverridesDerivation) {
  SwapScenario s;
  MasqueradeDetector detector(kJac, {.top_ell = 1, .fixed_delta = 0.25});
  MasqueradeDetection result = detector.Detect(s.nodes, s.sigs_t, s.sigs_t1);
  EXPECT_DOUBLE_EQ(result.delta, 0.25);
}

TEST(MasqueradeDetectorTest, VanishedBehaviourIsNotPaired) {
  // Node 1's behaviour disappears entirely (nobody inherits it): with no
  // matching partner it must not be reported as a pair.
  std::vector<NodeId> nodes = {1, 2};
  std::vector<Signature> t = {Sig({{10, 1.0}}), Sig({{20, 1.0}})};
  std::vector<Signature> t1 = {Sig({{30, 1.0}}), Sig({{20, 1.0}})};
  MasqueradeDetector detector(kJac, {.top_ell = 1, .delta_divisor = 2.0});
  MasqueradeDetection result = detector.Detect(nodes, t, t1);
  for (const auto& [v, u] : result.detected) {
    // Partner must itself be non-persistent; node 2 persists, so the only
    // allowed pairing is none at all for v = 1.
    EXPECT_NE(u, 2u);
  }
}

TEST(MasqueradeDetectorTest, LargerEllAdmitsLowerRankedPartners) {
  // v's true partner ties with a persistent decoy for the best cross
  // match; the tie-break ranks the decoy first, so ell = 1 misses the
  // partner and ell = 2 finds it.
  std::vector<NodeId> nodes = {1, 2, 3};
  std::vector<Signature> t = {
      Sig({{10, 1.0}}),            // v: behaviour X
      Sig({{10, 1.0}, {11, 1.0}}), // decoy: persistent, overlaps X
      Sig({{30, 1.0}})};           // partner-to-be
  std::vector<Signature> t1 = {
      Sig({{40, 1.0}}),            // v changed
      Sig({{10, 1.0}, {11, 1.0}}), // decoy persists (ranked 1st for v)
      Sig({{10, 1.0}, {99, 1.0}})};  // node 3 inherits X (tied, ranked 2nd)
  MasqueradeDetector ell1(kJac, {.top_ell = 1, .delta_divisor = 2.0});
  MasqueradeDetection r1 = ell1.Detect(nodes, t, t1);
  bool found_ell1 = false;
  for (const auto& p : r1.detected) {
    if (p == std::make_pair(NodeId{1}, NodeId{3})) found_ell1 = true;
  }
  EXPECT_FALSE(found_ell1);

  MasqueradeDetector ell2(kJac, {.top_ell = 2, .delta_divisor = 2.0});
  MasqueradeDetection r2 = ell2.Detect(nodes, t, t1);
  bool found_ell2 = false;
  for (const auto& p : r2.detected) {
    if (p == std::make_pair(NodeId{1}, NodeId{3})) found_ell2 = true;
  }
  EXPECT_TRUE(found_ell2);
}

TEST(MasqueradeAccuracyTest, PenalizesWrongPairs) {
  MasqueradeDetection detection;
  detection.detected = {{1, 2}};  // wrong: truth is (1,3)
  detection.non_suspects = {4};
  MasqueradePlan plan;
  plan.mapping = {{1, 3}, {3, 1}};
  std::vector<NodeId> focal = {1, 2, 3, 4};
  // Correct: non-suspect 4 (2 is missing from both lists -> counts 0).
  EXPECT_DOUBLE_EQ(MasqueradeAccuracy(detection, plan, focal), 0.25);
}

TEST(MasqueradeAccuracyTest, EmptyFocalSetIsZero) {
  EXPECT_DOUBLE_EQ(
      MasqueradeAccuracy(MasqueradeDetection{}, MasqueradePlan{}, {}), 0.0);
}

}  // namespace
}  // namespace commsig
