#include "apps/deanonymizer.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

TEST(PlanAnonymizationTest, IsAPermutationOfThePool) {
  std::vector<NodeId> pool = {3, 5, 7, 9, 11};
  AnonymizationPlan plan = PlanAnonymization(pool, 1);
  ASSERT_EQ(plan.pseudonym_of.size(), pool.size());
  std::multiset<NodeId> a(pool.begin(), pool.end());
  std::multiset<NodeId> b(plan.pseudonym_of.begin(),
                          plan.pseudonym_of.end());
  EXPECT_EQ(a, b);
}

TEST(PlanAnonymizationTest, DeterministicUnderSeed) {
  std::vector<NodeId> pool = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(PlanAnonymization(pool, 9).pseudonym_of,
            PlanAnonymization(pool, 9).pseudonym_of);
}

TEST(PlanAnonymizationTest, OriginalOfInverts) {
  std::vector<NodeId> pool = {0, 1, 2, 3};
  AnonymizationPlan plan = PlanAnonymization(pool, 4);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(plan.OriginalOf(plan.pseudonym_of[i]), pool[i]);
  }
  EXPECT_EQ(plan.OriginalOf(999), kInvalidNode);
}

TEST(AnonymizeTest, RelabelsEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 2, 5.0);
  b.AddEdge(1, 3, 7.0);
  CommGraph g = std::move(b).Build();
  AnonymizationPlan plan;
  plan.pool = {0, 1};
  plan.pseudonym_of = {1, 0};  // swap
  CommGraph anon = Anonymize(g, plan);
  EXPECT_DOUBLE_EQ(anon.EdgeWeight(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(anon.EdgeWeight(0, 3), 7.0);
  EXPECT_DOUBLE_EQ(anon.TotalWeight(), g.TotalWeight());
}

TEST(DeanonymizerTest, RecoversDistinctiveNodes) {
  // Three nodes with disjoint signatures, shuffled pseudonyms.
  std::vector<NodeId> originals = {10, 11, 12};
  std::vector<Signature> reference = {Sig({{1, 1.0}}), Sig({{2, 1.0}}),
                                      Sig({{3, 1.0}})};
  // Anonymized window: same behaviours under permuted labels
  // 10 -> 12, 11 -> 10, 12 -> 11.
  std::vector<NodeId> pseudonyms = {12, 10, 11};
  std::vector<Signature> anonymous = reference;
  Deanonymizer attacker(kJac);
  auto ids = attacker.Identify(originals, reference, pseudonyms, anonymous);
  ASSERT_EQ(ids.size(), 3u);
  for (const auto& id : ids) {
    // pseudonyms[i] carries reference[i]'s behaviour.
    if (id.original == 10) {
      EXPECT_EQ(id.pseudonym, 12u);
    } else if (id.original == 11) {
      EXPECT_EQ(id.pseudonym, 10u);
    } else if (id.original == 12) {
      EXPECT_EQ(id.pseudonym, 11u);
    }
  }
}

TEST(DeanonymizerTest, OneToOneNeverReusesAPseudonym) {
  // Two reference nodes whose nearest candidate is the same pseudonym.
  std::vector<NodeId> originals = {1, 2};
  std::vector<Signature> reference = {Sig({{1, 1.0}, {2, 1.0}}),
                                      Sig({{1, 1.0}, {3, 1.0}})};
  std::vector<NodeId> pseudonyms = {100, 200};
  std::vector<Signature> anonymous = {Sig({{1, 1.0}, {2, 1.0}}),
                                      Sig({{9, 1.0}})};
  Deanonymizer attacker(kJac, {.one_to_one = true, .max_distance = 1.0});
  auto ids = attacker.Identify(originals, reference, pseudonyms, anonymous);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0].pseudonym, ids[1].pseudonym);
  // The exact-match pair must win pseudonym 100.
  for (const auto& id : ids) {
    if (id.original == 1) {
      EXPECT_EQ(id.pseudonym, 100u);
    }
  }
}

TEST(DeanonymizerTest, IndependentModeMayReuse) {
  std::vector<NodeId> originals = {1, 2};
  std::vector<Signature> reference = {Sig({{1, 1.0}}), Sig({{1, 1.0}})};
  std::vector<NodeId> pseudonyms = {100, 200};
  std::vector<Signature> anonymous = {Sig({{1, 1.0}}), Sig({{9, 1.0}})};
  Deanonymizer attacker(kJac, {.one_to_one = false, .max_distance = 1.0});
  auto ids = attacker.Identify(originals, reference, pseudonyms, anonymous);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0].pseudonym, 100u);
  EXPECT_EQ(ids[1].pseudonym, 100u);
}

TEST(DeanonymizerTest, MaxDistanceAbstains) {
  std::vector<NodeId> originals = {1};
  std::vector<Signature> reference = {Sig({{1, 1.0}})};
  std::vector<NodeId> pseudonyms = {100};
  std::vector<Signature> anonymous = {Sig({{9, 1.0}})};  // distance 1
  Deanonymizer attacker(kJac, {.one_to_one = true, .max_distance = 0.5});
  EXPECT_TRUE(
      attacker.Identify(originals, reference, pseudonyms, anonymous).empty());
}

TEST(DeanonymizerTest, EmptyInputs) {
  Deanonymizer attacker(kJac);
  EXPECT_TRUE(attacker.Identify({}, {}, {}, {}).empty());
}

TEST(DeanonymizerTest, MarginSortsConfidentFirst) {
  std::vector<NodeId> originals = {1, 2};
  // Node 1 has an unambiguous match; node 2 is ambiguous.
  std::vector<Signature> reference = {Sig({{1, 1.0}, {2, 1.0}}),
                                      Sig({{5, 1.0}, {6, 1.0}})};
  std::vector<NodeId> pseudonyms = {100, 200, 300};
  std::vector<Signature> anonymous = {Sig({{1, 1.0}, {2, 1.0}}),
                                      Sig({{5, 1.0}, {7, 1.0}}),
                                      Sig({{5, 1.0}, {8, 1.0}})};
  Deanonymizer attacker(kJac);
  auto ids = attacker.Identify(originals, reference, pseudonyms, anonymous);
  ASSERT_GE(ids.size(), 2u);
  EXPECT_EQ(ids[0].original, 1u);
  EXPECT_GE(ids[0].margin, ids[1].margin);
}

TEST(DeanonymizerTest, OptimalAssignmentBeatsGreedyTrap) {
  // Greedy-by-margin can claim the wrong pseudonym for an ambiguous node;
  // the Hungarian assignment minimizes total distance and recovers the
  // truth. Construct: ref0 is closest to anon0 AND anon1; ref1 only
  // matches anon0. Greedy may give anon0 to ref0, stranding ref1.
  std::vector<NodeId> originals = {1, 2};
  std::vector<Signature> reference = {
      Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}}),
      Sig({{1, 1.0}, {2, 1.0}, {4, 1.0}})};
  std::vector<NodeId> pseudonyms = {100, 200};
  std::vector<Signature> anonymous = {
      Sig({{1, 1.0}, {2, 1.0}, {4, 1.0}}),   // = ref1 exactly
      Sig({{1, 1.0}, {2, 1.0}, {5, 1.0}})};  // closer to ref0 than to ref1?
  // Distances (jac): ref0-anon0 = 1-2/4 = .5; ref0-anon1 = .5;
  // ref1-anon0 = 0; ref1-anon1 = .5. Optimal total: ref1->anon0 (0) +
  // ref0->anon1 (.5) = .5.
  Deanonymizer optimal(kJac, {.one_to_one = true,
                              .assignment =
                                  Deanonymizer::AssignmentMode::kOptimal});
  auto ids = optimal.Identify(originals, reference, pseudonyms, anonymous);
  ASSERT_EQ(ids.size(), 2u);
  for (const auto& id : ids) {
    if (id.original == 2) {
      EXPECT_EQ(id.pseudonym, 100u);
    } else if (id.original == 1) {
      EXPECT_EQ(id.pseudonym, 200u);
    }
  }
}

TEST(DeanonymizerTest, OptimalRespectsMaxDistance) {
  std::vector<NodeId> originals = {1};
  std::vector<Signature> reference = {Sig({{1, 1.0}})};
  std::vector<NodeId> pseudonyms = {100};
  std::vector<Signature> anonymous = {Sig({{9, 1.0}})};
  Deanonymizer optimal(kJac, {.one_to_one = true,
                              .assignment =
                                  Deanonymizer::AssignmentMode::kOptimal,
                              .max_distance = 0.5});
  EXPECT_TRUE(
      optimal.Identify(originals, reference, pseudonyms, anonymous).empty());
}

TEST(DeanonymizationAccuracyTest, CountsExactPairs) {
  AnonymizationPlan plan;
  plan.pool = {1, 2, 3, 4};
  plan.pseudonym_of = {2, 1, 4, 3};
  std::vector<Identification> ids = {
      {1, 2, 0.0, 1.0},  // correct
      {2, 1, 0.0, 1.0},  // correct
      {3, 3, 0.0, 1.0},  // wrong (truth: 3 -> 4)
  };
  EXPECT_DOUBLE_EQ(DeanonymizationAccuracy(ids, plan), 0.5);
}

}  // namespace
}  // namespace commsig
