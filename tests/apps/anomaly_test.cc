#include "apps/anomaly.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

TEST(DetectAnomaliesTest, FlagsTheOneChangedNode) {
  // Nine stable nodes, one that flipped its behaviour entirely.
  std::vector<NodeId> nodes;
  std::vector<Signature> t, t1;
  for (NodeId v = 0; v < 10; ++v) {
    nodes.push_back(v);
    t.push_back(Sig({{100 + v, 1.0}, {200 + v, 1.0}}));
    if (v == 7) {
      t1.push_back(Sig({{900, 1.0}, {901, 1.0}}));  // total change
    } else {
      t1.push_back(t.back());
    }
  }
  auto anomalies = DetectAnomalies(nodes, t, t1, kJac, 2.0);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].node, 7u);
  EXPECT_DOUBLE_EQ(anomalies[0].persistence, 0.0);
  EXPECT_GT(anomalies[0].deviations_below_mean, 2.0);
}

TEST(DetectAnomaliesTest, NoAnomaliesWhenAllStable) {
  std::vector<NodeId> nodes = {0, 1, 2};
  std::vector<Signature> sigs = {Sig({{1, 1.0}}), Sig({{2, 1.0}}),
                                 Sig({{3, 1.0}})};
  EXPECT_TRUE(DetectAnomalies(nodes, sigs, sigs, kJac, 2.0).empty());
}

TEST(DetectAnomaliesTest, SortsMostAnomalousFirst) {
  std::vector<NodeId> nodes;
  std::vector<Signature> t, t1;
  for (NodeId v = 0; v < 20; ++v) {
    nodes.push_back(v);
    t.push_back(Sig({{100 + v, 1.0}, {200 + v, 1.0}}));
    if (v == 3) {
      t1.push_back(Sig({{900, 1.0}, {901, 1.0}}));  // full change
    } else if (v == 5) {
      t1.push_back(Sig({{100 + v, 1.0}, {902, 1.0}}));  // half change
    } else {
      t1.push_back(t.back());
    }
  }
  auto anomalies = DetectAnomalies(nodes, t, t1, kJac, 1.0);
  ASSERT_GE(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0].node, 3u);
  EXPECT_EQ(anomalies[1].node, 5u);
}

TEST(AnomalyMonitorTest, FirstWindowNeverAlerts) {
  std::vector<NodeId> nodes = {0, 1};
  AnomalyMonitor monitor(nodes, kJac);
  auto alerts = monitor.Observe({Sig({{1, 1.0}}), Sig({{2, 1.0}})});
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(monitor.windows_seen(), 1u);
}

TEST(AnomalyMonitorTest, DetectsBehaviourBreakAfterStableHistory) {
  std::vector<NodeId> nodes;
  std::vector<Signature> stable;
  for (NodeId v = 0; v < 10; ++v) {
    nodes.push_back(v);
    stable.push_back(Sig({{100 + v, 1.0}, {200 + v, 1.0}}));
  }
  AnomalyMonitor monitor(nodes, kJac,
                         {.deviation_threshold = 2.0, .min_history = 2});
  // Five stable windows.
  for (int w = 0; w < 5; ++w) {
    EXPECT_TRUE(monitor.Observe(stable).empty()) << "window " << w;
  }
  // Node 4 breaks.
  std::vector<Signature> broken = stable;
  broken[4] = Sig({{999, 1.0}});
  auto alerts = monitor.Observe(broken);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].node, 4u);
}

TEST(AnomalyMonitorTest, GradualDriftBelowThresholdStaysQuiet) {
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  AnomalyMonitor::Options opts;
  opts.deviation_threshold = 3.0;
  opts.min_history = 2;
  opts.min_stddev = 0.2;  // tolerate sizable wobble
  AnomalyMonitor monitor(nodes, kJac, opts);
  // Signatures drift by one node each window out of four.
  for (NodeId base = 0; base < 6; ++base) {
    std::vector<Signature> sigs;
    for (NodeId v = 0; v < 4; ++v) {
      sigs.push_back(Sig({{100 + v, 1.0},
                          {200 + v, 1.0},
                          {300 + v, 1.0},
                          {400 + base, 1.0}}));
    }
    EXPECT_TRUE(monitor.Observe(sigs).empty()) << "window " << base;
  }
}

TEST(AnomalyMonitorTest, WindowsSeenCounts) {
  std::vector<NodeId> nodes = {0};
  AnomalyMonitor monitor(nodes, kJac);
  monitor.Observe({Sig({{1, 1.0}})});
  monitor.Observe({Sig({{1, 1.0}})});
  monitor.Observe({Sig({{1, 1.0}})});
  EXPECT_EQ(monitor.windows_seen(), 3u);
}

}  // namespace
}  // namespace commsig
