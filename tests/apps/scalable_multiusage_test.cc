#include "apps/scalable_multiusage.h"

#include <set>

#include <gtest/gtest.h>

#include "core/scheme.h"
#include "data/flow_generator.h"

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

TEST(ScalableMultiusageTest, FindsIdenticalPair) {
  std::vector<NodeId> nodes = {10, 11, 12};
  std::vector<Signature> sigs = {Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}}),
                                 Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}}),
                                 Sig({{9, 1.0}})};
  ScalableMultiusageDetector::Options opts;
  opts.threshold = 0.3;
  ScalableMultiusageDetector detector(kJac, opts);
  auto result = detector.Detect(nodes, sigs);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].a, 10u);
  EXPECT_EQ(result.pairs[0].b, 11u);
  EXPECT_GT(result.exact_evaluations, 0u);
}

TEST(ScalableMultiusageTest, ExactThresholdStillApplies) {
  // LSH may surface a moderately similar pair; the exact threshold must
  // still reject it.
  std::vector<NodeId> nodes = {1, 2};
  std::vector<Signature> sigs = {
      Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}}),
      Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}, {9, 1.0}})};  // jac dist 0.4
  ScalableMultiusageDetector::Options strict_opts;
  strict_opts.threshold = 0.2;
  ScalableMultiusageDetector strict(kJac, strict_opts);
  EXPECT_TRUE(strict.Detect(nodes, sigs).pairs.empty());
  ScalableMultiusageDetector::Options loose_opts;
  loose_opts.threshold = 0.5;
  ScalableMultiusageDetector loose(kJac, loose_opts);
  EXPECT_EQ(loose.Detect(nodes, sigs).pairs.size(), 1u);
}

TEST(ScalableMultiusageTest, AgreesWithBruteForceOnRealWorkload) {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 120;
  cfg.num_external_hosts = 4000;
  cfg.num_windows = 2;
  cfg.multi_ip_user_fraction = 0.2;
  cfg.seed = 88;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  auto windows = ds.Windows();
  auto tt = *CreateScheme("tt", {.k = 10, .restrict_to_opposite_partition = true});
  auto sigs = tt->ComputeAll(windows[0], ds.local_hosts);

  const double threshold = 0.4;
  MultiusageDetector brute(kJac, {.threshold = threshold});
  auto exact_pairs = brute.Detect(ds.local_hosts, sigs);

  ScalableMultiusageDetector::Options fast_opts;
  fast_opts.threshold = threshold;
  ScalableMultiusageDetector fast(kJac, fast_opts);
  auto result = fast.Detect(ds.local_hosts, sigs);

  // Strongly-similar pairs (the ones multiusage cares about) must be
  // recovered; LSH may drop borderline pairs near the threshold.
  std::set<std::pair<NodeId, NodeId>> fast_set;
  for (const auto& p : result.pairs) fast_set.emplace(p.a, p.b);
  size_t strong = 0, strong_found = 0;
  for (const auto& p : exact_pairs) {
    if (p.distance <= 0.25) {
      ++strong;
      if (fast_set.contains({p.a, p.b})) ++strong_found;
    }
  }
  if (strong > 0) {
    EXPECT_GE(static_cast<double>(strong_found) / strong, 0.9);
  }
  // And it must be cheaper than the full scan.
  EXPECT_LT(result.exact_evaluations,
            ds.local_hosts.size() * (ds.local_hosts.size() - 1) / 2);
  // No false positives relative to brute force (exact rerank).
  std::set<std::pair<NodeId, NodeId>> exact_set;
  for (const auto& p : exact_pairs) exact_set.emplace(p.a, p.b);
  for (const auto& p : result.pairs) {
    EXPECT_TRUE(exact_set.contains({p.a, p.b}));
  }
}

TEST(ScalableMultiusageTest, MaxPairsCaps) {
  std::vector<NodeId> nodes = {1, 2, 3};
  std::vector<Signature> sigs(3, Sig({{7, 1.0}, {8, 1.0}}));
  ScalableMultiusageDetector::Options opts;
  opts.threshold = 1.0;
  opts.max_pairs = 1;
  ScalableMultiusageDetector detector(kJac, opts);
  EXPECT_EQ(detector.Detect(nodes, sigs).pairs.size(), 1u);
}

TEST(ScalableMultiusageTest, EmptyInput) {
  ScalableMultiusageDetector detector(kJac);
  auto result = detector.Detect({}, {});
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.exact_evaluations, 0u);
}

}  // namespace
}  // namespace commsig
