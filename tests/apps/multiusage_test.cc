#include "apps/multiusage.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

TEST(MultiusageDetectorTest, FindsIdenticalPair) {
  std::vector<NodeId> nodes = {10, 11, 12};
  std::vector<Signature> sigs = {Sig({{1, 1.0}, {2, 1.0}}),
                                 Sig({{1, 1.0}, {2, 1.0}}),
                                 Sig({{9, 1.0}})};
  MultiusageDetector detector(kJac, {.threshold = 0.3});
  auto pairs = detector.Detect(nodes, sigs);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 10u);
  EXPECT_EQ(pairs[0].b, 11u);
  EXPECT_DOUBLE_EQ(pairs[0].distance, 0.0);
}

TEST(MultiusageDetectorTest, NoPairsAboveThreshold) {
  std::vector<NodeId> nodes = {1, 2};
  std::vector<Signature> sigs = {Sig({{1, 1.0}}), Sig({{2, 1.0}})};
  MultiusageDetector detector(kJac, {.threshold = 0.5});
  EXPECT_TRUE(detector.Detect(nodes, sigs).empty());
}

TEST(MultiusageDetectorTest, PairsSortedMostSimilarFirst) {
  std::vector<NodeId> nodes = {1, 2, 3};
  std::vector<Signature> sigs = {
      Sig({{10, 1.0}, {11, 1.0}}),           // node 1
      Sig({{10, 1.0}, {11, 1.0}}),           // node 2: identical to 1
      Sig({{10, 1.0}, {12, 1.0}}),           // node 3: half overlap
  };
  MultiusageDetector detector(kJac, {.threshold = 1.0});
  auto pairs = detector.Detect(nodes, sigs);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_DOUBLE_EQ(pairs[0].distance, 0.0);
  EXPECT_LE(pairs[0].distance, pairs[1].distance);
  EXPECT_LE(pairs[1].distance, pairs[2].distance);
}

TEST(MultiusageDetectorTest, MaxPairsCapsOutput) {
  std::vector<NodeId> nodes = {1, 2, 3, 4};
  std::vector<Signature> sigs(4, Sig({{7, 1.0}}));
  MultiusageDetector detector(kJac, {.threshold = 1.0, .max_pairs = 2});
  EXPECT_EQ(detector.Detect(nodes, sigs).size(), 2u);
}

TEST(MultiusageDetectorTest, ThresholdIsInclusive) {
  std::vector<NodeId> nodes = {1, 2};
  // Jaccard distance = 0.5 exactly (|∩|=1, |∪|=2... actually 1/3): use
  // signatures with distance exactly 1 - 1/2 = 0.5: {a,b} vs {a,c} has
  // |∩|=1,|∪|=3 -> 2/3; use singleton overlap {a} vs {a,b}: 1 - 1/2 = 0.5.
  std::vector<Signature> sigs = {Sig({{1, 1.0}}), Sig({{1, 1.0}, {2, 1.0}})};
  MultiusageDetector detector(kJac, {.threshold = 0.5});
  EXPECT_EQ(detector.Detect(nodes, sigs).size(), 1u);
}

TEST(MultiusageDetectorTest, EmptyInput) {
  MultiusageDetector detector(kJac, {.threshold = 1.0});
  EXPECT_TRUE(detector.Detect({}, {}).empty());
}

TEST(MultiusageDetectorTest, EmptySignaturesPairTogether) {
  // Two silent hosts have identical (empty) signatures — distance 0. The
  // caller is expected to filter inactive hosts; we document the behavior.
  std::vector<NodeId> nodes = {1, 2};
  std::vector<Signature> sigs = {Signature(), Signature()};
  MultiusageDetector detector(kJac, {.threshold = 0.1});
  EXPECT_EQ(detector.Detect(nodes, sigs).size(), 1u);
}

}  // namespace
}  // namespace commsig
