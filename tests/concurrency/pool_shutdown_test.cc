// Shutdown/submit race stress for ThreadPool, written for the TSan preset.
// The contracts under test: the destructor drains queued work before joining,
// Submit during the drain is a silent drop (never a use-after-free or a
// hang), Wait() returns only at a quiescent point, and the obs gauge updates
// stay outside the pool's critical sections (the pool mutex is innermost —
// see the lock-discipline note in thread_pool.h). Races come from the pool's
// own workers or from threads that provably outlive their last Submit; an
// external thread racing Submit against a destroyed pool is a caller
// lifetime bug the pool cannot defend against.

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace commsig {
namespace {

TEST(PoolShutdownRaceTest, DestructionDrainsQueuedTasks) {
  // Destroy the pool the moment the queue is full: every already-enqueued
  // task must still run (drain-then-join semantics), racing the workers
  // against the destructor's shutdown flag.
  for (int round = 0; round < 25; ++round) {
    std::atomic<uint64_t> executed{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 256; ++i) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // No Wait(): the destructor must drain.
    }
    EXPECT_EQ(executed.load(), 256u);
  }
}

TEST(PoolShutdownRaceTest, TasksResubmittingDuringDrainAreDropped) {
  // A task that re-enqueues itself forever must not keep the destructor from
  // finishing: once shutdown begins, its resubmissions are dropped. The
  // resubmitting threads are the pool's own workers, which the destructor
  // joins, so the Submit calls never outlive the pool.
  std::atomic<uint64_t> spawned{0};
  {
    // Declared before the pool: queued tasks reference self_feeding, and the
    // pool's destructor still runs them, so it must outlive the pool.
    std::function<void()> self_feeding;
    ThreadPool pool(2);
    self_feeding = [&] {
      spawned.fetch_add(1, std::memory_order_relaxed);
      pool.Submit(self_feeding);
    };
    for (int i = 0; i < 4; ++i) pool.Submit(self_feeding);
    while (spawned.load(std::memory_order_relaxed) < 100) {
      std::this_thread::yield();
    }
    // Destructor races the self-feeding tasks here.
  }
  EXPECT_GE(spawned.load(), 100u);
}

TEST(PoolShutdownRaceTest, SubmitAfterShutdownIsNoop) {
  // Regression test for the documented Submit-after-shutdown no-op. The
  // worker task holds the drain open until the destructor is known to be
  // running, then resubmits; the resubmitted task must be dropped.
  std::atomic<bool> ran_after_shutdown{false};
  std::atomic<bool> destroying{false};
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* raw = pool.get();
  raw->Submit([&] {
    while (!destroying.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Setting shutting_down_ is the destructor's first action, before it
    // blocks joining this worker; the sleep gives it ample headroom.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    raw->Submit([&ran_after_shutdown] { ran_after_shutdown.store(true); });
  });
  std::thread destroyer([&] {
    destroying.store(true, std::memory_order_release);
    pool.reset();
  });
  destroyer.join();
  EXPECT_FALSE(ran_after_shutdown.load());
}

TEST(PoolShutdownRaceTest, WaitersAndSubmittersInterleave) {
  // Wait() from the owner interleaved with Submit() from helpers: Wait must
  // return only at a quiescent point (in_flight == 0), so once the helpers
  // have joined, the executed count equals the submitted count.
  ThreadPool pool(3);
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> finished{0};
  std::vector<std::thread> helpers;
  helpers.reserve(3);
  for (int h = 0; h < 3; ++h) {
    helpers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        submitted.fetch_add(1, std::memory_order_relaxed);
        pool.Submit([&finished] {
          finished.fetch_add(1, std::memory_order_relaxed);
        });
        if (i % 100 == 0) pool.Wait();  // waiters interleave with submitters
      }
    });
  }
  for (std::thread& h : helpers) h.join();
  pool.Wait();
  EXPECT_EQ(finished.load(), submitted.load());
}

TEST(PoolShutdownRaceTest, SubmitWhileRegistryExports) {
  // Regression test for the lock-order fix: Submit/WorkerLoop once updated
  // the queue-depth gauge while holding the pool mutex, nesting the
  // MetricsRegistry mutex inside it. The gauge updates now happen outside
  // the critical section, so a thread hammering registry exports while the
  // pool churns must see no lock-order inversion (TSan would flag the
  // nesting) and a quiesced final gauge value.
  std::atomic<bool> done{false};
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)obs::MetricsRegistry::Global().ToJson();
    }
  });
  {
    ThreadPool pool(4);
    for (int wave = 0; wave < 50; ++wave) {
      for (int i = 0; i < 64; ++i) {
        pool.Submit([] { /* empty task; maximizes queue churn */ });
      }
      pool.Wait();
    }
  }
  done.store(true, std::memory_order_release);
  exporter.join();
  // The gauge updates race each other by design (they happen outside the
  // pool lock), so the final value is only bounded, not exactly zero.
  double depth =
      obs::MetricsRegistry::Global().GetGauge("threadpool/queue_depth").Value();
  EXPECT_GE(depth, 0.0);
  EXPECT_LE(depth, 64.0);
}

}  // namespace
}  // namespace commsig
