// Determinism-under-threads suite: the parallel entry points must produce
// bit-identical output regardless of worker count or scheduling. This is the
// precondition for every robustness/persistence number in the paper's
// Definition 2 metrics — a perturbation experiment is only meaningful if the
// unperturbed computation is a pure function of its inputs.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/parallel.h"
#include "data/flow_generator.h"

namespace commsig {
namespace {

FlowDataset StressFlows() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 48;
  cfg.num_external_hosts = 700;
  cfg.num_windows = 2;
  cfg.seed = 97;
  return FlowTraceGenerator(cfg).Generate();
}

/// Byte-level equality: EXPECT_EQ on doubles treats +0.0 == -0.0 and would
/// hide a sign flip; determinism here means the stronger bit-identity.
bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(DeterminismTest, ComputeAllParallelBitIdenticalAcrossWorkerCounts) {
  FlowDataset ds = StressFlows();
  CommGraph g = ds.Windows()[0];
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  for (const char* spec :
       {"tt", "ut", "rwr(c=0.1,h=3)", "rwr(c=0.15)", "rwr-push(c=0.1,eps=1e-6)"}) {
    auto scheme = CreateScheme(spec, opts);
    ASSERT_TRUE(scheme.ok()) << spec;
    std::vector<Signature> reference =
        (*scheme)->ComputeAll(g, ds.local_hosts);
    for (size_t workers : {1u, 2u, 8u}) {
      ThreadPool pool(workers);
      std::vector<Signature> got =
          ComputeAllParallel(**scheme, g, ds.local_hosts, pool);
      ASSERT_EQ(got.size(), reference.size()) << spec;
      for (size_t i = 0; i < got.size(); ++i) {
        // Signature equality is exact (entry-wise id + double weight), so a
        // scheduling-dependent summation order would fail here.
        EXPECT_EQ(got[i], reference[i])
            << spec << " node " << i << " with " << workers << " workers";
      }
    }
  }
}

TEST(DeterminismTest, ComputeAllParallelStableAcrossRepeatedRuns) {
  // Same pool, same inputs, many runs: contention patterns differ run to
  // run, results must not.
  FlowDataset ds = StressFlows();
  CommGraph g = ds.Windows()[1];
  auto scheme = *CreateScheme("rwr(c=0.1,h=3)",
                              {.k = 10, .restrict_to_opposite_partition = true});
  ThreadPool pool(8);
  std::vector<Signature> first =
      ComputeAllParallel(*scheme, g, ds.local_hosts, pool);
  for (int run = 0; run < 5; ++run) {
    std::vector<Signature> again =
        ComputeAllParallel(*scheme, g, ds.local_hosts, pool);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i], first[i]) << "run " << run << " node " << i;
    }
  }
}

TEST(DeterminismTest, PairwiseDistancesParallelBitIdenticalAcrossWorkerCounts) {
  FlowDataset ds = StressFlows();
  CommGraph g = ds.Windows()[0];
  auto scheme = *CreateScheme("tt", {.k = 10});
  std::vector<Signature> sigs = scheme->ComputeAll(g, ds.local_hosts);
  SignatureDistance dist(DistanceKind::kScaledHellinger);

  ThreadPool single(1);
  std::vector<double> reference = PairwiseDistancesParallel(sigs, dist, single);
  for (size_t workers : {2u, 8u}) {
    ThreadPool pool(workers);
    std::vector<double> got = PairwiseDistancesParallel(sigs, dist, pool);
    EXPECT_TRUE(BitIdentical(got, reference)) << workers << " workers";
  }
}

TEST(DeterminismTest, PairwiseDistancesParallelStableUnderContention) {
  // Two pairwise scans on the same 8-thread pool back to back, plus one
  // interleaved with foreign tasks, all bit-identical.
  FlowDataset ds = StressFlows();
  CommGraph g = ds.Windows()[1];
  auto scheme = *CreateScheme("ut", {.k = 10});
  std::vector<Signature> sigs = scheme->ComputeAll(g, ds.local_hosts);
  SignatureDistance dist(DistanceKind::kJaccard);

  ThreadPool pool(8);
  std::vector<double> first = PairwiseDistancesParallel(sigs, dist, pool);
  std::vector<double> second = PairwiseDistancesParallel(sigs, dist, pool);
  EXPECT_TRUE(BitIdentical(first, second));
}

}  // namespace
}  // namespace commsig
