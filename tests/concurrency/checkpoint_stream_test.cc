// Checkpoint-write-during-stream races. The production shape: an ingest
// thread feeds a StreamingSignatureBuilder while a checkpoint thread
// serializes consistent snapshots and persists them through
// CheckpointManager. Also covers the CheckpointManager writer-serialization
// fix — concurrent Save calls once shared a single .tmp scratch file and
// could rename a torn frame into place.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/mutex.h"
#include "graph/windower.h"
#include "robust/checkpoint.h"
#include "sketch/streaming_signatures.h"

namespace commsig {
namespace {

namespace fs = std::filesystem;

std::string UniqueTempDir(const char* tag) {
  static std::atomic<uint64_t> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 (std::string("commsig_ckpt_race_") + tag + "_" +
                  std::to_string(counter.fetch_add(1)) + "_" +
                  std::to_string(static_cast<uint64_t>(::getpid())));
  fs::remove_all(dir);
  return dir.string();
}

std::vector<TraceEvent> SyntheticStream(size_t count) {
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    events.push_back(TraceEvent{
        /*src=*/static_cast<NodeId>(i % 13),
        /*dst=*/static_cast<NodeId>(20 + (i * 7) % 31),
        /*time=*/i,
        /*weight=*/1.0 + static_cast<double>(i % 5)});
  }
  return events;
}

TEST(CheckpointStreamRaceTest, ConcurrentSavesNeverTearFrames) {
  // Regression test for the shared-.tmp race: two writer threads saving
  // interleaved sequences. Every surviving file must parse and the newest
  // loadable checkpoint must be one that was actually written whole.
  std::string dir = UniqueTempDir("writers");
  CheckpointManager manager(dir, {.stem = "race", .keep = 4});
  constexpr uint64_t kSavesPerWriter = 60;

  auto writer = [&manager](uint64_t start) {
    for (uint64_t i = 0; i < kSavesPerWriter; ++i) {
      const uint64_t seq = start + i * 2;
      // Payload encodes its own sequence so a torn write is detectable as
      // a payload/sequence mismatch even if the CRC happened to survive.
      ByteWriter payload;
      payload.PutU64(seq);
      payload.PutString(std::string(512 + seq % 257, 'x'));
      ASSERT_TRUE(
          manager.Save(seq, std::move(payload).Take()).ok());
    }
  };
  std::thread even(writer, 0);
  std::thread odd(writer, 1);
  even.join();
  odd.join();

  Result<CheckpointData> latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->corrupt_skipped, 0u);
  ByteReader reader(latest->payload);
  Result<uint64_t> embedded = reader.U64();
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ(*embedded, latest->sequence);
  fs::remove_all(dir);
}

TEST(CheckpointStreamRaceTest, LoadLatestDuringSaves) {
  // A restore probing the directory while a writer churns checkpoints and
  // prunes old ones: every successful load returns an intact frame (the
  // atomic rename is the only publication point), and files pruned mid-walk
  // only register as fallback skips.
  std::string dir = UniqueTempDir("loaders");
  CheckpointManager manager(dir, {.stem = "live", .keep = 2});
  ASSERT_TRUE(manager.Save(0, "seed").ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> loads{0};
  std::thread loader([&] {
    while (!done.load(std::memory_order_acquire)) {
      Result<CheckpointData> data = manager.LoadLatest();
      if (data.ok()) {
        EXPECT_FALSE(data->payload.empty());
        loads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (uint64_t seq = 1; seq <= 150; ++seq) {
    ASSERT_TRUE(manager.Save(seq, std::string(1024, 'p')).ok());
  }
  done.store(true, std::memory_order_release);
  loader.join();
  EXPECT_GE(loads.load(), 1u);
  fs::remove_all(dir);
}

TEST(CheckpointStreamRaceTest, CheckpointWhileStreamIngests) {
  // The `commsig stream --checkpoint-every` shape as two real threads: the
  // ingest thread owns the builder, the checkpoint thread snapshots it under
  // the shared mutex and persists outside the lock. The final restore must
  // be byte-identical to a fresh builder fed the same event prefix — the
  // bit-exactness the kill/restore pipeline depends on.
  const std::vector<TraceEvent> events = SyntheticStream(6000);
  StreamingSignatureBuilder::Options options;
  options.heavy_hitter_capacity = 16;
  options.cm_width = 256;
  options.cm_depth = 2;
  options.fm_bitmaps = 8;

  std::string dir = UniqueTempDir("stream");
  CheckpointManager manager(dir, {.stem = "stream", .keep = 3});

  Mutex builder_mutex;
  StreamingSignatureBuilder builder({1, 2, 3, 5, 8}, options);
  std::atomic<bool> ingest_done{false};

  std::thread checkpointer([&] {
    // do-while: at least one checkpoint lands even if ingestion outruns
    // this thread's startup entirely.
    do {
      uint64_t sequence;
      ByteWriter snapshot;
      {
        MutexLock lock(builder_mutex);
        sequence = builder.events_observed();
        builder.AppendTo(snapshot);
      }
      // Persist outside the builder lock: disk latency must not stall
      // ingestion.
      ASSERT_TRUE(manager.Save(sequence, std::move(snapshot).Take()).ok());
      std::this_thread::yield();
    } while (!ingest_done.load(std::memory_order_acquire));
  });

  for (const TraceEvent& event : events) {
    MutexLock lock(builder_mutex);
    builder.Observe(event);
  }
  ingest_done.store(true, std::memory_order_release);
  checkpointer.join();

  Result<CheckpointData> latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  ASSERT_LE(latest->sequence, events.size());

  // Rebuild from scratch over the checkpointed prefix; serialization is
  // deterministic, so the bytes must match exactly.
  StreamingSignatureBuilder replay({1, 2, 3, 5, 8}, options);
  for (uint64_t i = 0; i < latest->sequence; ++i) replay.Observe(events[i]);
  ByteWriter expected;
  replay.AppendTo(expected);
  EXPECT_EQ(latest->payload, expected.bytes());

  // And the payload round-trips through the deserializer.
  ByteReader reader(latest->payload);
  Result<StreamingSignatureBuilder> restored =
      StreamingSignatureBuilder::FromBytes(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->events_observed(), latest->sequence);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace commsig
