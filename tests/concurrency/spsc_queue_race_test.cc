// Race-stress coverage for ingest::BoundedSpscQueue, written to run under
// -DCOMMSIG_SANITIZE=thread in CI but asserting real invariants (lossless
// transfer, FIFO order, drain-on-close, shed accounting) in every build
// mode. The queue is the only coupling between pipeline stages, so a torn
// ring slot or a lost wakeup here would corrupt windows silently.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/spsc_queue.h"

namespace commsig::ingest {
namespace {

TEST(SpscQueueRaceTest, LosslessOrderedTransferUnderContention) {
  constexpr uint64_t kItems = 100000;
  BoundedSpscQueue<uint64_t> q(8);  // small ring: constant wrap + stalls
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
    q.Close();
  });
  uint64_t expected = 0;
  uint64_t sum = 0;
  uint64_t v = 0;
  while (q.Pop(v)) {
    ASSERT_EQ(v, expected);  // strict FIFO, no dup/loss/tear
    ++expected;
    sum += v;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(SpscQueueRaceTest, CloseWhileProducerBlockedLosesNothingAlreadyQueued) {
  BoundedSpscQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    int item = 3;
    // Blocks on the full ring; Close() must wake it with a clean failure.
    EXPECT_FALSE(q.Push(item));
    push_returned.store(true);
  });
  while (q.producer_stalls() == 0) std::this_thread::yield();
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  // Items accepted before the close still drain in order.
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(v));
}

TEST(SpscQueueRaceTest, BackpressureWakeupsNeverDeadlock) {
  // Tiny capacity forces both sides through their CondVar paths thousands
  // of times; a lost wakeup shows up as a hang (and the test runner's
  // timeout), a data race as a TSan report.
  constexpr uint64_t kItems = 20000;
  BoundedSpscQueue<uint64_t> q(1);
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
    q.Close();
  });
  uint64_t count = 0;
  uint64_t v = 0;
  while (q.Pop(v)) ++count;
  producer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_GT(q.producer_stalls() + q.consumer_stalls(), 0u);
}

TEST(SpscQueueRaceTest, ShedModeDropsAreExactlyAccounted) {
  // TryPush under contention: every item is either delivered or reported
  // back to the producer as shed — never both, never neither.
  constexpr uint64_t kItems = 50000;
  BoundedSpscQueue<uint64_t> q(4);
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> delivered_sum{0};
  std::atomic<uint64_t> shed_sum{0};
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      uint64_t item = i;
      if (q.TryPush(item)) {
        continue;
      }
      // On failure the item must not have been consumed.
      ASSERT_EQ(item, i);
      shed.fetch_add(1, std::memory_order_relaxed);
      shed_sum.fetch_add(i, std::memory_order_relaxed);
    }
    q.Close();
  });
  std::thread consumer([&] {
    uint64_t v = 0;
    uint64_t sum = 0;
    uint64_t last = 0;
    bool have_last = false;
    while (q.Pop(v)) {
      if (have_last) {
        ASSERT_GT(v, last);  // order preserved across drops
      }
      last = v;
      have_last = true;
      sum += v;
    }
    delivered_sum.fetch_add(sum, std::memory_order_relaxed);
  });
  producer.join();
  consumer.join();
  constexpr uint64_t kTotalSum = kItems * (kItems - 1) / 2;
  EXPECT_EQ(delivered_sum.load() + shed_sum.load(), kTotalSum);
  EXPECT_LE(shed.load(), kItems);
}

TEST(SpscQueueRaceTest, ManyShortLivedQueues) {
  // Exercises construction/teardown races: a queue that is created, used
  // briefly by two threads, closed and destroyed must not leave dangling
  // waiters.
  for (int round = 0; round < 200; ++round) {
    BoundedSpscQueue<int> q(2);
    std::thread producer([&q] {
      for (int i = 0; i < 16; ++i) {
        if (!q.Push(i)) return;
      }
      q.Close();
    });
    int v = 0;
    int count = 0;
    while (q.Pop(v)) ++count;
    producer.join();
    EXPECT_EQ(count, 16);
  }
}

}  // namespace
}  // namespace commsig::ingest
