// Race-stress suite for the obs metrics layer, written to run under
// ThreadSanitizer (-DCOMMSIG_SANITIZE=thread): concurrent increments on
// every metric kind while an exporter thread snapshots and serializes the
// registry. The assertions check exact totals — the striped counters and
// locked histograms must not lose updates — and the TSan run checks the
// synchronization itself.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../obs/json_check.h"
#include "obs/metrics.h"

namespace commsig::obs {
namespace {

TEST(MetricsRaceTest, ConcurrentCounterAddsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.GetCounter("race/adds");
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("race/adds").Value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsRaceTest, ExportWhileWritersRun) {
  // Regression shape for the MetricsRegistry export path: Snapshot() walks
  // the name->metric maps under the registry mutex while writer threads both
  // mutate existing metrics and register new ones. Every intermediate JSON
  // export must stay well-formed and the final totals exact.
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::atomic<bool> done{false};
  std::atomic<int> exports{0};

  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::string json = registry.ToJson();
      ASSERT_TRUE(obs_test::JsonChecker(json).Valid()) << json;
      (void)registry.ToPrometheus();
      exports.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        registry.GetCounter("race/shared").Add();
        registry.GetGauge("race/gauge_" + std::to_string(w))
            .Set(static_cast<double>(i));
        registry.GetHistogram("race/hist").Observe(static_cast<double>(i % 97));
        if (i % 1000 == 0) {
          // Registration churn: forces the exporter to see maps growing.
          registry.GetCounter("race/churn_" + std::to_string(w) + "_" +
                              std::to_string(i));
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_GE(exports.load(), 1);
  EXPECT_EQ(registry.GetCounter("race/shared").Value(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  HistogramSnapshot hist = registry.GetHistogram("race/hist").Snapshot();
  EXPECT_EQ(hist.count, static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(MetricsRaceTest, HistogramObserveVsSnapshot) {
  Histogram hist;
  constexpr int kObservations = 30000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      HistogramSnapshot snap = hist.Snapshot();
      // The bucket sum can trail the total count only by in-flight updates,
      // never exceed it, and both views come from one locked snapshot.
      uint64_t bucket_total = 0;
      for (const auto& b : snap.buckets) bucket_total += b.count;
      EXPECT_EQ(bucket_total, snap.count);
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < kObservations; ++i) {
      hist.Observe(static_cast<double>(i % 1024) + 0.5);
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  reader.join();
  EXPECT_EQ(hist.Snapshot().count, static_cast<uint64_t>(kObservations));
}

TEST(MetricsRaceTest, GaugeLastWriteWins) {
  Gauge gauge;
  constexpr int kWrites = 20000;
  std::thread a([&] {
    for (int i = 0; i < kWrites; ++i) gauge.Set(1.0);
  });
  std::thread b([&] {
    for (int i = 0; i < kWrites; ++i) gauge.Set(2.0);
  });
  std::thread reader([&] {
    for (int i = 0; i < kWrites; ++i) {
      double v = gauge.Value();
      // Reads must always see a fully written value, never a torn one.
      EXPECT_TRUE(v == 0.0 || v == 1.0 || v == 2.0) << v;
    }
  });
  a.join();
  b.join();
  reader.join();
  double final_value = gauge.Value();
  EXPECT_TRUE(final_value == 1.0 || final_value == 2.0);
}

}  // namespace
}  // namespace commsig::obs
