// Race-stress for the live introspection plane: HTTP-facing snapshot
// readers (the stats-server request handlers) run against writers that keep
// mutating the underlying singletons — metrics, the window-attribution
// ring, the recent-span ring, and the structured-log sink. Designed for
// -DCOMMSIG_SANITIZE=thread, but the invariants (every snapshot parses,
// every log line is standalone JSON, the watchdog flips exactly on age)
// hold in every build mode.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "obs/window_stats.h"
#include "../obs/json_check.h"

namespace commsig::obs {
namespace {

using commsig::obs_test::IsValidJson;

/// One GET over a real loopback socket; returns the raw response ("" on
/// socket failure).
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class IntrospectionRaceTest : public ::testing::Test {
 protected:
  IntrospectionRaceTest() {
    WindowStatsAggregator::Global().Reset();
    LogSink::Global().SetStderrEnabled(false);
  }
  ~IntrospectionRaceTest() override {
    WindowStatsAggregator::Global().Reset();
    TraceCollector::Global().SetRetainRecent(false);
    TraceCollector::Global().Clear();
    LogSink::Global().CloseFile();
    LogSink::Global().SetStderrEnabled(true);
  }
};

TEST_F(IntrospectionRaceTest, EndpointsServeValidSnapshotsWhileWritersMutate) {
  TraceCollector::Global().SetRetainRecent(true);
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&stop, w] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      Counter& counter = reg.GetCounter("race/introspection_writes");
      Histogram& hist = reg.GetHistogram("race/introspection_us");
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        counter.Add(1);
        hist.Observe(static_cast<double>(i % 1000 + 1));
        reg.GetGauge("race/introspection_depth")
            .Set(static_cast<double>(i));
        WindowRecord record;
        record.window_index = i;
        record.events = i * 3;
        record.focal_nodes = 16;
        record.dirty_nodes = i % 16;
        record.stage_us[static_cast<size_t>(
            PipelineStage::kDirtyRecompute)] = i % 97 + 1;
        WindowStatsAggregator::Global().Record(record);
        { ScopedSpan span(w == 0 ? "race/a" : "race/b"); }
        ++i;
      }
    });
  }

  const StatsServer::Options options{.stall_threshold_us = 60'000'000};
  const char* const kEndpoints[] = {"/metrics", "/varz", "/healthz",
                                    "/tracez", "/pipelinez"};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&options, &kEndpoints, &failures] {
      for (int iter = 0; iter < 150; ++iter) {
        for (const char* endpoint : kEndpoints) {
          int status = 0;
          std::string type;
          std::string body = StatsServer::HandleRequest(endpoint, options,
                                                        status, type);
          if (body.empty()) failures.fetch_add(1);
          // /metrics is Prometheus text; everything else must parse.
          if (type == "application/json" && !IsValidJson(body)) {
            failures.fetch_add(1);
          }
          if (status != 200) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(IntrospectionRaceTest, LogLinesStayValidJsonUnderConcurrentWriters) {
  const std::string path =
      ::testing::TempDir() + "/commsig_introspection_race.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(LogSink::Global().OpenFile(path).ok());

  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        LogInfo("race_event")
            .U64("writer", static_cast<uint64_t>(t))
            .U64("iteration", static_cast<uint64_t>(i))
            .Str("payload", "quotes \" and \\ backslashes \n newlines")
            .Double("ratio", 1.0 / (i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  LogSink::Global().CloseFile();

  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  size_t invalid = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (!IsValidJson(line)) ++invalid;
  }
  std::remove(path.c_str());
  EXPECT_EQ(lines, static_cast<size_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(invalid, 0u);
}

TEST_F(IntrospectionRaceTest, HealthzWatchdogFlipsWhileWindowsKeepLanding) {
  StatsServer::Options options;
  options.stall_threshold_us = 50'000;  // 50ms

  std::atomic<bool> stop{false};
  std::thread advancer([&stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      WindowRecord record;
      record.window_index = i++;
      WindowStatsAggregator::Global().Record(record);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // While windows land every ~1ms, health must never report stalled.
  int stalled_while_live = 0;
  for (int i = 0; i < 50; ++i) {
    int status = 0;
    std::string type;
    StatsServer::HandleRequest("/healthz", options, status, type);
    if (status == 503) ++stalled_while_live;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  advancer.join();
  EXPECT_EQ(stalled_while_live, 0);

  // Once the advancer is gone the age grows past the threshold and the
  // watchdog must flip — poll rather than sleep a fixed amount.
  int status = 0;
  for (int i = 0; i < 500 && status != 503; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::string type;
    StatsServer::HandleRequest("/healthz", options, status, type);
  }
  EXPECT_EQ(status, 503);
}

TEST_F(IntrospectionRaceTest, LiveServerSurvivesConcurrentScrapesAndWriters) {
  StatsServer server({});  // ephemeral port; stall check off
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      MetricsRegistry::Global().GetCounter("race/live_scrape").Add(1);
      WindowRecord record;
      record.window_index = i++;
      WindowStatsAggregator::Global().Record(record);
    }
  });

  // Hammer the real socket path from several clients at once. Per-response
  // content is checked by the routing tests; here the invariant is that
  // every request completes with a 200 and the server never wedges or
  // crashes while the writer keeps mutating (the TSan payoff).
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  const uint16_t port = server.port();
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([port, &ok] {
      for (int i = 0; i < 20; ++i) {
        const std::string response = HttpGet(
            port, i % 2 == 0 ? "/varz" : "/pipelinez");
        if (response.find("HTTP/1.0 200") != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  server.Stop();
  EXPECT_EQ(ok.load(), 60);
}

}  // namespace
}  // namespace commsig::obs
