#include "common/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_EQ(SplitMix64(12345), SplitMix64(12345));
}

TEST(SplitMix64Test, MixesNearbyInputs) {
  // Consecutive inputs should land far apart.
  uint64_t a = SplitMix64(1);
  uint64_t b = SplitMix64(2);
  EXPECT_NE(a, b);
  int differing_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing_bits, 10);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformInt(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  Rng rng(17);
  const int kDraws = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = static_cast<double>(rng.Poisson(lambda));
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.1 * lambda + 0.1);
  EXPECT_NEAR(var, lambda, 0.15 * lambda + 0.2);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonTest,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    counts[rng.WeightedIndex(weights)]++;
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleIsUniformish) {
  // Position of element 0 after shuffling should be ~uniform.
  std::vector<int> position_counts(5, 0);
  for (uint64_t seed = 0; seed < 5000; ++seed) {
    Rng rng(seed);
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.Shuffle(v);
    for (int i = 0; i < 5; ++i) {
      if (v[i] == 0) position_counts[i]++;
    }
  }
  for (int c : position_counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(42);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DiscreteSamplerTest, SingleItem) {
  DiscreteSampler sampler({5.0});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  DiscreteSampler sampler({0.0, 1.0, 0.0});
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(DiscreteSamplerTest, MatchesDistribution) {
  std::vector<double> weights = {2.0, 1.0, 4.0, 3.0};
  DiscreteSampler sampler(weights);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[sampler.Sample(rng)]++;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kDraws), weights[i] / 10.0,
                0.01);
  }
}

TEST(DiscreteSamplerTest, HeavyTailHeadDominates) {
  // Zipf-ish weights: the head item must be sampled most often.
  std::vector<double> weights;
  for (int r = 1; r <= 1000; ++r) weights.push_back(1.0 / r);
  DiscreteSampler sampler(weights);
  Rng rng(4);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

}  // namespace
}  // namespace commsig
