#include "common/interner.h"

#include <string>

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(InternerTest, AssignsDenseIdsInFirstSeenOrder) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("c"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, RepeatedInternReturnsSameId) {
  Interner interner;
  NodeId a = interner.Intern("10.0.0.1");
  EXPECT_EQ(interner.Intern("10.0.0.1"), a);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, LabelOfRoundTrips) {
  Interner interner;
  NodeId id = interner.Intern("ext-42");
  EXPECT_EQ(interner.LabelOf(id), "ext-42");
}

TEST(InternerTest, FindWithoutInterning) {
  Interner interner;
  interner.Intern("x");
  EXPECT_EQ(interner.Find("x"), 0u);
  EXPECT_EQ(interner.Find("y"), kInvalidNode);
  EXPECT_EQ(interner.size(), 1u);  // Find does not intern
}

TEST(InternerTest, EmptyLabelIsValid) {
  Interner interner;
  NodeId id = interner.Intern("");
  EXPECT_EQ(interner.LabelOf(id), "");
  EXPECT_EQ(interner.Find(""), id);
}

TEST(InternerTest, CopyIsIndependent) {
  Interner a;
  a.Intern("one");
  Interner b = a;
  b.Intern("two");
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Find("one"), 0u);
}

TEST(InternerTest, ManyLabels) {
  Interner interner;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(interner.Intern("node-" + std::to_string(i)),
              static_cast<NodeId>(i));
  }
  EXPECT_EQ(interner.LabelOf(1234), "node-1234");
  EXPECT_EQ(interner.Find("node-9999"), 9999u);
}

TEST(InternerTest, PrehashedAgreesWithPlainIntern) {
  Interner plain;
  Interner prehashed;
  for (int i = 0; i < 5000; ++i) {
    const std::string label = "10.0." + std::to_string(i / 250) + "." +
                              std::to_string(i % 250);
    const NodeId a = plain.Intern(label);
    const NodeId b =
        prehashed.InternPrehashed(label, Interner::HashOf(label));
    EXPECT_EQ(a, b) << label;
  }
  EXPECT_EQ(plain.size(), prehashed.size());
  EXPECT_EQ(prehashed.FindPrehashed("10.0.0.1", Interner::HashOf("10.0.0.1")),
            plain.Find("10.0.0.1"));
  EXPECT_EQ(prehashed.FindPrehashed("absent", Interner::HashOf("absent")),
            kInvalidNode);
}

TEST(InternerTest, SurvivesManyGrowthsWithInterleavedLookups) {
  Interner interner;
  // Interleave fresh and repeated labels across several table growths; every
  // id must stay stable and findable.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4096; ++i) {
      std::string label = "k";
      label += std::to_string(i);
      EXPECT_EQ(interner.Intern(label), static_cast<NodeId>(i));
    }
  }
  EXPECT_EQ(interner.size(), 4096u);
  for (int i = 0; i < 4096; ++i) {
    std::string label = "k";
    label += std::to_string(i);
    EXPECT_EQ(interner.Find(label), static_cast<NodeId>(i));
  }
}

}  // namespace
}  // namespace commsig
