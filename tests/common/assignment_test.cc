#include "common/assignment.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

/// Brute-force optimum over all permutations (small instances only).
double BruteForceCost(const std::vector<double>& costs, size_t rows,
                      size_t cols) {
  std::vector<size_t> perm(cols);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    double total = 0.0;
    for (size_t i = 0; i < rows; ++i) total += costs[i * cols + perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(AssignmentTest, TrivialSingleCell) {
  double cost = 0.0;
  auto a = SolveAssignment({3.5}, 1, 1, &cost);
  EXPECT_EQ(a, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(cost, 3.5);
}

TEST(AssignmentTest, PicksCheapestColumn) {
  double cost = 0.0;
  auto a = SolveAssignment({5.0, 1.0, 9.0}, 1, 3, &cost);
  EXPECT_EQ(a[0], 1u);
  EXPECT_DOUBLE_EQ(cost, 1.0);
}

TEST(AssignmentTest, TwoByTwoCrossAssignment) {
  // Diagonal costs 10, off-diagonal 1: optimum crosses.
  double cost = 0.0;
  auto a = SolveAssignment({10.0, 1.0, 1.0, 10.0}, 2, 2, &cost);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
  EXPECT_DOUBLE_EQ(cost, 2.0);
}

TEST(AssignmentTest, GreedyTrap) {
  // Greedy takes (0,0)=1 then pays (1,1)=100; optimum is 2+3=5.
  std::vector<double> costs = {1.0, 2.0,   //
                               3.0, 100.0};
  double cost = 0.0;
  auto a = SolveAssignment(costs, 2, 2, &cost);
  EXPECT_DOUBLE_EQ(cost, 5.0);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
}

TEST(AssignmentTest, AssignmentIsInjective) {
  Rng rng(7);
  std::vector<double> costs(6 * 9);
  for (double& c : costs) c = rng.UniformDouble();
  auto a = SolveAssignment(costs, 6, 9);
  std::set<size_t> used(a.begin(), a.end());
  EXPECT_EQ(used.size(), 6u);
  for (size_t col : a) EXPECT_LT(col, 9u);
}

TEST(AssignmentTest, MatchesBruteForceOnRandomSquares) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const size_t n = 2 + rng.UniformInt(4);  // up to 5x5
    std::vector<double> costs(n * n);
    for (double& c : costs) c = rng.UniformDouble() * 10.0;
    double cost = 0.0;
    SolveAssignment(costs, n, n, &cost);
    EXPECT_NEAR(cost, BruteForceCost(costs, n, n), 1e-9) << "seed " << seed;
  }
}

TEST(AssignmentTest, MatchesBruteForceOnRectangles) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    const size_t rows = 2 + rng.UniformInt(2);  // 2-3
    const size_t cols = rows + 1 + rng.UniformInt(2);
    std::vector<double> costs(rows * cols);
    for (double& c : costs) c = rng.UniformDouble() * 10.0;
    double cost = 0.0;
    SolveAssignment(costs, rows, cols, &cost);
    EXPECT_NEAR(cost, BruteForceCost(costs, rows, cols), 1e-9)
        << "seed " << seed;
  }
}

TEST(AssignmentTest, HandlesTies) {
  std::vector<double> costs(4, 1.0);
  double cost = 0.0;
  auto a = SolveAssignment(costs, 2, 2, &cost);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_NE(a[0], a[1]);
}

}  // namespace
}  // namespace commsig
