#include "common/status.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactoryMatchesDefault) {
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::NotFound("gone");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsIOError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("broken header");
  Status copy = s;
  EXPECT_EQ(copy, s);
  EXPECT_EQ(copy.ToString(), "Corruption: broken header");
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::IOError("").ToString(), "IOError");
}

}  // namespace
}  // namespace commsig
