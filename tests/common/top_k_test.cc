#include "common/top_k.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace commsig {
namespace {

struct GreaterInt {
  bool operator()(int a, int b) const { return a > b; }
};

TEST(TopKTest, KeepsLargest) {
  TopK<int, GreaterInt> top(3);
  for (int x : {5, 1, 9, 3, 7, 2, 8}) top.Offer(x);
  EXPECT_EQ(top.Take(), (std::vector<int>{9, 8, 7}));
}

TEST(TopKTest, FewerItemsThanK) {
  TopK<int, GreaterInt> top(10);
  for (int x : {2, 1, 3}) top.Offer(x);
  EXPECT_EQ(top.Take(), (std::vector<int>{3, 2, 1}));
}

TEST(TopKTest, ZeroCapacityKeepsNothing) {
  TopK<int, GreaterInt> top(0);
  top.Offer(5);
  EXPECT_EQ(top.size(), 0u);
  EXPECT_TRUE(top.Take().empty());
}

TEST(TopKTest, DuplicatesAllowed) {
  TopK<int, GreaterInt> top(3);
  for (int x : {4, 4, 4, 1}) top.Offer(x);
  EXPECT_EQ(top.Take(), (std::vector<int>{4, 4, 4}));
}

TEST(TopKTest, CustomComparatorOnPairs) {
  using Item = std::pair<double, std::string>;
  struct ByWeight {
    bool operator()(const Item& a, const Item& b) const {
      return a.first > b.first;
    }
  };
  TopK<Item, ByWeight> top(2);
  top.Offer({0.5, "a"});
  top.Offer({0.9, "b"});
  top.Offer({0.1, "c"});
  top.Offer({0.7, "d"});
  auto kept = top.Take();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].second, "b");
  EXPECT_EQ(kept[1].second, "d");
}

TEST(TopKTest, ManyItemsStressOrdering) {
  TopK<int, GreaterInt> top(5);
  for (int x = 0; x < 1000; ++x) top.Offer((x * 7919) % 1000);
  EXPECT_EQ(top.Take(), (std::vector<int>{999, 998, 997, 996, 995}));
}

}  // namespace
}  // namespace commsig
