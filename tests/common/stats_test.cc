#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 5.0);
  EXPECT_EQ(s.Max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  std::vector<double> values = {1.5, -2.0, 3.25, 8.0, 0.0, -7.5, 4.0};
  for (size_t i = 0; i < values.size(); ++i) {
    all.Add(values[i]);
    (i < 3 ? a : b).Add(values[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-12);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats before = a;
  a.Merge(empty);
  EXPECT_EQ(a.Mean(), before.Mean());
  empty.Merge(a);
  EXPECT_EQ(empty.Mean(), 2.0);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, MedianOfOddCount) {
  EXPECT_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, NearestRank) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(Quantile(v, 0.25), 10.0);  // ceil(0.25*4)=1 -> first
  EXPECT_EQ(Quantile(v, 0.75), 30.0);
}

TEST(PearsonTest, PerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, MismatchedLengthsAreZero) {
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace commsig
