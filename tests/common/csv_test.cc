#include "common/csv.h"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

namespace commsig {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST(SplitCsvLineTest, Basic) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLineTest, EmptyFieldsPreserved) {
  auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLineTest, SingleField) {
  auto fields = SplitCsvLine("alone");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(SplitCsvLineTest, CustomDelimiter) {
  auto fields = SplitCsvLine("a|b|c", '|');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST_F(CsvTest, WriteThenRead) {
  {
    CsvWriter writer(path_.string());
    ASSERT_TRUE(writer.status().ok());
    writer.WriteRow({"x", "1", "2.5"});
    writer.WriteRow({"y", "2", "3.5"});
    ASSERT_TRUE(writer.Close().ok());
  }
  CsvReader reader(path_.string());
  ASSERT_TRUE(reader.status().ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"x", "1", "2.5"}));
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields[0], "y");
  EXPECT_FALSE(reader.Next(fields));
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  {
    std::ofstream out(path_);
    out << "# header comment\n\nreal,row\n\n# trailing\n";
  }
  CsvReader reader(path_.string());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields[0], "real");
  EXPECT_EQ(reader.line_number(), 1u);
  EXPECT_FALSE(reader.Next(fields));
}

TEST_F(CsvTest, HandlesCrLf) {
  {
    std::ofstream out(path_);
    out << "a,b\r\nc,d\r\n";
  }
  CsvReader reader(path_.string());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields[1], "b");  // no trailing \r
}

TEST(CsvReaderTest, MissingFileReportsIOError) {
  CsvReader reader("/nonexistent/dir/file.csv");
  EXPECT_TRUE(reader.status().IsIOError());
}

TEST(CsvWriterTest, UnwritablePathReportsIOError) {
  CsvWriter writer("/nonexistent/dir/file.csv");
  EXPECT_TRUE(writer.status().IsIOError());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseUintTest, ValidValues) {
  EXPECT_EQ(*ParseUint("0"), 0u);
  EXPECT_EQ(*ParseUint("123456789012"), 123456789012ull);
}

TEST(ParseUintTest, RejectsGarbage) {
  EXPECT_FALSE(ParseUint("").ok());
  EXPECT_FALSE(ParseUint("12.5").ok());
  EXPECT_FALSE(ParseUint("x1").ok());
}

// The Try* fast paths must be decision- and bit-identical to the historical
// strtod/strtoull-based parsers across every input class: plain decimals on
// the fast path, and strtod's quirkier accepts (signs, leading whitespace,
// exponents, hex floats) plus its range rejects on the slow path.
TEST(TryParseDoubleTest, MatchesStrtodSemantics) {
  const char* cases[] = {
      "0",      "1",        "2.5",     "3.25",    "123456.789",
      "1.",     ".5",       "007.25",  "1e3",     "-1e3",
      "+1.5",   " 1.5",     "0x1.8p1", "1e400",   "1e-400",
      "inf",    "nan",      "1.5x",    "abc",     ".",
      "..",     "1.2.3",    "-0",      "9007199254740993",
      "0.000000000000000000001",       "123456789012345678901234567890.5",
  };
  for (const char* text : cases) {
    std::string buf(text);
    errno = 0;
    char* end = nullptr;
    double expected = std::strtod(buf.c_str(), &end);
    const bool ok = errno == 0 && end == buf.c_str() + buf.size();
    double got = 0.0;
    EXPECT_EQ(TryParseDouble(text, got), ok) << text;
    if (ok) {
      // Bit-exact, not just approximately equal: parsed weights feed
      // checkpoint fingerprints and golden window hashes.
      EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(expected))
          << text;
    }
  }
}

TEST(TryParseUintTest, MatchesStrtoullSemantics) {
  const char* cases[] = {
      "0",  "7",   "42",     "123456789012",     "000000000000000000001",
      "18446744073709551615", "18446744073709551616", "99999999999999999999",
      "-1", "+1",  " 1",     "12.5",             "x1",
      "1x", "0x10",
  };
  for (const char* text : cases) {
    std::string buf(text);
    errno = 0;
    char* end = nullptr;
    unsigned long long expected = std::strtoull(buf.c_str(), &end, 10);
    const bool ok = errno == 0 && end == buf.c_str() + buf.size();
    uint64_t got = 0;
    EXPECT_EQ(TryParseUint(text, got), ok) << text;
    if (ok) {
      EXPECT_EQ(got, static_cast<uint64_t>(expected)) << text;
    }
  }
}

TEST(SplitFieldsTest, ReportsTotalCountBeyondCapacity) {
  std::string_view out[4];
  EXPECT_EQ(SplitFields("a,b,c,d,e,f", ',', out, 4), 6u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[3], "d");
  EXPECT_EQ(SplitFields("x", ',', out, 4), 1u);
  EXPECT_EQ(out[0], "x");
  EXPECT_EQ(SplitFields("a,,c,", ',', out, 4), 4u);
  EXPECT_EQ(out[1], "");
  EXPECT_EQ(out[3], "");
}

TEST(SplitFieldsTest, DelimiterSuccessorByteIsNotADelimiter) {
  // Regression: the word-at-a-time zero-byte detector must be exact. The
  // borrow-based (x-1)&~x form also flags a byte equal to delim^1 when the
  // byte below it is a real delimiter — for ',' that byte is '-', so
  // ",-0.5" grew a phantom field boundary at the minus sign.
  std::string_view out[4];
  ASSERT_EQ(SplitFields("o2,m3,-0.5", ',', out, 4), 3u);
  EXPECT_EQ(out[0], "o2");
  EXPECT_EQ(out[1], "m3");
  EXPECT_EQ(out[2], "-0.5");
  // Every adjacent-byte pairing around the delimiter, at every word
  // offset, against the SplitCsvLine reference.
  for (int c = 1; c < 256; ++c) {
    const char next = static_cast<char>(c);
    if (next == ',' || next == '\0') continue;
    for (size_t pad = 0; pad < 9; ++pad) {
      std::string line(pad, 'x');
      line += ',';
      line += next;
      line += ",tail";
      const std::vector<std::string> expected = SplitCsvLine(line, ',');
      const size_t total = SplitFields(line, ',', out, 4);
      ASSERT_EQ(total, expected.size()) << "next=" << c << " pad=" << pad;
      for (size_t i = 0; i < total && i < 4; ++i) {
        EXPECT_EQ(out[i], expected[i]) << "next=" << c << " pad=" << pad;
      }
    }
  }
}

TEST(LineScannerTest, MatchesCsvReaderSkipSemantics) {
  LineScanner scanner("# header\n\r\nreal,row\r\nlast,line");
  std::string_view line;
  ASSERT_TRUE(scanner.Next(line));
  EXPECT_EQ(line, "real,row");
  EXPECT_EQ(scanner.line_number(), 1u);
  ASSERT_TRUE(scanner.Next(line));
  EXPECT_EQ(line, "last,line");  // final line without trailing newline
  EXPECT_EQ(scanner.line_number(), 2u);
  EXPECT_FALSE(scanner.Next(line));
}

TEST(LineScannerTest, EmptyAndCommentOnlyBuffers) {
  std::string_view line;
  LineScanner empty("");
  EXPECT_FALSE(empty.Next(line));
  LineScanner comments("# one\n# two\n\n");
  EXPECT_FALSE(comments.Next(line));
  EXPECT_EQ(comments.line_number(), 0u);
}

}  // namespace
}  // namespace commsig
