#include "common/csv.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace commsig {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST(SplitCsvLineTest, Basic) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLineTest, EmptyFieldsPreserved) {
  auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLineTest, SingleField) {
  auto fields = SplitCsvLine("alone");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(SplitCsvLineTest, CustomDelimiter) {
  auto fields = SplitCsvLine("a|b|c", '|');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST_F(CsvTest, WriteThenRead) {
  {
    CsvWriter writer(path_.string());
    ASSERT_TRUE(writer.status().ok());
    writer.WriteRow({"x", "1", "2.5"});
    writer.WriteRow({"y", "2", "3.5"});
    ASSERT_TRUE(writer.Close().ok());
  }
  CsvReader reader(path_.string());
  ASSERT_TRUE(reader.status().ok());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"x", "1", "2.5"}));
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields[0], "y");
  EXPECT_FALSE(reader.Next(fields));
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  {
    std::ofstream out(path_);
    out << "# header comment\n\nreal,row\n\n# trailing\n";
  }
  CsvReader reader(path_.string());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields[0], "real");
  EXPECT_EQ(reader.line_number(), 1u);
  EXPECT_FALSE(reader.Next(fields));
}

TEST_F(CsvTest, HandlesCrLf) {
  {
    std::ofstream out(path_);
    out << "a,b\r\nc,d\r\n";
  }
  CsvReader reader(path_.string());
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(fields));
  EXPECT_EQ(fields[1], "b");  // no trailing \r
}

TEST(CsvReaderTest, MissingFileReportsIOError) {
  CsvReader reader("/nonexistent/dir/file.csv");
  EXPECT_TRUE(reader.status().IsIOError());
}

TEST(CsvWriterTest, UnwritablePathReportsIOError) {
  CsvWriter writer("/nonexistent/dir/file.csv");
  EXPECT_TRUE(writer.status().IsIOError());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseUintTest, ValidValues) {
  EXPECT_EQ(*ParseUint("0"), 0u);
  EXPECT_EQ(*ParseUint("123456789012"), 123456789012ull);
}

TEST(ParseUintTest, RejectsGarbage) {
  EXPECT_FALSE(ParseUint("").ok());
  EXPECT_FALSE(ParseUint("12.5").ok());
  EXPECT_FALSE(ParseUint("x1").ok());
}

}  // namespace
}  // namespace commsig
