#include "common/result.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no such node"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "no such node");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
}

TEST(ResultTest, ImplicitConversionFromValue) {
  auto make = []() -> Result<int> { return 7; };
  EXPECT_EQ(*make(), 7);
}

TEST(ResultTest, ImplicitConversionFromStatus) {
  auto make = []() -> Result<int> {
    return Status::InvalidArgument("nope");
  };
  EXPECT_FALSE(make().ok());
}

// value() on a failed Result must abort with the status message in EVERY
// build mode — in Release an assert would compile out and dereference an
// empty optional (UB) on exactly the corrupt-input paths where failed
// Results occur.
TEST(ResultDeathTest, ValueOnErrorAbortsWithStatusMessage) {
  Result<int> r(Status::Corruption("bad checkpoint bytes"));
  EXPECT_DEATH((void)r.value(), "bad checkpoint bytes");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  Result<std::string> r(Status::NotFound("gone"));
  EXPECT_DEATH((void)r->size(), "gone");
}

}  // namespace
}  // namespace commsig
