#include "common/thread_pool.h"

#include <atomic>
#include <future>
#include <vector>

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksExecutedCountsCompletedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_executed(), 0u);
  for (int i = 0; i < 25; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  EXPECT_EQ(pool.tasks_executed(), 25u);
}

TEST(ThreadPoolTest, QueueDepthReflectsPendingTasks) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> started{false};
  // Occupy the single worker, then stack tasks behind it.
  pool.Submit([&started, gate] {
    started.store(true);
    gate.wait();
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    pool.Submit([gate] { gate.wait(); });
  }
  EXPECT_EQ(pool.queue_depth(), 5u);
  release.set_value();
  pool.Wait();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 6u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(pool, 0, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, SingleItem) {
  ThreadPool pool(8);
  int value = 0;
  ParallelFor(pool, 1, [&](size_t i) { value = static_cast<int>(i) + 7; });
  EXPECT_EQ(value, 7);
}

TEST(ParallelForTest, ResultsMatchSerialSum) {
  ThreadPool pool(4);
  std::vector<double> out(5000);
  ParallelFor(pool, out.size(),
              [&](size_t i) { out[i] = static_cast<double>(i) * 0.5; });
  double sum = 0.0;
  for (double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum, 0.5 * (4999.0 * 5000.0 / 2.0));
}

}  // namespace
}  // namespace commsig
