#include "obs/health.h"

#include <gtest/gtest.h>

#include "json_check.h"

namespace commsig::obs {
namespace {

class HealthRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { HealthRegistry::Global().Reset(); }
  void TearDown() override { HealthRegistry::Global().Reset(); }
};

TEST_F(HealthRegistryTest, LevelNamesAreStable) {
  EXPECT_EQ(HealthLevelName(HealthLevel::kOk), "ok");
  EXPECT_EQ(HealthLevelName(HealthLevel::kDegraded), "degraded");
  EXPECT_EQ(HealthLevelName(HealthLevel::kCritical), "critical");
}

TEST_F(HealthRegistryTest, EmptyBoardIsOk) {
  auto& reg = HealthRegistry::Global();
  EXPECT_EQ(reg.Worst(), HealthLevel::kOk);
  EXPECT_EQ(reg.LevelOf("anything"), HealthLevel::kOk);
  EXPECT_EQ(reg.ToJson(), "{}");
  EXPECT_EQ(reg.transitions(), 0u);
}

TEST_F(HealthRegistryTest, WorstAcrossComponents) {
  auto& reg = HealthRegistry::Global();
  reg.Set("stream", HealthLevel::kOk, "tier=ok");
  reg.Set("ingest", HealthLevel::kDegraded, "slow disk");
  EXPECT_EQ(reg.Worst(), HealthLevel::kDegraded);
  reg.Set("stream", HealthLevel::kCritical, "tier=sketch_only");
  EXPECT_EQ(reg.Worst(), HealthLevel::kCritical);
  EXPECT_EQ(reg.LevelOf("ingest"), HealthLevel::kDegraded);
  reg.Set("stream", HealthLevel::kOk, "recovered");
  EXPECT_EQ(reg.Worst(), HealthLevel::kDegraded);
}

TEST_F(HealthRegistryTest, TransitionsCountLevelChangesOnly) {
  auto& reg = HealthRegistry::Global();
  reg.Set("stream", HealthLevel::kOk, "a");
  EXPECT_EQ(reg.transitions(), 0u);  // first sighting at kOk is not a change
  reg.Set("stream", HealthLevel::kOk, "b");  // detail-only update
  EXPECT_EQ(reg.transitions(), 0u);
  reg.Set("stream", HealthLevel::kDegraded, "c");
  EXPECT_EQ(reg.transitions(), 1u);
  reg.Set("stream", HealthLevel::kDegraded, "d");
  EXPECT_EQ(reg.transitions(), 1u);
  reg.Set("stream", HealthLevel::kOk, "e");
  EXPECT_EQ(reg.transitions(), 2u);
}

TEST_F(HealthRegistryTest, ClearRemovesOneComponent) {
  auto& reg = HealthRegistry::Global();
  reg.Set("stream", HealthLevel::kCritical, "x");
  reg.Set("ingest", HealthLevel::kDegraded, "y");
  reg.Clear("stream");
  EXPECT_EQ(reg.Worst(), HealthLevel::kDegraded);
  EXPECT_EQ(reg.LevelOf("stream"), HealthLevel::kOk);
}

TEST_F(HealthRegistryTest, ToJsonIsValidAndCarriesDetail) {
  auto& reg = HealthRegistry::Global();
  reg.Set("stream", HealthLevel::kDegraded,
          "tier=widen_checkpoints reason=checkpoint_save_failed");
  const std::string json = reg.ToJson();
  EXPECT_TRUE(obs_test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"stream\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("widen_checkpoints"), std::string::npos) << json;
}

}  // namespace
}  // namespace commsig::obs
