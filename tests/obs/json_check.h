#ifndef COMMSIG_TESTS_OBS_JSON_CHECK_H_
#define COMMSIG_TESTS_OBS_JSON_CHECK_H_

// Tiny recursive-descent JSON validity checker for the obs tests: the
// metrics and trace exporters hand-serialize JSON, so the tests verify the
// output actually parses. Validation only — no DOM is built.

#include <cctype>
#include <string>

namespace commsig::obs_test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True iff the whole input is one valid JSON value.
  bool Valid() {
    pos_ = 0;
    bool ok = Value();
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipWs();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }

  bool Array() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace commsig::obs_test

#endif  // COMMSIG_TESTS_OBS_JSON_CHECK_H_
